#include "autograd/var.h"

#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "autograd/ops.h"

namespace quickdrop::ag {

Var Var::leaf(Tensor value) {
  auto n = std::make_shared<detail::Node>();
  n->value = std::move(value);
  n->requires_grad = true;
  n->op = "leaf";
  return Var(std::move(n));
}

Var Var::constant(Tensor value) {
  auto n = std::make_shared<detail::Node>();
  n->value = std::move(value);
  n->requires_grad = false;
  n->op = "const";
  return Var(std::move(n));
}

const Tensor& Var::value() const {
  if (!node_) throw std::logic_error("Var::value: null Var");
  return node_->value;
}

Tensor& Var::mutable_value() {
  if (!node_) throw std::logic_error("Var::mutable_value: null Var");
  return node_->value;
}

bool Var::requires_grad() const { return node_ && node_->requires_grad; }

Var Var::detach() const { return constant(value()); }

Var Var::make_op(const char* op, Tensor value, std::vector<Var> parents, VjpFn vjp) {
  auto n = std::make_shared<detail::Node>();
  n->value = std::move(value);
  n->op = op;
  bool any_grad = false;
  n->parents.reserve(parents.size());
  for (const auto& p : parents) {
    if (!p.defined()) throw std::logic_error("Var::make_op: null parent");
    any_grad = any_grad || p.requires_grad();
    n->parents.push_back(p.node());
  }
  n->requires_grad = any_grad;
  if (any_grad) n->vjp = std::move(vjp);  // constants need no backward closure
  return Var(std::move(n));
}

namespace {

using NodePtr = std::shared_ptr<detail::Node>;

/// Topological order (parents before children) of the requires_grad subgraph
/// reachable from `root`, computed iteratively to avoid deep recursion.
std::vector<NodePtr> topo_order(const NodePtr& root) {
  std::vector<NodePtr> order;
  std::unordered_set<detail::Node*> visited;
  struct Frame {
    NodePtr node;
    std::size_t next_parent = 0;
  };
  std::vector<Frame> stack;
  if (root->requires_grad) stack.push_back({root});
  while (!stack.empty()) {
    auto& frame = stack.back();
    if (frame.next_parent == 0) {
      if (visited.count(frame.node.get())) {
        stack.pop_back();
        continue;
      }
    }
    bool descended = false;
    while (frame.next_parent < frame.node->parents.size()) {
      const auto& parent = frame.node->parents[frame.next_parent++];
      if (parent->requires_grad && !visited.count(parent.get())) {
        stack.push_back({parent});
        descended = true;
        break;
      }
    }
    if (!descended && frame.next_parent >= frame.node->parents.size()) {
      if (visited.insert(frame.node.get()).second) order.push_back(frame.node);
      stack.pop_back();
    }
  }
  return order;
}

}  // namespace

std::vector<Var> grad(const Var& output, std::span<const Var> inputs, const GradOptions& options) {
  if (!output.defined()) throw std::invalid_argument("grad: null output");
  if (output.value().numel() != 1) {
    throw std::invalid_argument("grad: output must be a single element, got shape " +
                                shape_to_string(output.shape()));
  }

  // Lookup-only gradient table. Accumulation is driven by the deterministic
  // topological sweep below, never by iterating this map — pointer-keyed hash
  // order varies with allocation addresses, so any range-for/begin() walk
  // here would break bitwise reproducibility (enforced statically by
  // qdlint det-unordered-iter; pinned by GradDeterminismTest).
  std::unordered_map<detail::Node*, Var> grads;
  if (output.requires_grad()) {
    grads[output.node().get()] = Var::constant(Tensor::full(output.shape(), 1.0f));

    const auto order = topo_order(output.node());
    // Children appear after their parents; sweep in reverse.
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const auto& node = *it;
      const auto git = grads.find(node.get());
      if (git == grads.end() || !node->vjp) continue;
      Var gy = git->second;
      if (!options.create_graph) gy = gy.detach();
      const auto parent_grads = node->vjp(gy);
      if (parent_grads.size() != node->parents.size()) {
        throw std::logic_error(std::string("grad: vjp arity mismatch in op ") + node->op);
      }
      for (std::size_t i = 0; i < node->parents.size(); ++i) {
        const auto& parent = node->parents[i];
        const auto& pg = parent_grads[i];
        if (!parent->requires_grad || !pg.defined()) continue;
        check_same_shape(pg.shape(), parent->value.shape(),
                         (std::string("grad: vjp shape for op ") + node->op).c_str());
        auto existing = grads.find(parent.get());
        if (existing == grads.end()) {
          grads.emplace(parent.get(), pg);
        } else {
          existing->second = add(existing->second, pg);
        }
      }
    }
  }

  std::vector<Var> result;
  result.reserve(inputs.size());
  for (const auto& input : inputs) {
    if (!input.defined()) throw std::invalid_argument("grad: null input");
    const auto it = grads.find(input.node().get());
    if (it == grads.end()) {
      result.push_back(Var::constant(Tensor::zeros(input.shape())));
    } else {
      result.push_back(options.create_graph ? it->second : it->second.detach());
    }
  }
  return result;
}

std::vector<Var> grad(const Var& output, std::initializer_list<Var> inputs,
                      const GradOptions& options) {
  const std::vector<Var> v(inputs);
  return grad(output, std::span<const Var>(v), options);
}

}  // namespace quickdrop::ag
