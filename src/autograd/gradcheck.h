// Numeric gradient checking for tests.
#pragma once

#include <functional>
#include <vector>

#include "autograd/ops.h"
#include "autograd/var.h"

namespace quickdrop::ag {

/// A differentiable scalar function of several tensor inputs. The function is
/// called with leaf Vars wrapping the current input tensors and must return a
/// single-element Var.
using ScalarFn = std::function<Var(const std::vector<Var>&)>;

/// Compares analytic gradients of `f` at `inputs` against central finite
/// differences. Returns the maximum absolute error across all inputs.
double max_gradient_error(const ScalarFn& f, const std::vector<Tensor>& inputs,
                          float epsilon = 1e-2f);

/// Same, but for second-order gradients: checks d/dx of sum_j(df/dx_j * r_j)
/// for a fixed random-ish probe r, exercising grad() with create_graph=true.
double max_second_order_error(const ScalarFn& f, const std::vector<Tensor>& inputs,
                              float epsilon = 1e-2f);

}  // namespace quickdrop::ag
