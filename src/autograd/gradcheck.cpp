#include "autograd/gradcheck.h"

#include <cmath>

namespace quickdrop::ag {
namespace {

std::vector<Var> wrap_leaves(const std::vector<Tensor>& inputs) {
  std::vector<Var> vars;
  vars.reserve(inputs.size());
  for (const auto& t : inputs) vars.push_back(Var::leaf(t.clone()));
  return vars;
}

double eval_at(const ScalarFn& f, const std::vector<Tensor>& inputs) {
  const auto vars = wrap_leaves(inputs);
  return static_cast<double>(f(vars).value().item());
}

/// First-order probe value: g(x) = sum_j <df/dx_j, r_j> with create_graph.
Var directional_grad(const ScalarFn& f, const std::vector<Var>& vars,
                     const std::vector<Tensor>& probes) {
  const Var out = f(vars);
  const auto grads = grad(out, std::span<const Var>(vars), {.create_graph = true});
  Var acc = scalar(0.0f);
  for (std::size_t j = 0; j < grads.size(); ++j) {
    acc = add(acc, sum_all(mul(grads[j], Var::constant(probes[j]))));
  }
  return acc;
}

}  // namespace

double max_gradient_error(const ScalarFn& f, const std::vector<Tensor>& inputs, float epsilon) {
  const auto vars = wrap_leaves(inputs);
  const Var out = f(vars);
  const auto grads = grad(out, std::span<const Var>(vars));

  double max_err = 0.0;
  for (std::size_t j = 0; j < inputs.size(); ++j) {
    for (std::int64_t i = 0; i < inputs[j].numel(); ++i) {
      std::vector<Tensor> plus, minus;
      for (const auto& t : inputs) {
        plus.push_back(t.clone());
        minus.push_back(t.clone());
      }
      plus[j].at(i) += epsilon;
      minus[j].at(i) -= epsilon;
      const double numeric = (eval_at(f, plus) - eval_at(f, minus)) / (2.0 * epsilon);
      const double analytic = static_cast<double>(grads[j].value().at(i));
      max_err = std::max(max_err, std::fabs(numeric - analytic));
    }
  }
  return max_err;
}

double max_second_order_error(const ScalarFn& f, const std::vector<Tensor>& inputs,
                              float epsilon) {
  // Deterministic probe: r_j[i] alternates in sign with varying magnitude.
  std::vector<Tensor> probes;
  for (const auto& t : inputs) {
    Tensor r(t.shape());
    for (std::int64_t i = 0; i < r.numel(); ++i) {
      r.at(i) = ((i % 2 == 0) ? 1.0f : -1.0f) * (0.5f + 0.1f * static_cast<float>(i % 7));
    }
    probes.push_back(r);
  }

  auto g = [&](const std::vector<Var>& vars) { return directional_grad(f, vars, probes); };

  return max_gradient_error(g, inputs, epsilon);
}

}  // namespace quickdrop::ag
