#include "autograd/ops.h"

#include "tensor/kernels.h"

namespace quickdrop::ag {
namespace k = quickdrop::kernels;

Var add(const Var& a, const Var& b) {
  return Var::make_op("add", k::add(a.value(), b.value()), {a, b}, [a, b](const Var& gy) {
    return std::vector<Var>{reduce_sum_to(gy, a.shape()), reduce_sum_to(gy, b.shape())};
  });
}

Var sub(const Var& a, const Var& b) {
  return Var::make_op("sub", k::sub(a.value(), b.value()), {a, b}, [a, b](const Var& gy) {
    return std::vector<Var>{reduce_sum_to(gy, a.shape()), reduce_sum_to(neg(gy), b.shape())};
  });
}

Var mul(const Var& a, const Var& b) {
  return Var::make_op("mul", k::mul(a.value(), b.value()), {a, b}, [a, b](const Var& gy) {
    return std::vector<Var>{reduce_sum_to(mul(gy, b), a.shape()),
                            reduce_sum_to(mul(gy, a), b.shape())};
  });
}

Var div(const Var& a, const Var& b) {
  return Var::make_op("div", k::div(a.value(), b.value()), {a, b}, [a, b](const Var& gy) {
    // d/da = gy / b ; d/db = -gy * a / b^2
    return std::vector<Var>{reduce_sum_to(div(gy, b), a.shape()),
                            reduce_sum_to(neg(div(mul(gy, a), mul(b, b))), b.shape())};
  });
}

Var neg(const Var& a) {
  return Var::make_op("neg", k::neg(a.value()), {a},
                      [](const Var& gy) { return std::vector<Var>{neg(gy)}; });
}

Var exp(const Var& a) {
  return Var::make_op("exp", k::exp(a.value()), {a}, [a](const Var& gy) {
    // Recompute exp(a) rather than capturing the output Var, which would
    // create a reference cycle (node -> vjp -> node).
    return std::vector<Var>{mul(gy, exp(a))};
  });
}

Var log(const Var& a) {
  return Var::make_op("log", k::log(a.value()), {a},
                      [a](const Var& gy) { return std::vector<Var>{div(gy, a)}; });
}

Var sqrt(const Var& a) {
  return Var::make_op("sqrt", k::sqrt(a.value()), {a}, [a](const Var& gy) {
    return std::vector<Var>{mul_scalar(div(gy, sqrt(a)), 0.5f)};
  });
}

Var relu(const Var& a) {
  return Var::make_op("relu", k::relu(a.value()), {a}, [a](const Var& gy) {
    // The mask is piecewise constant; a constant factor is the exact VJP a.e.
    const Var mask = Var::constant(k::gt_zero_mask(a.value()));
    return std::vector<Var>{mul(gy, mask)};
  });
}

Var add_scalar(const Var& a, float s) {
  return Var::make_op("add_scalar", k::add_scalar(a.value(), s), {a},
                      [](const Var& gy) { return std::vector<Var>{gy}; });
}

Var mul_scalar(const Var& a, float s) {
  return Var::make_op("mul_scalar", k::mul_scalar(a.value(), s), {a},
                      [s](const Var& gy) { return std::vector<Var>{mul_scalar(gy, s)}; });
}

Var matmul(const Var& a, const Var& b) {
  return Var::make_op("matmul", k::matmul(a.value(), b.value()), {a, b}, [a, b](const Var& gy) {
    return std::vector<Var>{matmul(gy, transpose(b)), matmul(transpose(a), gy)};
  });
}

Var transpose(const Var& a) {
  return Var::make_op("transpose", k::transpose2d(a.value()), {a},
                      [](const Var& gy) { return std::vector<Var>{transpose(gy)}; });
}

Var reshape(const Var& a, Shape shape) {
  const Shape original = a.shape();
  return Var::make_op("reshape", a.value().reshaped(std::move(shape)), {a},
                      [original](const Var& gy) {
                        return std::vector<Var>{reshape(gy, original)};
                      });
}

Var permute(const Var& a, std::vector<int> dims) {
  std::vector<int> inverse(dims.size());
  for (std::size_t i = 0; i < dims.size(); ++i) {
    inverse[static_cast<std::size_t>(dims[i])] = static_cast<int>(i);
  }
  return Var::make_op("permute", k::permute(a.value(), dims), {a},
                      [inverse](const Var& gy) {
                        return std::vector<Var>{permute(gy, inverse)};
                      });
}

Var im2col(const Var& x, int k, int pad, int stride) {
  const Shape image_shape = x.shape();
  return Var::make_op("im2col", k::im2col(x.value(), k, pad, stride), {x},
                      [image_shape, k, pad, stride](const Var& gy) {
                        return std::vector<Var>{col2im(gy, image_shape, k, pad, stride)};
                      });
}

Var col2im(const Var& cols, Shape image_shape, int k, int pad, int stride) {
  return Var::make_op("col2im", k::col2im(cols.value(), image_shape, k, pad, stride), {cols},
                      [k, pad, stride](const Var& gy) {
                        return std::vector<Var>{im2col(gy, k, pad, stride)};
                      });
}

Var reduce_sum_to(const Var& a, Shape target_shape) {
  if (a.shape() == target_shape) return a;  // no-op; keeps graphs small
  const Shape original = a.shape();
  return Var::make_op("reduce_sum_to", k::reduce_sum_to(a.value(), target_shape), {a},
                      [original](const Var& gy) {
                        return std::vector<Var>{broadcast_to(gy, original)};
                      });
}

Var broadcast_to(const Var& a, Shape shape) {
  if (a.shape() == shape) return a;
  const Shape original = a.shape();
  return Var::make_op("broadcast_to", k::broadcast_to(a.value(), shape), {a},
                      [original](const Var& gy) {
                        return std::vector<Var>{reduce_sum_to(gy, original)};
                      });
}

Var sum_all(const Var& a) { return reduce_sum_to(a, Shape{}); }

Var mean_all(const Var& a) {
  return mul_scalar(sum_all(a), 1.0f / static_cast<float>(a.value().numel()));
}

Var square(const Var& a) { return mul(a, a); }

Var row_max_const(const Var& a) { return Var::constant(k::row_max(a.value())); }

Var log_softmax_rows(const Var& logits) {
  const Var m = row_max_const(logits);            // [N,1], constant
  const Var z = sub(logits, m);                   // broadcast
  const auto n = logits.shape()[0];
  const Var lse = log(reduce_sum_to(exp(z), Shape{n, 1}));
  return sub(z, lse);
}

Var cross_entropy(const Var& logits, const std::vector<int>& labels) {
  const auto num_classes = static_cast<int>(logits.shape()[1]);
  const Var onehot = Var::constant(k::one_hot(labels, num_classes));
  const Var logp = log_softmax_rows(logits);
  const Var picked = sum_all(mul(onehot, logp));
  return mul_scalar(picked, -1.0f / static_cast<float>(labels.size()));
}

Var scalar(float v) { return Var::constant(Tensor::scalar(v)); }

}  // namespace quickdrop::ag
