// Differentiable primitive ops on Var.
//
// Every VJP is expressed in terms of the primitives below (never in terms of
// raw tensor math on detached values, except for genuinely piecewise-constant
// factors such as the ReLU mask), which is what makes higher-order
// differentiation work.
#pragma once

#include <vector>

#include "autograd/var.h"

namespace quickdrop::ag {

/// Elementwise with broadcasting.
Var add(const Var& a, const Var& b);
Var sub(const Var& a, const Var& b);
Var mul(const Var& a, const Var& b);
Var div(const Var& a, const Var& b);

Var neg(const Var& a);
Var exp(const Var& a);
Var log(const Var& a);
Var sqrt(const Var& a);
Var relu(const Var& a);

Var add_scalar(const Var& a, float s);
Var mul_scalar(const Var& a, float s);

/// [M,K] x [K,N] matrix product.
Var matmul(const Var& a, const Var& b);

/// 2-D transpose.
Var transpose(const Var& a);

/// Contiguous reinterpretation to a shape of equal numel.
Var reshape(const Var& a, Shape shape);

/// Axis permutation.
Var permute(const Var& a, std::vector<int> dims);

/// Convolution unfolding (see kernels::im2col); adjoint pair with col2im.
Var im2col(const Var& x, int k, int pad, int stride);
Var col2im(const Var& cols, Shape image_shape, int k, int pad, int stride);

/// Sum down to a broadcast-compatible shape; adjoint pair with broadcast_to.
Var reduce_sum_to(const Var& a, Shape target_shape);
Var broadcast_to(const Var& a, Shape shape);

// ---- Composite helpers (built from primitives; no new VJPs) ----

/// Sum of all elements, as a scalar-shaped Var.
Var sum_all(const Var& a);

/// Mean of all elements.
Var mean_all(const Var& a);

/// Elementwise square.
Var square(const Var& a);

/// Per-row maximum of an [N,C] Var as a *constant* [N,1] Var. The maximum is
/// piecewise constant, so treating it as constant is the standard stable-
/// softmax trick and leaves gradients exact almost everywhere.
Var row_max_const(const Var& a);

/// Row-wise log-softmax of [N,C] logits (numerically stable).
Var log_softmax_rows(const Var& logits);

/// Mean cross-entropy of [N,C] logits against integer labels.
Var cross_entropy(const Var& logits, const std::vector<int>& labels);

/// Scalar constant Var.
Var scalar(float v);

}  // namespace quickdrop::ag
