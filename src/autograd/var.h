// Define-by-run automatic differentiation.
//
// A Var is a handle to a node in a dynamically built computation graph. Every
// primitive op (see ops.h) records a vector-Jacobian-product (VJP) closure
// that is itself expressed in terms of primitive ops, so gradients are
// ordinary graph nodes and can be differentiated again — the engine supports
// arbitrary-order differentiation (PyTorch's `create_graph=True` semantics).
// QuickDrop's gradient-matching distillation relies on this to differentiate
// a distance between parameter gradients with respect to synthetic pixels.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace quickdrop::ag {

class Var;

/// Maps the gradient w.r.t. a node's output to gradients w.r.t. its parents
/// (same order as the parents vector; a default-constructed Var means "no
/// gradient for this parent").
using VjpFn = std::function<std::vector<Var>(const Var& grad_output)>;

namespace detail {
struct Node {
  Tensor value;
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  VjpFn vjp;          // empty for leaves and constants
  const char* op = "";  // op name, for diagnostics
};
}  // namespace detail

/// Handle to a graph node. Cheap to copy; the graph is reference counted and
/// freed when the last handle to it is dropped.
class Var {
 public:
  /// Null handle; defined() is false.
  Var() = default;

  /// Differentiable leaf wrapping the given tensor (storage is shared, so an
  /// optimizer update to the tensor is visible through the Var).
  static Var leaf(Tensor value);

  /// Non-differentiable constant.
  static Var constant(Tensor value);

  [[nodiscard]] bool defined() const { return node_ != nullptr; }
  [[nodiscard]] const Tensor& value() const;

  /// Mutable access to the underlying tensor. Only meaningful for leaves
  /// (parameters updated in place by an optimizer); mutating an op node's
  /// output would silently desynchronize the graph.
  [[nodiscard]] Tensor& mutable_value();
  [[nodiscard]] const Shape& shape() const { return value().shape(); }
  [[nodiscard]] bool requires_grad() const;

  /// A constant view of this value: gradients do not flow past it.
  [[nodiscard]] Var detach() const;

  /// Internal: constructs an op node. Used by ops.cpp.
  static Var make_op(const char* op, Tensor value, std::vector<Var> parents, VjpFn vjp);

  [[nodiscard]] const std::shared_ptr<detail::Node>& node() const { return node_; }

 private:
  explicit Var(std::shared_ptr<detail::Node> node) : node_(std::move(node)) {}
  std::shared_ptr<detail::Node> node_;
};

/// Options for grad().
struct GradOptions {
  /// When true, the returned gradients are themselves differentiable graph
  /// nodes (needed for higher-order derivatives). When false, gradient
  /// chains are cut eagerly to keep memory bounded.
  bool create_graph = false;
};

/// Reverse-mode gradient of a scalar `output` w.r.t. each of `inputs`.
/// Inputs that do not influence the output receive zero gradients of their
/// own shape. Throws std::invalid_argument if output is not a single element.
std::vector<Var> grad(const Var& output, std::span<const Var> inputs,
                      const GradOptions& options = {});

/// Convenience overload.
std::vector<Var> grad(const Var& output, std::initializer_list<Var> inputs,
                      const GradOptions& options = {});

}  // namespace quickdrop::ag
