// Quantized client-update transport.
//
// Clients ship the *delta* between their local state and the round's global
// state, quantized per fixed-size block, instead of the raw fp32 state. The
// server decodes the delta, reconstructs `global + delta`, and aggregation
// proceeds through the existing double accumulator in nn::weighted_average —
// quantization error enters exactly once, at the client→server boundary.
//
// Wire framing (little-endian, rides the v2 state format's conventions):
//   u64 magic ("QDWQ" v1)
//   u64 layout hash   — decode is gated on the receiver's StateLayout hash
//   u8  codec         — Codec enum value
//   u64 total numel   — must equal layout->total()
//   then ceil(numel / kQuantBlock) blocks, each: u8 tag + payload
//     tag 0 kZeroBlock: no payload (every value is 0.0f)
//     tag 1 kInt8Block: f32 scale, then one int8 per element
//                       (value = (float)q * scale, scale = amax / 127)
//     tag 2 kRawBlock:  one f32 per element — used for blocks containing
//                       non-finite values, so corrupted uploads survive the
//                       trip bit-exactly and server-side validation still
//                       quarantines them (and float→int8 conversion of
//                       NaN/Inf, which is UB, never happens)
//     tag 3 kBf16Block: one bf16 (round-to-nearest-even) per element
//
// Everything is deterministic: block boundaries depend only on the element
// count, int8 rounding uses std::lround (half-away-from-zero, independent of
// the runtime rounding mode), and encode/decode never consult the thread
// pool. Encoding the same delta always yields the same bytes.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "nn/state.h"

namespace quickdrop::fl {

/// Update-transport codec. kNone ships raw fp32 states (the pre-quantization
/// behavior); kInt8 ships ~25% of the fp32 bytes, kBf16 ~50%.
enum class Codec : std::uint8_t { kNone = 0, kInt8 = 1, kBf16 = 2 };

/// Client→server transport configuration, threaded from QuickDropConfig
/// through FedAvgConfig/ResilientConfig into the round engine.
struct TransportConfig {
  Codec codec = Codec::kNone;
};

/// "off", "int8" or "bf16" (the --quantize-updates flag vocabulary); throws
/// std::invalid_argument on anything else.
Codec codec_from_string(const std::string& name);
const char* codec_name(Codec codec);

/// Elements per quantization block (each block carries its own tag + scale).
inline constexpr std::int64_t kQuantBlock = 4096;

/// Encodes a client's update delta under `codec`. The delta must be
/// non-empty; kNone is rejected (callers ship the raw state instead).
std::vector<std::uint8_t> encode_delta(const nn::ModelState& delta, Codec codec);

/// Decodes a wire-framed delta against the receiver's layout. Throws
/// nn::StateError on magic/hash/numel mismatch, unknown tags, truncation or
/// trailing bytes — never returns partial state.
nn::ModelState decode_delta(std::span<const std::uint8_t> bytes,
                            const std::shared_ptr<const nn::StateLayout>& layout);

/// Streaming decode: validates the frame exactly like decode_delta, but hands
/// each decoded block to `block_fn(lo, len, values)` (kQuantBlock granularity,
/// in offset order) instead of materializing a whole fp32 state — the shard
/// tree's decode-into-accumulator path runs on O(kQuantBlock) scratch.
/// Zero blocks are delivered as explicit zeros, so reconstructing
/// `global + delta` block by block is bit-identical to axpy over a
/// materialized decode. Frame errors may throw mid-stream, after some blocks
/// were already delivered — callers must treat a throw as "discard the fold".
using DeltaBlockFn = std::function<void(std::int64_t lo, std::int64_t len, const float* values)>;
void decode_delta_blocks(std::span<const std::uint8_t> bytes,
                         const std::shared_ptr<const nn::StateLayout>& layout,
                         const DeltaBlockFn& block_fn);

}  // namespace quickdrop::fl
