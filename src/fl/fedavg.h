// FedAvg round execution — the shared engine for FL training, SGA unlearning
// rounds, recovery rounds, relearning rounds and all baselines.
//
// run_fedavg is a façade over the fault-tolerant engine in fl/resilient.h:
// fault injection, server-side update validation, quorum/retry and
// round-level resume all ride through FedAvgConfig.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "fl/client_update.h"
#include "fl/cost.h"
#include "fl/resilient.h"
#include "nn/state.h"

namespace quickdrop::fl {

/// Configuration of a block of FedAvg rounds.
struct FedAvgConfig {
  int rounds = 1;
  /// Fraction of eligible clients sampled per round (1.0 = all). Clients
  /// with empty datasets are never eligible.
  float participation = 1.0f;
  /// Legacy failure injection: each sampled client independently crashes
  /// with this probability. Convenience knob — when > 0 and `faults` is
  /// empty, it is translated into FaultPlan::bernoulli_crash seeded from the
  /// round RNG. Prefer `faults` for anything richer.
  float dropout_rate = 0.0f;
  /// Deterministic fault schedule (crashes, stragglers, corrupted uploads).
  FaultPlan faults;
  /// Server-side defenses: update validation, quorum/retry policy.
  DefenseConfig defense;
  /// First round index to execute (round-level resume; see
  /// fl/resilient.h and core/checkpoint.h RoundCursor).
  int start_round = 0;
  /// Optional: enables concurrent client execution (see
  /// ResilientConfig::client_model_factory). Empty = serial clients.
  ModelFactory client_model_factory;
  /// Client→server update transport (see ResilientConfig::transport).
  TransportConfig transport;
  /// Shard-tree aggregation topology (see ResilientConfig::aggregation).
  AggregationConfig aggregation;
};

/// Runs `config.rounds` rounds of FedAvg (Algorithm 1's outer loop):
/// each sampled client loads the global state into `model`, applies `update`,
/// and the server aggregates the resulting states weighted by |Z_i|/|Z| over
/// this round's accepted participants. Returns the final global state.
///
/// `model` is scratch storage reused across clients; its parameters are
/// overwritten. `client_data` holds each client's dataset *for this phase*
/// (training data, forget counterparts, retain counterparts, ...).
nn::ModelState run_fedavg(nn::Module& model, nn::ModelState global,
                          const std::vector<data::Dataset>& client_data, ClientUpdate& update,
                          const FedAvgConfig& config, Rng& rng, CostMeter& cost,
                          const RoundCallback& callback = {},
                          const ClientStateCallback& client_callback = {},
                          const RoundCursorCallback& cursor_callback = {});

/// Total samples across client datasets.
std::int64_t total_samples(const std::vector<data::Dataset>& client_data);

}  // namespace quickdrop::fl
