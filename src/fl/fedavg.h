// FedAvg round execution — the shared engine for FL training, SGA unlearning
// rounds, recovery rounds, relearning rounds and all baselines.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "fl/client_update.h"
#include "fl/cost.h"
#include "nn/state.h"

namespace quickdrop::fl {

/// Builds a fresh model of the experiment's architecture. Parameter values do
/// not matter — the runner immediately loads a state — but shapes must match.
using ModelFactory = std::function<std::unique_ptr<nn::Module>()>;

/// Invoked after each aggregation with the round index and new global state.
using RoundCallback = std::function<void(int round, const nn::ModelState& state)>;

/// Invoked after each client's local update with the client's resulting local
/// state and the global state it started from. FedEraser uses this to record
/// historical parameter updates during training.
using ClientStateCallback = std::function<void(int round, int client,
                                               const nn::ModelState& local_state,
                                               const nn::ModelState& global_before)>;

/// Configuration of a block of FedAvg rounds.
struct FedAvgConfig {
  int rounds = 1;
  /// Fraction of eligible clients sampled per round (1.0 = all). Clients
  /// with empty datasets are never eligible.
  float participation = 1.0f;
  /// Failure injection: each sampled client independently drops out of the
  /// round with this probability (straggler/crash simulation). The server
  /// aggregates over survivors; if the whole cohort fails, the round is a
  /// no-op (the global state carries over).
  float dropout_rate = 0.0f;
};

/// Runs `config.rounds` rounds of FedAvg (Algorithm 1's outer loop):
/// each sampled client loads the global state into `model`, applies `update`,
/// and the server aggregates the resulting states weighted by |Z_i|/|Z| over
/// this round's participants. Returns the final global state.
///
/// `model` is scratch storage reused across clients; its parameters are
/// overwritten. `client_data` holds each client's dataset *for this phase*
/// (training data, forget counterparts, retain counterparts, ...).
nn::ModelState run_fedavg(nn::Module& model, nn::ModelState global,
                          const std::vector<data::Dataset>& client_data, ClientUpdate& update,
                          const FedAvgConfig& config, Rng& rng, CostMeter& cost,
                          const RoundCallback& callback = {},
                          const ClientStateCallback& client_callback = {});

/// Total samples across client datasets.
std::int64_t total_samples(const std::vector<data::Dataset>& client_data);

}  // namespace quickdrop::fl
