#include "fl/quantize.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace quickdrop::fl {
namespace {

constexpr std::uint64_t kWireMagicV1 = 0x5144'5751'0000'0001ULL;  // "QDWQ" v1

constexpr std::uint8_t kZeroBlock = 0;
constexpr std::uint8_t kInt8Block = 1;
constexpr std::uint8_t kRawBlock = 2;
constexpr std::uint8_t kBf16Block = 3;

void put_u64(std::vector<std::uint8_t>& bytes, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f32(std::vector<std::uint8_t>& bytes, float v) {
  const auto bits = std::bit_cast<std::uint32_t>(v);
  for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
}

/// bf16 with round-to-nearest-even truncation of the low 16 mantissa bits.
/// Callers only pass finite values (non-finite blocks go through kRawBlock),
/// so the carry can at most round a near-FLT_MAX value up to infinity —
/// which decodes as non-finite and is quarantined like any exploded update.
std::uint16_t to_bf16(float v) {
  std::uint32_t bits = std::bit_cast<std::uint32_t>(v);
  bits += 0x7FFFu + ((bits >> 16) & 1u);
  return static_cast<std::uint16_t>(bits >> 16);
}

float from_bf16(std::uint16_t h) {
  return std::bit_cast<float>(static_cast<std::uint32_t>(h) << 16);
}

/// Per-block scan: largest absolute value, and whether every value is finite.
struct BlockStats {
  float amax = 0.0f;
  bool finite = true;
};

BlockStats scan_block(const float* x, std::int64_t n) {
  BlockStats s;
  for (std::int64_t i = 0; i < n; ++i) {
    if (!std::isfinite(x[i])) {
      s.finite = false;
      return s;
    }
    s.amax = std::max(s.amax, std::fabs(x[i]));
  }
  return s;
}

struct WireReader {
  std::span<const std::uint8_t> bytes;
  std::size_t pos = 0;

  [[noreturn]] static void fail(const char* what) {
    throw nn::StateError(std::string("decode_delta: ") + what);
  }

  std::uint8_t u8(const char* what) {
    if (pos + 1 > bytes.size()) fail(what);
    return bytes[pos++];
  }

  std::uint64_t u64(const char* what) {
    if (pos + 8 > bytes.size()) fail(what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(bytes[pos + static_cast<std::size_t>(i)]) << (8 * i);
    }
    pos += 8;
    return v;
  }

  float f32(const char* what) {
    if (pos + 4 > bytes.size()) fail(what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes[pos + static_cast<std::size_t>(i)]) << (8 * i);
    }
    pos += 4;
    return std::bit_cast<float>(v);
  }

  std::span<const std::uint8_t> raw(std::size_t n, const char* what) {
    if (pos + n > bytes.size()) fail(what);
    const auto out = bytes.subspan(pos, n);
    pos += n;
    return out;
  }
};

}  // namespace

Codec codec_from_string(const std::string& name) {
  if (name == "off" || name == "none") return Codec::kNone;
  if (name == "int8") return Codec::kInt8;
  if (name == "bf16") return Codec::kBf16;
  throw std::invalid_argument("unknown update codec '" + name + "' (off|int8|bf16)");
}

const char* codec_name(Codec codec) {
  switch (codec) {
    case Codec::kNone: return "off";
    case Codec::kInt8: return "int8";
    case Codec::kBf16: return "bf16";
  }
  throw std::invalid_argument("codec_name: unknown codec");
}

std::vector<std::uint8_t> encode_delta(const nn::ModelState& delta, Codec codec) {
  if (delta.empty()) throw std::invalid_argument("encode_delta: empty state");
  if (codec == Codec::kNone) {
    throw std::invalid_argument("encode_delta: kNone ships raw states, not wire frames");
  }
  const auto d = delta.data();
  const std::int64_t n = delta.numel();
  std::vector<std::uint8_t> bytes;
  // Worst case is every block raw: header + per-block tag + fp32 payload.
  bytes.reserve(static_cast<std::size_t>(25 + n / kQuantBlock + 1 + n * 4));
  put_u64(bytes, kWireMagicV1);
  put_u64(bytes, delta.layout()->hash());
  bytes.push_back(static_cast<std::uint8_t>(codec));
  put_u64(bytes, static_cast<std::uint64_t>(n));

  for (std::int64_t lo = 0; lo < n; lo += kQuantBlock) {
    const std::int64_t len = std::min(n - lo, kQuantBlock);
    const float* x = d.data() + lo;
    const BlockStats stats = scan_block(x, len);
    if (!stats.finite) {
      // Ship the block bit-exactly: server-side validation must still see
      // the corruption, and float→int8 conversion of NaN/Inf is UB.
      bytes.push_back(kRawBlock);
      for (std::int64_t i = 0; i < len; ++i) put_f32(bytes, x[i]);
      continue;
    }
    // Exact sentinel: amax is a max of absolute values, 0.0f iff every input
    // is exactly ±0. NOLINTNEXTLINE(qdlint-num-float-eq)
    if (stats.amax == 0.0f) {
      bytes.push_back(kZeroBlock);
      continue;
    }
    if (codec == Codec::kBf16) {
      bytes.push_back(kBf16Block);
      for (std::int64_t i = 0; i < len; ++i) {
        const std::uint16_t h = to_bf16(x[i]);
        bytes.push_back(static_cast<std::uint8_t>(h & 0xFFu));
        bytes.push_back(static_cast<std::uint8_t>(h >> 8));
      }
      continue;
    }
    // int8: symmetric per-block scale. std::lround is half-away-from-zero
    // regardless of the runtime rounding mode, so encoding is deterministic.
    const float scale = stats.amax / 127.0f;
    const double inv = 1.0 / static_cast<double>(scale);
    bytes.push_back(kInt8Block);
    put_f32(bytes, scale);
    for (std::int64_t i = 0; i < len; ++i) {
      const long q = std::lround(static_cast<double>(x[i]) * inv);
      const long clamped = std::clamp(q, -127L, 127L);
      bytes.push_back(static_cast<std::uint8_t>(static_cast<std::int8_t>(clamped)));
    }
  }
  return bytes;
}

void decode_delta_blocks(std::span<const std::uint8_t> bytes,
                         const std::shared_ptr<const nn::StateLayout>& layout,
                         const DeltaBlockFn& block_fn) {
  if (!layout) throw nn::StateError("decode_delta: null layout");
  WireReader r{bytes};
  if (r.u64("magic") != kWireMagicV1) WireReader::fail("bad magic");
  if (r.u64("layout hash") != layout->hash()) WireReader::fail("layout hash mismatch");
  const auto codec = r.u8("codec");
  if (codec != static_cast<std::uint8_t>(Codec::kInt8) &&
      codec != static_cast<std::uint8_t>(Codec::kBf16)) {
    WireReader::fail("unknown codec");
  }
  const auto numel = r.u64("total numel");
  if (numel != static_cast<std::uint64_t>(layout->total())) {
    WireReader::fail("numel does not match layout");
  }
  const auto n = static_cast<std::int64_t>(numel);
  std::vector<float> scratch(static_cast<std::size_t>(std::min(n, kQuantBlock)));
  for (std::int64_t lo = 0; lo < n; lo += kQuantBlock) {
    const std::int64_t len = std::min(n - lo, kQuantBlock);
    float* out = scratch.data();
    const std::uint8_t tag = r.u8("block tag");
    switch (tag) {
      case kZeroBlock:
        std::fill(out, out + len, 0.0f);
        break;
      case kRawBlock: {
        const auto payload = r.raw(static_cast<std::size_t>(len) * 4, "raw payload");
        std::memcpy(out, payload.data(), payload.size());
        break;
      }
      case kBf16Block: {
        const auto payload = r.raw(static_cast<std::size_t>(len) * 2, "bf16 payload");
        for (std::int64_t i = 0; i < len; ++i) {
          const auto u = static_cast<std::size_t>(i) * 2;
          out[i] = from_bf16(static_cast<std::uint16_t>(
              payload[u] | (static_cast<std::uint16_t>(payload[u + 1]) << 8)));
        }
        break;
      }
      case kInt8Block: {
        const float scale = r.f32("int8 scale");
        if (!std::isfinite(scale) || scale <= 0.0f) WireReader::fail("bad int8 scale");
        const auto payload = r.raw(static_cast<std::size_t>(len), "int8 payload");
        for (std::int64_t i = 0; i < len; ++i) {
          const auto q = static_cast<std::int8_t>(payload[static_cast<std::size_t>(i)]);
          out[i] = static_cast<float>(q) * scale;
        }
        break;
      }
      default:
        WireReader::fail("unknown block tag");
    }
    block_fn(lo, len, out);
  }
  if (r.pos != bytes.size()) WireReader::fail("trailing bytes");
}

nn::ModelState decode_delta(std::span<const std::uint8_t> bytes,
                            const std::shared_ptr<const nn::StateLayout>& layout) {
  if (!layout) throw nn::StateError("decode_delta: null layout");
  std::vector<float> values(static_cast<std::size_t>(layout->total()), 0.0f);
  decode_delta_blocks(bytes, layout, [&](std::int64_t lo, std::int64_t len, const float* vals) {
    std::memcpy(values.data() + lo, vals, static_cast<std::size_t>(len) * sizeof(float));
  });
  return {layout, std::move(values)};
}

}  // namespace quickdrop::fl
