#include "fl/shard_tree.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "tensor/simd.h"

namespace quickdrop::fl {

namespace {

void check_layout(const nn::StateAccumulator& acc, const nn::ModelState& state,
                  const char* context) {
  if (state.layout() == acc.layout()) return;
  if (state.layout() && acc.layout() && state.layout()->hash() == acc.layout()->hash()) return;
  throw nn::StateError(std::string(context) + ": state layout mismatch");
}

}  // namespace

void AggregationConfig::validate() const {
  if (shards < 1 || shards > nn::StateAccumulator::kLanes || (shards & (shards - 1)) != 0) {
    throw std::invalid_argument("aggregation: shards must be a power of two in [1, " +
                                std::to_string(nn::StateAccumulator::kLanes) + "], got " +
                                std::to_string(shards));
  }
  if (fanout < 2 || fanout > 64) {
    throw std::invalid_argument("aggregation: shard fanout must be in [2, 64], got " +
                                std::to_string(fanout));
  }
}

ShardTree::ShardTree(std::shared_ptr<const nn::StateLayout> layout, AggregationConfig config)
    : config_(config), acc_(std::move(layout), nn::StateAccumulator::kLanes) {
  config_.validate();
  shard_folds_.assign(static_cast<std::size_t>(config_.shards), 0);
  scratch_.assign(static_cast<std::size_t>(nn::kStateBlock), 0.0f);
}

int ShardTree::lane_of(int client_id) {
  // splitmix64 finalizer over the (widened) id: well-mixed low bits, stable
  // across shard counts, platforms and rounds.
  std::uint64_t x = static_cast<std::uint32_t>(client_id);
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return static_cast<int>(x & (nn::StateAccumulator::kLanes - 1));
}

int ShardTree::shard_of(int client_id) const {
  return lane_of(client_id) * config_.shards / nn::StateAccumulator::kLanes;
}

void ShardTree::fold(int client_id, const nn::ModelState& state, double weight) {
  acc_.fold(state, weight, lane_of(client_id));
  ++shard_folds_[static_cast<std::size_t>(shard_of(client_id))];
  ++folds_;
}

ShardTree::WireProbe ShardTree::probe_quantized(std::span<const std::uint8_t> wire,
                                                const nn::ModelState& global) {
  check_layout(acc_, global, "ShardTree::probe_quantized");
  const auto gd = global.data();
  const auto& bounds = acc_.layout()->block_bounds();
  const auto& kern = simd::active();
  WireProbe probe;
  probe.finite = true;
  double sum = 0.0;    // per-state-block partials, combined in block order
  std::size_t b = 0;   // current state block
  decode_delta_blocks(wire, global.layout(), [&](std::int64_t lo, std::int64_t len,
                                                 const float* vals) {
    // Reconstruct global + delta for this wire block inside the enclosing
    // state block's scratch slot. Per element this is the exact chain the
    // buffered path runs (copy global, then axpy with a = 1.0f).
    float* s = scratch_.data() + (lo - bounds[b]);
    std::memcpy(s, gd.data() + lo, static_cast<std::size_t>(len) * sizeof(float));
    kern.axpy(s, vals, 1.0f, len);
    if (lo + len == bounds[b + 1]) {  // state block complete: flush its stats
      const std::int64_t blen = bounds[b + 1] - bounds[b];
      if (probe.finite) {
        for (std::int64_t i = 0; i < blen; ++i) {
          if (!std::isfinite(scratch_[static_cast<std::size_t>(i)])) {
            probe.finite = false;
            break;
          }
        }
      }
      sum += kern.sum_squared_diff(scratch_.data(), gd.data() + bounds[b], blen);
      ++b;
    }
  });
  probe.norm = std::sqrt(sum);
  return probe;
}

void ShardTree::fold_quantized(int client_id, std::span<const std::uint8_t> wire,
                               const nn::ModelState& global, double weight) {
  check_layout(acc_, global, "ShardTree::fold_quantized");
  const int lane = lane_of(client_id);
  const auto gd = global.data();
  const auto& kern = simd::active();
  decode_delta_blocks(wire, global.layout(), [&](std::int64_t lo, std::int64_t len,
                                                 const float* vals) {
    float* s = scratch_.data();
    std::memcpy(s, gd.data() + lo, static_cast<std::size_t>(len) * sizeof(float));
    kern.axpy(s, vals, 1.0f, len);
    acc_.fold_range(lane, lo, s, len, weight);
  });
  ++shard_folds_[static_cast<std::size_t>(shard_of(client_id))];
  ++folds_;
}

nn::ModelState ShardTree::finalize(double scale) { return acc_.finalize_scaled(scale); }

void ShardTree::reset() {
  acc_.reset();
  std::fill(shard_folds_.begin(), shard_folds_.end(), 0);
  folds_ = 0;
}

int ShardTree::levels() const {
  int hops = 0;
  std::int64_t reach = 1;
  while (reach < config_.shards) {
    reach *= config_.fanout;
    ++hops;
  }
  return 1 + hops;
}

std::int64_t ShardTree::shard_folds(int shard) const {
  if (shard < 0 || shard >= config_.shards) {
    throw std::invalid_argument("ShardTree::shard_folds: shard out of range");
  }
  return shard_folds_[static_cast<std::size_t>(shard)];
}

std::int64_t ShardTree::memory_bytes() const {
  return acc_.memory_bytes() +
         static_cast<std::int64_t>(scratch_.size() * sizeof(float));
}

}  // namespace quickdrop::fl
