#include "fl/client_update.h"

#include <stdexcept>

namespace quickdrop::fl {

SgdLocalUpdate::SgdLocalUpdate(int local_steps, int batch_size, float learning_rate,
                               nn::UpdateDirection direction)
    : local_steps_(local_steps),
      batch_size_(batch_size),
      learning_rate_(learning_rate),
      direction_(direction) {
  if (local_steps <= 0 || batch_size <= 0 || learning_rate <= 0.0f) {
    throw std::invalid_argument("SgdLocalUpdate: bad hyperparameters");
  }
}

float sgd_step_on_batch(nn::Module& model, const Tensor& images, const std::vector<int>& labels,
                        float learning_rate, nn::UpdateDirection direction, CostMeter& cost) {
  const auto params = model.parameters();
  const ag::Var logits = model.forward_tensor(images);
  const ag::Var loss = ag::cross_entropy(logits, labels);
  const auto grads = ag::grad(loss, std::span<const ag::Var>(params));
  nn::Sgd optimizer(params, learning_rate);
  optimizer.step(grads, direction);
  cost.add_training(static_cast<std::int64_t>(labels.size()));
  return loss.value().item();
}

FedProxLocalUpdate::FedProxLocalUpdate(int local_steps, int batch_size, float learning_rate,
                                       float mu)
    : local_steps_(local_steps),
      batch_size_(batch_size),
      learning_rate_(learning_rate),
      mu_(mu) {
  if (local_steps <= 0 || batch_size <= 0 || learning_rate <= 0.0f || mu < 0.0f) {
    throw std::invalid_argument("FedProxLocalUpdate: bad hyperparameters");
  }
}

void FedProxLocalUpdate::run(nn::Module& model, const data::Dataset& dataset, int round,
                             int client_id, Rng& rng, CostMeter& cost) {
  (void)round;
  (void)client_id;
  if (dataset.empty()) return;
  const auto params = model.parameters();
  // Anchor: the global state the client started this round from.
  // NOLINTNEXTLINE(qdlint-api-flatstate): per-parameter proximal anchor for the FedProx term
  std::vector<Tensor> anchor;
  anchor.reserve(params.size());
  for (const auto& p : params) anchor.push_back(p.value().clone());

  std::vector<int> pool(static_cast<std::size_t>(dataset.size()));
  for (int i = 0; i < dataset.size(); ++i) pool[static_cast<std::size_t>(i)] = i;
  nn::Sgd optimizer(params, learning_rate_);
  for (int t = 0; t < local_steps_; ++t) {
    const auto rows = data::Dataset::sample_batch_indices(pool, batch_size_, rng);
    auto [images, labels] = dataset.batch(rows);
    const ag::Var loss = ag::cross_entropy(model.forward_tensor(images), labels);
    const auto grads = ag::grad(loss, std::span<const ag::Var>(params));
    cost.add_training(static_cast<std::int64_t>(labels.size()));
    // g + mu * (w - w_global), applied as one descent step.
    // NOLINTNEXTLINE(qdlint-api-flatstate): adjusted gradient list for Sgd::step_tensors
    std::vector<Tensor> adjusted;
    adjusted.reserve(grads.size());
    for (std::size_t i = 0; i < grads.size(); ++i) {
      Tensor g = grads[i].value().clone();
      g.add_(params[i].value(), mu_);
      g.add_(anchor[i], -mu_);
      adjusted.push_back(std::move(g));
    }
    optimizer.step_tensors(adjusted, nn::UpdateDirection::kDescent);
  }
}

void SgdLocalUpdate::run(nn::Module& model, const data::Dataset& dataset, int round,
                         int client_id, Rng& rng, CostMeter& cost) {
  (void)round;
  (void)client_id;
  if (dataset.empty()) return;
  std::vector<int> pool(static_cast<std::size_t>(dataset.size()));
  for (int i = 0; i < dataset.size(); ++i) pool[static_cast<std::size_t>(i)] = i;
  for (int t = 0; t < local_steps_; ++t) {
    const auto rows = data::Dataset::sample_batch_indices(pool, batch_size_, rng);
    auto [images, labels] = dataset.batch(rows);
    sgd_step_on_batch(model, images, labels, learning_rate_, direction_, cost);
  }
}

}  // namespace quickdrop::fl
