// Sharded hierarchical aggregation: leaf shards → regional aggregators → root.
//
// The resilient round engine used to materialize every cohort update and
// merge with nn::weighted_average — O(cohort × params) server memory. The
// ShardTree is the streaming replacement: every arriving update is folded
// immediately into a per-lane double accumulator (nn/state_accumulator.h) and
// discarded, so a round's peak server memory is O(params), independent of
// cohort size.
//
// Topology and determinism:
//
//   * Clients map to one of the 64 canonical leaf lanes by an id hash
//     (lane_of — splitmix64 finalizer, independent of shard count), and lanes
//     group into `shards` aligned, contiguous runs of 64/shards lanes
//     (shard_of). Because a power-of-two shard count owns aligned subtrees of
//     the accumulator's fixed binary combine tree, the root merge performs
//     the exact same per-element double-add tree for ANY --shards setting:
//     the shard knob re-partitions *ownership and accounting*, never result
//     bits.
//   * Within a lane, updates fold in arrival order. The engine delivers
//     accepted updates in cohort order (deterministic per round seed), so the
//     fold order — and therefore the merged bits — is identical whether the
//     engine streams update-by-update or buffers the whole cohort first, at
//     any thread count.
//   * `fanout` configures the simulated regional-aggregator topology above
//     the shards (levels(), per-shard accounting for the scale bench); like
//     `shards` it never changes bits.
//
// Quantized transport decodes *directly into* the accumulator:
// probe_quantized streams the wire frame through fl/quantize's block decoder,
// reconstructs `global + delta` one block at a time in O(kStateBlock) scratch
// and reports the validation stats (finiteness, update norm — bitwise equal
// to all_finite/l2_distance over a materialized decode); fold_quantized
// re-streams the frame and folds the reconstruction. Callers MUST probe (or
// otherwise fully validate the frame) before folding: probe throws
// nn::StateError on malformed frames without touching the accumulator,
// whereas a mid-stream decode failure inside fold_quantized would leave the
// lane partially folded.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "fl/quantize.h"
#include "nn/state_accumulator.h"

namespace quickdrop::fl {

/// Shard-tree topology, threaded from the CLI (--shards / --shard-fanout)
/// through QuickDropConfig/FedAvgConfig/ResilientConfig into the engine.
struct AggregationConfig {
  /// Leaf shard count. Must be a power of two in [1, 64] so every shard owns
  /// an aligned subtree of the canonical 64-lane combine (see header).
  int shards = 1;
  /// Regional-aggregator fanout above the shards, in [2, 64]. Topology /
  /// accounting only — never changes result bits.
  int fanout = 8;

  /// Throws std::invalid_argument on an unsupported topology.
  void validate() const;
};

class ShardTree {
 public:
  ShardTree(std::shared_ptr<const nn::StateLayout> layout, AggregationConfig config);

  /// Deterministic client → leaf lane assignment (id hash into [0, 64);
  /// independent of shard count).
  static int lane_of(int client_id);
  /// The shard owning a client's lane: aligned runs of 64/shards lanes.
  [[nodiscard]] int shard_of(int client_id) const;

  /// Folds one raw fp32 update and forgets it: acc += weight * state.
  void fold(int client_id, const nn::ModelState& state, double weight);

  /// Validation stats of a quantized frame's reconstruction `global + delta`
  /// without materializing it. `finite` matches nn::all_finite over the
  /// reconstruction; `norm` matches nn::l2_distance(reconstruction, global)
  /// bit-for-bit. Throws nn::StateError on a malformed frame (the engine's
  /// quarantine path) — the accumulator is untouched either way.
  struct WireProbe {
    bool finite = false;
    double norm = 0.0;
  };
  WireProbe probe_quantized(std::span<const std::uint8_t> wire, const nn::ModelState& global);

  /// Decodes the frame again and folds the reconstruction block-by-block into
  /// the client's lane, O(kQuantBlock) scratch. The frame must have passed
  /// probe_quantized (see header).
  void fold_quantized(int client_id, std::span<const std::uint8_t> wire,
                      const nn::ModelState& global, double weight);

  /// Root merge: collapses shards through the fixed combine tree and scales,
  /// o[i] = (float)(acc[i] * scale) — the engine passes 1 / total_weight.
  /// Fold again only after reset().
  nn::ModelState finalize(double scale);

  /// Re-arms the tree for the next round; lane allocations are kept.
  void reset();

  [[nodiscard]] const AggregationConfig& config() const { return config_; }
  /// Aggregation hops client → root: 1 (leaf → shard) + shard → root hops
  /// through `fanout`-ary regional aggregators.
  [[nodiscard]] int levels() const;
  /// Updates folded since reset(), total and per shard.
  [[nodiscard]] std::int64_t folds() const { return folds_; }
  [[nodiscard]] std::int64_t shard_folds(int shard) const;
  /// Accumulator + scratch bytes — the scale bench's peak-memory accounting.
  [[nodiscard]] std::int64_t memory_bytes() const;

 private:
  AggregationConfig config_;
  nn::StateAccumulator acc_;
  std::vector<std::int64_t> shard_folds_;
  std::vector<float> scratch_;  ///< kStateBlock reconstruction scratch
  std::int64_t folds_ = 0;
};

}  // namespace quickdrop::fl
