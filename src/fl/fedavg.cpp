#include "fl/fedavg.h"

#include <stdexcept>

namespace quickdrop::fl {

nn::ModelState run_fedavg(nn::Module& model, nn::ModelState global,
                          const std::vector<data::Dataset>& client_data, ClientUpdate& update,
                          const FedAvgConfig& config, Rng& rng, CostMeter& cost,
                          const RoundCallback& callback,
                          const ClientStateCallback& client_callback) {
  if (config.rounds < 0 || config.participation <= 0.0f || config.participation > 1.0f ||
      config.dropout_rate < 0.0f || config.dropout_rate >= 1.0f) {
    throw std::invalid_argument("run_fedavg: bad config");
  }
  std::vector<int> eligible;
  for (std::size_t i = 0; i < client_data.size(); ++i) {
    if (!client_data[i].empty()) eligible.push_back(static_cast<int>(i));
  }
  if (eligible.empty()) throw std::invalid_argument("run_fedavg: no client has data");

  for (int round = 0; round < config.rounds; ++round) {
    // Sample this round's cohort.
    std::vector<int> cohort = eligible;
    if (config.participation < 1.0f) {
      const int k = std::max(1, static_cast<int>(static_cast<float>(eligible.size()) *
                                                 config.participation));
      const auto picks = rng.sample_without_replacement(static_cast<int>(eligible.size()), k);
      cohort.clear();
      for (const int p : picks) cohort.push_back(eligible[static_cast<std::size_t>(p)]);
    }

    // Failure injection: survivors only.
    if (config.dropout_rate > 0.0f) {
      std::vector<int> survivors;
      for (const int c : cohort) {
        if (rng.uniform() >= config.dropout_rate) survivors.push_back(c);
      }
      cohort = std::move(survivors);
      if (cohort.empty()) {  // everyone crashed: the round is lost
        ++cost.rounds;
        if (callback) callback(round, global);
        continue;
      }
    }

    std::int64_t cohort_samples = 0;
    for (const int c : cohort) cohort_samples += client_data[static_cast<std::size_t>(c)].size();

    std::vector<nn::ModelState> states;
    std::vector<float> weights;
    states.reserve(cohort.size());
    for (const int c : cohort) {
      nn::load_state(model, global);
      Rng client_rng = rng.split(static_cast<std::uint64_t>(round) * 100003ULL +
                                 static_cast<std::uint64_t>(c));
      update.run(model, client_data[static_cast<std::size_t>(c)], round, c, client_rng, cost);
      states.push_back(nn::state_of(model));
      cost.add_exchange(nn::state_bytes(states.back()), nn::state_bytes(global));
      if (client_callback) client_callback(round, c, states.back(), global);
      weights.push_back(static_cast<float>(client_data[static_cast<std::size_t>(c)].size()) /
                        static_cast<float>(cohort_samples));
    }
    global = nn::weighted_average(states, weights);
    ++cost.rounds;
    if (callback) callback(round, global);
  }
  return global;
}

std::int64_t total_samples(const std::vector<data::Dataset>& client_data) {
  std::int64_t n = 0;
  for (const auto& d : client_data) n += d.size();
  return n;
}

}  // namespace quickdrop::fl
