#include "fl/fedavg.h"

#include <cmath>
#include <stdexcept>

namespace quickdrop::fl {

nn::ModelState run_fedavg(nn::Module& model, nn::ModelState global,
                          const std::vector<data::Dataset>& client_data, ClientUpdate& update,
                          const FedAvgConfig& config, Rng& rng, CostMeter& cost,
                          const RoundCallback& callback,
                          const ClientStateCallback& client_callback,
                          const RoundCursorCallback& cursor_callback) {
  // NaN fails every comparison, so explicit isfinite guards are required on
  // top of the range checks.
  if (config.rounds < 0 || !std::isfinite(config.participation) ||
      config.participation <= 0.0f || config.participation > 1.0f ||
      !std::isfinite(config.dropout_rate) || config.dropout_rate < 0.0f ||
      config.dropout_rate >= 1.0f) {
    throw std::invalid_argument("run_fedavg: bad config");
  }
  ResilientConfig resilient;
  resilient.rounds = config.rounds;
  resilient.participation = config.participation;
  resilient.faults = config.faults;
  resilient.defense = config.defense;
  resilient.start_round = config.start_round;
  resilient.client_model_factory = config.client_model_factory;
  resilient.transport = config.transport;
  resilient.aggregation = config.aggregation;
  if (config.dropout_rate > 0.0f && !config.faults.any()) {
    resilient.faults = FaultPlan::bernoulli_crash(rng.next_u64(), config.dropout_rate);
  }
  return run_resilient(model, std::move(global), client_data, update, resilient, rng, cost,
                       callback, client_callback, cursor_callback);
}

std::int64_t total_samples(const std::vector<data::Dataset>& client_data) {
  std::int64_t n = 0;
  for (const auto& d : client_data) n += d.size();
  return n;
}

}  // namespace quickdrop::fl
