// Fault-tolerant federation round engine.
//
// Executes blocks of FedAvg-style rounds while surviving the fault model of
// fl/faults.h: crashed clients are skipped, stragglers' late uploads are
// discarded, and corrupted uploads are quarantined by a server-side
// validation pass (finiteness + norm-outlier checks). A quorum policy can
// retry a round with fresh sampling when too few valid updates arrive, with
// exponential-backoff accounting. The aggregated global state is guaranteed
// all-finite every round. Round-level resume is supported via `start_round`
// plus a per-round cursor callback that exposes the engine RNG for
// checkpointing (see core/checkpoint.h RoundCursor).
//
// Aggregation streams through the fl/shard_tree.h hierarchical accumulator:
// with no norm-outlier rule configured, accepted updates fold into per-lane
// double accumulators wave-by-wave and are discarded, so a round's peak
// server memory is O(params) regardless of cohort size (DESIGN.md §16).
//
// fl/fedavg.h::run_fedavg is a thin façade over this engine.
#pragma once

#include <functional>

#include "data/dataset.h"
#include "fl/client_update.h"
#include "fl/cost.h"
#include "fl/faults.h"
#include "fl/quantize.h"
#include "fl/shard_tree.h"
#include "nn/state.h"

namespace quickdrop::fl {

/// Invoked after each aggregation with the round index and new global state.
using RoundCallback = std::function<void(int round, const nn::ModelState& state)>;

/// Invoked after each client's local update with the client's resulting local
/// state and the global state it started from. Only fires for updates that
/// passed server-side validation (a quarantined upload must not leak into
/// e.g. FedEraser's historical record). FedEraser uses this to record
/// historical parameter updates during training.
using ClientStateCallback = std::function<void(int round, int client,
                                               const nn::ModelState& local_state,
                                               const nn::ModelState& global_before)>;

/// Invoked after every *completed* round (aggregated or lost) with the new
/// global state and the engine RNG as it stands entering the next round.
/// Serializing (state, rng) yields a cursor from which the run can be resumed
/// bit-identically via `ResilientConfig::start_round`.
using RoundCursorCallback =
    std::function<void(int completed_round, const nn::ModelState& state, const Rng& rng)>;

/// Configuration of a block of resilient rounds.
struct ResilientConfig {
  int rounds = 1;
  /// Fraction of eligible clients sampled per round (1.0 = all). Clients
  /// with empty datasets are never eligible.
  float participation = 1.0f;
  /// Fault schedule (default: none).
  FaultPlan faults;
  /// Server-side defenses (default: finiteness validation only, one attempt
  /// per round, no quorum).
  DefenseConfig defense;
  /// First round index to execute (resume support): rounds
  /// [start_round, rounds) run. The caller must supply the global state and
  /// RNG captured by the cursor of round start_round - 1.
  int start_round = 0;
  /// Optional: enables concurrent client execution. When set and the global
  /// thread pool has more than one thread, each round's sampled clients run
  /// in parallel on per-worker scratch models built by this factory (called
  /// serially from the engine thread; the models' initial parameter values
  /// are irrelevant — every client loads the global state first). Results
  /// are bit-identical to the serial path at any thread count: per-client
  /// randomness is tag-split from (round, client), per-client costs are
  /// merged in cohort order, and validation + aggregation stay serial in
  /// fixed client-index order. When empty (default), clients run serially
  /// on the caller's scratch model.
  ModelFactory client_model_factory;
  /// Client→server update transport. With a quantizing codec, each client
  /// ships its encoded state delta (see fl/quantize.h) instead of the raw
  /// fp32 state; the server decodes and reconstructs `global + delta` before
  /// validation, and a delta that fails to decode is quarantined like a
  /// corrupted upload. Uploaded-byte accounting reflects the wire size.
  TransportConfig transport;
  /// Shard-tree aggregation topology (fl/shard_tree.h). Every accepted update
  /// folds through the canonical 64-lane streaming accumulator regardless of
  /// the shard count, so the merged bits are identical for any
  /// shards/fanout setting; the knobs re-partition ownership + accounting.
  /// When the defense has no norm-outlier rule (the only validation that
  /// needs the whole cohort's norms at once), the engine streams: each
  /// accepted update is folded and discarded wave-by-wave, holding O(params)
  /// server memory instead of the whole cohort. With the outlier rule on it
  /// buffers deliveries as before — both modes fold in cohort order and
  /// produce bit-identical globals for the same accepted set.
  AggregationConfig aggregation;
};

/// Runs rounds [config.start_round, config.rounds) of fault-tolerant FedAvg:
/// each sampled client loads the global state into `model`, applies `update`,
/// and the server validates + aggregates surviving states weighted by
/// |Z_i|/|Z| over accepted participants. A round with no acceptable update
/// after all attempts is lost (the global state carries over). Returns the
/// final global state, which is always all-finite.
///
/// `model` is scratch storage reused across clients; its parameters are
/// overwritten.
nn::ModelState run_resilient(nn::Module& model, nn::ModelState global,
                             const std::vector<data::Dataset>& client_data, ClientUpdate& update,
                             const ResilientConfig& config, Rng& rng, CostMeter& cost,
                             const RoundCallback& callback = {},
                             const ClientStateCallback& client_callback = {},
                             const RoundCursorCallback& cursor_callback = {});

}  // namespace quickdrop::fl
