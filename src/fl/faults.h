// Deterministic fault injection for the federation runtime.
//
// Real FL deployments lose clients to crashes and stragglers and receive
// corrupted uploads (NaN/Inf tensors, exploded norms, stale parameters).
// A FaultPlan decides, purely from its seed, which fault (if any) strikes a
// given (round, attempt, client) triple — so a whole fault scenario is
// reproducible bit-for-bit from one integer, independent of execution order.
// DefenseConfig describes the server-side countermeasures the resilient
// engine (fl/resilient.h) applies against them.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "nn/state.h"
#include "util/rng.h"

namespace quickdrop::fl {

/// What happens to one client in one round attempt.
enum class FaultKind {
  kNone = 0,
  /// Client crashes before doing any work; the server never hears from it.
  kCrash,
  /// Client finishes its local update but misses the simulated round
  /// deadline; the server discards the late upload.
  kStraggler,
  /// Upload arrives with NaN entries (diverged local training, bad memory).
  kCorruptNan,
  /// Upload arrives with Inf entries.
  kCorruptInf,
  /// Upload arrives finite but with a pathologically exploded norm.
  kExplodedNorm,
  /// Client echoes the parameters it started the round with instead of its
  /// trained state (stale cache / skipped work). Finite and small-normed, so
  /// server-side validation cannot distinguish it from honest work — it
  /// merely dilutes the aggregate.
  kStaleUpdate,
};

/// Human-readable name ("crash", "straggler", ...).
const char* fault_kind_name(FaultKind kind);

/// Per-(round, client) independent probabilities of each fault kind.
/// The kinds are mutually exclusive within one attempt; rates must be finite,
/// non-negative and sum to at most 1.
struct FaultRates {
  float crash = 0.0f;
  float straggler = 0.0f;
  float corrupt_nan = 0.0f;
  float corrupt_inf = 0.0f;
  float exploded_norm = 0.0f;
  float stale_update = 0.0f;

  [[nodiscard]] float total() const {
    return crash + straggler + corrupt_nan + corrupt_inf + exploded_norm + stale_update;
  }
  /// Throws std::invalid_argument if any rate is non-finite, negative, or the
  /// rates sum to more than 1.
  void validate() const;
};

/// Seed-driven schedule of faults. Copyable value type; the default instance
/// injects nothing.
class FaultPlan {
 public:
  /// No faults.
  FaultPlan() = default;

  /// Random faults at the given rates, derived deterministically from `seed`.
  FaultPlan(std::uint64_t seed, FaultRates rates);

  /// Convenience: the legacy `dropout_rate` behaviour — each sampled client
  /// independently crashes with probability `rate`.
  static FaultPlan bernoulli_crash(std::uint64_t seed, float rate);

  /// Scripts a specific fault for (round, client); fires on the first
  /// attempt of the round only, so retried rounds see a healthy cohort.
  /// Scripted faults take precedence over the random schedule. For tests and
  /// targeted what-if experiments.
  void inject(int round, int client, FaultKind kind);

  /// The fault striking `client` in attempt `attempt` of `round`.
  /// Deterministic: same plan, same arguments => same answer, regardless of
  /// call order or how often it is called.
  [[nodiscard]] FaultKind fault_for(int round, int attempt, int client) const;

  /// True if this plan can ever inject a fault.
  [[nodiscard]] bool any() const { return rates_.total() > 0.0f || !scripted_.empty(); }

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] const FaultRates& rates() const { return rates_; }

 private:
  std::uint64_t seed_ = 0;
  FaultRates rates_;
  std::map<std::pair<int, int>, FaultKind> scripted_;  // (round, client) -> kind
};

/// Applies a corruption fault to an uploaded state in place. `round_start`
/// is the global state the client downloaded (what a stale client echoes);
/// `rng` drives which entries are damaged. kNone/kCrash/kStraggler are no-ops.
void apply_corruption(FaultKind kind, nn::ModelState& upload, const nn::ModelState& round_start,
                      Rng& rng);

/// Server-side defenses of the resilient engine.
struct DefenseConfig {
  /// Reject uploads containing NaN/Inf entries.
  bool validate_finite = true;
  /// Reject uploads whose update norm ||local - global|| exceeds this
  /// multiple of the cohort's median update norm (needs >= 3 deliveries to
  /// be meaningful). 0 disables the outlier check.
  float norm_outlier_multiplier = 0.0f;
  /// Absolute cap on the update norm; 0 disables.
  float max_update_norm = 0.0f;
  /// Minimum fraction of the *sampled* cohort that must deliver valid
  /// updates, else the round is retried with fresh sampling. 0 disables
  /// quorum (any nonempty set of valid updates aggregates).
  float min_quorum = 0.0f;
  /// Total attempts per round (first try + retries). Must be >= 1.
  int max_round_attempts = 1;
  /// Simulated backoff before attempt k (1-based retry): base * 2^(k-1)
  /// seconds, accumulated into CostMeter::sim_backoff_seconds.
  float retry_backoff_seconds = 1.0f;

  /// Throws std::invalid_argument on non-finite or out-of-range settings.
  void validate() const;
};

}  // namespace quickdrop::fl
