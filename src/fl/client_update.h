// Client-side local update strategies.
//
// A FedAvg round hands each participating client a model initialized with the
// global state; the ClientUpdate strategy mutates it in place. Standard FL
// training, SGA unlearning and QuickDrop's in-situ distillation are all
// strategies behind this interface.
#pragma once

#include <functional>
#include <memory>

#include "data/dataset.h"
#include "fl/cost.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "util/rng.h"

namespace quickdrop::fl {

/// Builds a fresh model of the experiment's architecture. Parameter values do
/// not matter — the runner immediately loads a state — but shapes must match.
using ModelFactory = std::function<std::unique_ptr<nn::Module>()>;

/// One client's local work within a round.
class ClientUpdate {
 public:
  virtual ~ClientUpdate() = default;

  /// Performs local steps on `model` using the client's `dataset`.
  /// `round`/`client_id` identify the invocation (for RNG splitting and
  /// telemetry); `cost` accumulates gradient computations.
  ///
  /// Thread safety: when the resilient engine runs clients concurrently
  /// (ResilientConfig::client_model_factory), run() is invoked from multiple
  /// threads with distinct `model`/`rng`/`cost` instances and distinct
  /// `client_id`s. Implementations may mutate per-client state (it is never
  /// shared between concurrent calls) but must guard any state shared across
  /// clients.
  virtual void run(nn::Module& model, const data::Dataset& dataset, int round, int client_id,
                   Rng& rng, CostMeter& cost) = 0;
};

/// Plain mini-batch SGD (or SGA) local steps — Algorithm 1's inner loop.
class SgdLocalUpdate : public ClientUpdate {
 public:
  SgdLocalUpdate(int local_steps, int batch_size, float learning_rate,
                 nn::UpdateDirection direction = nn::UpdateDirection::kDescent);

  void run(nn::Module& model, const data::Dataset& dataset, int round, int client_id, Rng& rng,
           CostMeter& cost) override;

  [[nodiscard]] int local_steps() const { return local_steps_; }
  [[nodiscard]] int batch_size() const { return batch_size_; }
  [[nodiscard]] float learning_rate() const { return learning_rate_; }
  [[nodiscard]] nn::UpdateDirection direction() const { return direction_; }

 private:
  int local_steps_;
  int batch_size_;
  float learning_rate_;
  nn::UpdateDirection direction_;
};

/// FedProx local steps (Li et al., MLSys'20): minimizes the local loss plus a
/// proximal term (mu/2)||w - w_global||^2 that anchors clients to the global
/// model — the standard remedy for client drift under heterogeneous data.
class FedProxLocalUpdate final : public ClientUpdate {
 public:
  FedProxLocalUpdate(int local_steps, int batch_size, float learning_rate, float mu);

  void run(nn::Module& model, const data::Dataset& dataset, int round, int client_id, Rng& rng,
           CostMeter& cost) override;

  [[nodiscard]] float mu() const { return mu_; }

 private:
  int local_steps_;
  int batch_size_;
  float learning_rate_;
  float mu_;
};

/// Executes one SGD/SGA step of `model` on the given batch; returns the loss.
/// Shared by every strategy in the library.
float sgd_step_on_batch(nn::Module& model, const Tensor& images, const std::vector<int>& labels,
                        float learning_rate, nn::UpdateDirection direction, CostMeter& cost);

}  // namespace quickdrop::fl
