// Computation cost accounting.
//
// The paper's headline result is a speedup ratio driven by how many sample
// gradients each method computes. Besides wall-clock time (hardware
// dependent), we count per-sample gradient computations so ratios are
// auditable and machine independent.
#pragma once

#include <cstdint>

namespace quickdrop::fl {

/// Accumulates gradient-computation counts for one phase of an algorithm.
struct CostMeter {
  /// Sample-gradient computations used for model training/unlearning.
  std::int64_t sample_grads = 0;
  /// Sample-gradient computations spent on dataset distillation (the
  /// synthetic-batch gradients and matching updates of Algorithm 2).
  std::int64_t distill_sample_grads = 0;
  /// Number of FedAvg rounds executed.
  int rounds = 0;
  /// Communication: bytes uploaded by clients (local states) and downloaded
  /// from the server (global states), accumulated per participating client.
  std::int64_t bytes_up = 0;
  std::int64_t bytes_down = 0;

  // Fault-tolerance accounting (see fl/resilient.h).
  /// Clients that crashed before uploading (no compute, no exchange).
  std::int64_t crashed_clients = 0;
  /// Clients whose upload missed the simulated round deadline (compute spent,
  /// download counted, upload discarded).
  std::int64_t straggler_timeouts = 0;
  /// Uploaded updates rejected by server-side validation (non-finite values
  /// or norm outliers); the exchange still happened.
  std::int64_t quarantined_updates = 0;
  /// Round attempts re-run because the surviving cohort missed quorum.
  std::int64_t retried_rounds = 0;
  /// Rounds abandoned with no valid update after all attempts (global state
  /// carried over unchanged).
  std::int64_t lost_rounds = 0;
  /// Simulated seconds spent backing off before round retries.
  double sim_backoff_seconds = 0.0;

  void add_training(std::int64_t samples) { sample_grads += samples; }
  void add_distillation(std::int64_t samples) { distill_sample_grads += samples; }
  void add_exchange(std::int64_t up, std::int64_t down) {
    bytes_up += up;
    bytes_down += down;
  }

  [[nodiscard]] std::int64_t total() const { return sample_grads + distill_sample_grads; }
  [[nodiscard]] std::int64_t total_bytes() const { return bytes_up + bytes_down; }
  /// Total fault events observed across clients and rounds.
  [[nodiscard]] std::int64_t total_faults() const {
    return crashed_clients + straggler_timeouts + quarantined_updates;
  }

  CostMeter& operator+=(const CostMeter& other) {
    sample_grads += other.sample_grads;
    distill_sample_grads += other.distill_sample_grads;
    rounds += other.rounds;
    bytes_up += other.bytes_up;
    bytes_down += other.bytes_down;
    crashed_clients += other.crashed_clients;
    straggler_timeouts += other.straggler_timeouts;
    quarantined_updates += other.quarantined_updates;
    retried_rounds += other.retried_rounds;
    lost_rounds += other.lost_rounds;
    sim_backoff_seconds += other.sim_backoff_seconds;
    return *this;
  }
};

}  // namespace quickdrop::fl
