// Computation cost accounting.
//
// The paper's headline result is a speedup ratio driven by how many sample
// gradients each method computes. Besides wall-clock time (hardware
// dependent), we count per-sample gradient computations so ratios are
// auditable and machine independent.
#pragma once

#include <cstdint>

namespace quickdrop::fl {

/// Accumulates gradient-computation counts for one phase of an algorithm.
struct CostMeter {
  /// Sample-gradient computations used for model training/unlearning.
  std::int64_t sample_grads = 0;
  /// Sample-gradient computations spent on dataset distillation (the
  /// synthetic-batch gradients and matching updates of Algorithm 2).
  std::int64_t distill_sample_grads = 0;
  /// Number of FedAvg rounds executed.
  int rounds = 0;
  /// Communication: bytes uploaded by clients (local states) and downloaded
  /// from the server (global states), accumulated per participating client.
  std::int64_t bytes_up = 0;
  std::int64_t bytes_down = 0;

  void add_training(std::int64_t samples) { sample_grads += samples; }
  void add_distillation(std::int64_t samples) { distill_sample_grads += samples; }
  void add_exchange(std::int64_t up, std::int64_t down) {
    bytes_up += up;
    bytes_down += down;
  }

  [[nodiscard]] std::int64_t total() const { return sample_grads + distill_sample_grads; }
  [[nodiscard]] std::int64_t total_bytes() const { return bytes_up + bytes_down; }

  CostMeter& operator+=(const CostMeter& other) {
    sample_grads += other.sample_grads;
    distill_sample_grads += other.distill_sample_grads;
    rounds += other.rounds;
    bytes_up += other.bytes_up;
    bytes_down += other.bytes_down;
    return *this;
  }
};

}  // namespace quickdrop::fl
