#include "fl/faults.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace quickdrop::fl {
namespace {

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kStraggler: return "straggler";
    case FaultKind::kCorruptNan: return "corrupt-nan";
    case FaultKind::kCorruptInf: return "corrupt-inf";
    case FaultKind::kExplodedNorm: return "exploded-norm";
    case FaultKind::kStaleUpdate: return "stale-update";
  }
  return "?";
}

void FaultRates::validate() const {
  const float rates[] = {crash, straggler, corrupt_nan, corrupt_inf, exploded_norm, stale_update};
  for (const float r : rates) {
    if (!std::isfinite(r) || r < 0.0f) {
      throw std::invalid_argument("FaultRates: rates must be finite and non-negative");
    }
  }
  if (total() > 1.0f) throw std::invalid_argument("FaultRates: rates sum to more than 1");
}

FaultPlan::FaultPlan(std::uint64_t seed, FaultRates rates) : seed_(seed), rates_(rates) {
  rates_.validate();
}

FaultPlan FaultPlan::bernoulli_crash(std::uint64_t seed, float rate) {
  FaultRates rates;
  rates.crash = rate;
  return FaultPlan(seed, rates);
}

void FaultPlan::inject(int round, int client, FaultKind kind) {
  scripted_[{round, client}] = kind;
}

FaultKind FaultPlan::fault_for(int round, int attempt, int client) const {
  if (attempt == 0) {
    const auto it = scripted_.find({round, client});
    if (it != scripted_.end()) return it->second;
  }
  if (rates_.total() <= 0.0f) return FaultKind::kNone;
  // One hashed draw per triple: stable under call order and repetition.
  const std::uint64_t tag = mix64(seed_ ^ mix64(static_cast<std::uint64_t>(round) * 0x9E3779B97F4A7C15ULL +
                                                static_cast<std::uint64_t>(attempt) * 0xBF58476D1CE4E5B9ULL +
                                                static_cast<std::uint64_t>(client)));
  const float u = static_cast<float>(tag >> 40) * (1.0f / 16777216.0f);
  float edge = rates_.crash;
  if (u < edge) return FaultKind::kCrash;
  edge += rates_.straggler;
  if (u < edge) return FaultKind::kStraggler;
  edge += rates_.corrupt_nan;
  if (u < edge) return FaultKind::kCorruptNan;
  edge += rates_.corrupt_inf;
  if (u < edge) return FaultKind::kCorruptInf;
  edge += rates_.exploded_norm;
  if (u < edge) return FaultKind::kExplodedNorm;
  edge += rates_.stale_update;
  if (u < edge) return FaultKind::kStaleUpdate;
  return FaultKind::kNone;
}

void apply_corruption(FaultKind kind, nn::ModelState& upload, const nn::ModelState& round_start,
                      Rng& rng) {
  switch (kind) {
    case FaultKind::kNone:
    case FaultKind::kCrash:
    case FaultKind::kStraggler:
      return;
    case FaultKind::kCorruptNan:
    case FaultKind::kCorruptInf: {
      const float poison = kind == FaultKind::kCorruptNan
                               ? std::numeric_limits<float>::quiet_NaN()
                               : std::numeric_limits<float>::infinity();
      // Damage a handful of entries in a random parameter's slice of the
      // flat buffer — a realistic partial corruption, not a wall of NaNs.
      if (upload.empty()) return;
      const auto p = static_cast<std::size_t>(
          rng.uniform_u64(static_cast<std::uint64_t>(upload.size())));
      const auto data = upload.param(p);
      const std::int64_t n = static_cast<std::int64_t>(data.size());
      if (n == 0) return;
      const int hits = 1 + static_cast<int>(rng.uniform_u64(3));
      for (int i = 0; i < hits; ++i) {
        data[static_cast<std::size_t>(rng.uniform_u64(static_cast<std::uint64_t>(n)))] = poison;
      }
      return;
    }
    case FaultKind::kExplodedNorm: {
      const float factor = 1e6f * (1.0f + rng.uniform());
      nn::scale(upload, factor);
      return;
    }
    case FaultKind::kStaleUpdate: {
      upload = round_start;  // FlatState copies are deep
      return;
    }
  }
}

void DefenseConfig::validate() const {
  if (!std::isfinite(norm_outlier_multiplier) || norm_outlier_multiplier < 0.0f ||
      !std::isfinite(max_update_norm) || max_update_norm < 0.0f ||
      !std::isfinite(min_quorum) || min_quorum < 0.0f || min_quorum > 1.0f ||
      max_round_attempts < 1 || !std::isfinite(retry_backoff_seconds) ||
      retry_backoff_seconds < 0.0f) {
    throw std::invalid_argument("DefenseConfig: bad settings");
  }
}

}  // namespace quickdrop::fl
