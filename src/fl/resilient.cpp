#include "fl/resilient.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace quickdrop::fl {
namespace {

/// One upload that reached the server in time. With a quantizing transport
/// codec the client fills `wire` (the encoded delta) instead of `state`; the
/// server decodes (or probes, on the streaming path) when it collects the
/// slot.
struct Delivery {
  int client = 0;
  nn::ModelState state;
  std::vector<std::uint8_t> wire;
  double update_norm = 0.0;
};

/// Median of the finite update norms (0 when none are finite).
double finite_median_norm(const std::vector<Delivery>& delivered) {
  std::vector<double> norms;
  norms.reserve(delivered.size());
  for (const auto& d : delivered) {
    if (std::isfinite(d.update_norm)) norms.push_back(d.update_norm);
  }
  if (norms.empty()) return 0.0;
  const auto mid = norms.size() / 2;
  std::nth_element(norms.begin(), norms.begin() + static_cast<std::ptrdiff_t>(mid), norms.end());
  return norms[mid];
}

/// Why an update was quarantined, or nullptr if it is acceptable. Callers
/// pass finite_ok = !defense.validate_finite || <update is all-finite>, so
/// finiteness is only computed when the rule is on.
const char* rejection_reason(bool finite_ok, double update_norm, const DefenseConfig& defense,
                             double median_norm) {
  if (!finite_ok) return "non-finite values";
  if (defense.max_update_norm > 0.0f &&
      !(update_norm <= static_cast<double>(defense.max_update_norm))) {
    return "update norm above absolute cap";
  }
  if (defense.norm_outlier_multiplier > 0.0f && median_norm > 0.0 &&
      !(update_norm <= static_cast<double>(defense.norm_outlier_multiplier) * median_norm)) {
    return "update norm outlier";
  }
  return nullptr;
}

}  // namespace

nn::ModelState run_resilient(nn::Module& model, nn::ModelState global,
                             const std::vector<data::Dataset>& client_data, ClientUpdate& update,
                             const ResilientConfig& config, Rng& rng, CostMeter& cost,
                             const RoundCallback& callback,
                             const ClientStateCallback& client_callback,
                             const RoundCursorCallback& cursor_callback) {
  if (config.rounds < 0 || !std::isfinite(config.participation) ||
      config.participation <= 0.0f || config.participation > 1.0f ||
      config.start_round < 0 || config.start_round > config.rounds) {
    throw std::invalid_argument("run_resilient: bad config");
  }
  config.defense.validate();
  config.aggregation.validate();
  std::vector<int> eligible;
  for (std::size_t i = 0; i < client_data.size(); ++i) {
    if (!client_data[i].empty()) eligible.push_back(static_cast<int>(i));
  }
  if (eligible.empty()) throw std::invalid_argument("run_resilient: no client has data");
  if (global.empty()) throw std::invalid_argument("run_resilient: empty global state");

  // Per-worker scratch models for the concurrent client phase, built lazily
  // (serially, on this thread) and reused across rounds.
  std::vector<std::unique_ptr<nn::Module>> worker_models;

  // One layout shared by the global and every client upload: snapshots reuse
  // it instead of re-deriving a manifest per client per round, and the
  // aggregation kernels hit the pointer-equality fast path when they check
  // compatibility.
  const auto layout = global.layout();

  // The streaming hierarchical aggregator, reused (reset) across rounds. The
  // norm-outlier rule is the one validation that needs the whole cohort's
  // norms before any accept/reject decision, so it forces buffering; every
  // other defense is per-update and streams. Both modes fold accepted
  // updates in cohort order through this tree, so they agree bit-for-bit.
  ShardTree tree(layout, config.aggregation);
  const bool streaming = !(config.defense.norm_outlier_multiplier > 0.0f);

  for (int round = config.start_round; round < config.rounds; ++round) {
    for (int attempt = 0; attempt < config.defense.max_round_attempts; ++attempt) {
      if (attempt > 0) {
        ++cost.retried_rounds;
        cost.sim_backoff_seconds += static_cast<double>(config.defense.retry_backoff_seconds) *
                                    static_cast<double>(1LL << (attempt - 1));
        QD_LOG_WARN << "round " << round << ": retrying (attempt " << attempt + 1 << "/"
                    << config.defense.max_round_attempts << ") after quorum failure";
      }

      // Sample this attempt's cohort.
      std::vector<int> cohort = eligible;
      if (config.participation < 1.0f) {
        const int k = std::max(1, static_cast<int>(static_cast<float>(eligible.size()) *
                                                   config.participation));
        const auto picks = rng.sample_without_replacement(static_cast<int>(eligible.size()), k);
        cohort.clear();
        for (const int p : picks) cohort.push_back(eligible[static_cast<std::size_t>(p)]);
      }
      const int sampled = static_cast<int>(cohort.size());

      tree.reset();
      std::int64_t accepted_count = 0;
      std::int64_t accepted_samples = 0;
      std::vector<Delivery> delivered;  // buffered mode only
      if (!streaming) delivered.reserve(cohort.size());

      const int pool_threads = ThreadPool::global().threads();
      const int n_workers = static_cast<int>(
          std::min<std::size_t>(static_cast<std::size_t>(pool_threads), cohort.size()));
      const bool parallel = config.client_model_factory && n_workers > 1;
      if (parallel) {
        while (static_cast<int>(worker_models.size()) < n_workers) {
          worker_models.push_back(config.client_model_factory());
        }
      }

      // Accepts one delivery on the streaming path: validate with the
      // per-update rules, surface it to the client callback, fold it into
      // the tree and forget it. Wire-framed deliveries are probed (decoded
      // block-by-block, no fp32 state materialized) unless the client
      // callback needs the full state anyway.
      auto stream_delivery = [&](Delivery&& d) {
        const char* reason = nullptr;
        bool fold_wire = false;
        if (!d.wire.empty() && !client_callback) {
          ShardTree::WireProbe probe;
          try {
            probe = tree.probe_quantized(d.wire, global);
          } catch (const nn::StateError&) {
            ++cost.quarantined_updates;
            QD_LOG_WARN << "round " << round << ": quarantined update from client " << d.client
                        << " (undecodable transport frame)";
            return;
          }
          d.update_norm = probe.norm;
          reason = rejection_reason(!config.defense.validate_finite || probe.finite,
                                    d.update_norm, config.defense, 0.0);
          fold_wire = true;
        } else {
          if (!d.wire.empty()) {
            // The client callback needs the materialized local state, so
            // decode the frame the buffered way for this one delivery.
            try {
              const nn::ModelState delta = decode_delta(d.wire, layout);
              d.state = global;
              nn::axpy(d.state, delta, 1.0f);
            } catch (const nn::StateError&) {
              ++cost.quarantined_updates;
              QD_LOG_WARN << "round " << round << ": quarantined update from client " << d.client
                          << " (undecodable transport frame)";
              return;
            }
          }
          d.update_norm = nn::l2_distance(d.state, global);
          reason = rejection_reason(!config.defense.validate_finite || nn::all_finite(d.state),
                                    d.update_norm, config.defense, 0.0);
        }
        if (reason != nullptr) {
          ++cost.quarantined_updates;
          QD_LOG_WARN << "round " << round << ": quarantined update from client " << d.client
                      << " (" << reason << ")";
          return;
        }
        const auto samples = client_data[static_cast<std::size_t>(d.client)].size();
        // Raw sample-count weights: the normalizer (total accepted samples)
        // is only known after the last fold, so finalize applies it once.
        if (fold_wire) {
          tree.fold_quantized(d.client, d.wire, global, static_cast<double>(samples));
        } else {
          if (client_callback) client_callback(round, d.client, d.state, global);
          tree.fold(d.client, d.state, static_cast<double>(samples));
        }
        ++accepted_count;
        accepted_samples += samples;
      };

      // Client phase: run local updates, apply injected faults. Client c's
      // work depends only on (round, attempt, c) and the global state — its
      // RNG is tag-split, never drawn from a shared stream — so clients can
      // execute in any order, including concurrently. Each client writes its
      // delivery slot and a private CostMeter; both are merged in cohort
      // order below, keeping every downstream number independent of the
      // thread count. Streaming mode processes the cohort in bounded waves,
      // folding each wave's accepted updates before the next wave runs, so
      // at most one wave of states is alive at a time; buffered mode (norm
      // outlier on) is a single whole-cohort wave.
      const std::size_t wave_size =
          streaming ? std::max<std::size_t>(1, parallel ? 4 * static_cast<std::size_t>(n_workers)
                                                        : 1)
                    : cohort.size();
      for (std::size_t wave_begin = 0; wave_begin < cohort.size(); wave_begin += wave_size) {
        const std::size_t wave_end = std::min(cohort.size(), wave_begin + wave_size);
        const std::size_t wave_len = wave_end - wave_begin;
        std::vector<std::optional<Delivery>> slots(wave_len);
        std::vector<CostMeter> slot_costs(wave_len);
        auto run_client = [&](std::size_t idx, nn::Module& client_model) {
          const int c = cohort[idx];
          CostMeter& ccost = slot_costs[idx - wave_begin];
          const FaultKind fault = config.faults.fault_for(round, attempt, c);
          if (fault == FaultKind::kCrash) {
            ++ccost.crashed_clients;
            QD_LOG_DEBUG << "round " << round << ": client " << c << " crashed before upload";
            return;
          }
          nn::load_state(client_model, global);
          Rng client_rng = rng.split(static_cast<std::uint64_t>(round) * 100003ULL +
                                     static_cast<std::uint64_t>(c));
          update.run(client_model, client_data[static_cast<std::size_t>(c)], round, c, client_rng,
                     ccost);
          nn::ModelState state{layout};
          nn::snapshot_into(client_model, state);
          if (fault == FaultKind::kStraggler) {
            // Compute was spent and the model was downloaded, but the upload
            // missed the simulated round deadline.
            ++ccost.straggler_timeouts;
            ccost.add_exchange(0, nn::state_bytes(global));
            QD_LOG_WARN << "round " << round << ": client " << c
                        << " straggled past the round deadline; update discarded";
            return;
          }
          if (fault != FaultKind::kNone) {
            Rng fault_rng = Rng(config.faults.seed() ^ 0xFA017C0DEULL)
                                .split(static_cast<std::uint64_t>(round) * 611953ULL +
                                       static_cast<std::uint64_t>(c));
            apply_corruption(fault, state, global, fault_rng);
          }
          Delivery d;
          d.client = c;
          if (config.transport.codec != Codec::kNone) {
            // Quantized transport: ship the encoded delta against the round's
            // global state. Encoding happens after fault corruption, so a
            // corrupted update crosses the wire the way a real faulty client
            // would send it (non-finite blocks ride the raw-block escape and
            // reach server-side validation bit-exactly).
            const nn::ModelState delta = nn::subtract(state, global);
            d.wire = encode_delta(delta, config.transport.codec);
            ccost.add_exchange(static_cast<std::int64_t>(d.wire.size()),
                               nn::state_bytes(global));
          } else {
            ccost.add_exchange(nn::state_bytes(state), nn::state_bytes(global));
            d.state = std::move(state);
          }
          slots[idx - wave_begin] = std::move(d);
        };

        if (parallel) {
          // qdlint: shared-write(workers write disjoint slots/slot_costs entries; each owns its model)
          ThreadPool::global().run_chunks(n_workers, [&](int w) {
            const std::size_t b = wave_begin + wave_len * static_cast<std::size_t>(w) /
                                                   static_cast<std::size_t>(n_workers);
            const std::size_t e = wave_begin + wave_len * static_cast<std::size_t>(w + 1) /
                                                   static_cast<std::size_t>(n_workers);
            for (std::size_t idx = b; idx < e; ++idx) {
              run_client(idx, *worker_models[static_cast<std::size_t>(w)]);
            }
          });
        } else {
          for (std::size_t idx = wave_begin; idx < wave_end; ++idx) run_client(idx, model);
        }

        // Collect the wave in cohort order.
        for (std::size_t idx = wave_begin; idx < wave_end; ++idx) {
          cost += slot_costs[idx - wave_begin];
          if (!slots[idx - wave_begin]) continue;
          Delivery d = std::move(*slots[idx - wave_begin]);
          if (streaming) {
            stream_delivery(std::move(d));
            continue;
          }
          if (!d.wire.empty()) {
            // Serial decode in cohort order: reconstruct global + delta into
            // the delivery before validation sees it. A frame that fails to
            // decode is quarantined exactly like a corrupted raw upload.
            try {
              const nn::ModelState delta = decode_delta(d.wire, layout);
              d.state = global;
              nn::axpy(d.state, delta, 1.0f);
            } catch (const nn::StateError&) {
              ++cost.quarantined_updates;
              QD_LOG_WARN << "round " << round << ": quarantined update from client " << d.client
                          << " (undecodable transport frame)";
              continue;
            }
            d.wire.clear();
            d.wire.shrink_to_fit();
          }
          delivered.push_back(std::move(d));
        }
      }

      if (!streaming) {
        // Server phase (buffered): validate deliveries before they touch the
        // aggregate. l2_distance walks both flat buffers directly — no
        // difference state is materialized per upload.
        for (auto& d : delivered) d.update_norm = nn::l2_distance(d.state, global);
        const double median_norm = finite_median_norm(delivered);
        for (auto& d : delivered) {
          // The outlier rule needs a crowd to define "normal"; with fewer
          // than 3 deliveries only the absolute checks apply.
          const char* reason = rejection_reason(
              !config.defense.validate_finite || nn::all_finite(d.state), d.update_norm,
              config.defense, delivered.size() >= 3 ? median_norm : 0.0);
          if (reason != nullptr) {
            ++cost.quarantined_updates;
            QD_LOG_WARN << "round " << round << ": quarantined update from client " << d.client
                        << " (" << reason << ")";
            continue;
          }
          if (client_callback) client_callback(round, d.client, d.state, global);
          const auto samples = client_data[static_cast<std::size_t>(d.client)].size();
          tree.fold(d.client, d.state, static_cast<double>(samples));
          ++accepted_count;
          accepted_samples += samples;
        }
        delivered.clear();
      }

      // Quorum: how many valid updates does this round need?
      const int required =
          std::max(1, config.defense.min_quorum > 0.0f
                          ? static_cast<int>(std::ceil(static_cast<double>(config.defense.min_quorum) *
                                                       static_cast<double>(sampled)))
                          : 1);
      if (accepted_count < required) {
        if (attempt + 1 < config.defense.max_round_attempts) continue;  // retry
        // Out of attempts: the round is lost, the global state carries over.
        ++cost.rounds;
        ++cost.lost_rounds;
        QD_LOG_WARN << "round " << round << ": lost (" << accepted_count << "/" << required
                    << " valid updates after " << config.defense.max_round_attempts
                    << " attempt(s))";
        break;
      }

      // Root merge: one O(params) collapse + scale by the now-known weight
      // normalizer. The folds carried raw |D_c| weights, so scaling by
      // 1 / accepted_samples yields the same |D_c|/|D| FedAvg weighting.
      global = tree.finalize(1.0 / static_cast<double>(accepted_samples));
      if (!nn::all_finite(global)) {
        // Validation rejects non-finite uploads and finite ones cannot
        // aggregate to NaN/Inf unless the weights overflow — either way the
        // invariant is broken and continuing would poison every later round.
        throw std::runtime_error("run_resilient: aggregated global state is non-finite");
      }
      ++cost.rounds;
      break;
    }
    if (callback) callback(round, global);
    if (cursor_callback) cursor_callback(round, global, rng);
  }
  return global;
}

}  // namespace quickdrop::fl
