// Model evaluation metrics: Top-1 accuracy on full datasets, per class, and
// on forget/retain splits.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "nn/module.h"

namespace quickdrop::metrics {

/// Top-1 accuracy of `model` on `dataset` (0 when the dataset is empty).
double accuracy(nn::Module& model, const data::Dataset& dataset, int batch_size = 128);

/// Per-class Top-1 accuracy; classes with no test samples report 0.
std::vector<double> per_class_accuracy(nn::Module& model, const data::Dataset& dataset,
                                       int batch_size = 128);

/// Accuracy restricted to samples whose label is in `classes`.
double accuracy_on_classes(nn::Module& model, const data::Dataset& dataset,
                           const std::vector<int>& classes, int batch_size = 128);

/// Accuracy restricted to samples whose label is NOT in `classes`.
double accuracy_excluding_classes(nn::Module& model, const data::Dataset& dataset,
                                  const std::vector<int>& classes, int batch_size = 128);

/// Accuracy on an explicit row subset.
double accuracy_on_indices(nn::Module& model, const data::Dataset& dataset,
                           const std::vector<int>& indices, int batch_size = 128);

/// Mean cross-entropy loss on the dataset.
double mean_loss(nn::Module& model, const data::Dataset& dataset, int batch_size = 128);

/// Raw [N, num_classes] softmax probabilities for the given rows.
Tensor softmax_probabilities(nn::Module& model, const data::Dataset& dataset,
                             const std::vector<int>& indices, int batch_size = 128);

}  // namespace quickdrop::metrics
