#include "metrics/evaluate.h"

#include <algorithm>
#include <cmath>

#include "tensor/kernels.h"

namespace quickdrop::metrics {
namespace {

/// Invokes `fn(batch_logits, batch_labels, batch_rows)` over the given rows.
template <typename Fn>
void for_each_batch(nn::Module& model, const data::Dataset& dataset,
                    const std::vector<int>& rows, int batch_size, Fn fn) {
  for (std::size_t start = 0; start < rows.size(); start += static_cast<std::size_t>(batch_size)) {
    const auto end = std::min(rows.size(), start + static_cast<std::size_t>(batch_size));
    const std::vector<int> batch_rows(rows.begin() + static_cast<std::ptrdiff_t>(start),
                                      rows.begin() + static_cast<std::ptrdiff_t>(end));
    auto [images, labels] = dataset.batch(batch_rows);
    const Tensor logits = model.forward_tensor(images).value();
    fn(logits, labels, batch_rows);
  }
}

std::vector<int> all_rows(const data::Dataset& dataset) {
  std::vector<int> rows(static_cast<std::size_t>(dataset.size()));
  for (int i = 0; i < dataset.size(); ++i) rows[static_cast<std::size_t>(i)] = i;
  return rows;
}

}  // namespace

double accuracy_on_indices(nn::Module& model, const data::Dataset& dataset,
                           const std::vector<int>& indices, int batch_size) {
  if (indices.empty()) return 0.0;
  int correct = 0;
  for_each_batch(model, dataset, indices, batch_size,
                 [&](const Tensor& logits, const std::vector<int>& labels, const auto&) {
                   const auto preds = kernels::argmax_rows(logits);
                   for (std::size_t i = 0; i < labels.size(); ++i) correct += preds[i] == labels[i];
                 });
  return static_cast<double>(correct) / static_cast<double>(indices.size());
}

double accuracy(nn::Module& model, const data::Dataset& dataset, int batch_size) {
  return accuracy_on_indices(model, dataset, all_rows(dataset), batch_size);
}

std::vector<double> per_class_accuracy(nn::Module& model, const data::Dataset& dataset,
                                       int batch_size) {
  std::vector<int> correct(static_cast<std::size_t>(dataset.num_classes()), 0);
  std::vector<int> total(static_cast<std::size_t>(dataset.num_classes()), 0);
  for_each_batch(model, dataset, all_rows(dataset), batch_size,
                 [&](const Tensor& logits, const std::vector<int>& labels, const auto&) {
                   const auto preds = kernels::argmax_rows(logits);
                   for (std::size_t i = 0; i < labels.size(); ++i) {
                     ++total[static_cast<std::size_t>(labels[i])];
                     correct[static_cast<std::size_t>(labels[i])] += preds[i] == labels[i];
                   }
                 });
  std::vector<double> out(static_cast<std::size_t>(dataset.num_classes()), 0.0);
  for (std::size_t c = 0; c < out.size(); ++c) {
    if (total[c] > 0) out[c] = static_cast<double>(correct[c]) / total[c];
  }
  return out;
}

double accuracy_on_classes(nn::Module& model, const data::Dataset& dataset,
                           const std::vector<int>& classes, int batch_size) {
  std::vector<int> rows;
  for (int i = 0; i < dataset.size(); ++i) {
    if (std::find(classes.begin(), classes.end(), dataset.label(i)) != classes.end()) {
      rows.push_back(i);
    }
  }
  return accuracy_on_indices(model, dataset, rows, batch_size);
}

double accuracy_excluding_classes(nn::Module& model, const data::Dataset& dataset,
                                  const std::vector<int>& classes, int batch_size) {
  std::vector<int> rows;
  for (int i = 0; i < dataset.size(); ++i) {
    if (std::find(classes.begin(), classes.end(), dataset.label(i)) == classes.end()) {
      rows.push_back(i);
    }
  }
  return accuracy_on_indices(model, dataset, rows, batch_size);
}

double mean_loss(nn::Module& model, const data::Dataset& dataset, int batch_size) {
  if (dataset.empty()) return 0.0;
  double total = 0.0;
  for_each_batch(model, dataset, all_rows(dataset), batch_size,
                 [&](const Tensor& logits, const std::vector<int>& labels, const auto&) {
                   const ag::Var loss =
                       ag::cross_entropy(ag::Var::constant(logits), labels);
                   total += static_cast<double>(loss.value().item()) *
                            static_cast<double>(labels.size());
                 });
  return total / dataset.size();
}

Tensor softmax_probabilities(nn::Module& model, const data::Dataset& dataset,
                             const std::vector<int>& indices, int batch_size) {
  Tensor out({static_cast<std::int64_t>(indices.size()), dataset.num_classes()});
  std::int64_t row = 0;
  for_each_batch(model, dataset, indices, batch_size,
                 [&](const Tensor& logits, const std::vector<int>& labels, const auto&) {
                   const std::int64_t c = logits.dim(1);
                   for (std::int64_t i = 0; i < logits.dim(0); ++i) {
                     float maxv = logits.at(i * c);
                     for (std::int64_t j = 1; j < c; ++j) maxv = std::max(maxv, logits.at(i * c + j));
                     double denom = 0.0;
                     for (std::int64_t j = 0; j < c; ++j) {
                       denom += std::exp(static_cast<double>(logits.at(i * c + j) - maxv));
                     }
                     for (std::int64_t j = 0; j < c; ++j) {
                       out.at(row * c + j) = static_cast<float>(
                           std::exp(static_cast<double>(logits.at(i * c + j) - maxv)) / denom);
                     }
                     ++row;
                   }
                   (void)labels;
                 });
  return out;
}

}  // namespace quickdrop::metrics
