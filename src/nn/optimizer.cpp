#include "nn/optimizer.h"

#include <stdexcept>

namespace quickdrop::nn {

Sgd::Sgd(std::vector<ag::Var> parameters, float learning_rate, float momentum)
    : parameters_(std::move(parameters)), learning_rate_(learning_rate), momentum_(momentum) {
  if (learning_rate <= 0.0f) throw std::invalid_argument("Sgd: learning rate must be positive");
  if (momentum < 0.0f || momentum >= 1.0f) {
    throw std::invalid_argument("Sgd: momentum must be in [0, 1)");
  }
}

void Sgd::step(const std::vector<ag::Var>& gradients, UpdateDirection direction) {
  // NOLINTNEXTLINE(qdlint-api-flatstate): gradient list, not a model state
  std::vector<Tensor> tensors;
  tensors.reserve(gradients.size());
  for (const auto& g : gradients) tensors.push_back(g.value());
  step_tensors(tensors, direction);
}

// NOLINTNEXTLINE(qdlint-api-flatstate): gradient list, not a model state
void Sgd::step_tensors(const std::vector<Tensor>& gradients, UpdateDirection direction) {
  if (gradients.size() != parameters_.size()) {
    throw std::invalid_argument("Sgd: gradient count mismatch");
  }
  const float sign = direction == UpdateDirection::kDescent ? -1.0f : 1.0f;
  // Exact sentinel: momentum_ is only ever assigned from config, never
  // computed, and 0 means "plain SGD, skip the velocity buffers".
  if (momentum_ == 0.0f) {  // NOLINT(qdlint-num-float-eq)
    for (std::size_t i = 0; i < parameters_.size(); ++i) {
      parameters_[i].mutable_value().add_(gradients[i], sign * learning_rate_);
    }
    return;
  }
  if (velocity_.empty()) {
    velocity_.reserve(parameters_.size());
    for (const auto& p : parameters_) velocity_.push_back(Tensor::zeros(p.value().shape()));
  }
  for (std::size_t i = 0; i < parameters_.size(); ++i) {
    velocity_[i].scale_(momentum_);
    velocity_[i].add_(gradients[i], 1.0f);
    parameters_[i].mutable_value().add_(velocity_[i], sign * learning_rate_);
  }
}

}  // namespace quickdrop::nn
