// Model state vectors: snapshots of all parameters of a module.
//
// The FL substrate moves these between server and clients; FedEraser stores
// per-round update states. All functions operate on deep copies so states
// never alias live models.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "nn/module.h"

namespace quickdrop::nn {

/// Deep-copied parameter tensors of a model, in parameter order.
using ModelState = std::vector<Tensor>;

/// Snapshot of the module's current parameters (deep copies).
ModelState state_of(Module& module);

/// Writes a state into the module's parameters. Shapes must match.
void load_state(Module& module, const ModelState& state);

/// All-zero state with the same shapes.
ModelState zeros_like(const ModelState& state);

/// y += a * x (elementwise over every tensor).
void axpy(ModelState& y, const ModelState& x, float a);

/// s *= factor.
void scale(ModelState& state, float factor);

/// a - b as a new state.
ModelState subtract(const ModelState& a, const ModelState& b);

/// Euclidean norm over all entries.
double l2_norm(const ModelState& state);

/// True when every entry of every tensor is finite (no NaN/Inf). The
/// resilient FL engine uses this to quarantine corrupted client uploads and
/// to enforce that aggregated global states stay finite.
bool all_finite(const ModelState& state);

/// Sum_i weights[i] * states[i]; weights need not be normalized by callers —
/// they are used as given (FedAvg passes |D_i|/|D|).
ModelState weighted_average(std::span<const ModelState> states, std::span<const float> weights);

/// Number of scalar entries.
std::int64_t state_numel(const ModelState& state);

/// Bytes occupied by the raw float payload (used for storage accounting).
std::int64_t state_bytes(const ModelState& state);

/// Binary (de)serialization, e.g. for checkpointing experiments.
std::vector<std::uint8_t> serialize_state(const ModelState& state);
ModelState deserialize_state(std::span<const std::uint8_t> bytes);

}  // namespace quickdrop::nn
