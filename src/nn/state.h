// The parameter plane: flat, contiguous model states.
//
// A model state is ONE contiguous float buffer (`FlatState`) plus a shared,
// immutable shape manifest (`StateLayout`) describing how the buffer splits
// into parameters. Every layer above autograd — FedAvg aggregation, SGA /
// recovery rounds, FedEraser's per-round stores, checkpointing, the serve
// executor — moves states through this one representation, so the hot
// aggregation loops are single flat passes instead of per-tensor walks.
//
// Ownership: FlatState owns its buffer; copies are deep (unlike Tensor
// handles, a copied state never aliases the original). The layout is shared
// via shared_ptr and immutable, so states derived from one another
// (zeros_like, subtract, weighted_average, deserialization with a matching
// hash) reuse a single manifest instead of re-describing shapes per state.
//
// Determinism: every kernel here parallelizes over util::ThreadPool with
// fixed-block partitioning — block boundaries depend only on the element
// count, never on the pool size — and reductions combine per-block partials
// serially in block order. Results are bitwise-identical at any --threads.
// See DESIGN.md §11 for the full contract.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "nn/module.h"

namespace quickdrop::nn {

/// Fixed reduction/aggregation block: block boundaries depend only on the
/// element count — never on the pool size — so every state kernel's partition
/// (and therefore its result bits) is identical at any --threads setting.
inline constexpr std::int64_t kStateBlock = 1 << 14;

/// Malformed or incompatible serialized state (truncated, oversized,
/// shape-mismatched, corrupt). Derives from std::invalid_argument so existing
/// catch sites keep working.
struct StateError : std::invalid_argument {
  explicit StateError(const std::string& what) : std::invalid_argument(what) {}
};

/// Immutable shape manifest of a model state: parameter shapes in order,
/// their offsets into the flat buffer, and an FNV-1a hash over the shape list
/// used as a cheap compatibility check (server/client, checkpoint/model).
/// Always held by shared_ptr; states with equal hashes are layout-compatible.
class StateLayout {
 public:
  /// Manifest of a module's parameters, in Module::parameters() order.
  static std::shared_ptr<const StateLayout> of(Module& module);
  /// Manifest from an explicit shape list.
  static std::shared_ptr<const StateLayout> of_shapes(std::vector<Shape> shapes);

  /// Number of parameters.
  [[nodiscard]] std::size_t size() const { return shapes_.size(); }
  [[nodiscard]] const Shape& shape(std::size_t i) const { return shapes_[i]; }
  [[nodiscard]] const std::vector<Shape>& shapes() const { return shapes_; }
  /// First flat index of parameter i; offset(size()) == total().
  [[nodiscard]] std::int64_t offset(std::size_t i) const { return offsets_[i]; }
  [[nodiscard]] std::int64_t numel(std::size_t i) const {
    return offsets_[i + 1] - offsets_[i];
  }
  /// Total scalar entries across all parameters.
  [[nodiscard]] std::int64_t total() const { return offsets_.back(); }
  /// FNV-1a over (count, rank, dims...) — equal iff the shape lists match.
  [[nodiscard]] std::uint64_t hash() const { return hash_; }

  /// Hoisted fixed-block partition: bounds of kStateBlock-sized blocks over
  /// [0, total()), computed once per layout and reused by every reduction and
  /// by weighted_average's fold across clients and rounds (block b spans
  /// [block_bounds()[b], block_bounds()[b+1])).
  [[nodiscard]] const std::vector<std::int64_t>& block_bounds() const { return block_bounds_; }
  [[nodiscard]] std::int64_t num_blocks() const {
    return static_cast<std::int64_t>(block_bounds_.size()) - 1;
  }

 private:
  explicit StateLayout(std::vector<Shape> shapes);
  std::vector<Shape> shapes_;
  std::vector<std::int64_t> offsets_;  ///< size()+1 entries, offsets_[0] == 0
  std::vector<std::int64_t> block_bounds_;  ///< num_blocks()+1 entries
  std::uint64_t hash_ = 0;
};

/// A model state: one contiguous float buffer laid out by a shared
/// StateLayout. Default-constructed states are *empty* (no layout, no data);
/// the FL substrate uses empty states as "client did not participate".
class FlatState {
 public:
  FlatState() = default;
  /// All-zero state of the given layout.
  explicit FlatState(std::shared_ptr<const StateLayout> layout);
  /// State adopting `values`; values.size() must equal layout->total().
  FlatState(std::shared_ptr<const StateLayout> layout, std::vector<float> values);

  /// Deep-copies the tensors into a fresh flat buffer (interop shim; the
  /// checkpoint v3 loader and tests use it).
  static FlatState from_tensors(std::span<const Tensor> tensors);

  [[nodiscard]] bool empty() const { return layout_ == nullptr; }
  /// Number of parameters (0 when empty). Mirrors the old vector<Tensor>
  /// call sites that sized states in parameters.
  [[nodiscard]] std::size_t size() const { return layout_ ? layout_->size() : 0; }
  /// Total scalar entries.
  [[nodiscard]] std::int64_t numel() const { return layout_ ? layout_->total() : 0; }
  [[nodiscard]] const std::shared_ptr<const StateLayout>& layout() const { return layout_; }

  /// The whole flat buffer.
  [[nodiscard]] std::span<float> data() { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const float> data() const { return {data_.data(), data_.size()}; }

  /// The slice of the buffer holding parameter i.
  [[nodiscard]] std::span<float> param(std::size_t i) {
    return data().subspan(static_cast<std::size_t>(layout_->offset(i)),
                          static_cast<std::size_t>(layout_->numel(i)));
  }
  [[nodiscard]] std::span<const float> param(std::size_t i) const {
    return data().subspan(static_cast<std::size_t>(layout_->offset(i)),
                          static_cast<std::size_t>(layout_->numel(i)));
  }

  /// Parameter i materialized as a standalone Tensor (deep copy).
  [[nodiscard]] Tensor tensor(std::size_t i) const;

  /// Flat element access (spans all parameters).
  [[nodiscard]] float at(std::int64_t i) const {
    return data_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] float& at(std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }

 private:
  std::shared_ptr<const StateLayout> layout_;
  std::vector<float> data_;
};

/// Deep-copied flat snapshot of the module's parameters. Builds a fresh
/// layout; hot loops should hoist StateLayout::of() once and use
/// snapshot_into() instead.
using ModelState = FlatState;

/// Snapshot of the module's current parameters.
ModelState state_of(Module& module);

/// Copies the module's parameters into `state` without allocating: `state`
/// must carry a layout matching the module (same shapes). Throws StateError
/// on mismatch.
void snapshot_into(Module& module, ModelState& state);

/// Writes a state into the module's parameters (single memcpy per
/// parameter). Shapes must match.
void load_state(Module& module, const ModelState& state);

/// All-zero state sharing `state`'s layout.
ModelState zeros_like(const ModelState& state);

/// y += a * x (elementwise over the flat buffers).
void axpy(ModelState& y, const ModelState& x, float a);

/// s *= factor.
void scale(ModelState& state, float factor);

/// a - b as a new state sharing a's layout.
ModelState subtract(const ModelState& a, const ModelState& b);

/// Euclidean norm over all entries.
double l2_norm(const ModelState& state);

/// ||a - b||_2 without materializing the difference (the resilient engine's
/// per-upload validation path). Bitwise-equal to l2_norm(subtract(a, b)).
double l2_distance(const ModelState& a, const ModelState& b);

/// True when every entry is finite (no NaN/Inf). The resilient FL engine
/// uses this to quarantine corrupted client uploads and to enforce that
/// aggregated global states stay finite.
bool all_finite(const ModelState& state);

/// Sum_i weights[i] * states[i]; weights need not be normalized by callers —
/// they are used as given (FedAvg passes |D_i|/|D|). Each output entry is
/// accumulated in double precision over the clients in index order, so many
/// small-weight clients do not lose low-order bits.
ModelState weighted_average(std::span<const ModelState> states, std::span<const float> weights);

/// Number of scalar entries.
std::int64_t state_numel(const ModelState& state);

/// Bytes occupied by the raw float payload (used for storage accounting).
std::int64_t state_bytes(const ModelState& state);

/// Binary (de)serialization, e.g. for checkpointing experiments. Writes
/// format v2 (magic + layout hash + shape manifest + contiguous payload);
/// deserialize_state also accepts the pre-FlatState v1 stream (count,
/// per-tensor rank/dims/floats) and throws StateError on truncated,
/// oversized, or shape-inconsistent input — never partial state.
std::vector<std::uint8_t> serialize_state(const ModelState& state);
ModelState deserialize_state(std::span<const std::uint8_t> bytes);

}  // namespace quickdrop::nn
