#include "nn/module.h"

namespace quickdrop::nn {

std::vector<ag::Var> Module::parameters() {
  std::vector<ag::Var> out;
  collect_parameters(out);
  return out;
}

std::int64_t Module::num_parameters() {
  std::int64_t n = 0;
  for (const auto& p : parameters()) n += p.value().numel();
  return n;
}

Sequential& Sequential::add(std::unique_ptr<Module> layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

ag::Var Sequential::forward(const ag::Var& input) {
  ag::Var x = input;
  for (const auto& layer : layers_) x = layer->forward(x);
  return x;
}

void Sequential::collect_parameters(std::vector<ag::Var>& out) {
  for (const auto& layer : layers_) layer->collect_parameters(out);
}

}  // namespace quickdrop::nn
