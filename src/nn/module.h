// Neural-network module abstraction over the autograd engine.
//
// Parameters are persistent leaf Vars owned by their module; each forward()
// builds a fresh graph referencing those leaves, so `ag::grad(loss,
// module.parameters())` yields parameter gradients and an optimizer mutates
// the leaf tensors in place.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "autograd/var.h"

namespace quickdrop::nn {

/// Base class for layers and models.
class Module {
 public:
  virtual ~Module() = default;

  /// Builds the forward graph for a batch input.
  virtual ag::Var forward(const ag::Var& input) = 0;

  /// Appends this module's parameter leaves to `out` in a stable order.
  virtual void collect_parameters(std::vector<ag::Var>& out) = 0;

  /// All parameter leaves, in a stable order.
  [[nodiscard]] std::vector<ag::Var> parameters();

  /// Total number of scalar parameters.
  [[nodiscard]] std::int64_t num_parameters();

  /// Convenience: forward on a raw tensor treated as constant input.
  ag::Var forward_tensor(const Tensor& input) { return forward(ag::Var::constant(input)); }
};

/// A chain of modules applied in order. Owns its children.
class Sequential final : public Module {
 public:
  Sequential() = default;

  /// Appends a layer; returns *this for chaining.
  Sequential& add(std::unique_ptr<Module> layer);

  ag::Var forward(const ag::Var& input) override;
  void collect_parameters(std::vector<ag::Var>& out) override;

  [[nodiscard]] std::size_t size() const { return layers_.size(); }
  [[nodiscard]] Module& layer(std::size_t i) { return *layers_.at(i); }

 private:
  std::vector<std::unique_ptr<Module>> layers_;
};

}  // namespace quickdrop::nn
