// Concrete layers: Linear, Conv2d, InstanceNorm2d, ReLU, AvgPool2d, Flatten.
//
// Conv2d is expressed as im2col + matmul and InstanceNorm2d is composed from
// elementwise/reduction primitives, so second-order gradients flow through
// every layer — a requirement for gradient-matching distillation.
#pragma once

#include "nn/module.h"
#include "util/rng.h"

namespace quickdrop::nn {

/// Fully connected layer: y = x W^T + b for x of shape [N, in].
class Linear final : public Module {
 public:
  Linear(int in_features, int out_features, Rng& rng);

  ag::Var forward(const ag::Var& input) override;
  void collect_parameters(std::vector<ag::Var>& out) override;

  [[nodiscard]] ag::Var& weight() { return weight_; }
  [[nodiscard]] ag::Var& bias() { return bias_; }

 private:
  ag::Var weight_;  // [out, in]
  ag::Var bias_;    // [out]
};

/// 2-D convolution on [N,C,H,W] input (square kernel, zero padding).
class Conv2d final : public Module {
 public:
  Conv2d(int in_channels, int out_channels, int kernel, int pad, int stride, Rng& rng);

  ag::Var forward(const ag::Var& input) override;
  void collect_parameters(std::vector<ag::Var>& out) override;

  [[nodiscard]] int out_channels() const { return out_channels_; }
  /// Weight leaf of shape [out_channels, in_channels*k*k].
  [[nodiscard]] ag::Var& weight() { return weight_; }
  [[nodiscard]] ag::Var& bias() { return bias_; }

 private:
  int in_channels_, out_channels_, kernel_, pad_, stride_;
  ag::Var weight_;  // [F, C*k*k]
  ag::Var bias_;    // [F]
};

/// Instance normalization over the spatial dims of [N,C,H,W], with learnable
/// per-channel affine parameters (matching the paper's ConvNet backbone).
class InstanceNorm2d final : public Module {
 public:
  explicit InstanceNorm2d(int channels, float eps = 1e-5f);

  ag::Var forward(const ag::Var& input) override;
  void collect_parameters(std::vector<ag::Var>& out) override;

 private:
  float eps_;
  ag::Var gamma_;  // [1,C,1,1]
  ag::Var beta_;   // [1,C,1,1]
};

/// Elementwise rectifier.
class ReLU final : public Module {
 public:
  ag::Var forward(const ag::Var& input) override { return ag::relu(input); }
  void collect_parameters(std::vector<ag::Var>&) override {}
};

/// Non-overlapping k-by-k average pooling; H and W must be divisible by k.
class AvgPool2d final : public Module {
 public:
  explicit AvgPool2d(int kernel);

  ag::Var forward(const ag::Var& input) override;
  void collect_parameters(std::vector<ag::Var>&) override {}

 private:
  int kernel_;
};

/// Collapses [N, ...] to [N, features].
class Flatten final : public Module {
 public:
  ag::Var forward(const ag::Var& input) override;
  void collect_parameters(std::vector<ag::Var>&) override {}
};

}  // namespace quickdrop::nn
