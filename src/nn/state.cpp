#include "nn/state.h"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace quickdrop::nn {

ModelState state_of(Module& module) {
  ModelState state;
  for (const auto& p : module.parameters()) state.push_back(p.value().clone());
  return state;
}

void load_state(Module& module, const ModelState& state) {
  auto params = module.parameters();
  if (params.size() != state.size()) {
    throw std::invalid_argument("load_state: parameter count mismatch");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i].mutable_value().copy_from(state[i]);
  }
}

ModelState zeros_like(const ModelState& state) {
  ModelState out;
  out.reserve(state.size());
  for (const auto& t : state) out.push_back(Tensor::zeros(t.shape()));
  return out;
}

void axpy(ModelState& y, const ModelState& x, float a) {
  if (y.size() != x.size()) throw std::invalid_argument("axpy: state size mismatch");
  for (std::size_t i = 0; i < y.size(); ++i) y[i].add_(x[i], a);
}

void scale(ModelState& state, float factor) {
  for (auto& t : state) t.scale_(factor);
}

ModelState subtract(const ModelState& a, const ModelState& b) {
  if (a.size() != b.size()) throw std::invalid_argument("subtract: state size mismatch");
  ModelState out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    Tensor t = a[i].clone();
    t.add_(b[i], -1.0f);
    out.push_back(std::move(t));
  }
  return out;
}

double l2_norm(const ModelState& state) {
  double acc = 0.0;
  for (const auto& t : state) {
    for (const float v : t.data()) acc += static_cast<double>(v) * v;
  }
  return std::sqrt(acc);
}

bool all_finite(const ModelState& state) {
  for (const auto& t : state) {
    for (const float v : t.data()) {
      if (!std::isfinite(v)) return false;
    }
  }
  return true;
}

ModelState weighted_average(std::span<const ModelState> states, std::span<const float> weights) {
  if (states.empty() || states.size() != weights.size()) {
    throw std::invalid_argument("weighted_average: need one weight per state");
  }
  ModelState out = zeros_like(states[0]);
  for (std::size_t i = 0; i < states.size(); ++i) axpy(out, states[i], weights[i]);
  return out;
}

std::int64_t state_numel(const ModelState& state) {
  std::int64_t n = 0;
  for (const auto& t : state) n += t.numel();
  return n;
}

std::int64_t state_bytes(const ModelState& state) {
  return state_numel(state) * static_cast<std::int64_t>(sizeof(float));
}

std::vector<std::uint8_t> serialize_state(const ModelState& state) {
  std::vector<std::uint8_t> bytes;
  auto put_u64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  put_u64(state.size());
  for (const auto& t : state) {
    put_u64(t.shape().size());
    for (const auto d : t.shape()) put_u64(static_cast<std::uint64_t>(d));
    const auto data = t.data();
    const auto offset = bytes.size();
    bytes.resize(offset + data.size() * sizeof(float));
    std::memcpy(bytes.data() + offset, data.data(), data.size() * sizeof(float));
  }
  return bytes;
}

ModelState deserialize_state(std::span<const std::uint8_t> bytes) {
  std::size_t pos = 0;
  auto get_u64 = [&]() -> std::uint64_t {
    if (pos + 8 > bytes.size()) throw std::invalid_argument("deserialize_state: truncated");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bytes[pos + static_cast<std::size_t>(i)]) << (8 * i);
    pos += 8;
    return v;
  };
  ModelState state;
  const auto count = get_u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto rank = get_u64();
    Shape shape(rank);
    for (auto& d : shape) d = static_cast<std::int64_t>(get_u64());
    Tensor t(shape);
    const auto nbytes = static_cast<std::size_t>(t.numel()) * sizeof(float);
    if (pos + nbytes > bytes.size()) throw std::invalid_argument("deserialize_state: truncated");
    std::memcpy(t.data().data(), bytes.data() + pos, nbytes);
    pos += nbytes;
    state.push_back(std::move(t));
  }
  if (pos != bytes.size()) throw std::invalid_argument("deserialize_state: trailing bytes");
  return state;
}

}  // namespace quickdrop::nn
