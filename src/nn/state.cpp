#include "nn/state.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <functional>
#include <utility>

#include "tensor/simd.h"
#include "util/thread_pool.h"

namespace quickdrop::nn {
namespace {

// Elementwise per-chunk work that weighted_average folds through its on-stack
// double scratch at a time. Sub-chunk boundaries cannot affect result bits:
// each element's accumulation chain is independent of where the cuts fall.
constexpr std::int64_t kWavgChunk = 2048;

// Hardening caps for deserialize_state. Generous (a state of 2^31 floats is
// 8 GiB) but finite, so a corrupted length field cannot drive a near-infinite
// allocation before the payload check fires.
constexpr std::uint64_t kMaxParams = 1u << 20;
constexpr std::uint64_t kMaxRank = 16;
constexpr std::int64_t kMaxTotalNumel = std::int64_t{1} << 31;

// Serialized-state format v2: magic ("QDFS" + version), layout hash, shape
// manifest, one contiguous float payload. v1 (the pre-FlatState stream:
// count, then per-tensor rank/dims/floats) is still accepted on read.
constexpr std::uint64_t kStateMagicV2 = 0x5144'4653'0000'0002ULL;  // "QDFS" v2

std::uint64_t fnv1a_begin() { return 0xcbf29ce484222325ULL; }

void fnv1a_u64(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= 0x100000001b3ULL;
  }
}

std::uint64_t hash_shapes(const std::vector<Shape>& shapes) {
  std::uint64_t h = fnv1a_begin();
  fnv1a_u64(h, shapes.size());
  for (const auto& shape : shapes) {
    fnv1a_u64(h, shape.size());
    for (const auto d : shape) fnv1a_u64(h, static_cast<std::uint64_t>(d));
  }
  return h;
}

void check_compatible(const FlatState& a, const FlatState& b, const char* context) {
  if (a.layout() == b.layout()) return;  // same manifest (or both empty)
  if (a.layout() && b.layout() && a.layout()->hash() == b.layout()->hash()) return;
  throw StateError(std::string(context) + ": state layout mismatch");
}

/// Sum of squares over the layout's hoisted fixed-block partition, combined
/// serially in block order.
double block_sum_squares(const StateLayout& layout,
                         const std::function<double(std::int64_t, std::int64_t)>& block_fn) {
  const std::int64_t num_blocks = layout.num_blocks();
  if (num_blocks == 0) return 0.0;
  const auto& bounds = layout.block_bounds();
  std::vector<double> partials(static_cast<std::size_t>(num_blocks), 0.0);
  ThreadPool::global().parallel_for(
      // qdlint: shared-write(each chunk writes its own disjoint partials[lo,hi) slice)
      0, num_blocks, 1, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t b = lo; b < hi; ++b) {
          partials[static_cast<std::size_t>(b)] =
              block_fn(bounds[static_cast<std::size_t>(b)], bounds[static_cast<std::size_t>(b) + 1]);
        }
      });
  double acc = 0.0;
  for (const double p : partials) acc += p;
  return acc;
}

}  // namespace

StateLayout::StateLayout(std::vector<Shape> shapes) : shapes_(std::move(shapes)) {
  offsets_.reserve(shapes_.size() + 1);
  offsets_.push_back(0);
  for (const auto& shape : shapes_) {
    offsets_.push_back(offsets_.back() + quickdrop::numel(shape));
  }
  hash_ = hash_shapes(shapes_);
  // Hoist the fixed-block partition once per layout: reductions and the
  // weighted-average fold reuse these bounds across clients and rounds
  // instead of re-deriving begin/end per call.
  const std::int64_t n = offsets_.back();
  block_bounds_.reserve(static_cast<std::size_t>(n / kStateBlock) + 2);
  for (std::int64_t b = 0; b < n; b += kStateBlock) block_bounds_.push_back(b);
  block_bounds_.push_back(n);
}

std::shared_ptr<const StateLayout> StateLayout::of(Module& module) {
  std::vector<Shape> shapes;
  for (const auto& p : module.parameters()) shapes.push_back(p.value().shape());
  return of_shapes(std::move(shapes));
}

std::shared_ptr<const StateLayout> StateLayout::of_shapes(std::vector<Shape> shapes) {
  return std::shared_ptr<const StateLayout>(new StateLayout(std::move(shapes)));
}

FlatState::FlatState(std::shared_ptr<const StateLayout> layout) : layout_(std::move(layout)) {
  if (!layout_) throw StateError("FlatState: null layout");
  data_.assign(static_cast<std::size_t>(layout_->total()), 0.0f);
}

FlatState::FlatState(std::shared_ptr<const StateLayout> layout, std::vector<float> values)
    : layout_(std::move(layout)), data_(std::move(values)) {
  if (!layout_) throw StateError("FlatState: null layout");
  if (static_cast<std::int64_t>(data_.size()) != layout_->total()) {
    throw StateError("FlatState: payload size does not match layout");
  }
}

FlatState FlatState::from_tensors(std::span<const Tensor> tensors) {
  std::vector<Shape> shapes;
  shapes.reserve(tensors.size());
  std::size_t total = 0;
  for (const auto& t : tensors) {
    shapes.push_back(t.shape());
    total += static_cast<std::size_t>(t.numel());
  }
  std::vector<float> values;
  values.reserve(total);
  for (const auto& t : tensors) {
    const auto d = t.data();
    values.insert(values.end(), d.begin(), d.end());
  }
  return {StateLayout::of_shapes(std::move(shapes)), std::move(values)};
}

Tensor FlatState::tensor(std::size_t i) const {
  Tensor t(layout_->shape(i));
  const auto src = param(i);
  std::memcpy(t.data().data(), src.data(), src.size() * sizeof(float));
  return t;
}

ModelState state_of(Module& module) {
  ModelState state{StateLayout::of(module)};
  snapshot_into(module, state);
  return state;
}

void snapshot_into(Module& module, ModelState& state) {
  auto params = module.parameters();
  if (state.empty() || params.size() != state.size()) {
    throw StateError("snapshot_into: state layout does not match module");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    const auto src = params[i].value().data();
    auto dst = state.param(i);
    if (src.size() != dst.size() ||
        params[i].value().shape() != state.layout()->shape(i)) {
      throw StateError("snapshot_into: parameter shape mismatch");
    }
    std::memcpy(dst.data(), src.data(), src.size() * sizeof(float));
  }
}

void load_state(Module& module, const ModelState& state) {
  auto params = module.parameters();
  if (params.size() != state.size()) {
    throw StateError("load_state: parameter count mismatch");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto dst = params[i].mutable_value().data();
    const auto src = state.param(i);
    if (src.size() != dst.size() ||
        params[i].value().shape() != state.layout()->shape(i)) {
      throw StateError("load_state: parameter shape mismatch");
    }
    std::memcpy(dst.data(), src.data(), src.size() * sizeof(float));
  }
}

ModelState zeros_like(const ModelState& state) {
  if (state.empty()) return {};
  return ModelState{state.layout()};
}

void axpy(ModelState& y, const ModelState& x, float a) {
  check_compatible(y, x, "axpy");
  auto yd = y.data();
  const auto xd = x.data();
  const auto& k = simd::active();
  ThreadPool::global().parallel_for(
      // qdlint: shared-write(each chunk writes its own disjoint yd[lo,hi) slice)
      0, y.numel(), grain_for(2), [&](std::int64_t lo, std::int64_t hi) {
        k.axpy(yd.data() + lo, xd.data() + lo, a, hi - lo);
      });
}

void scale(ModelState& state, float factor) {
  auto d = state.data();
  const auto& k = simd::active();
  ThreadPool::global().parallel_for(
      // qdlint: shared-write(each chunk writes its own disjoint d[lo,hi) slice)
      0, state.numel(), grain_for(1), [&](std::int64_t lo, std::int64_t hi) {
        k.scale(d.data() + lo, factor, hi - lo);
      });
}

ModelState subtract(const ModelState& a, const ModelState& b) {
  check_compatible(a, b, "subtract");
  if (a.empty()) return {};
  ModelState out{a.layout()};
  const auto ad = a.data(), bd = b.data();
  auto od = out.data();
  const auto& k = simd::active();
  ThreadPool::global().parallel_for(
      // qdlint: shared-write(each chunk writes its own disjoint od[lo,hi) slice)
      0, out.numel(), grain_for(2), [&](std::int64_t lo, std::int64_t hi) {
        k.subtract(od.data() + lo, ad.data() + lo, bd.data() + lo, hi - lo);
      });
  return out;
}

double l2_norm(const ModelState& state) {
  if (state.empty()) return 0.0;
  const auto d = state.data();
  const auto& k = simd::active();
  return std::sqrt(block_sum_squares(*state.layout(), [&](std::int64_t lo, std::int64_t hi) {
    return k.sum_squares(d.data() + lo, hi - lo);
  }));
}

double l2_distance(const ModelState& a, const ModelState& b) {
  check_compatible(a, b, "l2_distance");
  if (a.empty()) return 0.0;
  const auto ad = a.data(), bd = b.data();
  const auto& k = simd::active();
  // Per-element the float difference is formed first, then widened — the
  // same lane-structured fold as l2_norm over subtract(a, b), so the two
  // stay bitwise equal.
  return std::sqrt(block_sum_squares(*a.layout(), [&](std::int64_t lo, std::int64_t hi) {
    return k.sum_squared_diff(ad.data() + lo, bd.data() + lo, hi - lo);
  }));
}

bool all_finite(const ModelState& state) {
  const auto d = state.data();
  if (state.numel() == 0) return true;
  const auto& bounds = state.layout()->block_bounds();
  const std::int64_t num_blocks = state.layout()->num_blocks();
  std::vector<std::uint8_t> finite(static_cast<std::size_t>(num_blocks), 1);
  ThreadPool::global().parallel_for(
      // qdlint: shared-write(each chunk writes its own disjoint finite[lo,hi) slice)
      0, num_blocks, 1, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t b = lo; b < hi; ++b) {
          const std::int64_t begin = bounds[static_cast<std::size_t>(b)];
          const std::int64_t end = bounds[static_cast<std::size_t>(b) + 1];
          for (std::int64_t i = begin; i < end; ++i) {
            if (!std::isfinite(d[static_cast<std::size_t>(i)])) {
              finite[static_cast<std::size_t>(b)] = 0;
              break;
            }
          }
        }
      });
  for (const auto f : finite) {
    if (!f) return false;
  }
  return true;
}

ModelState weighted_average(std::span<const ModelState> states, std::span<const float> weights) {
  if (states.empty() || states.size() != weights.size()) {
    throw StateError("weighted_average: need one weight per state");
  }
  for (std::size_t i = 1; i < states.size(); ++i) {
    check_compatible(states[0], states[i], "weighted_average");
  }
  if (states[0].empty()) return {};
  ModelState out{states[0].layout()};
  const std::size_t k = states.size();
  std::vector<const float*> src(k);
  std::vector<double> w(k);
  for (std::size_t i = 0; i < k; ++i) {
    src[i] = states[i].data().data();
    w[i] = static_cast<double>(weights[i]);
  }
  auto od = out.data();
  const auto& kern = simd::active();
  // Parallelized over the layout's hoisted block plan (one partition reused
  // across clients and rounds). Each element is accumulated in double
  // precision over the clients in index order: the order is fixed and
  // independent of both the block cut and the dispatch path, so the result
  // is bitwise identical at any thread count, and small-weight clients keep
  // their low-order bits.
  const auto& bounds = out.layout()->block_bounds();
  ThreadPool::global().parallel_for(
      0, out.layout()->num_blocks(), 1,
      // qdlint: shared-write(each chunk writes its own disjoint od blocks; scratch is per-chunk)
      [&](std::int64_t b0, std::int64_t b1) {
        std::array<double, kWavgChunk> scratch;
        for (std::int64_t b = b0; b < b1; ++b) {
          const std::int64_t begin = bounds[static_cast<std::size_t>(b)];
          const std::int64_t end = bounds[static_cast<std::size_t>(b) + 1];
          for (std::int64_t lo = begin; lo < end; lo += kWavgChunk) {
            const std::int64_t len = std::min(end - lo, kWavgChunk);
            scratch.fill(0.0);
            for (std::size_t i = 0; i < k; ++i) {
              kern.wavg_fold(scratch.data(), src[i] + lo, w[i], len);
            }
            kern.wavg_store(od.data() + lo, scratch.data(), len);
          }
        }
      });
  return out;
}

std::int64_t state_numel(const ModelState& state) { return state.numel(); }

std::int64_t state_bytes(const ModelState& state) {
  return state.numel() * static_cast<std::int64_t>(sizeof(float));
}

std::vector<std::uint8_t> serialize_state(const ModelState& state) {
  std::vector<std::uint8_t> bytes;
  auto put_u64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  put_u64(kStateMagicV2);
  if (state.empty()) {
    put_u64(hash_shapes({}));
    put_u64(0);  // parameter count
    put_u64(0);  // total numel
    return bytes;
  }
  const auto& layout = *state.layout();
  put_u64(layout.hash());
  put_u64(layout.size());
  for (std::size_t i = 0; i < layout.size(); ++i) {
    const auto& shape = layout.shape(i);
    put_u64(shape.size());
    for (const auto d : shape) put_u64(static_cast<std::uint64_t>(d));
  }
  put_u64(static_cast<std::uint64_t>(layout.total()));
  const auto data = state.data();
  const auto offset = bytes.size();
  bytes.resize(offset + data.size() * sizeof(float));
  std::memcpy(bytes.data() + offset, data.data(), data.size() * sizeof(float));
  return bytes;
}

namespace {

/// Cursor over a little-endian byte stream with typed failures.
struct ByteReader {
  std::span<const std::uint8_t> bytes;
  std::size_t pos = 0;

  std::uint64_t u64(const char* what) {
    if (pos + 8 > bytes.size()) {
      throw StateError(std::string("deserialize_state: truncated reading ") + what);
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(bytes[pos + static_cast<std::size_t>(i)]) << (8 * i);
    }
    pos += 8;
    return v;
  }

  Shape shape() {
    const auto rank = u64("rank");
    if (rank > kMaxRank) throw StateError("deserialize_state: rank exceeds limit");
    Shape s(rank);
    for (auto& d : s) {
      const auto v = u64("dim");
      if (v > static_cast<std::uint64_t>(kMaxTotalNumel)) {
        throw StateError("deserialize_state: dimension exceeds limit");
      }
      d = static_cast<std::int64_t>(v);
    }
    return s;
  }
};

std::int64_t checked_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (const auto d : shape) {
    if (d < 0) throw StateError("deserialize_state: negative dimension");
    if (d > 0 && n > kMaxTotalNumel / d) {
      throw StateError("deserialize_state: state size overflows limit");
    }
    n *= d;
  }
  return n;
}

ModelState read_payload(ByteReader& r, std::vector<Shape> shapes, std::int64_t total) {
  std::vector<float> values(static_cast<std::size_t>(total));
  const std::size_t nbytes = values.size() * sizeof(float);
  if (r.pos + nbytes > r.bytes.size()) {
    throw StateError("deserialize_state: truncated payload");
  }
  std::memcpy(values.data(), r.bytes.data() + r.pos, nbytes);
  r.pos += nbytes;
  if (r.pos != r.bytes.size()) throw StateError("deserialize_state: trailing bytes");
  return {StateLayout::of_shapes(std::move(shapes)), std::move(values)};
}

ModelState deserialize_v2(ByteReader& r) {
  const auto stored_hash = r.u64("layout hash");
  const auto count = r.u64("parameter count");
  if (count > kMaxParams) throw StateError("deserialize_state: parameter count exceeds limit");
  std::vector<Shape> shapes;
  shapes.reserve(count);
  std::int64_t total = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    shapes.push_back(r.shape());
    const auto n = checked_numel(shapes.back());
    if (total > kMaxTotalNumel - n) {
      throw StateError("deserialize_state: state size overflows limit");
    }
    total += n;
  }
  const auto declared_total = r.u64("total numel");
  if (declared_total != static_cast<std::uint64_t>(total)) {
    throw StateError("deserialize_state: total numel does not match manifest");
  }
  if (stored_hash != hash_shapes(shapes)) {
    throw StateError("deserialize_state: layout hash mismatch");
  }
  if (count == 0) {
    if (r.pos != r.bytes.size()) throw StateError("deserialize_state: trailing bytes");
    return {};
  }
  return read_payload(r, std::move(shapes), total);
}

/// Pre-FlatState stream: count, then per-tensor (rank, dims..., floats).
ModelState deserialize_v1(ByteReader& r) {
  const auto count = r.u64("parameter count");
  if (count > kMaxParams) throw StateError("deserialize_state: parameter count exceeds limit");
  std::vector<Shape> shapes;
  std::vector<float> values;
  std::int64_t total = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    shapes.push_back(r.shape());
    const auto n = checked_numel(shapes.back());
    if (total > kMaxTotalNumel - n) {
      throw StateError("deserialize_state: state size overflows limit");
    }
    total += n;
    const std::size_t nbytes = static_cast<std::size_t>(n) * sizeof(float);
    if (r.pos + nbytes > r.bytes.size()) {
      throw StateError("deserialize_state: truncated payload");
    }
    const std::size_t old = values.size();
    values.resize(old + static_cast<std::size_t>(n));
    std::memcpy(values.data() + old, r.bytes.data() + r.pos, nbytes);
    r.pos += nbytes;
  }
  if (r.pos != r.bytes.size()) throw StateError("deserialize_state: trailing bytes");
  if (count == 0) return {};
  return {StateLayout::of_shapes(std::move(shapes)), std::move(values)};
}

}  // namespace

ModelState deserialize_state(std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  if (bytes.size() >= 8) {
    ByteReader peek{bytes};
    if (peek.u64("magic") == kStateMagicV2) {
      r.pos = 8;
      return deserialize_v2(r);
    }
  }
  return deserialize_v1(r);
}

}  // namespace quickdrop::nn
