#include "nn/convnet.h"

#include <stdexcept>

namespace quickdrop::nn {

void ConvNetConfig::validate() const {
  if (in_channels <= 0 || image_size <= 0 || num_classes <= 1 || width <= 0 || depth <= 0) {
    throw std::invalid_argument("ConvNetConfig: all fields must be positive (classes > 1)");
  }
  int spatial = image_size;
  for (int d = 0; d < depth; ++d) {
    if (spatial % 2 != 0) {
      throw std::invalid_argument("ConvNetConfig: image_size " + std::to_string(image_size) +
                                  " does not survive " + std::to_string(depth) + " halvings");
    }
    spatial /= 2;
  }
  if (spatial < 1) throw std::invalid_argument("ConvNetConfig: network pools to nothing");
}

int ConvNetConfig::final_spatial() const {
  int spatial = image_size;
  for (int d = 0; d < depth; ++d) spatial /= 2;
  return spatial;
}

std::unique_ptr<Sequential> make_convnet(const ConvNetConfig& config, Rng& rng) {
  config.validate();
  auto net = std::make_unique<Sequential>();
  int channels = config.in_channels;
  for (int d = 0; d < config.depth; ++d) {
    net->add(std::make_unique<Conv2d>(channels, config.width, /*kernel=*/3, /*pad=*/1,
                                      /*stride=*/1, rng));
    net->add(std::make_unique<InstanceNorm2d>(config.width));
    net->add(std::make_unique<ReLU>());
    net->add(std::make_unique<AvgPool2d>(2));
    channels = config.width;
  }
  net->add(std::make_unique<Flatten>());
  const int spatial = config.final_spatial();
  net->add(std::make_unique<Linear>(config.width * spatial * spatial, config.num_classes, rng));
  return net;
}

std::unique_ptr<Sequential> make_mlp(int in_features, int hidden, int out_features, Rng& rng) {
  auto net = std::make_unique<Sequential>();
  net->add(std::make_unique<Linear>(in_features, hidden, rng));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<Linear>(hidden, out_features, rng));
  return net;
}

}  // namespace quickdrop::nn
