// The paper's ConvNet backbone: D blocks of [Conv(W filters, 3x3, pad 1),
// InstanceNorm, ReLU, AvgPool(2)] followed by a linear classifier
// (Gidaris & Komodakis 2018, as used by QuickDrop and Zhao et al.).
#pragma once

#include <memory>

#include "nn/layers.h"
#include "nn/module.h"
#include "util/rng.h"

namespace quickdrop::nn {

/// Architecture hyperparameters of the ConvNet family.
struct ConvNetConfig {
  int in_channels = 3;
  int image_size = 12;  ///< square input resolution
  int num_classes = 10;
  int width = 16;   ///< filters per block (paper: 128)
  int depth = 2;    ///< number of blocks (paper: 3)

  /// Throws std::invalid_argument when the geometry is infeasible (e.g. the
  /// image does not survive `depth` halvings).
  void validate() const;

  /// Spatial resolution after all pooling stages.
  [[nodiscard]] int final_spatial() const;
};

/// Builds a ConvNet with freshly initialized parameters drawn from `rng`.
std::unique_ptr<Sequential> make_convnet(const ConvNetConfig& config, Rng& rng);

/// A tiny multilayer perceptron (Linear-ReLU-Linear); used by tests and by
/// the membership-inference attack model.
std::unique_ptr<Sequential> make_mlp(int in_features, int hidden, int out_features, Rng& rng);

}  // namespace quickdrop::nn
