// Streaming weighted-average accumulator over the flat parameter plane.
//
// `weighted_average` (state.h) is the *batch* merge: it needs every client
// state alive at once, so server memory grows linearly with cohort size. The
// StateAccumulator is the streaming counterpart: callers fold one update at a
// time into per-lane double accumulators and discard it, so a round's peak
// memory is O(lanes × params) regardless of how many clients report.
//
// Canonical fold order (the bitwise-determinism contract, DESIGN.md §16):
//
//   * The accumulator owns a fixed set of `lanes()` leaf lanes (kLanes == 64
//     canonically). Each fold targets one lane; within a lane, elements
//     accumulate in fold-call order through the same `wavg_fold` kernel chain
//     as weighted_average (acc[i] += w * (double)x[i]).
//   * finalize() combines the lanes bottom-up through a FIXED binary tree
//     (stride 1, 2, 4, ... pairwise double adds). A pair with one absent side
//     propagates the present buffer untouched — no arithmetic against zeros —
//     so the result bits depend only on (lane, fold order within lane), never
//     on how many lanes happen to be populated or how lanes are grouped into
//     shards above this layer (fl/shard_tree.h groups lanes into aligned
//     subtrees, which the fixed tree merges identically for any shard count).
//   * Every elementwise pass parallelizes over the thread pool; per-element
//     chains are independent of the chunk cut, so results are bitwise
//     identical at any --threads.
//
// A single-lane accumulator fed in client index order reproduces
// weighted_average's bits exactly (same per-element fold chain, same store
// rounding) — tests/nn/state_accumulator_test.cpp pins this.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/state.h"

namespace quickdrop::nn {

class StateAccumulator {
 public:
  /// Canonical leaf-lane count: the engine always folds through 64 lanes so
  /// the merge bits are invariant under the --shards topology knob.
  static constexpr int kLanes = 64;

  /// `lanes` must be a power of two in [1, kLanes]. Lane buffers are
  /// allocated lazily on first fold, so an accumulator only pays for the
  /// lanes its cohort actually lands in.
  explicit StateAccumulator(std::shared_ptr<const StateLayout> layout, int lanes = kLanes);

  [[nodiscard]] int lanes() const { return lanes_; }
  [[nodiscard]] const std::shared_ptr<const StateLayout>& layout() const { return layout_; }

  /// acc_lane[i] += weight * (double)state[i] over the whole flat buffer.
  /// Weights are used as given (raw |D_c| in the streaming engine, where the
  /// normalizer is only known after the last fold — see finalize_scaled).
  void fold(const ModelState& state, double weight, int lane = 0);

  /// Same fold restricted to the flat sub-range [offset, offset + len):
  /// the quantized-transport decode path reconstructs one wire block at a
  /// time and folds it here without ever materializing a full fp32 state.
  /// Per-element the chain is identical to fold(), so folding a state block
  /// by block (each element exactly once) produces the same bits.
  void fold_range(int lane, std::int64_t offset, const float* x, std::int64_t len, double weight);

  /// True when `lane` has received at least one fold since reset().
  [[nodiscard]] bool lane_used(int lane) const;
  /// Whole-state fold() calls since reset() (fold_range is not counted; the
  /// shard tree tracks per-client counts itself).
  [[nodiscard]] std::int64_t folds() const { return folds_; }

  /// Collapses the lane tree and rounds the root to float: o[i] = (float)acc[i].
  /// Bitwise-equal to weighted_average for a single-lane accumulator fed in
  /// index order. Throws StateError when nothing was folded. The accumulator
  /// is consumed: fold again only after reset().
  ModelState finalize();

  /// Collapse, then o[i] = (float)(acc[i] * scale) in one pass — the
  /// streaming finalize for raw-weight folds (scale = 1 / total_weight).
  ModelState finalize_scaled(double scale);

  /// Re-zeroes every allocated lane (allocations are kept for reuse across
  /// rounds) and re-arms folding after a finalize.
  void reset();

  /// Bytes held in lane buffers — the bench's peak-memory accounting.
  [[nodiscard]] std::int64_t memory_bytes() const;

 private:
  std::vector<double>& lane_buffer(int lane);
  void check_lane(int lane) const;
  /// Runs the fixed binary-tree combine; afterwards lane 0 holds the root.
  /// Returns false when no lane was populated.
  bool collapse();

  std::shared_ptr<const StateLayout> layout_;
  std::int64_t total_ = 0;
  int lanes_ = kLanes;
  std::vector<std::vector<double>> buffers_;  ///< lazily allocated, one per lane
  std::vector<std::uint8_t> present_;         ///< lane received a fold since reset
  std::int64_t folds_ = 0;
  bool finalized_ = false;
};

}  // namespace quickdrop::nn
