// Stochastic gradient descent / ascent over parameter leaves.
#pragma once

#include <vector>

#include "autograd/var.h"

namespace quickdrop::nn {

/// Direction of an SGD update. Ascent implements the paper's SGA unlearning
/// steps (Algorithm 1, phase `unlearn`).
enum class UpdateDirection { kDescent, kAscent };

/// SGD with optional classical momentum (Zhao et al. distill synthetic
/// pixels with momentum 0.5). Holds references (Var handles) to the
/// parameters it updates.
class Sgd {
 public:
  Sgd(std::vector<ag::Var> parameters, float learning_rate, float momentum = 0.0f);

  /// Applies one update: v <- mu*v + g; p <- p -/+ lr * v. `gradients` must
  /// align with the parameter list passed at construction.
  void step(const std::vector<ag::Var>& gradients,
            UpdateDirection direction = UpdateDirection::kDescent);

  /// Same, with raw tensors.
  // NOLINTNEXTLINE(qdlint-api-flatstate): gradient list, not a model state
  void step_tensors(const std::vector<Tensor>& gradients,
                    UpdateDirection direction = UpdateDirection::kDescent);

  [[nodiscard]] float learning_rate() const { return learning_rate_; }
  void set_learning_rate(float lr) { learning_rate_ = lr; }
  [[nodiscard]] float momentum() const { return momentum_; }

 private:
  std::vector<ag::Var> parameters_;
  float learning_rate_;
  float momentum_;
  // Per-parameter momentum buffers, not a model state. NOLINTNEXTLINE(qdlint-api-flatstate)
  std::vector<Tensor> velocity_;  // lazily initialized on first step
};

}  // namespace quickdrop::nn
