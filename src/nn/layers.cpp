#include "nn/layers.h"

#include <cmath>
#include <stdexcept>

namespace quickdrop::nn {
namespace {

/// Kaiming-style initialization: N(0, sqrt(2 / fan_in)).
Tensor kaiming(Shape shape, std::int64_t fan_in, Rng& rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return Tensor::randn(std::move(shape), rng, stddev);
}

}  // namespace

Linear::Linear(int in_features, int out_features, Rng& rng)
    : weight_(ag::Var::leaf(kaiming({out_features, in_features}, in_features, rng))),
      bias_(ag::Var::leaf(Tensor::zeros({out_features}))) {
  if (in_features <= 0 || out_features <= 0) {
    throw std::invalid_argument("Linear: features must be positive");
  }
}

ag::Var Linear::forward(const ag::Var& input) {
  if (input.shape().size() != 2) {
    throw std::invalid_argument("Linear: input must be [N, in], got " +
                                shape_to_string(input.shape()));
  }
  return ag::add(ag::matmul(input, ag::transpose(weight_)), bias_);
}

void Linear::collect_parameters(std::vector<ag::Var>& out) {
  out.push_back(weight_);
  out.push_back(bias_);
}

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, int pad, int stride, Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      pad_(pad),
      stride_(stride),
      weight_(ag::Var::leaf(kaiming({out_channels, in_channels * kernel * kernel},
                                    static_cast<std::int64_t>(in_channels) * kernel * kernel,
                                    rng))),
      bias_(ag::Var::leaf(Tensor::zeros({out_channels}))) {
  if (in_channels <= 0 || out_channels <= 0 || kernel <= 0 || pad < 0 || stride <= 0) {
    throw std::invalid_argument("Conv2d: bad geometry");
  }
}

ag::Var Conv2d::forward(const ag::Var& input) {
  const auto& s = input.shape();
  if (s.size() != 4 || s[1] != in_channels_) {
    throw std::invalid_argument("Conv2d: input must be [N," + std::to_string(in_channels_) +
                                ",H,W], got " + shape_to_string(s));
  }
  const std::int64_t n = s[0], h = s[2], w = s[3];
  const std::int64_t oh = (h + 2 * pad_ - kernel_) / stride_ + 1;
  const std::int64_t ow = (w + 2 * pad_ - kernel_) / stride_ + 1;
  const ag::Var cols = ag::im2col(input, kernel_, pad_, stride_);  // [C*k*k, N*OH*OW]
  ag::Var out = ag::matmul(weight_, cols);                          // [F, N*OH*OW]
  out = ag::reshape(out, {out_channels_, n, oh, ow});
  out = ag::permute(out, {1, 0, 2, 3});                             // [N,F,OH,OW]
  return ag::add(out, ag::reshape(bias_, {1, out_channels_, 1, 1}));
}

void Conv2d::collect_parameters(std::vector<ag::Var>& out) {
  out.push_back(weight_);
  out.push_back(bias_);
}

InstanceNorm2d::InstanceNorm2d(int channels, float eps)
    : eps_(eps),
      gamma_(ag::Var::leaf(Tensor::ones({1, channels, 1, 1}))),
      beta_(ag::Var::leaf(Tensor::zeros({1, channels, 1, 1}))) {
  if (channels <= 0) throw std::invalid_argument("InstanceNorm2d: channels must be positive");
}

ag::Var InstanceNorm2d::forward(const ag::Var& input) {
  const auto& s = input.shape();
  if (s.size() != 4) {
    throw std::invalid_argument("InstanceNorm2d: input must be [N,C,H,W], got " +
                                shape_to_string(s));
  }
  const std::int64_t n = s[0], c = s[1], h = s[2], w = s[3];
  const float inv_hw = 1.0f / static_cast<float>(h * w);
  const Shape stat_shape{n, c, 1, 1};
  const ag::Var mean = ag::mul_scalar(ag::reduce_sum_to(input, stat_shape), inv_hw);
  const ag::Var centered = ag::sub(input, mean);
  const ag::Var var = ag::mul_scalar(ag::reduce_sum_to(ag::square(centered), stat_shape), inv_hw);
  const ag::Var inv_std = ag::div(ag::scalar(1.0f), ag::sqrt(ag::add_scalar(var, eps_)));
  const ag::Var normalized = ag::mul(centered, inv_std);
  return ag::add(ag::mul(normalized, gamma_), beta_);
}

void InstanceNorm2d::collect_parameters(std::vector<ag::Var>& out) {
  out.push_back(gamma_);
  out.push_back(beta_);
}

AvgPool2d::AvgPool2d(int kernel) : kernel_(kernel) {
  if (kernel <= 0) throw std::invalid_argument("AvgPool2d: kernel must be positive");
}

ag::Var AvgPool2d::forward(const ag::Var& input) {
  const auto& s = input.shape();
  if (s.size() != 4 || s[2] % kernel_ != 0 || s[3] % kernel_ != 0) {
    throw std::invalid_argument("AvgPool2d: input " + shape_to_string(s) +
                                " not divisible by kernel " + std::to_string(kernel_));
  }
  const std::int64_t n = s[0], c = s[1], oh = s[2] / kernel_, ow = s[3] / kernel_;
  // [N,C,H,W] -> [N,C,OH,k,OW,k] is a contiguous reinterpretation; averaging
  // over the two k axes is then a reduction, so pooling composes from
  // reshape + reduce and needs no dedicated primitive.
  ag::Var x = ag::reshape(input, {n, c, oh, kernel_, ow, kernel_});
  x = ag::reduce_sum_to(x, {n, c, oh, 1, ow, 1});
  x = ag::reshape(x, {n, c, oh, ow});
  return ag::mul_scalar(x, 1.0f / static_cast<float>(kernel_ * kernel_));
}

ag::Var Flatten::forward(const ag::Var& input) {
  const auto& s = input.shape();
  if (s.empty()) throw std::invalid_argument("Flatten: scalar input");
  std::int64_t features = 1;
  for (std::size_t i = 1; i < s.size(); ++i) features *= s[i];
  return ag::reshape(input, {s[0], features});
}

}  // namespace quickdrop::nn
