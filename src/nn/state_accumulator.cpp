#include "nn/state_accumulator.h"

#include <algorithm>
#include <string>
#include <utility>

#include "tensor/simd.h"
#include "util/thread_pool.h"

namespace quickdrop::nn {

namespace {

bool is_pow2(int v) { return v > 0 && (v & (v - 1)) == 0; }

}  // namespace

StateAccumulator::StateAccumulator(std::shared_ptr<const StateLayout> layout, int lanes)
    : layout_(std::move(layout)), lanes_(lanes) {
  if (!layout_) throw StateError("StateAccumulator: null layout");
  if (!is_pow2(lanes_) || lanes_ > kLanes) {
    throw StateError("StateAccumulator: lanes must be a power of two in [1, " +
                     std::to_string(kLanes) + "], got " + std::to_string(lanes_));
  }
  total_ = layout_->total();
  buffers_.resize(static_cast<std::size_t>(lanes_));
  present_.assign(static_cast<std::size_t>(lanes_), 0);
}

void StateAccumulator::check_lane(int lane) const {
  if (lane < 0 || lane >= lanes_) {
    throw StateError("StateAccumulator: lane " + std::to_string(lane) + " out of [0, " +
                     std::to_string(lanes_) + ")");
  }
  if (finalized_) {
    throw StateError("StateAccumulator: fold after finalize (reset() first)");
  }
}

std::vector<double>& StateAccumulator::lane_buffer(int lane) {
  auto& buf = buffers_[static_cast<std::size_t>(lane)];
  if (buf.empty() && total_ > 0) buf.assign(static_cast<std::size_t>(total_), 0.0);
  return buf;
}

void StateAccumulator::fold(const ModelState& state, double weight, int lane) {
  check_lane(lane);
  if (state.layout() != layout_ &&
      (!state.layout() || state.layout()->hash() != layout_->hash())) {
    throw StateError("StateAccumulator::fold: state layout mismatch");
  }
  auto& buf = lane_buffer(lane);
  const auto xd = state.data();
  const auto& kern = simd::active();
  ThreadPool::global().parallel_for(
      // qdlint: shared-write(each chunk writes its own disjoint buf[lo,hi) slice)
      0, total_, grain_for(2), [&](std::int64_t lo, std::int64_t hi) {
        kern.wavg_fold(buf.data() + lo, xd.data() + lo, weight, hi - lo);
      });
  present_[static_cast<std::size_t>(lane)] = 1;
  ++folds_;
}

void StateAccumulator::fold_range(int lane, std::int64_t offset, const float* x,
                                  std::int64_t len, double weight) {
  check_lane(lane);
  if (offset < 0 || len < 0 || offset + len > total_) {
    throw StateError("StateAccumulator::fold_range: range out of bounds");
  }
  if (len == 0) return;
  auto& buf = lane_buffer(lane);
  simd::active().wavg_fold(buf.data() + offset, x, weight, len);
  present_[static_cast<std::size_t>(lane)] = 1;
}

bool StateAccumulator::lane_used(int lane) const {
  if (lane < 0 || lane >= lanes_) return false;
  return present_[static_cast<std::size_t>(lane)] != 0;
}

bool StateAccumulator::collapse() {
  const auto& kern = simd::active();
  auto& pool = ThreadPool::global();
  for (int stride = 1; stride < lanes_; stride *= 2) {
    for (int i = 0; i + stride < lanes_; i += 2 * stride) {
      const auto a = static_cast<std::size_t>(i);
      const auto b = static_cast<std::size_t>(i + stride);
      if (!present_[b]) continue;
      if (!present_[a]) {
        // Absent-side propagation: move the buffer, never add against zeros
        // (keeps -0.0 / NaN payloads and, more importantly, keeps the combine
        // independent of which lanes happen to be populated).
        buffers_[a].swap(buffers_[b]);
        present_[a] = 1;
        present_[b] = 0;
        continue;
      }
      double* acc = buffers_[a].data();
      const double* x = buffers_[b].data();
      pool.parallel_for(
          // qdlint: shared-write(each chunk writes its own disjoint acc[lo,hi) slice)
          0, total_, grain_for(1), [&](std::int64_t lo, std::int64_t hi) {
            kern.dadd(acc + lo, x + lo, hi - lo);
          });
      present_[b] = 0;
    }
  }
  return present_[0] != 0;
}

ModelState StateAccumulator::finalize() {
  if (!collapse()) throw StateError("StateAccumulator::finalize: no updates folded");
  finalized_ = true;
  ModelState out{layout_};
  auto od = out.data();
  const double* acc = buffers_[0].data();
  const auto& kern = simd::active();
  ThreadPool::global().parallel_for(
      // qdlint: shared-write(each chunk writes its own disjoint od[lo,hi) slice)
      0, total_, grain_for(1), [&](std::int64_t lo, std::int64_t hi) {
        kern.wavg_store(od.data() + lo, acc + lo, hi - lo);
      });
  return out;
}

ModelState StateAccumulator::finalize_scaled(double scale) {
  if (!collapse()) throw StateError("StateAccumulator::finalize_scaled: no updates folded");
  finalized_ = true;
  ModelState out{layout_};
  auto od = out.data();
  const double* acc = buffers_[0].data();
  const auto& kern = simd::active();
  ThreadPool::global().parallel_for(
      // qdlint: shared-write(each chunk writes its own disjoint od[lo,hi) slice)
      0, total_, grain_for(1), [&](std::int64_t lo, std::int64_t hi) {
        kern.dscale_store(od.data() + lo, acc + lo, scale, hi - lo);
      });
  return out;
}

void StateAccumulator::reset() {
  for (auto& buf : buffers_) {
    if (!buf.empty()) std::fill(buf.begin(), buf.end(), 0.0);
  }
  std::fill(present_.begin(), present_.end(), 0);
  folds_ = 0;
  finalized_ = false;
}

std::int64_t StateAccumulator::memory_bytes() const {
  std::int64_t bytes = 0;
  for (const auto& buf : buffers_) {
    bytes += static_cast<std::int64_t>(buf.size() * sizeof(double));
  }
  return bytes;
}

}  // namespace quickdrop::nn
