// Crash-safe single-file key/value store for durable QuickDrop state.
//
// One store file holds every durable artifact of a deployment — full
// checkpoints, mid-request unlearn cursors, per-client synthetic stores,
// round-level training cursors — as records keyed by
// (StateLayout hash, record kind, round/request cursor). On disk the file is
// an append-only sequence of fixed-size CRC'd pages (store/pager.h):
//
//   transaction = [data pages...][index pages][commit page]
//
// A commit is two-phase: (1) append the new data pages and a full index
// snapshot, fsync; (2) append a single commit page naming the index snapshot
// (sequence number, page range, byte length, CRC64), fsync. Recovery-on-open
// scans BACKWARD from the end of the file to the youngest commit page whose
// checksum verifies AND whose entire reachable state (index pages, every
// record's data pages, every record's value CRC) verifies, then discards the
// torn tail. A crash — or a torn write, or a flipped bit — at ANY byte
// offset therefore reopens to exactly the last fully-committed state; the
// kill-point harness in tests/store/crash_sweep_test.cpp sweeps every write
// and fsync of a multi-commit sequence to prove it.
//
// Identical page contents are stored once (content-digest dedup), so e.g.
// round-level checkpoints whose synthetic stores did not change between
// rounds share those pages across commits. vacuum() rewrites the live
// records into a fresh file and atomically renames it over the store,
// reclaiming dead pages. See DESIGN.md §12 for the full format.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "store/io.h"
#include "store/pager.h"

namespace quickdrop::store {

/// Record key: which deployment (layout hash), what kind of record, and the
/// position in that record stream (round index, request cursor, client id —
/// kind-specific). Kinds are opaque to the store; quickdrop's assignments
/// live in core/checkpoint.h.
struct Key {
  std::uint64_t layout_hash = 0;
  std::uint32_t kind = 0;
  std::uint64_t cursor = 0;

  friend bool operator<(const Key& a, const Key& b) {
    if (a.layout_hash != b.layout_hash) return a.layout_hash < b.layout_hash;
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.cursor < b.cursor;
  }
  friend bool operator==(const Key& a, const Key& b) {
    return a.layout_hash == b.layout_hash && a.kind == b.kind && a.cursor == b.cursor;
  }
};

struct StoreStats {
  std::uint64_t committed_seq = 0;  ///< 0 = nothing committed yet
  std::uint64_t file_pages = 0;     ///< pages the file holds
  std::uint64_t live_pages = 0;     ///< unique pages reachable from the index
  std::uint64_t records = 0;
};

struct VacuumStats {
  std::uint64_t pages_before = 0;
  std::uint64_t pages_after = 0;
  [[nodiscard]] std::int64_t bytes_reclaimed() const {
    return (static_cast<std::int64_t>(pages_before) - static_cast<std::int64_t>(pages_after)) *
           static_cast<std::int64_t>(kPageSize);
  }
};

class Store {
 public:
  /// Opens (creating if absent) the store at `path`, running recovery: the
  /// youngest fully-verifiable commit wins, torn tails are discarded. Every
  /// file handle — including vacuum scratch files and reopen-after-vacuum —
  /// is created through `factory`, so tests can interpose FaultyIo at any
  /// point. Throws StoreError on unrecoverable I/O failure (corruption is
  /// recovered from, not thrown).
  explicit Store(std::string path, IoFactory factory = file_io_factory());

  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;
  Store(Store&&) = default;
  Store& operator=(Store&&) = default;

  /// Stages `value` under `key` (replacing any previous value). Pages are
  /// appended immediately; the entry becomes durable at the next commit().
  void put(const Key& key, std::span<const std::uint8_t> value);

  [[nodiscard]] bool contains(const Key& key) const { return index_.count(key) > 0; }

  /// Reads a record back, verifying every page CRC and the whole-value CRC.
  /// Throws StoreError when absent or corrupt.
  [[nodiscard]] std::vector<std::uint8_t> get(const Key& key);

  /// Removes `key` from the index (durable at the next commit). Returns
  /// whether it was present. Dead pages are reclaimed by vacuum().
  bool erase(const Key& key);

  /// Two-phase commit of all staged changes: data+index fsync, then commit
  /// record fsync. After commit() returns, the state survives any crash.
  void commit();

  /// All keys, sorted.
  [[nodiscard]] std::vector<Key> keys() const;

  /// The highest-cursor key with this (layout_hash, kind), if any — "the
  /// latest checkpoint", "the latest unlearn cursor".
  [[nodiscard]] std::optional<Key> latest(std::uint64_t layout_hash, std::uint32_t kind) const;

  /// Rewrites live records into `<path>.vacuum`, fsyncs, atomically renames
  /// it over the store and reopens. A crash before the rename leaves the
  /// original store untouched. Uncommitted staged changes are committed
  /// first.
  VacuumStats vacuum();

  [[nodiscard]] StoreStats stats();
  [[nodiscard]] std::uint64_t committed_seq() const { return seq_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// True when `path` exists and starts with the store page magic —
  /// distinguishes store files from legacy blob checkpoints. A prefix of the
  /// magic (a first-page torn write) also counts.
  static bool sniff(const std::string& path);

 private:
  struct Entry {
    std::uint64_t value_len = 0;
    std::uint64_t value_crc = 0;
    std::vector<std::uint64_t> pages;
  };
  /// Content digest of one page payload; equal digests => identical content
  /// for dedup purposes (128 bits of independent checksum + the length).
  struct Digest {
    std::uint64_t crc = 0;
    std::uint64_t fnv = 0;
    std::uint64_t len = 0;
    friend bool operator<(const Digest& a, const Digest& b) {
      if (a.crc != b.crc) return a.crc < b.crc;
      if (a.fnv != b.fnv) return a.fnv < b.fnv;
      return a.len < b.len;
    }
  };

  void open();
  /// Tries to adopt the commit page at `id`; returns false when anything
  /// reachable from it fails verification.
  bool try_recover_commit(std::uint64_t id);
  std::vector<std::uint8_t> read_value(const Entry& entry);
  std::uint64_t append_chunk(std::span<const std::uint8_t> chunk);

  std::string path_;
  IoFactory factory_;
  std::unique_ptr<Io> io_;
  std::unique_ptr<Pager> pager_;
  std::map<Key, Entry> index_;
  std::map<Digest, std::uint64_t> dedup_;
  std::uint64_t seq_ = 0;
};

}  // namespace quickdrop::store
