#include "store/store.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <set>
#include <utility>

#include "util/crc64.h"

namespace quickdrop::store {
namespace {

// Index snapshot payload ("QDIX"): the complete key->entry map, serialized in
// key order, chunked across kIndex pages. A commit page ("QDCM") names the
// snapshot's page range plus its byte length and CRC64, so recovery can tell
// a genuine snapshot from stale pages that happen to sit at the same ids.
constexpr std::uint32_t kIndexMagic = 0x58494451;   // "QDIX"
constexpr std::uint32_t kCommitMagic = 0x4D434451;  // "QDCM"
constexpr std::size_t kCommitPayloadSize = 4 + 8 + 8 + 8 + 8 + 8;

// Parsing caps: a corrupt count field must yield a typed error, not an
// attempt to allocate petabytes.
constexpr std::uint64_t kMaxIndexEntries = 1ull << 22;
constexpr std::uint64_t kMaxPagesPerEntry = 1ull << 28;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

class Cursor {
 public:
  Cursor(std::span<const std::uint8_t> bytes, const char* what)
      : bytes_(bytes), what_(what) {}

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bytes_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }

  [[nodiscard]] bool done() const { return pos_ == bytes_.size(); }

 private:
  void need(std::size_t n) {
    if (bytes_.size() - pos_ < n) {
      throw StoreError(std::string("store: truncated ") + what_);
    }
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  const char* what_;
};

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

Store::Store(std::string path, IoFactory factory)
    : path_(std::move(path)), factory_(std::move(factory)) {
  io_ = factory_(path_);
  pager_ = std::make_unique<Pager>(*io_);
  open();
}

bool Store::sniff(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");  // NOLINT(api-durable-io): read-only probe
  if (f == nullptr) return false;
  std::uint8_t head[4] = {0, 0, 0, 0};
  const std::size_t got = std::fread(head, 1, sizeof(head), f);
  std::fclose(f);
  if (got == 0) return false;
  for (std::size_t i = 0; i < got && i < 4; ++i) {
    if (head[i] != static_cast<std::uint8_t>(kPageMagic >> (8 * i))) return false;
  }
  return true;
}

void Store::open() {
  index_.clear();
  dedup_.clear();
  seq_ = 0;
  const std::uint64_t pages = pager_->file_pages();
  pager_->set_next_page(0);
  // Scan backward: the youngest commit whose whole reachable state verifies
  // wins. A store that crashed mid-transaction has only a dead tail after its
  // last commit, so this loop normally stops within a few pages.
  for (std::uint64_t id = pages; id-- > 0;) {
    if (try_recover_commit(id)) {
      pager_->set_next_page(id + 1);
      // Discard the torn tail so the file ends exactly at the commit record.
      io_->truncate((id + 1) * kPageSize);
      return;
    }
  }
  // No valid commit anywhere: empty store. The file (possibly a torn
  // first-ever transaction) is overwritten from page 0 by future appends.
}

bool Store::try_recover_commit(std::uint64_t id) {
  try {
    const Page page = pager_->read(id);
    if (page.kind != PageKind::kCommit) return false;
    if (page.payload.size() != kCommitPayloadSize) return false;
    Cursor commit(page.payload, "commit record");
    if (commit.u32() != kCommitMagic) return false;
    const std::uint64_t seq = commit.u64();
    const std::uint64_t index_start = commit.u64();
    const std::uint64_t index_pages = commit.u64();
    const std::uint64_t index_len = commit.u64();
    const std::uint64_t index_crc = commit.u64();
    if (index_pages == 0 || index_start + index_pages != id) return false;
    if (index_len > index_pages * kPagePayload) return false;

    // Reassemble and checksum the index snapshot.
    std::vector<std::uint8_t> snapshot;
    snapshot.reserve(index_len);
    for (std::uint64_t p = 0; p < index_pages; ++p) {
      const std::vector<std::uint8_t> chunk =
          pager_->read_expect(index_start + p, PageKind::kIndex);
      snapshot.insert(snapshot.end(), chunk.begin(), chunk.end());
    }
    if (snapshot.size() != index_len) return false;
    if (crc64(snapshot) != index_crc) return false;

    Cursor in(snapshot, "index snapshot");
    if (in.u32() != kIndexMagic) return false;
    const std::uint64_t count = in.u64();
    if (count > kMaxIndexEntries) return false;
    std::map<Key, Entry> index;
    for (std::uint64_t i = 0; i < count; ++i) {
      Key key;
      key.layout_hash = in.u64();
      key.kind = in.u32();
      key.cursor = in.u64();
      Entry entry;
      entry.value_len = in.u64();
      entry.value_crc = in.u64();
      const std::uint64_t n_pages = in.u64();
      if (n_pages > kMaxPagesPerEntry) return false;
      entry.pages.reserve(static_cast<std::size_t>(n_pages));
      for (std::uint64_t p = 0; p < n_pages; ++p) {
        const std::uint64_t data_page = in.u64();
        if (data_page >= id) return false;  // data must precede the commit
        entry.pages.push_back(data_page);
      }
      if (!index.emplace(key, std::move(entry)).second) return false;  // dup key
    }
    if (!in.done()) return false;

    // Verify every record end-to-end (page CRCs + whole-value CRC) and build
    // the dedup map from live pages as we go. This is what protects against
    // stale commit pages in the dead tail: a commit whose data was since
    // overwritten cannot pass, and recovery falls back to an older commit.
    std::map<Digest, std::uint64_t> dedup;
    for (auto& [key, entry] : index) {
      std::vector<std::uint8_t> value;
      value.reserve(static_cast<std::size_t>(entry.value_len));
      for (std::uint64_t data_page : entry.pages) {
        const std::vector<std::uint8_t> chunk =
            pager_->read_expect(data_page, PageKind::kData);
        dedup.emplace(Digest{crc64(chunk), fnv1a(chunk), chunk.size()}, data_page);
        value.insert(value.end(), chunk.begin(), chunk.end());
      }
      if (value.size() != entry.value_len) return false;
      if (crc64(value) != entry.value_crc) return false;
    }

    seq_ = seq;
    index_ = std::move(index);
    dedup_ = std::move(dedup);
    return true;
  } catch (const StoreError&) {
    return false;  // torn/corrupt candidate: keep scanning backward
  }
}

std::uint64_t Store::append_chunk(std::span<const std::uint8_t> chunk) {
  const Digest digest{crc64(chunk), fnv1a(chunk), chunk.size()};
  const auto it = dedup_.find(digest);
  if (it != dedup_.end()) return it->second;
  const std::uint64_t id = pager_->append(PageKind::kData, chunk);
  dedup_.emplace(digest, id);
  return id;
}

void Store::put(const Key& key, std::span<const std::uint8_t> value) {
  Entry entry;
  entry.value_len = value.size();
  entry.value_crc = crc64(value);
  // Fixed chunking (full pages + tail) keeps page boundaries stable across
  // versions of a record, so unchanged sections dedup between commits.
  for (std::size_t off = 0; off < value.size(); off += kPagePayload) {
    const std::size_t len = std::min<std::size_t>(kPagePayload, value.size() - off);
    entry.pages.push_back(append_chunk(value.subspan(off, len)));
  }
  if (value.empty()) {
    // An empty value still needs a durable existence proof: one empty page.
    entry.pages.push_back(append_chunk(value));
  }
  index_[key] = std::move(entry);
}

std::vector<std::uint8_t> Store::read_value(const Entry& entry) {
  std::vector<std::uint8_t> value;
  value.reserve(static_cast<std::size_t>(entry.value_len));
  for (std::uint64_t page : entry.pages) {
    const std::vector<std::uint8_t> chunk = pager_->read_expect(page, PageKind::kData);
    value.insert(value.end(), chunk.begin(), chunk.end());
  }
  if (value.size() != entry.value_len) {
    throw StoreError("store: record length mismatch (" + std::to_string(value.size()) +
                     " vs " + std::to_string(entry.value_len) + ")");
  }
  if (crc64(value) != entry.value_crc) {
    throw StoreError("store: record CRC mismatch");
  }
  return value;
}

std::vector<std::uint8_t> Store::get(const Key& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    throw StoreError("store: no record for key (layout " + std::to_string(key.layout_hash) +
                     ", kind " + std::to_string(key.kind) + ", cursor " +
                     std::to_string(key.cursor) + ")");
  }
  return read_value(it->second);
}

bool Store::erase(const Key& key) { return index_.erase(key) > 0; }

void Store::commit() {
  std::vector<std::uint8_t> snapshot;
  put_u32(snapshot, kIndexMagic);
  put_u64(snapshot, index_.size());
  for (const auto& [key, entry] : index_) {
    put_u64(snapshot, key.layout_hash);
    put_u32(snapshot, key.kind);
    put_u64(snapshot, key.cursor);
    put_u64(snapshot, entry.value_len);
    put_u64(snapshot, entry.value_crc);
    put_u64(snapshot, entry.pages.size());
    for (std::uint64_t page : entry.pages) put_u64(snapshot, page);
  }
  const std::uint64_t index_crc = crc64(snapshot);

  const std::uint64_t index_start = pager_->next_page();
  const std::span<const std::uint8_t> view(snapshot);
  std::uint64_t index_pages = 0;
  for (std::size_t off = 0; off < snapshot.size(); off += kPagePayload) {
    const std::size_t len = std::min<std::size_t>(kPagePayload, snapshot.size() - off);
    pager_->append(PageKind::kIndex, view.subspan(off, len));
    ++index_pages;
  }
  // Phase 1: all data + index pages durable before the commit record exists.
  pager_->sync();

  std::vector<std::uint8_t> commit_payload;
  put_u32(commit_payload, kCommitMagic);
  put_u64(commit_payload, seq_ + 1);
  put_u64(commit_payload, index_start);
  put_u64(commit_payload, index_pages);
  put_u64(commit_payload, snapshot.size());
  put_u64(commit_payload, index_crc);
  pager_->append(PageKind::kCommit, commit_payload);
  // Phase 2: the commit record itself. Only after THIS sync returns is the
  // transaction recoverable; a crash between the two syncs loses only the
  // uncommitted transaction.
  pager_->sync();
  ++seq_;
}

std::vector<Key> Store::keys() const {
  std::vector<Key> out;
  out.reserve(index_.size());
  for (const auto& [key, entry] : index_) out.push_back(key);
  return out;
}

std::optional<Key> Store::latest(std::uint64_t layout_hash, std::uint32_t kind) const {
  std::optional<Key> best;
  // Entries with one (layout_hash, kind) are contiguous in the sorted map;
  // the last of them has the highest cursor.
  const auto end = index_.upper_bound(
      Key{layout_hash, kind, std::numeric_limits<std::uint64_t>::max()});
  const auto begin = index_.lower_bound(Key{layout_hash, kind, 0});
  if (begin == end) return best;
  auto it = end;
  --it;
  best = it->first;
  return best;
}

VacuumStats Store::vacuum() {
  commit();
  VacuumStats out;
  out.pages_before = pager_->file_pages();

  const std::string scratch_path = path_ + ".vacuum";
  std::remove(scratch_path.c_str());
  {
    // Rebuild into the scratch file in key order: one transaction holding
    // every live record, fully synced by its commit. Any crash in here leaves
    // the original store untouched.
    Store compact(scratch_path, factory_);
    for (const auto& [key, entry] : index_) {
      const std::vector<std::uint8_t> value = read_value(entry);
      compact.put(key, value);
    }
    compact.commit();
  }

  // Swap the compact file in atomically, then reopen through the factory.
  pager_.reset();
  io_.reset();
  if (std::rename(scratch_path.c_str(), path_.c_str()) != 0) {
    throw StoreError("store: vacuum rename failed for " + path_);
  }
  io_ = factory_(path_);
  pager_ = std::make_unique<Pager>(*io_);
  open();
  out.pages_after = pager_->file_pages();
  return out;
}

StoreStats Store::stats() {
  StoreStats out;
  out.committed_seq = seq_;
  out.file_pages = pager_->file_pages();
  std::set<std::uint64_t> live;
  for (const auto& [key, entry] : index_) live.insert(entry.pages.begin(), entry.pages.end());
  out.live_pages = live.size();
  out.records = index_.size();
  return out;
}

}  // namespace quickdrop::store
