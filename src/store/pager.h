// Append-only pager: fixed-size, CRC'd pages over an Io backend.
//
// The file is an array of 4 KiB pages. Each page carries a 32-byte header
// (magic, kind, its own page id, payload length, CRC64 over header fields +
// payload) followed by up to kPagePayload bytes of payload. Pages are only
// ever APPENDED while a store is live — committed pages are immutable, so a
// crash can tear at most the un-committed tail, and recovery (store.cpp)
// simply scans back to the last commit page whose checksum and references
// verify. Torn or dead tail pages are overwritten by later appends.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "store/io.h"

namespace quickdrop::store {

inline constexpr std::uint32_t kPageSize = 4096;
inline constexpr std::uint32_t kPageHeaderSize = 32;
inline constexpr std::uint32_t kPagePayload = kPageSize - kPageHeaderSize;
/// "QDPG" little-endian; doubles as the store-format sniff byte sequence
/// (a legacy blob checkpoint starts with a different magic).
inline constexpr std::uint32_t kPageMagic = 0x47504451;

enum class PageKind : std::uint32_t {
  kData = 1,    ///< a chunk of a record value
  kIndex = 2,   ///< a chunk of a serialized index snapshot
  kCommit = 3,  ///< a commit record (one page, closes a transaction)
};

/// One validated page read back from the file.
struct Page {
  PageKind kind = PageKind::kData;
  std::vector<std::uint8_t> payload;
};

class Pager {
 public:
  /// `io` must outlive the pager; the pager does not own it.
  explicit Pager(Io& io) : io_(&io) {}

  /// Number of whole pages the backing file holds (a trailing partial page —
  /// a torn append — is ignored).
  [[nodiscard]] std::uint64_t file_pages();

  /// Next page id an append will receive.
  [[nodiscard]] std::uint64_t next_page() const { return next_page_; }

  /// Recovery hook: future appends start at `page` (everything at or after it
  /// is dead tail to be overwritten).
  void set_next_page(std::uint64_t page) { next_page_ = page; }

  /// Appends one page; payload.size() must be <= kPagePayload (zero-padded on
  /// disk). Returns the new page id. NOT durable until sync().
  std::uint64_t append(PageKind kind, std::span<const std::uint8_t> payload);

  /// Reads and validates page `id`: bounds, magic, stored-id match, kind tag,
  /// payload length, CRC64. Throws StoreError on any mismatch — a torn or
  /// bit-flipped page is always a typed error, never garbage payload.
  [[nodiscard]] Page read(std::uint64_t id);

  /// Like read() but also requires the page kind to be `expected`.
  [[nodiscard]] std::vector<std::uint8_t> read_expect(std::uint64_t id, PageKind expected);

  void sync() { io_->sync(); }

 private:
  Io* io_;
  std::uint64_t next_page_ = 0;
};

}  // namespace quickdrop::store
