#include "store/pager.h"

#include <cstring>

#include "util/crc64.h"

namespace quickdrop::store {
namespace {

void put_u32(std::uint8_t* dst, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) dst[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void put_u64(std::uint8_t* dst, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) dst[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t get_u32(const std::uint8_t* src) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(src[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* src) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(src[i]) << (8 * i);
  return v;
}

// Header layout (little-endian):
//   [0..4)   magic
//   [4..8)   kind
//   [8..16)  page id
//   [16..20) payload length
//   [20..24) reserved (zero)
//   [24..32) CRC64 over bytes [0..24) + the padded payload area
constexpr std::size_t kCrcOffset = 24;

}  // namespace

std::uint64_t Pager::file_pages() { return io_->size() / kPageSize; }

std::uint64_t Pager::append(PageKind kind, std::span<const std::uint8_t> payload) {
  if (payload.size() > kPagePayload) {
    throw StoreError("pager: page payload too large (" + std::to_string(payload.size()) + ")");
  }
  const std::uint64_t id = next_page_;
  std::vector<std::uint8_t> page(kPageSize, 0);
  put_u32(page.data(), kPageMagic);
  put_u32(page.data() + 4, static_cast<std::uint32_t>(kind));
  put_u64(page.data() + 8, id);
  put_u32(page.data() + 16, static_cast<std::uint32_t>(payload.size()));
  std::memcpy(page.data() + kPageHeaderSize, payload.data(), payload.size());
  // CRC spans the header prefix AND the padded payload area, so a bit flip
  // anywhere in the page — including the zero padding — is detected.
  const std::uint64_t crc =
      crc64(std::span<const std::uint8_t>(page.data(), kCrcOffset),
            crc64(std::span<const std::uint8_t>(page.data() + kPageHeaderSize, kPagePayload)));
  put_u64(page.data() + kCrcOffset, crc);
  io_->write_at(id * kPageSize, page);
  ++next_page_;
  return id;
}

Page Pager::read(std::uint64_t id) {
  std::vector<std::uint8_t> page(kPageSize);
  const std::size_t got = io_->read_at(id * kPageSize, page);
  if (got != kPageSize) {
    throw StoreError("pager: short read of page " + std::to_string(id) + " (" +
                     std::to_string(got) + " bytes)");
  }
  if (get_u32(page.data()) != kPageMagic) {
    throw StoreError("pager: bad magic on page " + std::to_string(id));
  }
  const std::uint32_t kind_raw = get_u32(page.data() + 4);
  if (kind_raw < static_cast<std::uint32_t>(PageKind::kData) ||
      kind_raw > static_cast<std::uint32_t>(PageKind::kCommit)) {
    throw StoreError("pager: unknown kind on page " + std::to_string(id));
  }
  if (get_u64(page.data() + 8) != id) {
    throw StoreError("pager: page id mismatch on page " + std::to_string(id));
  }
  const std::uint32_t len = get_u32(page.data() + 16);
  if (len > kPagePayload) {
    throw StoreError("pager: oversized payload length on page " + std::to_string(id));
  }
  const std::uint64_t want =
      crc64(std::span<const std::uint8_t>(page.data(), kCrcOffset),
            crc64(std::span<const std::uint8_t>(page.data() + kPageHeaderSize, kPagePayload)));
  if (get_u64(page.data() + kCrcOffset) != want) {
    throw StoreError("pager: CRC mismatch on page " + std::to_string(id) +
                     " (torn write or bit rot)");
  }
  Page out;
  out.kind = static_cast<PageKind>(kind_raw);
  out.payload.assign(page.begin() + kPageHeaderSize, page.begin() + kPageHeaderSize + len);
  return out;
}

std::vector<std::uint8_t> Pager::read_expect(std::uint64_t id, PageKind expected) {
  Page page = read(id);
  if (page.kind != expected) {
    throw StoreError("pager: page " + std::to_string(id) + " has kind " +
                     std::to_string(static_cast<std::uint32_t>(page.kind)) + ", expected " +
                     std::to_string(static_cast<std::uint32_t>(expected)));
  }
  return std::move(page.payload);
}

}  // namespace quickdrop::store
