#include "store/io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

namespace quickdrop::store {
namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw StoreError("store io: " + what + " for " + path + ": " + std::strerror(errno));
}

}  // namespace

FileIo::FileIo(const std::string& path) : path_(path) {
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) fail("cannot open", path_);
}

FileIo::~FileIo() {
  if (fd_ >= 0) ::close(fd_);
}

std::size_t FileIo::read_at(std::uint64_t offset, std::span<std::uint8_t> out) {
  std::size_t done = 0;
  while (done < out.size()) {
    const ::ssize_t n = ::pread(fd_, out.data() + done, out.size() - done,
                                static_cast<::off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("pread failed", path_);
    }
    if (n == 0) break;  // end of file
    done += static_cast<std::size_t>(n);
  }
  return done;
}

void FileIo::write_at(std::uint64_t offset, std::span<const std::uint8_t> bytes) {
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ::ssize_t n = ::pwrite(fd_, bytes.data() + done, bytes.size() - done,
                                 static_cast<::off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("pwrite failed", path_);
    }
    done += static_cast<std::size_t>(n);
  }
}

void FileIo::sync() {
  if (::fsync(fd_) != 0) fail("fsync failed", path_);
}

void FileIo::truncate(std::uint64_t size) {
  if (::ftruncate(fd_, static_cast<::off_t>(size)) != 0) fail("ftruncate failed", path_);
}

std::uint64_t FileIo::size() {
  const ::off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end < 0) fail("lseek failed", path_);
  return static_cast<std::uint64_t>(end);
}

// ---------------------------------------------------------------------------
// FaultyIo
// ---------------------------------------------------------------------------

void FaultyIo::check_dead() const {
  if (dead_) throw StoreError("store io: injected crash (backend is dead)");
}

std::size_t FaultyIo::read_at(std::uint64_t offset, std::span<std::uint8_t> out) {
  check_dead();
  return inner_->read_at(offset, out);
}

void FaultyIo::write_at(std::uint64_t offset, std::span<const std::uint8_t> bytes) {
  check_dead();
  ++writes_seen_;
  if (spec_.op == FaultSpec::Op::kWrite && writes_seen_ == spec_.at_op && !fired_) {
    fired_ = true;
    switch (spec_.mode) {
      case FaultSpec::Mode::kFailStop:
        dead_ = true;
        throw StoreError("store io: injected fail-stop at write " +
                         std::to_string(writes_seen_));
      case FaultSpec::Mode::kTorn: {
        const std::uint64_t keep =
            spec_.torn_bytes < bytes.size() ? spec_.torn_bytes : bytes.size();
        inner_->write_at(offset, bytes.first(static_cast<std::size_t>(keep)));
        dead_ = true;
        throw StoreError("store io: injected torn write at write " +
                         std::to_string(writes_seen_));
      }
      case FaultSpec::Mode::kBitFlip:
      case FaultSpec::Mode::kSilentFlip: {
        std::vector<std::uint8_t> flipped(bytes.begin(), bytes.end());
        if (!flipped.empty()) {
          const std::uint64_t bit = spec_.flip_bit % (8 * flipped.size());
          flipped[static_cast<std::size_t>(bit / 8)] ^=
              static_cast<std::uint8_t>(1u << (bit % 8));
        }
        inner_->write_at(offset, flipped);
        if (spec_.mode == FaultSpec::Mode::kBitFlip) {
          dead_ = true;
          throw StoreError("store io: injected bit-flip crash at write " +
                           std::to_string(writes_seen_));
        }
        return;  // kSilentFlip: corrupted bytes landed, execution continues
      }
    }
  }
  inner_->write_at(offset, bytes);
}

void FaultyIo::sync() {
  check_dead();
  ++syncs_seen_;
  if (spec_.op == FaultSpec::Op::kSync && syncs_seen_ == spec_.at_op && !fired_) {
    fired_ = true;
    dead_ = true;
    // A failed fsync gives no durability guarantee for writes since the last
    // successful barrier; modelling it as fail-stop is the conservative
    // reading (the data may or may not have reached the platter).
    throw StoreError("store io: injected fail-stop at sync " + std::to_string(syncs_seen_));
  }
  inner_->sync();
}

void FaultyIo::truncate(std::uint64_t size) {
  check_dead();
  inner_->truncate(size);
}

std::uint64_t FaultyIo::size() {
  check_dead();
  return inner_->size();
}

IoFactory file_io_factory() {
  return [](const std::string& path) -> std::unique_ptr<Io> {
    return std::make_unique<FileIo>(path);
  };
}

}  // namespace quickdrop::store
