// Byte-level I/O backends for the crash-safe state store.
//
// The storage engine never touches the filesystem directly: every read,
// write, fsync and truncate goes through the `Io` interface. That indirection
// is what makes the kill-point recovery harness possible — `FaultyIo` wraps
// the real backend and can die (fail-stop), tear a write in half, or flip a
// bit at exactly the N-th operation, deterministically and without real
// crashes. Tier-1 tests sweep every kill point of a commit sequence and
// assert the store reopens to the last committed state (see
// tests/store/crash_sweep_test.cpp and DESIGN.md §12).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>

namespace quickdrop::store {

/// Any store failure: I/O errors, corruption detected by checksums, or
/// malformed on-disk structures. Derives from std::runtime_error so generic
/// catch sites keep working; corruption is ALWAYS reported through this type,
/// never via UB or partial state.
struct StoreError : std::runtime_error {
  explicit StoreError(const std::string& what) : std::runtime_error(what) {}
};

/// Positional byte I/O over one file-like object. Implementations must be
/// usable from a single thread at a time (the store serializes access).
class Io {
 public:
  virtual ~Io() = default;

  /// Reads up to out.size() bytes at `offset`; returns the number actually
  /// read (short only at end-of-file). Throws StoreError on I/O failure.
  virtual std::size_t read_at(std::uint64_t offset, std::span<std::uint8_t> out) = 0;

  /// Writes all of `bytes` at `offset`, extending the file as needed.
  virtual void write_at(std::uint64_t offset, std::span<const std::uint8_t> bytes) = 0;

  /// Durability barrier: everything written before sync() survives a crash
  /// after sync() returns.
  virtual void sync() = 0;

  /// Truncates (or extends with zeros) to exactly `size` bytes.
  virtual void truncate(std::uint64_t size) = 0;

  /// Current size in bytes.
  virtual std::uint64_t size() = 0;
};

/// POSIX file backend (pread/pwrite/fsync/ftruncate). Creates the file when
/// absent.
class FileIo : public Io {
 public:
  explicit FileIo(const std::string& path);
  ~FileIo() override;
  FileIo(const FileIo&) = delete;
  FileIo& operator=(const FileIo&) = delete;

  std::size_t read_at(std::uint64_t offset, std::span<std::uint8_t> out) override;
  void write_at(std::uint64_t offset, std::span<const std::uint8_t> bytes) override;
  void sync() override;
  void truncate(std::uint64_t size) override;
  std::uint64_t size() override;

 private:
  std::string path_;
  int fd_ = -1;
};

/// Where in an operation stream a fault fires and what it does there.
struct FaultSpec {
  enum class Op {
    kWrite,  ///< trigger on the N-th write_at
    kSync,   ///< trigger on the N-th sync
  };
  enum class Mode {
    kFailStop,  ///< the op does nothing and throws — clean process death
    kTorn,      ///< (writes only) a prefix of the bytes lands, then death
    kBitFlip,   ///< the write lands with one bit flipped, then death
    kSilentFlip,  ///< the write lands with one bit flipped; execution CONTINUES
  };

  Op op = Op::kWrite;
  Mode mode = Mode::kFailStop;
  /// 1-based index of the triggering operation among ops of type `op`.
  int at_op = 1;
  /// kTorn: how many leading bytes land (clamped to the write size).
  std::uint64_t torn_bytes = 0;
  /// kBitFlip/kSilentFlip: which bit of the written range to flip
  /// (bit_index % (8 * size)).
  std::uint64_t flip_bit = 0;
};

/// Fault-injecting wrapper: forwards to `inner` until the scripted fault
/// point, injects, and (except kSilentFlip) throws StoreError from that op
/// and every subsequent one — the process is "dead" until the harness reopens
/// the file with a fresh backend. Counting is deterministic: the same store
/// operation sequence always yields the same op indices.
class FaultyIo : public Io {
 public:
  FaultyIo(std::unique_ptr<Io> inner, FaultSpec spec)
      : inner_(std::move(inner)), spec_(spec) {}

  std::size_t read_at(std::uint64_t offset, std::span<std::uint8_t> out) override;
  void write_at(std::uint64_t offset, std::span<const std::uint8_t> bytes) override;
  void sync() override;
  void truncate(std::uint64_t size) override;
  std::uint64_t size() override;

  [[nodiscard]] int writes_seen() const { return writes_seen_; }
  [[nodiscard]] int syncs_seen() const { return syncs_seen_; }
  /// True once the fault has fired (and, except kSilentFlip, the backend is
  /// dead).
  [[nodiscard]] bool fired() const { return fired_; }

 private:
  void check_dead() const;

  std::unique_ptr<Io> inner_;
  FaultSpec spec_;
  int writes_seen_ = 0;
  int syncs_seen_ = 0;
  bool fired_ = false;
  bool dead_ = false;
};

/// Pass-through wrapper that only counts operations. A dry run through
/// CountingIo tells the crash sweep how many kill points a commit sequence
/// has.
class CountingIo : public Io {
 public:
  explicit CountingIo(std::unique_ptr<Io> inner) : inner_(std::move(inner)) {}
  /// Also mirrors counts into externally-owned tallies that outlive this Io —
  /// how a dry run learns each file's kill-point count after the store (and
  /// its backends) are gone.
  CountingIo(std::unique_ptr<Io> inner, int* writes_sink, int* syncs_sink)
      : inner_(std::move(inner)), writes_sink_(writes_sink), syncs_sink_(syncs_sink) {}

  std::size_t read_at(std::uint64_t offset, std::span<std::uint8_t> out) override {
    return inner_->read_at(offset, out);
  }
  void write_at(std::uint64_t offset, std::span<const std::uint8_t> bytes) override {
    ++writes_;
    if (writes_sink_ != nullptr) ++*writes_sink_;
    inner_->write_at(offset, bytes);
  }
  void sync() override {
    ++syncs_;
    if (syncs_sink_ != nullptr) ++*syncs_sink_;
    inner_->sync();
  }
  void truncate(std::uint64_t size) override { inner_->truncate(size); }
  std::uint64_t size() override { return inner_->size(); }

  [[nodiscard]] int writes() const { return writes_; }
  [[nodiscard]] int syncs() const { return syncs_; }

 private:
  std::unique_ptr<Io> inner_;
  int* writes_sink_ = nullptr;
  int* syncs_sink_ = nullptr;
  int writes_ = 0;
  int syncs_ = 0;
};

/// Creates the backend for a store file. The store routes every open —
/// including reopen-after-vacuum and the vacuum scratch file — through this,
/// so a test factory can wrap any of them in FaultyIo/CountingIo.
using IoFactory = std::function<std::unique_ptr<Io>(const std::string& path)>;

/// The default factory: plain FileIo.
IoFactory file_io_factory();

}  // namespace quickdrop::store
