#include "data/partition.h"

#include <algorithm>
#include <stdexcept>

namespace quickdrop::data {

Partition dirichlet_partition(const Dataset& dataset, int num_clients, float alpha, Rng& rng) {
  if (num_clients <= 0) throw std::invalid_argument("dirichlet_partition: num_clients must be positive");
  if (dataset.size() < num_clients) {
    throw std::invalid_argument("dirichlet_partition: fewer samples than clients");
  }
  Partition partition(static_cast<std::size_t>(num_clients));
  for (int c = 0; c < dataset.num_classes(); ++c) {
    auto rows = dataset.indices_of_class(c);
    if (rows.empty()) continue;
    rng.shuffle(rows);
    const auto shares = rng.dirichlet(alpha, num_clients);
    // Cumulative split of the shuffled class rows by the Dirichlet shares.
    std::size_t start = 0;
    float cumulative = 0.0f;
    for (int i = 0; i < num_clients; ++i) {
      cumulative += shares[static_cast<std::size_t>(i)];
      const auto end = i + 1 == num_clients
                           ? rows.size()
                           : std::min(rows.size(), static_cast<std::size_t>(
                                                       cumulative * static_cast<float>(rows.size())));
      for (std::size_t r = start; r < end; ++r) {
        partition[static_cast<std::size_t>(i)].push_back(rows[r]);
      }
      start = std::max(start, end);
    }
  }
  // No client may be empty: steal one sample from the largest client.
  for (auto& client : partition) {
    while (client.empty()) {
      auto largest = std::max_element(
          partition.begin(), partition.end(),
          [](const auto& a, const auto& b) { return a.size() < b.size(); });
      if (largest->size() <= 1) throw std::logic_error("dirichlet_partition: cannot balance");
      client.push_back(largest->back());
      largest->pop_back();
    }
  }
  return partition;
}

Partition iid_partition(const Dataset& dataset, int num_clients, Rng& rng) {
  if (num_clients <= 0) throw std::invalid_argument("iid_partition: num_clients must be positive");
  if (dataset.size() < num_clients) {
    throw std::invalid_argument("iid_partition: fewer samples than clients");
  }
  const auto order = rng.permutation(dataset.size());
  Partition partition(static_cast<std::size_t>(num_clients));
  for (std::size_t i = 0; i < order.size(); ++i) {
    partition[i % static_cast<std::size_t>(num_clients)].push_back(order[i]);
  }
  return partition;
}

std::vector<Dataset> materialize(const Dataset& dataset, const Partition& partition) {
  std::vector<Dataset> out;
  out.reserve(partition.size());
  for (const auto& indices : partition) out.push_back(dataset.subset(indices));
  return out;
}

double label_skew(const Dataset& dataset, const Partition& partition) {
  double total = 0.0;
  for (const auto& client : partition) {
    if (client.empty()) continue;
    std::vector<int> counts(static_cast<std::size_t>(dataset.num_classes()), 0);
    for (const int i : client) ++counts[static_cast<std::size_t>(dataset.label(i))];
    total += static_cast<double>(*std::max_element(counts.begin(), counts.end())) /
             static_cast<double>(client.size());
  }
  return total / static_cast<double>(partition.size());
}

}  // namespace quickdrop::data
