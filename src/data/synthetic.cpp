#include "data/synthetic.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace quickdrop::data {
namespace {

constexpr float kPi = 3.14159265358979323846f;

/// A class prototype: per-channel mixture of low-frequency sinusoids.
struct Prototype {
  // amplitude[ch][j], fx/fy in cycles per image, phase in radians
  std::vector<std::vector<float>> amplitude, fx, fy, phase;
  std::vector<float> channel_bias;
};

Prototype make_prototype(int channels, Rng& rng) {
  constexpr int kComponents = 3;
  Prototype p;
  p.amplitude.resize(static_cast<std::size_t>(channels));
  p.fx = p.fy = p.phase = p.amplitude;
  p.channel_bias.resize(static_cast<std::size_t>(channels));
  for (int ch = 0; ch < channels; ++ch) {
    auto& amp = p.amplitude[static_cast<std::size_t>(ch)];
    auto& fx = p.fx[static_cast<std::size_t>(ch)];
    auto& fy = p.fy[static_cast<std::size_t>(ch)];
    auto& ph = p.phase[static_cast<std::size_t>(ch)];
    amp.resize(kComponents);
    fx.resize(kComponents);
    fy.resize(kComponents);
    ph.resize(kComponents);
    for (int j = 0; j < kComponents; ++j) {
      amp[static_cast<std::size_t>(j)] = rng.uniform(0.5f, 1.2f);
      fx[static_cast<std::size_t>(j)] = static_cast<float>(rng.uniform_int(1, 3));
      fy[static_cast<std::size_t>(j)] = static_cast<float>(rng.uniform_int(1, 3));
      ph[static_cast<std::size_t>(j)] = rng.uniform(0.0f, 2.0f * kPi);
    }
    p.channel_bias[static_cast<std::size_t>(ch)] = rng.uniform(-0.5f, 0.5f);
  }
  return p;
}

float prototype_value(const Prototype& p, int ch, float x, float y, int image_size) {
  const auto c = static_cast<std::size_t>(ch);
  float v = p.channel_bias[c];
  for (std::size_t j = 0; j < p.amplitude[c].size(); ++j) {
    v += p.amplitude[c][j] *
         std::sin(2.0f * kPi * (p.fx[c][j] * x + p.fy[c][j] * y) / static_cast<float>(image_size) +
                  p.phase[c][j]);
  }
  return v;
}

/// Renders one sample: prototype evaluated at circularly shifted coordinates
/// plus i.i.d. pixel noise.
void render_sample(const Prototype& p, const SyntheticSpec& spec, Rng& rng, float* out) {
  const int s = spec.image_size;
  const int dx = spec.max_shift > 0 ? rng.uniform_int(-spec.max_shift, spec.max_shift) : 0;
  const int dy = spec.max_shift > 0 ? rng.uniform_int(-spec.max_shift, spec.max_shift) : 0;
  for (int ch = 0; ch < spec.channels; ++ch) {
    for (int y = 0; y < s; ++y) {
      for (int x = 0; x < s; ++x) {
        const float v =
            prototype_value(p, ch, static_cast<float>((x + dx + s) % s),
                            static_cast<float>((y + dy + s) % s), s) +
            spec.noise * rng.normal();
        out[(ch * s + y) * s + x] = v;
      }
    }
  }
}

Dataset make_split(const std::vector<Prototype>& prototypes, const SyntheticSpec& spec,
                   int per_class, Rng& rng) {
  const int m = per_class * spec.num_classes;
  Tensor images({m, spec.channels, spec.image_size, spec.image_size});
  std::vector<int> labels(static_cast<std::size_t>(m));
  const std::int64_t stride =
      static_cast<std::int64_t>(spec.channels) * spec.image_size * spec.image_size;
  int row = 0;
  for (int c = 0; c < spec.num_classes; ++c) {
    for (int i = 0; i < per_class; ++i, ++row) {
      render_sample(prototypes[static_cast<std::size_t>(c)], spec, rng,
                    images.data().data() + row * stride);
      labels[static_cast<std::size_t>(row)] = c;
    }
  }
  return Dataset(std::move(images), std::move(labels), spec.num_classes);
}

}  // namespace

void SyntheticSpec::validate() const {
  if (num_classes <= 1 || channels <= 0 || image_size <= 0 || train_per_class <= 0 ||
      test_per_class <= 0 || noise < 0.0f || max_shift < 0) {
    throw std::invalid_argument("SyntheticSpec: invalid field");
  }
}

TrainTest make_synthetic(const SyntheticSpec& spec) {
  spec.validate();
  Rng root(spec.seed);
  Rng proto_rng = root.split(0xA);
  std::vector<Prototype> prototypes;
  prototypes.reserve(static_cast<std::size_t>(spec.num_classes));
  for (int c = 0; c < spec.num_classes; ++c) {
    Rng class_rng = proto_rng.split(static_cast<std::uint64_t>(c));
    prototypes.push_back(make_prototype(spec.channels, class_rng));
  }
  Rng train_rng = root.split(0xB);
  Rng test_rng = root.split(0xC);
  return {make_split(prototypes, spec, spec.train_per_class, train_rng),
          make_split(prototypes, spec, spec.test_per_class, test_rng)};
}

SyntheticSpec mnist_like_spec() {
  SyntheticSpec spec;
  spec.channels = 1;
  spec.noise = 0.35f;
  spec.max_shift = 1;
  spec.train_per_class = 100;
  spec.seed = 52001;
  return spec;
}

SyntheticSpec cifar10_like_spec() {
  SyntheticSpec spec;
  spec.channels = 3;
  spec.noise = 1.2f;  // calibrated: federated (10 clients, alpha=0.1, 30 rounds) test
                      // accuracy ~74% — the paper's CIFAR-10 regime
  spec.max_shift = 2;
  spec.train_per_class = 100;
  spec.seed = 52002;
  return spec;
}

SyntheticSpec svhn_like_spec() {
  SyntheticSpec spec;
  spec.channels = 3;
  spec.noise = 1.0f;  // calibrated: federated test accuracy ~85%, the paper's SVHN regime
  spec.max_shift = 2;
  spec.train_per_class = 150;
  spec.seed = 52003;
  return spec;
}

SyntheticSpec spec_by_name(const std::string& name) {
  if (name == "mnist") return mnist_like_spec();
  if (name == "cifar10") return cifar10_like_spec();
  if (name == "svhn") return svhn_like_spec();
  throw std::invalid_argument("spec_by_name: unknown dataset '" + name + "'");
}

}  // namespace quickdrop::data
