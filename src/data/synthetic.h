// Synthetic image-classification datasets.
//
// The evaluation machine is offline, so the paper's MNIST / CIFAR-10 / SVHN
// are replaced by deterministic generators calibrated to the same accuracy
// regime (see DESIGN.md §2). Each class is a mixture of band-limited spatial
// patterns plus per-channel bias; samples perturb the pattern with circular
// shifts and Gaussian pixel noise. Difficulty is controlled by the noise and
// shift magnitudes.
#pragma once

#include "data/dataset.h"

namespace quickdrop::data {

/// Parameters of a synthetic dataset.
struct SyntheticSpec {
  int num_classes = 10;
  int channels = 3;
  int image_size = 12;
  int train_per_class = 100;
  int test_per_class = 40;
  float noise = 0.6f;        ///< stddev of additive pixel noise
  int max_shift = 2;         ///< max circular shift per axis (sample-level)
  std::uint64_t seed = 1234;  ///< class prototypes and samples derive from this

  void validate() const;
};

/// Train/test pair drawn from one generator.
struct TrainTest {
  Dataset train;
  Dataset test;
};

/// Generates a dataset according to `spec`.
TrainTest make_synthetic(const SyntheticSpec& spec);

/// Stand-ins for the paper's three benchmark datasets.
/// MNIST-like: 1 channel, easy (low noise), target accuracy ~95%.
SyntheticSpec mnist_like_spec();
/// CIFAR-10-like: 3 channels, hard (high noise), target accuracy ~70-80%.
SyntheticSpec cifar10_like_spec();
/// SVHN-like: 3 channels, medium difficulty, more samples per class.
SyntheticSpec svhn_like_spec();

/// Looks up one of the named specs ("mnist" | "cifar10" | "svhn").
SyntheticSpec spec_by_name(const std::string& name);

}  // namespace quickdrop::data
