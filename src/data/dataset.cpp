#include "data/dataset.h"

#include <cstring>
#include <stdexcept>

namespace quickdrop::data {
namespace {

Shape with_batch(const Shape& image_shape, std::int64_t m) {
  Shape s;
  s.reserve(image_shape.size() + 1);
  s.push_back(m);
  s.insert(s.end(), image_shape.begin(), image_shape.end());
  return s;
}

}  // namespace

Dataset::Dataset(Shape image_shape, int num_classes)
    : image_shape_(std::move(image_shape)),
      num_classes_(num_classes),
      images_(with_batch(image_shape_, 0)) {
  if (num_classes <= 0) throw std::invalid_argument("Dataset: num_classes must be positive");
}

Dataset::Dataset(Tensor images, std::vector<int> labels, int num_classes)
    : num_classes_(num_classes), images_(std::move(images)), labels_(std::move(labels)) {
  if (num_classes <= 0) throw std::invalid_argument("Dataset: num_classes must be positive");
  const auto& s = images_.shape();
  if (s.empty() || s[0] != static_cast<std::int64_t>(labels_.size())) {
    throw std::invalid_argument("Dataset: leading image dim must equal label count");
  }
  image_shape_.assign(s.begin() + 1, s.end());
  for (const int l : labels_) {
    if (l < 0 || l >= num_classes_) throw std::invalid_argument("Dataset: label out of range");
  }
}

Tensor Dataset::image(int i) const {
  if (i < 0 || i >= size()) throw std::out_of_range("Dataset::image: index out of range");
  const std::int64_t stride = numel(image_shape_);
  Tensor out(image_shape_);
  std::memcpy(out.data().data(), images_.data().data() + i * stride,
              static_cast<std::size_t>(stride) * sizeof(float));
  return out;
}

std::pair<Tensor, std::vector<int>> Dataset::batch(const std::vector<int>& indices) const {
  const std::int64_t stride = numel(image_shape_);
  Tensor out(with_batch(image_shape_, static_cast<std::int64_t>(indices.size())));
  std::vector<int> labels;
  labels.reserve(indices.size());
  for (std::size_t b = 0; b < indices.size(); ++b) {
    const int i = indices[b];
    if (i < 0 || i >= size()) throw std::out_of_range("Dataset::batch: index out of range");
    std::memcpy(out.data().data() + static_cast<std::int64_t>(b) * stride,
                images_.data().data() + i * stride, static_cast<std::size_t>(stride) * sizeof(float));
    labels.push_back(labels_[static_cast<std::size_t>(i)]);
  }
  return {std::move(out), std::move(labels)};
}

std::vector<int> Dataset::indices_of_class(int c) const {
  std::vector<int> out;
  for (int i = 0; i < size(); ++i) {
    if (labels_[static_cast<std::size_t>(i)] == c) out.push_back(i);
  }
  return out;
}

std::vector<int> Dataset::class_counts() const {
  std::vector<int> counts(static_cast<std::size_t>(num_classes_), 0);
  for (const int l : labels_) ++counts[static_cast<std::size_t>(l)];
  return counts;
}

Dataset Dataset::subset(const std::vector<int>& indices) const {
  auto [images, labels] = batch(indices);
  return Dataset(std::move(images), std::move(labels), num_classes_);
}

Dataset Dataset::concat(const Dataset& a, const Dataset& b) {
  if (a.image_shape_ != b.image_shape_ || a.num_classes_ != b.num_classes_) {
    throw std::invalid_argument("Dataset::concat: geometry mismatch");
  }
  Tensor images(with_batch(a.image_shape_, a.size() + b.size()));
  const std::size_t abytes = a.images_.data().size() * sizeof(float);
  std::memcpy(images.data().data(), a.images_.data().data(), abytes);
  std::memcpy(reinterpret_cast<std::uint8_t*>(images.data().data()) + abytes,
              b.images_.data().data(), b.images_.data().size() * sizeof(float));
  std::vector<int> labels = a.labels_;
  labels.insert(labels.end(), b.labels_.begin(), b.labels_.end());
  return Dataset(std::move(images), std::move(labels), a.num_classes_);
}

std::vector<int> Dataset::sample_batch_indices(const std::vector<int>& pool, int batch_size,
                                               Rng& rng) {
  if (pool.empty()) throw std::invalid_argument("sample_batch_indices: empty pool");
  const int k = std::min<int>(batch_size, static_cast<int>(pool.size()));
  const auto picks = rng.sample_without_replacement(static_cast<int>(pool.size()), k);
  std::vector<int> out;
  out.reserve(picks.size());
  for (const int p : picks) out.push_back(pool[static_cast<std::size_t>(p)]);
  return out;
}

}  // namespace quickdrop::data
