// Client data partitioners for federated simulation.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace quickdrop::data {

/// Per-client row indices into a parent dataset.
using Partition = std::vector<std::vector<int>>;

/// Dirichlet(alpha) label-skew partition (Hsu et al. 2019): for every class,
/// client shares are drawn from Dirichlet(alpha); lower alpha means more
/// heterogeneity. Guarantees every client at least one sample by stealing
/// from the largest client when necessary.
Partition dirichlet_partition(const Dataset& dataset, int num_clients, float alpha, Rng& rng);

/// Uniform IID partition: a global shuffle dealt round-robin.
Partition iid_partition(const Dataset& dataset, int num_clients, Rng& rng);

/// Materializes per-client datasets from a partition.
std::vector<Dataset> materialize(const Dataset& dataset, const Partition& partition);

/// Summary statistic used in tests: average over clients of the fraction of a
/// client's data held in its single largest class. 1.0 = every client holds
/// one class only; ~1/num_classes = perfectly uniform.
double label_skew(const Dataset& dataset, const Partition& partition);

}  // namespace quickdrop::data
