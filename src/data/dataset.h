// In-memory labeled image dataset.
#pragma once

#include <utility>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace quickdrop::data {

/// Immutable-after-construction collection of images [C,H,W] with integer
/// labels, stored contiguously as [M,C,H,W].
class Dataset {
 public:
  /// Empty dataset with the given geometry (images added via append helpers
  /// on construction paths below).
  Dataset(Shape image_shape, int num_classes);

  /// Wraps existing storage; images is [M,C,H,W], labels.size() == M.
  Dataset(Tensor images, std::vector<int> labels, int num_classes);

  [[nodiscard]] int size() const { return static_cast<int>(labels_.size()); }
  [[nodiscard]] bool empty() const { return labels_.empty(); }
  [[nodiscard]] int num_classes() const { return num_classes_; }
  /// Shape of one image, e.g. [3, 12, 12].
  [[nodiscard]] const Shape& image_shape() const { return image_shape_; }
  [[nodiscard]] int label(int i) const { return labels_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] const std::vector<int>& labels() const { return labels_; }

  /// A single image as a [C,H,W] tensor (deep copy).
  [[nodiscard]] Tensor image(int i) const;

  /// Stacks the given rows into a batch: ([B,C,H,W], labels).
  [[nodiscard]] std::pair<Tensor, std::vector<int>> batch(const std::vector<int>& indices) const;

  /// Indices of all samples with the given class label.
  [[nodiscard]] std::vector<int> indices_of_class(int c) const;

  /// Per-class sample counts.
  [[nodiscard]] std::vector<int> class_counts() const;

  /// New dataset holding deep copies of the given rows.
  [[nodiscard]] Dataset subset(const std::vector<int>& indices) const;

  /// Concatenation of two datasets with identical geometry.
  [[nodiscard]] static Dataset concat(const Dataset& a, const Dataset& b);

  /// Samples a batch of `batch_size` indices uniformly from `pool` without
  /// replacement (or all of pool when it is smaller).
  static std::vector<int> sample_batch_indices(const std::vector<int>& pool, int batch_size,
                                               Rng& rng);

 private:
  Shape image_shape_;
  int num_classes_;
  Tensor images_;  // [M,C,H,W]
  std::vector<int> labels_;
};

}  // namespace quickdrop::data
