// Deterministic random number generation for reproducible experiments.
//
// Every source of randomness in the library flows from an explicitly seeded
// Rng. Rngs can be split() hierarchically (per client, per round, ...) so
// that changing the amount of randomness consumed in one component does not
// perturb another.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace quickdrop {

/// Deterministic pseudo-random generator (xoshiro256**) with hierarchical
/// splitting. Not cryptographically secure; intended for simulations.
class Rng {
 public:
  /// Seeds the generator. Two Rngs with the same seed produce identical
  /// streams on every platform.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t uniform_u64(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int uniform_int(int lo, int hi);

  /// Uniform float in [0, 1).
  float uniform();

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi);

  /// Standard normal sample (Box-Muller).
  float normal();

  /// Normal sample with the given mean and standard deviation.
  float normal(float mean, float stddev);

  /// Derives an independent child generator. Calling split() repeatedly
  /// yields distinct streams; the parent stream advances once per split.
  Rng split();

  /// Derives a child generator bound to a stable tag (e.g. client id), so
  /// that the child stream does not depend on how often the parent is used.
  Rng split(std::uint64_t tag) const;

  /// Samples k distinct indices from [0, n) without replacement.
  std::vector<int> sample_without_replacement(int n, int k);

  /// Returns a uniformly shuffled permutation of [0, n).
  std::vector<int> permutation(int n);

  /// Shuffles a vector of indices in place.
  void shuffle(std::vector<int>& v);

  /// Samples from a symmetric Dirichlet(alpha) distribution of dimension k.
  /// Each entry is positive and the entries sum to 1.
  std::vector<float> dirichlet(float alpha, int k);

  /// Captures the full generator state (including the construction seed that
  /// anchors tagged splits) as a fixed-size binary blob, so a paused
  /// computation can be resumed with an identical random stream.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Rebuilds a generator from serialize() output. Throws
  /// std::invalid_argument on malformed input.
  static Rng deserialize(std::span<const std::uint8_t> bytes);

  /// Size in bytes of a serialize() blob.
  static constexpr std::size_t kSerializedSize = 8 * 6 + 8;

 private:
  /// Gamma(shape, 1) sample via Marsaglia-Tsang; used by dirichlet().
  float gamma(float shape);

  std::uint64_t seed_ = 0;  // construction seed; basis for tagged splits
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  float cached_normal_ = 0.0f;
};

}  // namespace quickdrop
