// Shared fixed-size thread pool behind every parallel code path.
//
// One process-wide pool (ThreadPool::global()) executes both kernel-level
// work (parallel_for over tensor elements/rows) and federation-level work
// (concurrent client rounds). The pool size is `--threads` /
// QUICKDROP_THREADS / hardware_concurrency, in that precedence; a size of 1
// is a guaranteed serial fallback that runs every task inline on the caller.
//
// Determinism contract: the pool only decides *which thread* runs a chunk,
// never how a chunk is cut. parallel_for uses static range partitioning that
// callers make value-independent (each output element is produced by exactly
// one chunk, with a fixed per-element operation order), so results are
// bit-identical at any thread count. Work submitted from inside a pool
// worker runs inline (no nested fan-out, no deadlock).
#pragma once

#include <cstdint>
#include <functional>

namespace quickdrop {

class ThreadPool {
 public:
  /// A pool with `threads` total executors (the submitting thread counts as
  /// one; `threads - 1` background workers are spawned). Requires >= 1.
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total executors (background workers + the caller).
  [[nodiscard]] int threads() const { return threads_; }

  /// Invokes fn(0) .. fn(n-1), distributed across the pool; blocks until all
  /// calls returned. The caller participates. With one executor, from inside
  /// a pool worker, or when n <= 1, the calls run serially in index order.
  /// The first exception thrown by any fn is rethrown on the caller.
  void run_chunks(int n, const std::function<void(int)>& fn);

  /// Splits [begin, end) into at most threads() contiguous chunks of at
  /// least `grain` items each and invokes fn(chunk_begin, chunk_end) for
  /// every chunk across the pool. Chunk boundaries depend only on the range,
  /// the grain and the pool size — callers needing bit-identical results at
  /// any thread count must make fn's output independent of the cut (pure
  /// maps and per-element reductions are; see kernels.cpp).
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    const std::function<void(std::int64_t, std::int64_t)>& fn);

  /// The process-wide pool. Created on first use, sized by set_num_threads()
  /// if called earlier, else QUICKDROP_THREADS, else hardware_concurrency.
  static ThreadPool& global();

 private:
  struct Impl;
  Impl* impl_;
  int threads_;
};

/// Resizes the global pool (recreating it). Not safe while parallel work is
/// in flight; intended for process startup and tests.
void set_num_threads(int threads);

/// Size of the global pool (creating it with the default size if needed).
int num_threads();

/// Applies the QUICKDROP_THREADS environment variable, if set and a valid
/// positive integer (invalid values are ignored). Called by the CLI at
/// startup, mirroring set_log_level_from_env().
void set_threads_from_env();

/// Chunk size such that each chunk carries at least ~16k units of work:
/// grain_for(cost_per_item) items per chunk. Keeps tiny tensors serial.
[[nodiscard]] std::int64_t grain_for(std::int64_t cost_per_item);

}  // namespace quickdrop
