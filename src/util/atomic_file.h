// Atomic whole-file replacement for legacy (non-store) persistence paths.
//
// A plain truncating ofstream write has a torn-write hole: a crash between
// open and the final flush leaves a half-written file AND has already
// destroyed the previous contents. write_file_atomic closes that hole for
// every blob-style artifact (legacy checkpoints, trace dumps, metrics JSON):
// it writes `<path>.tmp`, fsyncs it, then renames it over `path` — readers
// only ever observe the old complete file or the new complete file, never a
// prefix. For keyed, incrementally-updated state use src/store instead; this
// helper is for write-once whole-file outputs.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace quickdrop {

/// Durably replaces `path` with `bytes` via write-to-temp + fsync + rename.
/// Throws std::runtime_error (with errno detail) on any I/O failure; on
/// failure `path` is untouched (a stale `<path>.tmp` may remain).
void write_file_atomic(const std::string& path, std::span<const std::uint8_t> bytes);

/// Text overload (same guarantees; bytes are written verbatim, no newline
/// translation).
void write_file_atomic(const std::string& path, const std::string& text);

}  // namespace quickdrop
