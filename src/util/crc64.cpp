#include "util/crc64.h"

#include <array>

namespace quickdrop {
namespace {

// Reflected ECMA-182 polynomial (CRC-64/XZ): init and xorout are all-ones.
constexpr std::uint64_t kPoly = 0xC96C5795D7870F42ULL;

constexpr std::array<std::uint64_t, 256> make_table() {
  std::array<std::uint64_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint64_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) != 0 ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint64_t, 256> kTable = make_table();

}  // namespace

std::uint64_t crc64(std::span<const std::uint8_t> bytes, std::uint64_t seed) {
  std::uint64_t crc = ~seed;
  for (const std::uint8_t b : bytes) {
    crc = kTable[static_cast<std::size_t>((crc ^ b) & 0xFF)] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace quickdrop
