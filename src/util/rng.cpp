#include "util/rng.h"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace quickdrop {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::uniform_u64: bound must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % bound;
}

int Rng::uniform_int(int lo, int hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<int>(uniform_u64(span));
}

float Rng::uniform() {
  // 24 high bits -> float in [0, 1).
  return static_cast<float>(next_u64() >> 40) * (1.0f / 16777216.0f);
}

float Rng::uniform(float lo, float hi) { return lo + (hi - lo) * uniform(); }

float Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  float u1 = uniform();
  while (u1 <= 1e-12f) u1 = uniform();
  const float u2 = uniform();
  const float r = std::sqrt(-2.0f * std::log(u1));
  const float a = 2.0f * 3.14159265358979323846f * u2;
  cached_normal_ = r * std::sin(a);
  have_cached_normal_ = true;
  return r * std::cos(a);
}

float Rng::normal(float mean, float stddev) { return mean + stddev * normal(); }

Rng Rng::split() { return Rng(next_u64()); }

Rng Rng::split(std::uint64_t tag) const {
  std::uint64_t x = seed_ ^ (tag * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL);
  return Rng(splitmix64(x));
}

std::vector<int> Rng::sample_without_replacement(int n, int k) {
  if (k > n || k < 0) throw std::invalid_argument("Rng::sample_without_replacement: k out of range");
  std::vector<int> pool(n);
  for (int i = 0; i < n; ++i) pool[i] = i;
  // Partial Fisher-Yates: first k entries form the sample.
  for (int i = 0; i < k; ++i) {
    const int j = i + static_cast<int>(uniform_u64(static_cast<std::uint64_t>(n - i)));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

std::vector<int> Rng::permutation(int n) { return sample_without_replacement(n, n); }

void Rng::shuffle(std::vector<int>& v) {
  for (int i = static_cast<int>(v.size()) - 1; i > 0; --i) {
    const int j = static_cast<int>(uniform_u64(static_cast<std::uint64_t>(i) + 1));
    std::swap(v[i], v[j]);
  }
}

float Rng::gamma(float shape) {
  // Marsaglia & Tsang; for shape < 1 use the boost trick.
  if (shape < 1.0f) {
    const float u = std::max(uniform(), 1e-12f);
    return gamma(shape + 1.0f) * std::pow(u, 1.0f / shape);
  }
  const float d = shape - 1.0f / 3.0f;
  const float c = 1.0f / std::sqrt(9.0f * d);
  for (;;) {
    float x = normal();
    float v = 1.0f + c * x;
    if (v <= 0.0f) continue;
    v = v * v * v;
    const float u = std::max(uniform(), 1e-12f);
    if (std::log(u) < 0.5f * x * x + d - d * v + d * std::log(v)) return d * v;
  }
}

std::vector<std::uint8_t> Rng::serialize() const {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(kSerializedSize);
  auto put_u64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  put_u64(seed_);
  for (const auto s : s_) put_u64(s);
  put_u64(have_cached_normal_ ? 1 : 0);
  std::uint32_t cached_bits = 0;
  std::memcpy(&cached_bits, &cached_normal_, sizeof(cached_bits));
  put_u64(cached_bits);
  return bytes;
}

Rng Rng::deserialize(std::span<const std::uint8_t> bytes) {
  if (bytes.size() != kSerializedSize) {
    throw std::invalid_argument("Rng::deserialize: bad blob size");
  }
  std::size_t pos = 0;
  auto get_u64 = [&]() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(bytes[pos + static_cast<std::size_t>(i)]) << (8 * i);
    }
    pos += 8;
    return v;
  };
  Rng rng(0);
  rng.seed_ = get_u64();
  for (auto& s : rng.s_) s = get_u64();
  const auto flag = get_u64();
  if (flag > 1) throw std::invalid_argument("Rng::deserialize: bad cached-normal flag");
  rng.have_cached_normal_ = flag == 1;
  const auto cached_bits = static_cast<std::uint32_t>(get_u64());
  std::memcpy(&rng.cached_normal_, &cached_bits, sizeof(cached_bits));
  return rng;
}

std::vector<float> Rng::dirichlet(float alpha, int k) {
  if (alpha <= 0.0f || k <= 0) throw std::invalid_argument("Rng::dirichlet: bad parameters");
  std::vector<float> g(k);
  float sum = 0.0f;
  for (auto& v : g) {
    v = std::max(gamma(alpha), 1e-20f);
    sum += v;
  }
  for (auto& v : g) v /= sum;
  return g;
}

}  // namespace quickdrop
