#include "util/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace quickdrop {
namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("write_file_atomic: " + what + " for " + path + ": " +
                           std::strerror(errno));
}

}  // namespace

void write_file_atomic(const std::string& path, std::span<const std::uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("cannot open temp file", tmp);
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ::ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      fail("write failed", tmp);
    }
    written += static_cast<std::size_t>(n);
  }
  // fsync BEFORE the rename: otherwise a crash shortly after could leave the
  // rename durable but the data not, i.e. the exact torn file this exists to
  // prevent.
  if (::fsync(fd) != 0) {
    ::close(fd);
    fail("fsync failed", tmp);
  }
  if (::close(fd) != 0) fail("close failed", tmp);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) fail("rename failed", path);
}

void write_file_atomic(const std::string& path, const std::string& text) {
  write_file_atomic(path,
                    std::span<const std::uint8_t>(
                        reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

}  // namespace quickdrop
