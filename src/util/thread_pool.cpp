#include "util/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace quickdrop {
namespace {

/// True on threads owned by a pool (and on callers while they execute group
/// work). Parallel calls made from such threads run inline: the pool never
/// nests fan-outs, so worker counts stay bounded and deadlock is impossible.
thread_local bool tls_in_pool_worker = false;

/// One run_chunks invocation: n index tasks claimed via an atomic cursor.
/// Which executor claims which index is scheduling noise; the work done per
/// index is fixed, so results cannot depend on the claim order.
struct TaskGroup {
  TaskGroup(int n_in, const std::function<void(int)>* fn_in) : n(n_in), fn(fn_in) {}

  const int n;
  const std::function<void(int)>* fn;
  std::atomic<int> next{0};
  std::atomic<int> done{0};
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;  // first exception, guarded by mu

  /// Claims and runs indices until the group is exhausted.
  void work() {
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!error) error = std::current_exception();
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    }
  }

  [[nodiscard]] bool finished() const { return done.load(std::memory_order_acquire) >= n; }
};

}  // namespace

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::shared_ptr<TaskGroup>> groups;
  std::vector<std::thread> workers;
  bool stop = false;

  void worker_loop() {
    tls_in_pool_worker = true;
    for (;;) {
      std::shared_ptr<TaskGroup> group;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return stop || !groups.empty(); });
        if (groups.empty()) {
          if (stop) return;
          continue;
        }
        group = groups.front();
        if (group->next.load(std::memory_order_relaxed) >= group->n) {
          // Fully claimed; retire it so the queue cannot grow stale heads.
          groups.pop_front();
          continue;
        }
      }
      group->work();
    }
  }
};

ThreadPool::ThreadPool(int threads) : impl_(new Impl), threads_(threads) {
  if (threads < 1) throw std::invalid_argument("ThreadPool: need at least one thread");
  impl_->workers.reserve(static_cast<std::size_t>(threads - 1));
  for (int i = 0; i < threads - 1; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

void ThreadPool::run_chunks(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (n == 1 || threads_ == 1 || tls_in_pool_worker) {
    for (int i = 0; i < n; ++i) fn(i);  // serial fallback, index order
    return;
  }
  auto group = std::make_shared<TaskGroup>(n, &fn);
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->groups.push_back(group);
  }
  impl_->cv.notify_all();
  // The caller helps drain its own group; nested parallel calls inside fn
  // must run inline, exactly as they do on the background workers.
  tls_in_pool_worker = true;
  group->work();
  tls_in_pool_worker = false;
  {
    std::unique_lock<std::mutex> lock(group->mu);
    group->cv.wait(lock, [&] { return group->finished(); });
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (auto it = impl_->groups.begin(); it != impl_->groups.end(); ++it) {
      if (*it == group) {
        impl_->groups.erase(it);
        break;
      }
    }
  }
  if (group->error) std::rethrow_exception(group->error);
}

void ThreadPool::parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                              const std::function<void(std::int64_t, std::int64_t)>& fn) {
  const std::int64_t count = end - begin;
  if (count <= 0) return;
  const std::int64_t g = grain < 1 ? 1 : grain;
  const std::int64_t max_chunks = (count + g - 1) / g;
  const int chunks = static_cast<int>(
      max_chunks < static_cast<std::int64_t>(threads_) ? max_chunks : threads_);
  if (chunks <= 1 || tls_in_pool_worker) {
    fn(begin, end);
    return;
  }
  run_chunks(chunks, [&](int c) {
    const std::int64_t b = begin + count * c / chunks;
    const std::int64_t e = begin + count * (c + 1) / chunks;
    if (b < e) fn(b, e);
  });
}

namespace {

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;       // guarded by g_pool_mu
int g_requested_threads = 0;              // 0 = not configured yet

int default_threads() {
  const char* env = std::getenv("QUICKDROP_THREADS");
  if (env != nullptr) {
    try {
      const int n = std::stoi(env);
      if (n >= 1) return n;
    } catch (const std::exception&) {
      // A bad env var must not take the process down; fall through.
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

}  // namespace

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (!g_pool) {
    if (g_requested_threads == 0) g_requested_threads = default_threads();
    g_pool = std::make_unique<ThreadPool>(g_requested_threads);
  }
  return *g_pool;
}

void set_num_threads(int threads) {
  if (threads < 1) throw std::invalid_argument("set_num_threads: need at least one thread");
  std::lock_guard<std::mutex> lock(g_pool_mu);
  g_requested_threads = threads;
  if (g_pool && g_pool->threads() != threads) g_pool.reset();
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(threads);
}

int num_threads() { return ThreadPool::global().threads(); }

void set_threads_from_env() {
  const char* env = std::getenv("QUICKDROP_THREADS");
  if (env == nullptr) return;
  try {
    const int n = std::stoi(env);
    if (n >= 1) set_num_threads(n);
  } catch (const std::exception&) {
    // Ignored, like QUICKDROP_LOG_LEVEL.
  }
}

std::int64_t grain_for(std::int64_t cost_per_item) {
  constexpr std::int64_t kMinChunkCost = 16384;
  if (cost_per_item < 1) cost_per_item = 1;
  const std::int64_t g = kMinChunkCost / cost_per_item;
  return g < 1 ? 1 : g;
}

}  // namespace quickdrop
