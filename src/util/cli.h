// Tiny command-line flag parser used by the bench and example binaries.
//
// Flags take the form `--name=value` or `--name value`. Unknown flags are an
// error so typos do not silently fall back to defaults.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace quickdrop {

/// Parses `--flag=value` style command lines with typed accessors.
class CliFlags {
 public:
  /// Parses argv. Throws std::invalid_argument on malformed input.
  CliFlags(int argc, char** argv);

  /// True when the flag was provided on the command line. Does not mark the
  /// flag as used — pair with a get_*() call, or the flag counts as a typo.
  [[nodiscard]] bool has(const std::string& name) const;

  /// Typed lookups; the default is returned when the flag is absent.
  int get_int(const std::string& name, int default_value);
  double get_double(const std::string& name, double default_value);
  std::string get_string(const std::string& name, const std::string& default_value);
  bool get_bool(const std::string& name, bool default_value);

  /// Returns the flags that were provided but never read; used to reject
  /// typos after all get_*() calls were made.
  [[nodiscard]] std::vector<std::string> unused() const;

  /// Throws std::invalid_argument if any provided flag was never consumed.
  void check_unused() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> used_;
};

}  // namespace quickdrop
