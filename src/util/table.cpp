#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace quickdrop {

void TextTable::set_header(std::vector<std::string> header) { header_ = std::move(header); }

void TextTable::add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string cell = c < row.size() ? row[c] : "";
      out << "| " << cell << std::string(widths[c] - cell.size(), ' ') << ' ';
    }
    out << "|\n";
  };
  auto emit_rule = [&] {
    for (const auto w : widths) out << "+" << std::string(w + 2, '-');
    out << "+\n";
  };
  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return out.str();
}

std::string TextTable::render_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string fmt_double(double v, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << v;
  return out.str();
}

std::string fmt_percent(double fraction, int precision) {
  return fmt_double(fraction * 100.0, precision) + "%";
}

}  // namespace quickdrop
