// Minimal leveled logging to stderr.
#pragma once

#include <sstream>
#include <string>

namespace quickdrop {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level that is emitted (default: kInfo).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses "debug" | "info" | "warn" | "error" (case-sensitive). Throws
/// std::invalid_argument on anything else.
LogLevel log_level_from_name(const std::string& name);

/// Applies the QUICKDROP_LOG_LEVEL environment variable, if set and valid
/// (invalid values are ignored). Called by the CLI at startup.
void set_log_level_from_env();

namespace detail {
void log_emit(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace quickdrop

#define QD_LOG_DEBUG ::quickdrop::detail::LogLine(::quickdrop::LogLevel::kDebug)
#define QD_LOG_INFO ::quickdrop::detail::LogLine(::quickdrop::LogLevel::kInfo)
#define QD_LOG_WARN ::quickdrop::detail::LogLine(::quickdrop::LogLevel::kWarn)
#define QD_LOG_ERROR ::quickdrop::detail::LogLine(::quickdrop::LogLevel::kError)
