// CRC64 (ECMA-182, reflected — the xz/"CRC-64/XZ" parameterization).
//
// The storage engine (src/store) uses this as its torn-write and bit-rot
// detector: every page and commit record carries a CRC64 over its payload,
// and recovery-on-open trusts nothing whose checksum does not verify. CRC64
// is preferred over the checkpoint format's FNV-1a here because it has
// guaranteed burst-error detection (FNV is a hash, not an error code) while
// remaining dependency-free and deterministic across platforms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace quickdrop {

/// CRC64 of `bytes` continuing from `seed` (pass the previous return value to
/// checksum a buffer in chunks). `crc64(b)` == `crc64(b2, crc64(b1))` when
/// b == b1 + b2. The empty range returns `seed` unchanged.
std::uint64_t crc64(std::span<const std::uint8_t> bytes, std::uint64_t seed = 0);

}  // namespace quickdrop
