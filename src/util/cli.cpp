#include "util/cli.h"

#include <stdexcept>

namespace quickdrop {

CliFlags::CliFlags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("CliFlags: expected --flag, got '" + arg + "'");
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare flag == boolean true
    }
  }
}

bool CliFlags::has(const std::string& name) const { return values_.count(name) != 0; }

int CliFlags::get_int(const std::string& name, int default_value) {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  used_[name] = true;
  return std::stoi(it->second);
}

double CliFlags::get_double(const std::string& name, double default_value) {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  used_[name] = true;
  return std::stod(it->second);
}

std::string CliFlags::get_string(const std::string& name, const std::string& default_value) {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  used_[name] = true;
  return it->second;
}

bool CliFlags::get_bool(const std::string& name, bool default_value) {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  used_[name] = true;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> CliFlags::unused() const {
  std::vector<std::string> result;
  for (const auto& [name, _] : values_) {
    if (!used_.count(name)) result.push_back(name);
  }
  return result;
}

void CliFlags::check_unused() const {
  const auto u = unused();
  if (!u.empty()) {
    std::string msg = "CliFlags: unknown flag(s):";
    for (const auto& name : u) msg += " --" + name;
    throw std::invalid_argument(msg);
  }
}

}  // namespace quickdrop
