// Wall-clock stopwatch used by the experiment harnesses.
#pragma once

#include <chrono>

namespace quickdrop {

/// Simple monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace quickdrop
