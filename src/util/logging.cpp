#include "util/logging.h"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace quickdrop {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

LogLevel log_level_from_name(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  throw std::invalid_argument("unknown log level '" + name + "'");
}

void set_log_level_from_env() {
  const char* env = std::getenv("QUICKDROP_LOG_LEVEL");
  if (env == nullptr) return;
  try {
    set_log_level(log_level_from_name(env));
  } catch (const std::invalid_argument&) {
    // A bad env var must not take the process down; keep the current level.
  }
}

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  // Single insertion so lines from concurrent clients cannot interleave.
  std::string line;
  line.reserve(message.size() + 16);
  line.append("[").append(level_name(level)).append("] ").append(message).append("\n");
  std::cerr << line;
}
}  // namespace detail

}  // namespace quickdrop
