// Plain-text table rendering for experiment reports.
#pragma once

#include <string>
#include <vector>

namespace quickdrop {

/// Accumulates rows of strings and renders an aligned ASCII table, in the
/// style of the paper's result tables.
class TextTable {
 public:
  /// Sets the header row.
  void set_header(std::vector<std::string> header);

  /// Appends a data row. Rows may have fewer cells than the header.
  void add_row(std::vector<std::string> row);

  /// Renders the table with aligned columns.
  [[nodiscard]] std::string render() const;

  /// Renders as CSV (comma-separated, minimal quoting).
  [[nodiscard]] std::string render_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision, e.g. fmt_double(1.2345, 2) == "1.23".
std::string fmt_double(double v, int precision);

/// Formats a fraction as a percentage string, e.g. fmt_percent(0.1234) == "12.34%".
std::string fmt_percent(double fraction, int precision = 2);

}  // namespace quickdrop
