// Backdoor-based unlearning verification.
//
// The paper motivates FU with the need to "quickly eliminate outdated,
// manipulated, or erroneously included data" (§1). The standard way to
// demonstrate that a *malicious* client's influence was actually erased is a
// trigger backdoor: the client stamps a pixel pattern onto its samples and
// relabels them to a target class; a successfully poisoned model classifies
// ANY stamped image as the target class. After client-level unlearning the
// attack success rate must collapse to chance.
#pragma once

#include "data/dataset.h"
#include "nn/module.h"

namespace quickdrop::attack {

/// A square high-intensity patch stamped into a corner of the image.
struct TriggerPattern {
  int size = 3;          ///< patch side length in pixels
  float intensity = 3.0f;  ///< pixel value written into the patch
  /// Patch corner: 0 = top-left, 1 = top-right, 2 = bottom-left, 3 = bottom-right.
  int corner = 3;
};

/// Stamps the trigger onto one image tensor [C,H,W] (in place).
void stamp_trigger(Tensor& image, const TriggerPattern& trigger);

/// Returns a copy of `dataset` where every row is stamped and relabeled to
/// `target_label` — a fully poisoned client dataset.
data::Dataset poison_dataset(const data::Dataset& dataset, const TriggerPattern& trigger,
                             int target_label);

/// Attack success rate: the fraction of non-target-class samples that the
/// model classifies as `target_label` once stamped. Chance level is roughly
/// the model's base rate for the target class.
double backdoor_success_rate(nn::Module& model, const data::Dataset& clean_samples,
                             const TriggerPattern& trigger, int target_label,
                             int max_samples = 200);

}  // namespace quickdrop::attack
