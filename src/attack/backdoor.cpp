#include "attack/backdoor.h"

#include <algorithm>
#include <stdexcept>

#include "tensor/kernels.h"

namespace quickdrop::attack {

void stamp_trigger(Tensor& image, const TriggerPattern& trigger) {
  const auto& s = image.shape();
  if (s.size() != 3) throw std::invalid_argument("stamp_trigger: image must be [C,H,W]");
  const std::int64_t c = s[0], h = s[1], w = s[2];
  const std::int64_t k = std::min<std::int64_t>(trigger.size, std::min(h, w));
  if (k <= 0) throw std::invalid_argument("stamp_trigger: bad trigger size");
  const std::int64_t y0 = (trigger.corner == 2 || trigger.corner == 3) ? h - k : 0;
  const std::int64_t x0 = (trigger.corner == 1 || trigger.corner == 3) ? w - k : 0;
  for (std::int64_t ch = 0; ch < c; ++ch) {
    for (std::int64_t y = 0; y < k; ++y) {
      for (std::int64_t x = 0; x < k; ++x) {
        image.at((ch * h + y0 + y) * w + x0 + x) = trigger.intensity;
      }
    }
  }
}

data::Dataset poison_dataset(const data::Dataset& dataset, const TriggerPattern& trigger,
                             int target_label) {
  if (target_label < 0 || target_label >= dataset.num_classes()) {
    throw std::invalid_argument("poison_dataset: bad target label");
  }
  std::vector<int> rows(static_cast<std::size_t>(dataset.size()));
  for (int i = 0; i < dataset.size(); ++i) rows[static_cast<std::size_t>(i)] = i;
  auto [images, labels] = dataset.batch(rows);
  const std::int64_t stride = numel(dataset.image_shape());
  for (int i = 0; i < dataset.size(); ++i) {
    // View of row i sharing the batch storage via a temporary copy-out/in:
    Tensor row(dataset.image_shape());
    std::copy_n(images.data().data() + i * stride, static_cast<std::size_t>(stride),
                row.data().data());
    stamp_trigger(row, trigger);
    std::copy_n(row.data().data(), static_cast<std::size_t>(stride),
                images.data().data() + i * stride);
    labels[static_cast<std::size_t>(i)] = target_label;
  }
  return data::Dataset(std::move(images), std::move(labels), dataset.num_classes());
}

double backdoor_success_rate(nn::Module& model, const data::Dataset& clean_samples,
                             const TriggerPattern& trigger, int target_label, int max_samples) {
  std::vector<int> rows;
  for (int i = 0; i < clean_samples.size() && static_cast<int>(rows.size()) < max_samples; ++i) {
    if (clean_samples.label(i) != target_label) rows.push_back(i);
  }
  if (rows.empty()) return 0.0;
  auto [images, labels] = clean_samples.batch(rows);
  (void)labels;
  const std::int64_t stride = numel(clean_samples.image_shape());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    Tensor row(clean_samples.image_shape());
    std::copy_n(images.data().data() + static_cast<std::int64_t>(i) * stride,
                static_cast<std::size_t>(stride), row.data().data());
    stamp_trigger(row, trigger);
    std::copy_n(row.data().data(), static_cast<std::size_t>(stride),
                images.data().data() + static_cast<std::int64_t>(i) * stride);
  }
  const auto preds = kernels::argmax_rows(model.forward_tensor(images).value());
  int hits = 0;
  for (const int p : preds) hits += p == target_label;
  return static_cast<double>(hits) / static_cast<double>(preds.size());
}

}  // namespace quickdrop::attack
