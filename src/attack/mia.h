// Membership inference attack (paper §4.2.3, following Golatkar et al.).
//
// A logistic-regression attack model is trained to distinguish members
// (training samples) from non-members (held-out test samples) using three
// features of the target model's output on a sample: cross-entropy loss,
// top-softmax confidence and predictive entropy. MIA accuracy on the forget
// and retain sets is an alternative unlearning metric to test accuracy: an
// effectively unlearned model classifies forget-set samples as non-members.
#pragma once

#include "data/dataset.h"
#include "nn/module.h"

namespace quickdrop::attack {

struct MiaConfig {
  int train_steps = 300;
  int batch_size = 64;
  float learning_rate = 0.2f;
  int max_examples_per_side = 400;  ///< cap on member/non-member training rows
};

struct MiaReport {
  /// Fraction of forget-set samples the attack classifies as members
  /// (lower = better unlearning).
  double forget_member_rate = 0.0;
  /// Fraction of retain-set samples classified as members (higher = the
  /// model still knows the retained data).
  double retain_member_rate = 0.0;
  /// Attack model's balanced accuracy on held-out member/non-member rows.
  double attack_accuracy = 0.0;
};

/// Per-sample attack features: [loss, confidence, entropy], shape [N, 3].
Tensor mia_features(nn::Module& target, const data::Dataset& dataset,
                    const std::vector<int>& rows);

/// Trains the attack model on `members` (rows of `member_data`) versus
/// `non_members` and evaluates member-classification rates on the forget and
/// retain sets.
MiaReport run_mia(nn::Module& target, const data::Dataset& member_data,
                  const data::Dataset& non_member_data, const data::Dataset& forget_set,
                  const data::Dataset& retain_set, Rng& rng, const MiaConfig& config = {});

}  // namespace quickdrop::attack
