#include "attack/mia.h"

#include <algorithm>
#include <cmath>

#include "fl/client_update.h"
#include "metrics/evaluate.h"
#include "nn/convnet.h"
#include "tensor/kernels.h"

namespace quickdrop::attack {
namespace {

std::vector<int> all_rows(const data::Dataset& d) {
  std::vector<int> rows(static_cast<std::size_t>(d.size()));
  for (int i = 0; i < d.size(); ++i) rows[static_cast<std::size_t>(i)] = i;
  return rows;
}

/// Feature standardization statistics fit on the attack training set.
struct Standardizer {
  std::vector<float> mean, stddev;

  void fit(const Tensor& features) {
    const std::int64_t n = features.dim(0), f = features.dim(1);
    mean.assign(static_cast<std::size_t>(f), 0.0f);
    stddev.assign(static_cast<std::size_t>(f), 0.0f);
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < f; ++j) mean[static_cast<std::size_t>(j)] += features.at(i * f + j);
    }
    for (auto& m : mean) m /= static_cast<float>(n);
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < f; ++j) {
        const float d = features.at(i * f + j) - mean[static_cast<std::size_t>(j)];
        stddev[static_cast<std::size_t>(j)] += d * d;
      }
    }
    for (auto& s : stddev) s = std::sqrt(s / static_cast<float>(n)) + 1e-6f;
  }

  [[nodiscard]] Tensor apply(const Tensor& features) const {
    Tensor out = features.clone();
    const std::int64_t n = out.dim(0), f = out.dim(1);
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < f; ++j) {
        out.at(i * f + j) = (out.at(i * f + j) - mean[static_cast<std::size_t>(j)]) /
                            stddev[static_cast<std::size_t>(j)];
      }
    }
    return out;
  }
};

/// The attack model: logits = features W^T + b over {non-member, member}.
class AttackModel {
 public:
  explicit AttackModel(Rng& rng) : net_(nn::make_mlp(3, 8, 2, rng)) {}

  void train(const Tensor& features, const std::vector<int>& labels, const MiaConfig& config,
             Rng& rng) {
    std::vector<int> pool(static_cast<std::size_t>(features.dim(0)));
    for (std::size_t i = 0; i < pool.size(); ++i) pool[i] = static_cast<int>(i);
    fl::CostMeter cost;
    for (int step = 0; step < config.train_steps; ++step) {
      const auto rows = data::Dataset::sample_batch_indices(pool, config.batch_size, rng);
      Tensor batch({static_cast<std::int64_t>(rows.size()), 3});
      std::vector<int> batch_labels;
      batch_labels.reserve(rows.size());
      for (std::size_t i = 0; i < rows.size(); ++i) {
        for (int j = 0; j < 3; ++j) {
          batch.at(static_cast<std::int64_t>(i) * 3 + j) =
              features.at(static_cast<std::int64_t>(rows[i]) * 3 + j);
        }
        batch_labels.push_back(labels[static_cast<std::size_t>(rows[i])]);
      }
      fl::sgd_step_on_batch(*net_, batch, batch_labels, config.learning_rate,
                            nn::UpdateDirection::kDescent, cost);
    }
  }

  /// Fraction of rows predicted "member" (class 1).
  [[nodiscard]] double member_rate(const Tensor& features) {
    if (features.dim(0) == 0) return 0.0;
    const auto preds = kernels::argmax_rows(net_->forward_tensor(features).value());
    int members = 0;
    for (const int p : preds) members += p == 1;
    return static_cast<double>(members) / static_cast<double>(preds.size());
  }

 private:
  std::unique_ptr<nn::Sequential> net_;
};

}  // namespace

Tensor mia_features(nn::Module& target, const data::Dataset& dataset,
                    const std::vector<int>& rows) {
  const Tensor probs = metrics::softmax_probabilities(target, dataset, rows);
  const std::int64_t c = probs.dim(1);
  Tensor out({static_cast<std::int64_t>(rows.size()), 3});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const int label = dataset.label(rows[i]);
    float conf = 0.0f;
    double entropy = 0.0;
    const float p_label =
        std::max(probs.at(static_cast<std::int64_t>(i) * c + label), 1e-12f);
    for (std::int64_t j = 0; j < c; ++j) {
      const float p = probs.at(static_cast<std::int64_t>(i) * c + j);
      conf = std::max(conf, p);
      if (p > 1e-12f) entropy -= static_cast<double>(p) * std::log(static_cast<double>(p));
    }
    out.at(static_cast<std::int64_t>(i) * 3 + 0) = -std::log(p_label);  // loss
    out.at(static_cast<std::int64_t>(i) * 3 + 1) = conf;
    out.at(static_cast<std::int64_t>(i) * 3 + 2) = static_cast<float>(entropy);
  }
  return out;
}

MiaReport run_mia(nn::Module& target, const data::Dataset& member_data,
                  const data::Dataset& non_member_data, const data::Dataset& forget_set,
                  const data::Dataset& retain_set, Rng& rng, const MiaConfig& config) {
  // Balanced member/non-member training rows with a held-out half for the
  // attack-accuracy estimate.
  auto member_rows = all_rows(member_data);
  auto non_member_rows = all_rows(non_member_data);
  rng.shuffle(member_rows);
  rng.shuffle(non_member_rows);
  const int per_side = std::min({config.max_examples_per_side,
                                 static_cast<int>(member_rows.size()),
                                 static_cast<int>(non_member_rows.size())});
  member_rows.resize(static_cast<std::size_t>(per_side));
  non_member_rows.resize(static_cast<std::size_t>(per_side));
  const int train_per_side = per_side / 2;

  const Tensor member_feat = mia_features(target, member_data, member_rows);
  const Tensor non_member_feat = mia_features(target, non_member_data, non_member_rows);

  auto take = [](const Tensor& feat, int from, int to) {
    Tensor out({to - from, 3});
    for (std::int64_t i = 0; i < out.dim(0); ++i) {
      for (int j = 0; j < 3; ++j) out.at(i * 3 + j) = feat.at((from + i) * 3 + j);
    }
    return out;
  };

  // Assemble the attack training matrix.
  Tensor train_feat({2 * train_per_side, 3});
  std::vector<int> train_labels(static_cast<std::size_t>(2 * train_per_side));
  for (int i = 0; i < train_per_side; ++i) {
    for (int j = 0; j < 3; ++j) {
      train_feat.at(static_cast<std::int64_t>(i) * 3 + j) = member_feat.at(static_cast<std::int64_t>(i) * 3 + j);
      train_feat.at(static_cast<std::int64_t>(train_per_side + i) * 3 + j) =
          non_member_feat.at(static_cast<std::int64_t>(i) * 3 + j);
    }
    train_labels[static_cast<std::size_t>(i)] = 1;
    train_labels[static_cast<std::size_t>(train_per_side + i)] = 0;
  }

  Standardizer standardizer;
  standardizer.fit(train_feat);

  AttackModel attack(rng);
  attack.train(standardizer.apply(train_feat), train_labels, config, rng);

  MiaReport report;
  // Held-out attack accuracy.
  const Tensor held_members = take(member_feat, train_per_side, per_side);
  const Tensor held_non = take(non_member_feat, train_per_side, per_side);
  const double tpr = attack.member_rate(standardizer.apply(held_members));
  const double fpr = attack.member_rate(standardizer.apply(held_non));
  report.attack_accuracy = 0.5 * (tpr + (1.0 - fpr));

  if (!forget_set.empty()) {
    const Tensor f = mia_features(target, forget_set, all_rows(forget_set));
    report.forget_member_rate = attack.member_rate(standardizer.apply(f));
  }
  if (!retain_set.empty()) {
    const Tensor r = mia_features(target, retain_set, all_rows(retain_set));
    report.retain_member_rate = attack.member_rate(standardizer.apply(r));
  }
  return report;
}

}  // namespace quickdrop::attack
