// HTTP/JSON API over the unlearning service.
//
// Routes:
//   POST /unlearn      {"kind": "class"|"client"|"sample", "target": N,
//                       "priority": N?, "rows": [..]?}
//                      -> 202 {"id": N, "status": "queued"}
//                       | 400 {"status": "rejected", "reason": "...", ...}
//   GET  /request/<id> -> {"id": N, "status": "queued"|"completed", ...}
//   GET  /metrics      -> the full ServiceReport JSON plus a per-tenant
//                         accounting section
//
// Authentication is per-tenant bearer tokens: when tenants are configured,
// every request must carry `Authorization: Bearer <token>` matching one of
// them (else 401), and admission/completion/wire-byte counts are kept per
// tenant. With no tenants configured the API is open and everything is
// accounted to "default".
//
// The service core is the same deterministic simulated-time machinery the
// replay paths use (queue -> scheduler -> executor); the API's live clock IS
// the sim clock. Requests admitted over HTTP carry arrival = current sim
// clock; drain() executes pending cycles and advances it. The HTTP server's
// idle hook calls drain(), so unlearning work happens between requests.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/http.h"
#include "serve/service.h"

namespace quickdrop::net {

/// One API tenant: a display name and its bearer token.
struct Tenant {
  std::string name;
  std::string token;
};

/// Parses "name=token,name2=token2". Throws std::invalid_argument on empty
/// names/tokens, missing '=', or duplicate names.
std::vector<Tenant> parse_tenant_specs(const std::string& spec);

/// Per-tenant admission accounting, reported under /metrics.
struct TenantStats {
  std::int64_t admitted = 0;
  std::int64_t rejected = 0;
  std::int64_t completed = 0;
  std::int64_t wire_bytes = 0;  ///< HTTP request bytes attributed to the tenant
};

struct ApiConfig {
  serve::ServiceConfig service;
  std::vector<Tenant> tenants;  ///< empty = open API, tenant "default"
};

class ApiService {
 public:
  ApiService(std::shared_ptr<core::QuickDrop> quickdrop, nn::ModelState initial,
             ApiConfig config);

  /// Routes one HTTP request. Never throws for client errors — those become
  /// 4xx responses.
  HttpResponse handle(const HttpRequest& request);

  /// Executes service cycles until the admission queue is empty, advancing
  /// the sim clock. Called from the HTTP server's idle hook.
  void drain();

  [[nodiscard]] const nn::ModelState& state() const { return state_; }
  [[nodiscard]] double clock_seconds() const { return clock_seconds_; }
  [[nodiscard]] const std::map<std::string, TenantStats>& tenant_stats() const {
    return tenants_seen_;
  }

  /// Snapshot of the run so far as a standard service report.
  [[nodiscard]] serve::ServiceReport report() const;

 private:
  /// Resolves the Authorization header to a tenant name; empty = unauthorized.
  [[nodiscard]] std::string authenticate(const HttpRequest& request) const;

  HttpResponse handle_unlearn(const HttpRequest& request, const std::string& tenant);
  HttpResponse handle_request_status(std::int64_t id) const;
  HttpResponse handle_metrics() const;

  std::shared_ptr<core::QuickDrop> quickdrop_;
  nn::ModelState state_;
  ApiConfig config_;
  serve::Scheduler scheduler_;
  serve::Executor executor_;
  serve::AdmissionQueue queue_;
  double clock_seconds_ = 0.0;
  int cycles_ = 0;
  int total_fl_rounds_ = 0;
  std::int64_t total_bytes_ = 0;
  std::vector<serve::RequestMetrics> completed_;
  std::map<std::int64_t, std::size_t> completed_index_;  ///< id -> completed_ slot
  std::map<std::int64_t, std::string> owner_;            ///< id -> tenant
  std::map<std::string, TenantStats> tenants_seen_;
};

}  // namespace quickdrop::net
