// The binary wire protocol for unlearning traffic.
//
// Every message is one frame (little-endian):
//
//   u32 magic     "QDNF"
//   u16 version   1
//   u8  type      FrameType
//   u8  reserved  0
//   u64 layout hash   — the deployment's StateLayout hash; decode rejects
//                       frames built against a different model geometry
//                       before anything touches the scheduler
//   u32 payload length  (cap kMaxFramePayload)
//   payload bytes
//   u64 CRC-64/XZ over header + payload
//
// Payloads reuse the repo's hardened encodings: client updates ship either
// the v2 state format (nn/state.h) or the PR 7 quantized-update encoding
// (fl/quantize.h), both of which carry their own magic + layout gate, so a
// corrupt update must defeat two independent checks to reach aggregation.
// The decoder is total: truncation at any boundary, bad magic, unknown type,
// oversized lengths, hash mismatch, CRC failure and trailing bytes all throw
// a typed NetError — no input yields a partial frame.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fl/quantize.h"
#include "net/io.h"
#include "nn/state.h"
#include "serve/queue.h"
#include "serve/request.h"

namespace quickdrop::net {

inline constexpr std::uint32_t kFrameMagic = 0x464E4451;  // "QDNF" little-endian
inline constexpr std::uint16_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 20;
inline constexpr std::size_t kFrameTrailerBytes = 8;
/// Payload cap: larger than any state this repo ships, small enough that a
/// corrupted length field cannot drive a multi-GiB allocation.
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

enum class FrameType : std::uint8_t {
  kUnlearnRequest = 1,  ///< one ServiceRequest + tenant (client -> server)
  kEndOfTrace = 2,      ///< no payload; the replay client is done sending
  kClientUpdate = 3,    ///< raw-v2 or quantized model update
  kAck = 4,             ///< admission decision for one request (server -> client)
  kReport = 5,          ///< final ServiceReport JSON (server -> client)
};

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kEndOfTrace;
  std::uint64_t layout_hash = 0;
  std::vector<std::uint8_t> payload;
};

/// Frame <-> bytes. decode_frame consumes the whole buffer (trailing bytes
/// are an error) and, when `expected_layout_hash` is nonzero, rejects frames
/// whose hash differs.
std::vector<std::uint8_t> encode_frame(const Frame& frame);
Frame decode_frame(std::span<const std::uint8_t> bytes, std::uint64_t expected_layout_hash);

/// Frame <-> Io stream. read_frame returns nullopt on clean end-of-stream at
/// a frame boundary and throws NetError mid-frame.
void write_frame(Io& io, const Frame& frame);
std::optional<Frame> read_frame(Io& io, std::uint64_t expected_layout_hash);

// ---------------------------------------------------------------------------
// Payload codecs
// ---------------------------------------------------------------------------

/// A ServiceRequest on the wire, tagged with the tenant that sent it.
struct WireRequest {
  serve::ServiceRequest request;
  std::string tenant;
};

std::vector<std::uint8_t> encode_request_payload(const WireRequest& wire);
WireRequest decode_request_payload(std::span<const std::uint8_t> bytes);

/// Admission decision echoed back per request.
struct WireAck {
  bool accepted = false;
  std::int64_t id = -1;  ///< assigned id when accepted
  serve::RejectReason reason = serve::RejectReason::kTargetOutOfRange;
  std::string message;
};

std::vector<std::uint8_t> encode_ack_payload(const WireAck& ack);
WireAck decode_ack_payload(std::span<const std::uint8_t> bytes);

/// Client-update payload: u8 codec, then the v2 state bytes (Codec::kNone —
/// the full state) or the quantized delta encoding (int8/bf16). Decoding
/// validates against `layout` and never returns partial state.
std::vector<std::uint8_t> encode_update_payload(const nn::ModelState& state, fl::Codec codec);
nn::ModelState decode_update_payload(std::span<const std::uint8_t> bytes,
                                     const std::shared_ptr<const nn::StateLayout>& layout);

/// Convenience: whole frames for the common messages.
Frame make_request_frame(const WireRequest& wire, std::uint64_t layout_hash);
Frame make_end_frame(std::uint64_t layout_hash);
Frame make_ack_frame(const WireAck& ack, std::uint64_t layout_hash);
Frame make_report_frame(const std::string& json, std::uint64_t layout_hash);
Frame make_update_frame(const nn::ModelState& state, fl::Codec codec,
                        std::uint64_t layout_hash);

}  // namespace quickdrop::net
