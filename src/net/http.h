// Minimal HTTP/1.1 front door for the unlearning service.
//
// Scope is deliberately small: request/response messages with
// Content-Length bodies (no chunked encoding, no keep-alive negotiation —
// connections are serviced until the peer half-closes). The parser is
// incremental and total: it accumulates bytes off an `Io`, enforces hard
// caps on head and body size, accepts both CRLF and bare-LF line endings,
// and throws NetError(kMalformedHttp) on anything outside the grammar — a
// malformed request can never leave a half-parsed message behind.
//
// The server side is a single-threaded poll loop (net/socket.h): one
// connection is drained at a time, and whenever the listener is idle the
// caller-supplied idle hook runs — the API service uses it to execute
// pending unlearning cycles between requests.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/io.h"
#include "net/socket.h"

namespace quickdrop::net {

/// Head cap: request line + headers. Anything larger is hostile.
inline constexpr std::size_t kMaxHttpHeadBytes = 16u << 10;
/// Body cap: unlearning requests are tiny; 1 MiB leaves headroom for traces.
inline constexpr std::size_t kMaxHttpBodyBytes = 1u << 20;

/// One parsed request. Header names are lower-cased; values are trimmed.
struct HttpRequest {
  std::string method;
  std::string target;   ///< raw request target, e.g. "/request/3"
  std::string version;  ///< "HTTP/1.1" or "HTTP/1.0"
  std::map<std::string, std::string> headers;
  std::string body;

  /// Header value or "" when absent (names are stored lower-case).
  [[nodiscard]] const std::string& header(const std::string& lower_name) const;
};

/// One response. write_response fills in the reason phrase, Content-Type
/// and Content-Length.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// Standard reason phrase for the handful of statuses the API uses.
const char* status_reason(int status);

/// Incremental request parser over an Io stream. next() returns the next
/// complete request, blocking on the underlying read as needed; nullopt on
/// clean end-of-stream at a message boundary. Pipelined requests (several
/// messages arriving in one read) are handled naturally.
class HttpConnReader {
 public:
  explicit HttpConnReader(Io& io) : io_(io) {}

  std::optional<HttpRequest> next();

 private:
  /// Reads more bytes into buf_. Returns false on end-of-stream.
  bool fill();

  Io& io_;
  std::vector<std::uint8_t> buf_;
  bool eof_ = false;
};

void write_response(Io& io, const HttpResponse& response);

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Serves one connection until the peer half-closes, routing every request
/// through `handler`. Handler exceptions become 500 responses; NetError with
/// kMalformedHttp becomes 400 and closes the connection. Transport failures
/// (peer reset mid-response, idle timeout) drop the connection without
/// propagating — this function never throws for peer misbehavior.
void serve_http_conn(Io& io, const HttpHandler& handler);

/// Poll-based accept loop over a TCP listener. Connections are serviced one
/// at a time; whenever no connection is pending for `idle_timeout_ms`, the
/// idle hook runs (the unlearning service drains admitted requests there) —
/// and it keeps running in `idle_timeout_ms` slices while a connected peer
/// is silent, so a dawdling client cannot starve admitted work. A connection
/// with no bytes for `conn_idle_limit_ms` is dropped (pass a negative limit
/// to wait forever). A connection that fails mid-service is logged and the
/// loop keeps accepting. Returns when `stop` returns true (checked between
/// connections).
void serve_http(TcpListener& listener, const HttpHandler& handler,
                const std::function<void()>& idle_hook, const std::function<bool()>& stop,
                int idle_timeout_ms = 50, int conn_idle_limit_ms = 5000);

}  // namespace quickdrop::net
