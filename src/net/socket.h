// POSIX TCP transport: the production implementation of net::Io.
//
// Everything here is EINTR-safe (every socket call retries on interruption),
// length-agnostic (framing lives in net/wire.h, not here), and
// dependency-free. This file and net/socket.cpp are the only place in the
// tree allowed to touch raw socket syscalls — qdlint's api-net-io rule
// enforces that everything else goes through net::Io.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/io.h"

namespace quickdrop::net {

/// A connected TCP stream. Owns the file descriptor.
class TcpConn : public Io {
 public:
  /// Adopts a connected socket fd.
  explicit TcpConn(int fd);
  ~TcpConn() override;
  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;

  std::size_t read_some(std::span<std::uint8_t> buf) override;
  void write_all(std::span<const std::uint8_t> bytes) override;
  /// Half-close: shutdown(SHUT_WR) so the peer sees end-of-stream while this
  /// end can still read responses.
  void finish_write() override;
  /// Real poll(POLLIN): recv will not block (data or EOF pending).
  bool poll_readable(int timeout_ms) override { return wait_readable(timeout_ms); }

  /// Blocks until the connection is readable or `timeout_ms` elapses
  /// (EINTR-safe poll). Returns true when readable. timeout_ms < 0 waits
  /// forever.
  [[nodiscard]] bool wait_readable(int timeout_ms) const;

  [[nodiscard]] int fd() const { return fd_; }

 private:
  int fd_;
  bool write_finished_ = false;
};

/// A listening TCP socket bound to 0.0.0.0:`port`. Pass port 0 for an
/// ephemeral port; `port()` reports the actual one.
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Accepts the next connection (EINTR-safe, blocking).
  std::unique_ptr<TcpConn> accept_conn();

  /// Blocks until a connection is pending or `timeout_ms` elapses. Returns
  /// true when accept_conn() will not block. timeout_ms < 0 waits forever.
  [[nodiscard]] bool wait_pending(int timeout_ms) const;

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] int fd() const { return fd_; }

 private:
  int fd_;
  std::uint16_t port_;
};

/// Connects to `host`:`port` (numeric IPv4 dotted quad or "localhost").
/// Throws NetError(kIoFailure) on refusal/failure.
std::unique_ptr<TcpConn> tcp_connect(const std::string& host, std::uint16_t port);

}  // namespace quickdrop::net
