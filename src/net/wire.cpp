#include "net/wire.h"

#include <cstring>

#include "util/crc64.h"

namespace quickdrop::net {

namespace {

// Little-endian scalar writers/readers, mirroring the v2 state framing.
template <typename T>
void put(std::vector<std::uint8_t>& out, T value) {
  std::uint8_t bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out.insert(out.end(), bytes, bytes + sizeof(T));
}

/// Bounds-checked reader over a payload span.
struct Reader {
  std::span<const std::uint8_t> bytes;
  std::size_t pos = 0;

  template <typename T>
  T get(const char* what) {
    if (bytes.size() - pos < sizeof(T)) {
      throw NetError(NetErrorCode::kTruncated,
                     std::string("payload ends inside ") + what);
    }
    T value;
    std::memcpy(&value, bytes.data() + pos, sizeof(T));
    pos += sizeof(T);
    return value;
  }

  std::string get_string(std::size_t len, const char* what) {
    if (bytes.size() - pos < len) {
      throw NetError(NetErrorCode::kTruncated,
                     std::string("payload ends inside ") + what);
    }
    std::string s(reinterpret_cast<const char*>(bytes.data() + pos), len);
    pos += len;
    return s;
  }

  void expect_done() const {
    if (pos != bytes.size()) {
      throw NetError(NetErrorCode::kTrailingBytes,
                     std::to_string(bytes.size() - pos) + " byte(s) after payload");
    }
  }
};

// Caps on variable-length payload fields: large enough for any legitimate
// message, small enough that a corrupted count cannot drive a huge
// allocation before the CRC would have caught it.
constexpr std::uint32_t kMaxRows = 1u << 20;
constexpr std::uint32_t kMaxTenantBytes = 256;
constexpr std::uint32_t kMaxMessageBytes = 4096;

bool known_type(std::uint8_t type) {
  switch (static_cast<FrameType>(type)) {
    case FrameType::kUnlearnRequest:
    case FrameType::kEndOfTrace:
    case FrameType::kClientUpdate:
    case FrameType::kAck:
    case FrameType::kReport:
      return true;
  }
  return false;
}

std::uint8_t reason_byte(serve::RejectReason reason) {
  return static_cast<std::uint8_t>(reason);
}

serve::RejectReason reason_from_byte(std::uint8_t byte) {
  if (byte > static_cast<std::uint8_t>(serve::RejectReason::kUnsupportedKind)) {
    throw NetError(NetErrorCode::kBadPayload,
                   "unknown reject reason " + std::to_string(byte));
  }
  return static_cast<serve::RejectReason>(byte);
}

}  // namespace

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  if (frame.payload.size() > kMaxFramePayload) {
    throw NetError(NetErrorCode::kOversized,
                   "payload of " + std::to_string(frame.payload.size()) + " bytes exceeds cap");
  }
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes + frame.payload.size() + kFrameTrailerBytes);
  put<std::uint32_t>(out, kFrameMagic);
  put<std::uint16_t>(out, kFrameVersion);
  put<std::uint8_t>(out, static_cast<std::uint8_t>(frame.type));
  put<std::uint8_t>(out, 0);  // reserved
  put<std::uint64_t>(out, frame.layout_hash);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(frame.payload.size()));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  put<std::uint64_t>(out, crc64({out.data(), out.size()}));
  return out;
}

Frame decode_frame(std::span<const std::uint8_t> bytes, std::uint64_t expected_layout_hash) {
  if (bytes.size() < kFrameHeaderBytes) {
    throw NetError(NetErrorCode::kTruncated,
                   "frame of " + std::to_string(bytes.size()) + " bytes is shorter than a header");
  }
  Reader header{bytes.first(kFrameHeaderBytes)};
  const auto magic = header.get<std::uint32_t>("magic");
  if (magic != kFrameMagic) {
    throw NetError(NetErrorCode::kBadMagic, "got 0x" + std::to_string(magic));
  }
  const auto version = header.get<std::uint16_t>("version");
  if (version != kFrameVersion) {
    throw NetError(NetErrorCode::kBadVersion, "got v" + std::to_string(version));
  }
  const auto type = header.get<std::uint8_t>("type");
  if (!known_type(type)) {
    throw NetError(NetErrorCode::kUnknownType, "frame type " + std::to_string(type));
  }
  const auto reserved = header.get<std::uint8_t>("reserved");
  if (reserved != 0) {
    throw NetError(NetErrorCode::kBadPayload,
                   "reserved byte is " + std::to_string(reserved) + ", want 0");
  }
  const auto layout_hash = header.get<std::uint64_t>("layout hash");
  const auto payload_len = header.get<std::uint32_t>("payload length");
  if (payload_len > kMaxFramePayload) {
    throw NetError(NetErrorCode::kOversized,
                   "declared payload of " + std::to_string(payload_len) + " bytes exceeds cap");
  }
  const std::size_t want = kFrameHeaderBytes + payload_len + kFrameTrailerBytes;
  if (bytes.size() < want) {
    throw NetError(NetErrorCode::kTruncated,
                   "frame declares " + std::to_string(want) + " bytes, got " +
                       std::to_string(bytes.size()));
  }
  if (bytes.size() > want) {
    throw NetError(NetErrorCode::kTrailingBytes,
                   std::to_string(bytes.size() - want) + " byte(s) after frame");
  }
  std::uint64_t stored_crc;
  std::memcpy(&stored_crc, bytes.data() + want - kFrameTrailerBytes, sizeof(stored_crc));
  const std::uint64_t computed = crc64(bytes.first(want - kFrameTrailerBytes));
  if (stored_crc != computed) {
    throw NetError(NetErrorCode::kCrcMismatch, "frame checksum does not verify");
  }
  // The CRC verified, so the hash field is authentic — a mismatch now means
  // a well-formed frame for the wrong deployment, not corruption.
  if (expected_layout_hash != 0 && layout_hash != expected_layout_hash) {
    throw NetError(NetErrorCode::kLayoutMismatch,
                   "frame targets layout " + std::to_string(layout_hash) + ", this deployment is " +
                       std::to_string(expected_layout_hash));
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.layout_hash = layout_hash;
  frame.payload.assign(bytes.begin() + static_cast<std::ptrdiff_t>(kFrameHeaderBytes),
                       bytes.begin() + static_cast<std::ptrdiff_t>(want - kFrameTrailerBytes));
  return frame;
}

void write_frame(Io& io, const Frame& frame) {
  const auto bytes = encode_frame(frame);
  io.write_all({bytes.data(), bytes.size()});
}

std::optional<Frame> read_frame(Io& io, std::uint64_t expected_layout_hash) {
  std::vector<std::uint8_t> buf(kFrameHeaderBytes);
  if (!read_exact(io, {buf.data(), buf.size()})) return std::nullopt;
  // Pre-validate the length field from the raw header so a corrupt length
  // cannot drive a huge read; full validation happens in decode_frame on the
  // reassembled buffer (single validation path for stream and buffer input).
  std::uint32_t payload_len;
  std::memcpy(&payload_len, buf.data() + 16, sizeof(payload_len));
  if (payload_len > kMaxFramePayload) {
    throw NetError(NetErrorCode::kOversized,
                   "declared payload of " + std::to_string(payload_len) + " bytes exceeds cap");
  }
  const std::size_t rest = payload_len + kFrameTrailerBytes;
  buf.resize(kFrameHeaderBytes + rest);
  if (!read_exact(io, {buf.data() + kFrameHeaderBytes, rest})) {
    throw NetError(NetErrorCode::kTruncated, "stream ended after frame header");
  }
  return decode_frame({buf.data(), buf.size()}, expected_layout_hash);
}

// ---------------------------------------------------------------------------
// Payload codecs
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> encode_request_payload(const WireRequest& wire) {
  if (wire.tenant.size() > kMaxTenantBytes) {
    throw NetError(NetErrorCode::kOversized, "tenant name exceeds " +
                                                 std::to_string(kMaxTenantBytes) + " bytes");
  }
  if (wire.request.rows.size() > kMaxRows) {
    throw NetError(NetErrorCode::kOversized, "row list exceeds cap");
  }
  std::vector<std::uint8_t> out;
  put<std::uint8_t>(out, static_cast<std::uint8_t>(wire.request.kind));
  put<std::int32_t>(out, wire.request.target);
  put<double>(out, wire.request.arrival_seconds);
  put<std::int32_t>(out, wire.request.priority);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(wire.request.rows.size()));
  for (const int row : wire.request.rows) put<std::int32_t>(out, row);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(wire.tenant.size()));
  out.insert(out.end(), wire.tenant.begin(), wire.tenant.end());
  return out;
}

WireRequest decode_request_payload(std::span<const std::uint8_t> bytes) {
  Reader r{bytes};
  WireRequest wire;
  const auto kind = r.get<std::uint8_t>("request kind");
  if (kind > static_cast<std::uint8_t>(serve::RequestKind::kSample)) {
    throw NetError(NetErrorCode::kBadPayload, "unknown request kind " + std::to_string(kind));
  }
  wire.request.kind = static_cast<serve::RequestKind>(kind);
  wire.request.target = r.get<std::int32_t>("target");
  wire.request.arrival_seconds = r.get<double>("arrival");
  if (!(wire.request.arrival_seconds >= 0.0)) {  // also rejects NaN
    throw NetError(NetErrorCode::kBadPayload, "negative or non-finite arrival time");
  }
  wire.request.priority = r.get<std::int32_t>("priority");
  const auto num_rows = r.get<std::uint32_t>("row count");
  if (num_rows > kMaxRows) {
    throw NetError(NetErrorCode::kOversized, "row count " + std::to_string(num_rows));
  }
  wire.request.rows.reserve(num_rows);
  for (std::uint32_t i = 0; i < num_rows; ++i) {
    wire.request.rows.push_back(r.get<std::int32_t>("row"));
  }
  const auto tenant_len = r.get<std::uint32_t>("tenant length");
  if (tenant_len > kMaxTenantBytes) {
    throw NetError(NetErrorCode::kOversized, "tenant length " + std::to_string(tenant_len));
  }
  wire.tenant = r.get_string(tenant_len, "tenant name");
  r.expect_done();
  return wire;
}

std::vector<std::uint8_t> encode_ack_payload(const WireAck& ack) {
  if (ack.message.size() > kMaxMessageBytes) {
    throw NetError(NetErrorCode::kOversized, "ack message exceeds cap");
  }
  std::vector<std::uint8_t> out;
  put<std::uint8_t>(out, ack.accepted ? 1 : 0);
  put<std::int64_t>(out, ack.id);
  put<std::uint8_t>(out, reason_byte(ack.reason));
  put<std::uint32_t>(out, static_cast<std::uint32_t>(ack.message.size()));
  out.insert(out.end(), ack.message.begin(), ack.message.end());
  return out;
}

WireAck decode_ack_payload(std::span<const std::uint8_t> bytes) {
  Reader r{bytes};
  WireAck ack;
  const auto accepted = r.get<std::uint8_t>("accepted flag");
  if (accepted > 1) {
    throw NetError(NetErrorCode::kBadPayload, "accepted flag " + std::to_string(accepted));
  }
  ack.accepted = accepted == 1;
  ack.id = r.get<std::int64_t>("id");
  ack.reason = reason_from_byte(r.get<std::uint8_t>("reject reason"));
  const auto msg_len = r.get<std::uint32_t>("message length");
  if (msg_len > kMaxMessageBytes) {
    throw NetError(NetErrorCode::kOversized, "message length " + std::to_string(msg_len));
  }
  ack.message = r.get_string(msg_len, "message");
  r.expect_done();
  return ack;
}

std::vector<std::uint8_t> encode_update_payload(const nn::ModelState& state, fl::Codec codec) {
  std::vector<std::uint8_t> out;
  put<std::uint8_t>(out, static_cast<std::uint8_t>(codec));
  const auto body =
      codec == fl::Codec::kNone ? nn::serialize_state(state) : fl::encode_delta(state, codec);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

nn::ModelState decode_update_payload(std::span<const std::uint8_t> bytes,
                                     const std::shared_ptr<const nn::StateLayout>& layout) {
  if (bytes.empty()) {
    throw NetError(NetErrorCode::kTruncated, "empty client-update payload");
  }
  const auto codec = bytes[0];
  const auto body = bytes.subspan(1);
  try {
    if (codec == static_cast<std::uint8_t>(fl::Codec::kNone)) {
      auto state = nn::deserialize_state(body);
      if (!layout || state.layout()->hash() != layout->hash()) {
        throw NetError(NetErrorCode::kLayoutMismatch, "update state layout mismatch");
      }
      return state;
    }
    if (codec == static_cast<std::uint8_t>(fl::Codec::kInt8) ||
        codec == static_cast<std::uint8_t>(fl::Codec::kBf16)) {
      return fl::decode_delta(body, layout);
    }
  } catch (const nn::StateError& e) {
    // The inner encodings carry their own validation; surface their failures
    // as typed wire errors so callers see one error taxonomy.
    throw NetError(NetErrorCode::kBadPayload, e.what());
  }
  throw NetError(NetErrorCode::kBadPayload, "unknown update codec " + std::to_string(codec));
}

Frame make_request_frame(const WireRequest& wire, std::uint64_t layout_hash) {
  return {FrameType::kUnlearnRequest, layout_hash, encode_request_payload(wire)};
}

Frame make_end_frame(std::uint64_t layout_hash) {
  return {FrameType::kEndOfTrace, layout_hash, {}};
}

Frame make_ack_frame(const WireAck& ack, std::uint64_t layout_hash) {
  return {FrameType::kAck, layout_hash, encode_ack_payload(ack)};
}

Frame make_report_frame(const std::string& json, std::uint64_t layout_hash) {
  return {FrameType::kReport, layout_hash,
          std::vector<std::uint8_t>(json.begin(), json.end())};
}

Frame make_update_frame(const nn::ModelState& state, fl::Codec codec,
                        std::uint64_t layout_hash) {
  return {FrameType::kClientUpdate, layout_hash, encode_update_payload(state, codec)};
}

}  // namespace quickdrop::net
