#include "net/http.h"

#include <algorithm>
#include <cctype>

#include "util/logging.h"

namespace quickdrop::net {

namespace {

const std::string kEmpty;

[[noreturn]] void malformed(const std::string& what) {
  throw NetError(NetErrorCode::kMalformedHttp, what);
}

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

/// Splits a head blob into lines, accepting CRLF or bare LF endings.
std::vector<std::string> head_lines(const std::string& head) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < head.size()) {
    std::size_t nl = head.find('\n', pos);
    if (nl == std::string::npos) nl = head.size();
    std::size_t end = nl;
    if (end > pos && head[end - 1] == '\r') --end;
    lines.push_back(head.substr(pos, end - pos));
    pos = nl + 1;
  }
  return lines;
}

}  // namespace

const std::string& HttpRequest::header(const std::string& lower_name) const {
  const auto it = headers.find(lower_name);
  return it == headers.end() ? kEmpty : it->second;
}

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    default: return "Unknown";
  }
}

bool HttpConnReader::fill() {
  if (eof_) return false;
  std::uint8_t chunk[4096];
  const std::size_t n = io_.read_some(std::span<std::uint8_t>(chunk, sizeof(chunk)));
  if (n == 0) {
    eof_ = true;
    return false;
  }
  buf_.insert(buf_.end(), chunk, chunk + n);
  return true;
}

std::optional<HttpRequest> HttpConnReader::next() {
  // Locate the end of the head: CRLFCRLF or LFLF, whichever comes first.
  std::size_t head_end = std::string::npos;  // index one past the delimiter
  std::size_t head_len = 0;                  // head bytes excluding delimiter
  for (;;) {
    const std::string view(buf_.begin(), buf_.end());
    const std::size_t crlf = view.find("\r\n\r\n");
    const std::size_t lf = view.find("\n\n");
    if (crlf != std::string::npos && (lf == std::string::npos || crlf < lf)) {
      head_len = crlf;
      head_end = crlf + 4;
      break;
    }
    if (lf != std::string::npos) {
      head_len = lf;
      head_end = lf + 2;
      break;
    }
    if (view.size() > kMaxHttpHeadBytes) malformed("request head exceeds cap");
    if (!fill()) {
      if (buf_.empty()) return std::nullopt;  // clean end between messages
      malformed("stream ended mid-head");
    }
  }
  if (head_len > kMaxHttpHeadBytes) malformed("request head exceeds cap");

  const std::string head(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(head_len));
  const auto lines = head_lines(head);
  if (lines.empty() || lines[0].empty()) malformed("empty request line");

  HttpRequest request;
  {
    const std::string& line = lines[0];
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 = sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos || line.find(' ', sp2 + 1) != std::string::npos) {
      malformed("request line is not 'METHOD TARGET VERSION'");
    }
    request.method = line.substr(0, sp1);
    request.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    request.version = line.substr(sp2 + 1);
    if (request.method.empty() || request.target.empty() || request.target[0] != '/') {
      malformed("bad method or target");
    }
    if (request.version != "HTTP/1.1" && request.version != "HTTP/1.0") {
      malformed("unsupported version '" + request.version + "'");
    }
  }
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) malformed("malformed header line");
    request.headers[to_lower(line.substr(0, colon))] = trim(line.substr(colon + 1));
  }
  if (!request.header("transfer-encoding").empty()) {
    malformed("transfer-encoding is not supported");
  }

  std::size_t body_len = 0;
  const std::string& cl = request.header("content-length");
  if (!cl.empty()) {
    if (cl.find_first_not_of("0123456789") != std::string::npos || cl.size() > 9) {
      malformed("bad content-length '" + cl + "'");
    }
    body_len = static_cast<std::size_t>(std::stoul(cl));
    if (body_len > kMaxHttpBodyBytes) malformed("body exceeds cap");
  }
  while (buf_.size() < head_end + body_len) {
    if (!fill()) malformed("stream ended mid-body");
  }
  request.body.assign(buf_.begin() + static_cast<std::ptrdiff_t>(head_end),
                      buf_.begin() + static_cast<std::ptrdiff_t>(head_end + body_len));
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(head_end + body_len));
  return request;
}

void write_response(Io& io, const HttpResponse& response) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     status_reason(response.status) + "\r\nContent-Type: " +
                     response.content_type +
                     "\r\nContent-Length: " + std::to_string(response.body.size()) + "\r\n\r\n";
  head += response.body;
  io.write_all(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(head.data()), head.size()));
}

namespace {

/// Sends a response to a peer that may already be gone. A client that resets
/// or half-closes before we answer must cost us the connection, never an
/// exception out of the serving loop. Returns false when the write failed.
bool try_write_response(Io& io, const HttpResponse& response) {
  try {
    write_response(io, response);
    return true;
  } catch (const NetError& e) {
    QD_LOG_WARN << "http: peer gone mid-response: " << e.what();
    return false;
  }
}

/// Io adapter that bounds how long a connection may sit silent: each read
/// polls in `poll_ms` slices, running the idle hook every slice so admitted
/// work keeps draining while a peer dawdles, and drops the connection with
/// kTimeout once `idle_limit_ms` passes with no bytes.
class TimedConnIo : public Io {
 public:
  TimedConnIo(TcpConn& conn, const std::function<void()>& idle_hook, int poll_ms,
              int idle_limit_ms)
      : conn_(conn),
        idle_hook_(idle_hook),
        poll_ms_(poll_ms > 0 ? poll_ms : 1),
        idle_limit_ms_(idle_limit_ms) {}

  std::size_t read_some(std::span<std::uint8_t> buf) override {
    int idle_ms = 0;
    while (!conn_.wait_readable(poll_ms_)) {
      if (idle_hook_) idle_hook_();
      idle_ms += poll_ms_;
      if (idle_limit_ms_ >= 0 && idle_ms >= idle_limit_ms_) {
        throw NetError(NetErrorCode::kTimeout,
                       "connection idle past " + std::to_string(idle_limit_ms_) + "ms");
      }
    }
    return conn_.read_some(buf);
  }
  void write_all(std::span<const std::uint8_t> bytes) override { conn_.write_all(bytes); }
  void finish_write() override { conn_.finish_write(); }
  bool poll_readable(int timeout_ms) override { return conn_.poll_readable(timeout_ms); }

 private:
  TcpConn& conn_;
  const std::function<void()>& idle_hook_;
  int poll_ms_;
  int idle_limit_ms_;
};

}  // namespace

void serve_http_conn(Io& io, const HttpHandler& handler) {
  HttpConnReader reader(io);
  for (;;) {
    std::optional<HttpRequest> request;
    try {
      request = reader.next();
    } catch (const NetError& e) {
      QD_LOG_WARN << "http: dropping connection: " << e.what();
      // Only a grammar violation earns a 400 — on a transport failure or
      // idle timeout the peer is not listening for one.
      if (e.code == NetErrorCode::kMalformedHttp) {
        try_write_response(io, HttpResponse{.status = 400,
                                            .body = std::string("{\"error\": \"") +
                                                    net_error_name(e.code) + "\"}\n"});
      }
      break;
    }
    if (!request) break;
    HttpResponse response;
    try {
      response = handler(*request);
    } catch (const std::exception& e) {
      QD_LOG_ERROR << "http: handler failed: " << e.what();
      response = HttpResponse{.status = 500, .body = "{\"error\": \"internal\"}\n"};
    }
    if (!try_write_response(io, response)) return;  // dead peer: skip half-close
  }
  try {
    io.finish_write();
  } catch (const NetError& e) {
    QD_LOG_WARN << "http: half-close failed: " << e.what();
  }
}

void serve_http(TcpListener& listener, const HttpHandler& handler,
                const std::function<void()>& idle_hook, const std::function<bool()>& stop,
                int idle_timeout_ms, int conn_idle_limit_ms) {
  while (!stop()) {
    if (!listener.wait_pending(idle_timeout_ms)) {
      if (idle_hook) idle_hook();
      continue;
    }
    try {
      const auto conn = listener.accept_conn();
      TimedConnIo timed(*conn, idle_hook, idle_timeout_ms, conn_idle_limit_ms);
      serve_http_conn(timed, handler);
    } catch (const NetError& e) {
      // One broken or stalled client must never take down the accept loop.
      QD_LOG_WARN << "http: connection aborted: " << e.what();
    }
  }
}

}  // namespace quickdrop::net
