// Trace replay over the wire protocol.
//
// The server side (NetReplaySession) feeds UnlearningService::run() a
// RequestSource that decodes request frames off an Io stream lazily, acking
// each admission decision back to the client, and finishes by streaming the
// final report frame. Because both the in-process path and this one drive
// the *same* service loop with the same request stream, a replayed trace
// produces a bitwise-identical model and identical per-request outcomes —
// the only additions are the out-of-band bytes-on-wire columns.
//
// The client side is split into send and collect phases so a single thread
// can drive a loopback replay end to end: loopback writes never block, so
// the client first writes the entire trace (plus end-of-trace and a write
// half-close), the session then serves it, and the client finally collects
// the acks and report. Over TCP the convenience wrapper runs both phases on
// one thread while the session runs on another.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/wire.h"
#include "serve/service.h"

namespace quickdrop::net {

struct ReplayConfig {
  /// Service configuration; set `transport` to the label the report should
  /// carry ("loopback", "tcp") and `wire_bytes_per_second` to enable the
  /// per-request network-time column.
  serve::ServiceConfig service;
  /// Codec for the report's quantized state-on-wire column (what shipping
  /// the final model as a client update would cost under this codec).
  fl::Codec codec = fl::Codec::kNone;
};

/// Writes `trace` as request frames in order, then end-of-trace, then
/// half-closes the write side. Returns bytes written.
std::int64_t replay_send_trace(Io& io, const std::vector<serve::ServiceRequest>& trace,
                               const std::string& tenant, std::uint64_t layout_hash);

/// What the client hears back: one ack per trace request (admission order)
/// and the final report JSON.
struct ReplayClientResult {
  std::vector<WireAck> acks;
  std::string report_json;
  std::int64_t bytes_received = 0;
};

/// Reads ack and report frames until the server closes the stream.
ReplayClientResult replay_collect(Io& io, std::uint64_t layout_hash);

/// send + collect on one thread (the TCP client path; requires the session
/// to run concurrently on another thread or process). Acks are drained
/// opportunistically between sends (Io::poll_readable) so the server's
/// per-admission ack writes can never back up against a large trace and
/// deadlock both blocking ends of the socket.
ReplayClientResult replay_trace_client(Io& io, const std::vector<serve::ServiceRequest>& trace,
                                       const std::string& tenant, std::uint64_t layout_hash);

/// Server side of a replay: the standard unlearning service fed from a wire
/// stream. One session serves one stream.
class NetReplaySession {
 public:
  NetReplaySession(std::shared_ptr<core::QuickDrop> quickdrop, nn::ModelState initial,
                   ReplayConfig config);

  /// Serves every request frame on `io`, writes acks as admissions happen
  /// and the report frame at the end, then half-closes. Returns the report
  /// with the wire accounting columns filled in.
  serve::ServiceReport run(Io& io);

  [[nodiscard]] const nn::ModelState& state() const { return service_.state(); }

 private:
  std::shared_ptr<core::QuickDrop> quickdrop_;
  serve::UnlearningService service_;
  fl::Codec codec_;
};

}  // namespace quickdrop::net
