#include "net/io.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>

namespace quickdrop::net {

const char* net_error_name(NetErrorCode code) {
  switch (code) {
    case NetErrorCode::kBadMagic: return "bad-magic";
    case NetErrorCode::kBadVersion: return "bad-version";
    case NetErrorCode::kUnknownType: return "unknown-type";
    case NetErrorCode::kTruncated: return "truncated";
    case NetErrorCode::kOversized: return "oversized";
    case NetErrorCode::kCrcMismatch: return "crc-mismatch";
    case NetErrorCode::kLayoutMismatch: return "layout-mismatch";
    case NetErrorCode::kTrailingBytes: return "trailing-bytes";
    case NetErrorCode::kBadPayload: return "bad-payload";
    case NetErrorCode::kMalformedHttp: return "malformed-http";
    case NetErrorCode::kClosed: return "closed";
    case NetErrorCode::kTimeout: return "timeout";
    case NetErrorCode::kIoFailure: return "io-failure";
  }
  return "unknown";
}

bool read_exact(Io& io, std::span<std::uint8_t> buf) {
  std::size_t got = 0;
  while (got < buf.size()) {
    const std::size_t n = io.read_some(buf.subspan(got));
    if (n == 0) {
      if (got == 0) return false;
      throw NetError(NetErrorCode::kTruncated,
                     "stream ended after " + std::to_string(got) + " of " +
                         std::to_string(buf.size()) + " bytes");
    }
    got += n;
  }
  return true;
}

namespace {

/// One direction of the loopback pipe: an unbounded byte queue plus an
/// end-of-stream flag. Writers never block; readers block until data or EOS.
struct Channel {
  std::mutex mutex;
  std::condition_variable readable;
  std::deque<std::uint8_t> bytes;
  bool finished = false;

  void write(std::span<const std::uint8_t> data) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (finished) {
        throw NetError(NetErrorCode::kClosed, "write after finish_write on loopback pipe");
      }
      bytes.insert(bytes.end(), data.begin(), data.end());
    }
    readable.notify_all();
  }

  std::size_t read(std::span<std::uint8_t> out) {
    std::unique_lock<std::mutex> lock(mutex);
    readable.wait(lock, [&] { return !bytes.empty() || finished; });
    if (bytes.empty()) return 0;  // finished and drained
    const std::size_t n = std::min(out.size(), bytes.size());
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = bytes.front();
      bytes.pop_front();
    }
    return n;
  }

  void finish() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      finished = true;
    }
    readable.notify_all();
  }

  bool poll(int timeout_ms) {
    std::unique_lock<std::mutex> lock(mutex);
    const auto ready = [&] { return !bytes.empty() || finished; };
    if (timeout_ms <= 0) return ready();
    return readable.wait_for(lock, std::chrono::milliseconds(timeout_ms), ready);
  }
};

/// An Io endpoint reading from one channel and writing to the other.
class LoopbackIo : public Io {
 public:
  LoopbackIo(std::shared_ptr<Channel> in, std::shared_ptr<Channel> out)
      : in_(std::move(in)), out_(std::move(out)) {}
  ~LoopbackIo() override { out_->finish(); }

  std::size_t read_some(std::span<std::uint8_t> buf) override { return in_->read(buf); }
  void write_all(std::span<const std::uint8_t> bytes) override { out_->write(bytes); }
  void finish_write() override { out_->finish(); }
  bool poll_readable(int timeout_ms) override { return in_->poll(timeout_ms); }

 private:
  std::shared_ptr<Channel> in_;
  std::shared_ptr<Channel> out_;
};

}  // namespace

LoopbackPair make_loopback() {
  auto a = std::make_shared<Channel>();  // client -> server
  auto b = std::make_shared<Channel>();  // server -> client
  return {std::make_shared<LoopbackIo>(b, a), std::make_shared<LoopbackIo>(a, b)};
}

}  // namespace quickdrop::net
