#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace quickdrop::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw NetError(NetErrorCode::kIoFailure, what + ": " + std::strerror(errno));
}

/// EINTR-safe poll on a single fd for the given events.
bool poll_one(int fd, short events, int timeout_ms) {
  struct pollfd pfd{};
  pfd.fd = fd;
  pfd.events = events;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    throw_errno("poll");
  }
}

}  // namespace

TcpConn::TcpConn(int fd) : fd_(fd) {
  if (fd_ < 0) throw NetError(NetErrorCode::kIoFailure, "TcpConn: invalid fd");
}

TcpConn::~TcpConn() {
  if (fd_ >= 0) ::close(fd_);
}

std::size_t TcpConn::read_some(std::span<std::uint8_t> buf) {
  if (buf.empty()) return 0;
  for (;;) {
    const ssize_t n = ::recv(fd_, buf.data(), buf.size(), 0);
    if (n > 0) return static_cast<std::size_t>(n);
    if (n == 0) return 0;  // orderly shutdown by the peer
    if (errno == EINTR) continue;
    throw_errno("recv");
  }
}

void TcpConn::write_all(std::span<const std::uint8_t> bytes) {
  if (write_finished_) {
    throw NetError(NetErrorCode::kClosed, "write after finish_write on TcpConn");
  }
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a peer that vanished mid-write must surface as EPIPE ->
    // NetError, not kill the process with SIGPIPE.
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n >= 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    throw_errno("send");
  }
}

void TcpConn::finish_write() {
  if (write_finished_) return;
  write_finished_ = true;
  if (::shutdown(fd_, SHUT_WR) != 0 && errno != ENOTCONN) throw_errno("shutdown");
}

bool TcpConn::wait_readable(int timeout_ms) const { return poll_one(fd_, POLLIN, timeout_ms); }

TcpListener::TcpListener(std::uint16_t port) : fd_(-1), port_(port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  const int one = 1;
  // Best effort: a restarted service must be able to rebind its port without
  // waiting out TIME_WAIT.
  (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<const struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("bind");
  }
  if (::listen(fd_, 16) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("listen");
  }
  if (port == 0) {
    struct sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd_, reinterpret_cast<struct sockaddr*>(&bound), &len) != 0) {
      throw_errno("getsockname");
    }
    port_ = ntohs(bound.sin_port);
  }
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<TcpConn> TcpListener::accept_conn() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return std::make_unique<TcpConn>(fd);
    if (errno == EINTR) continue;
    throw_errno("accept");
  }
}

bool TcpListener::wait_pending(int timeout_ms) const { return poll_one(fd_, POLLIN, timeout_ms); }

std::unique_ptr<TcpConn> tcp_connect(const std::string& host, std::uint16_t port) {
  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string numeric = (host == "localhost" || host.empty()) ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    throw NetError(NetErrorCode::kIoFailure,
                   "tcp_connect: '" + host + "' is not a numeric IPv4 address");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  int err = 0;
  if (::connect(fd, reinterpret_cast<const struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno == EINTR) {
      // POSIX: after EINTR the connect continues asynchronously, and calling
      // connect() again reports EALREADY even when the attempt is succeeding.
      // Wait for the socket to settle and read the real outcome instead.
      try {
        poll_one(fd, POLLOUT, -1);
      } catch (...) {
        ::close(fd);
        throw;
      }
      socklen_t len = sizeof(err);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) err = errno;
    } else {
      err = errno;
    }
  }
  if (err != 0) {
    ::close(fd);
    errno = err;
    throw_errno("connect to " + numeric + ":" + std::to_string(port));
  }
  return std::make_unique<TcpConn>(fd);
}

}  // namespace quickdrop::net
