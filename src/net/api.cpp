#include "net/api.h"

#include <cctype>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/logging.h"

namespace quickdrop::net {

namespace {

/// Escapes a string for embedding in a JSON literal. Control characters are
/// dropped — nothing in the service emits them, and the reports must stay
/// deterministic and grep-friendly.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out.push_back(c);
    }
  }
  return out;
}

/// A flat JSON object: string, number and int-array values only — exactly
/// the shape of an unlearn request body. Anything else is malformed.
struct JsonBody {
  std::map<std::string, double> numbers;
  std::map<std::string, std::string> strings;
  std::map<std::string, std::vector<int>> arrays;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonBody parse() {
    JsonBody body;
    skip_ws();
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
    } else {
      for (;;) {
        skip_ws();
        const std::string key = parse_string();
        skip_ws();
        expect(':');
        skip_ws();
        parse_value(body, key);
        skip_ws();
        const char c = take();
        if (c == '}') break;
        if (c != ',') fail("expected ',' or '}'");
      }
    }
    skip_ws();
    if (pos_ != text_.size()) fail("trailing bytes after object");
    return body;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("unlearn body: " + what);
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  char take() {
    if (pos_ >= text_.size()) fail("unexpected end of body");
    return text_[pos_++];
  }
  void expect(char c) {
    if (take() != c) fail(std::string("expected '") + c + "'");
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (c == '\\') {
        const char e = take();
        if (e != '"' && e != '\\') fail("unsupported escape");
        out.push_back(e);
        continue;
      }
      out.push_back(c);
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a number");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("bad number '" + token + "'");
    return value;
  }

  void parse_value(JsonBody& body, const std::string& key) {
    const char c = peek();
    if (c == '"') {
      body.strings[key] = parse_string();
    } else if (c == '[') {
      ++pos_;
      std::vector<int> values;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
      } else {
        for (;;) {
          skip_ws();
          values.push_back(static_cast<int>(parse_number()));
          skip_ws();
          const char sep = take();
          if (sep == ']') break;
          if (sep != ',') fail("expected ',' or ']' in array");
        }
      }
      body.arrays[key] = std::move(values);
    } else if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      body.numbers[key] = parse_number();
    } else {
      fail("unsupported value type");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<Tenant> parse_tenant_specs(const std::string& spec) {
  std::vector<Tenant> tenants;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) {
      throw std::invalid_argument("tenant spec: empty entry in '" + spec + "'");
    }
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == entry.size()) {
      throw std::invalid_argument("tenant spec: '" + entry + "' is not name=token");
    }
    Tenant tenant{entry.substr(0, eq), entry.substr(eq + 1)};
    for (const auto& existing : tenants) {
      if (existing.name == tenant.name) {
        throw std::invalid_argument("tenant spec: duplicate tenant '" + tenant.name + "'");
      }
    }
    tenants.push_back(std::move(tenant));
    if (comma == spec.size()) break;
  }
  return tenants;
}

ApiService::ApiService(std::shared_ptr<core::QuickDrop> quickdrop, nn::ModelState initial,
                       ApiConfig config)
    : quickdrop_(std::move(quickdrop)),
      state_(std::move(initial)),
      config_(std::move(config)),
      scheduler_(config_.service.policy, config_.service.max_batch),
      executor_(quickdrop_, config_.service.cost_model) {
  if (!quickdrop_) throw std::invalid_argument("ApiService: null coordinator");
  if (state_.empty() || !quickdrop_->state_layout() ||
      state_.layout()->hash() != quickdrop_->state_layout()->hash()) {
    throw std::invalid_argument(
        "ApiService: initial state layout does not match the coordinator's model");
  }
}

namespace {

/// Compares a presented token against a stored one without data-dependent
/// early exits: the loop runs over max(len_a, len_b) bytes regardless of
/// where the first mismatch sits, folding the length difference into the
/// same accumulator, so response timing does not leak how much of a token
/// prefix matched. (operator== bails at the first differing byte, which a
/// network attacker can measure byte-by-byte.)
bool token_equal_constant_time(const std::string& a, const std::string& b) {
  const std::size_t n = a.size() > b.size() ? a.size() : b.size();
  std::uint8_t diff = static_cast<std::uint8_t>(a.size() != b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t ca = i < a.size() ? static_cast<std::uint8_t>(a[i]) : 0;
    const std::uint8_t cb = i < b.size() ? static_cast<std::uint8_t>(b[i]) : 0;
    diff = static_cast<std::uint8_t>(diff | (ca ^ cb));
  }
  return diff == 0;
}

}  // namespace

std::string ApiService::authenticate(const HttpRequest& request) const {
  if (config_.tenants.empty()) return "default";
  const std::string& auth = request.header("authorization");
  const std::string prefix = "Bearer ";
  if (auth.rfind(prefix, 0) != 0) return "";
  const std::string token = auth.substr(prefix.size());
  // Scan every tenant even after a hit, so the number of comparisons does
  // not reveal which tenant (if any) matched.
  const Tenant* matched = nullptr;
  for (const auto& tenant : config_.tenants) {
    if (token_equal_constant_time(tenant.token, token) && matched == nullptr) {
      matched = &tenant;
    }
  }
  return matched ? matched->name : "";
}

HttpResponse ApiService::handle(const HttpRequest& request) {
  const std::string tenant = authenticate(request);
  if (tenant.empty()) {
    return HttpResponse{.status = 401, .body = "{\"error\": \"missing or unknown bearer token\"}\n"};
  }
  auto& stats = tenants_seen_[tenant];
  stats.wire_bytes += static_cast<std::int64_t>(request.method.size() + request.target.size() +
                                                request.body.size());

  if (request.target == "/unlearn") {
    if (request.method != "POST") {
      return HttpResponse{.status = 405, .body = "{\"error\": \"use POST\"}\n"};
    }
    return handle_unlearn(request, tenant);
  }
  if (request.target.rfind("/request/", 0) == 0) {
    if (request.method != "GET") {
      return HttpResponse{.status = 405, .body = "{\"error\": \"use GET\"}\n"};
    }
    const std::string id_text = request.target.substr(9);
    // 18 digits keeps std::stoll inside int64 range; anything longer would
    // throw out_of_range and surface as a 500 instead of a bad request.
    if (id_text.empty() || id_text.size() > 18 ||
        id_text.find_first_not_of("0123456789") != std::string::npos) {
      return HttpResponse{.status = 400, .body = "{\"error\": \"bad request id\"}\n"};
    }
    return handle_request_status(std::stoll(id_text));
  }
  if (request.target == "/metrics") {
    if (request.method != "GET") {
      return HttpResponse{.status = 405, .body = "{\"error\": \"use GET\"}\n"};
    }
    return handle_metrics();
  }
  return HttpResponse{.status = 404, .body = "{\"error\": \"no such route\"}\n"};
}

HttpResponse ApiService::handle_unlearn(const HttpRequest& request, const std::string& tenant) {
  serve::ServiceRequest service_request;
  try {
    const JsonBody body = JsonParser(request.body).parse();
    const auto kind_it = body.strings.find("kind");
    const auto target_it = body.numbers.find("target");
    if (kind_it == body.strings.end() || target_it == body.numbers.end()) {
      throw std::invalid_argument("unlearn body: 'kind' and 'target' are required");
    }
    service_request.kind = serve::kind_from_name(kind_it->second);
    service_request.target = static_cast<int>(target_it->second);
    const auto prio_it = body.numbers.find("priority");
    if (prio_it != body.numbers.end()) service_request.priority = static_cast<int>(prio_it->second);
    const auto rows_it = body.arrays.find("rows");
    if (rows_it != body.arrays.end()) service_request.rows = rows_it->second;
  } catch (const std::invalid_argument& e) {
    return HttpResponse{.status = 400,
                        .body = "{\"error\": \"" + json_escape(e.what()) + "\"}\n"};
  }
  service_request.arrival_seconds = clock_seconds_;

  const auto decision =
      queue_.admit(service_request, serve::make_validation_context(*quickdrop_));
  auto& stats = tenants_seen_[tenant];
  if (!decision.accepted) {
    ++stats.rejected;
    return HttpResponse{.status = 400,
                        .body = std::string("{\"status\": \"rejected\", \"reason\": \"") +
                                serve::reject_reason_name(decision.reason) +
                                "\", \"message\": \"" + json_escape(decision.message) + "\"}\n"};
  }
  const std::int64_t id = queue_.pending().back().id;
  ++stats.admitted;
  owner_[id] = tenant;
  QD_LOG_INFO << "api: tenant '" << tenant << "' queued request #" << id;
  return HttpResponse{.status = 202,
                      .body = "{\"id\": " + std::to_string(id) + ", \"status\": \"queued\"}\n"};
}

HttpResponse ApiService::handle_request_status(std::int64_t id) const {
  const auto done = completed_index_.find(id);
  if (done != completed_index_.end()) {
    const auto& m = completed_[done->second];
    return HttpResponse{
        .status = 200,
        .body = "{\"id\": " + std::to_string(id) + ", \"status\": \"completed\"" +
                ", \"latency_seconds\": " + serve::json_double(m.latency()) +
                ", \"unlearn_rounds\": " + std::to_string(m.unlearn_rounds) +
                ", \"recovery_rounds\": " + std::to_string(m.recovery_rounds) + "}\n"};
  }
  for (const auto& pending : queue_.pending()) {
    if (pending.id == id) {
      return HttpResponse{.status = 200, .body = "{\"id\": " + std::to_string(id) +
                                                 ", \"status\": \"queued\"}\n"};
    }
  }
  return HttpResponse{.status = 404, .body = "{\"error\": \"unknown request id\"}\n"};
}

HttpResponse ApiService::handle_metrics() const {
  std::ostringstream out;
  out << "{\n  \"tenants\": {";
  bool first = true;
  for (const auto& [name, stats] : tenants_seen_) {
    out << (first ? "" : ", ") << "\"" << json_escape(name) << "\": {\"admitted\": "
        << stats.admitted << ", \"rejected\": " << stats.rejected
        << ", \"completed\": " << stats.completed << ", \"wire_bytes\": " << stats.wire_bytes
        << "}";
    first = false;
  }
  out << "},\n  \"report\": " << report().to_json() << "}\n";
  return HttpResponse{.status = 200, .body = out.str()};
}

void ApiService::drain() {
  while (!queue_.empty()) {
    const auto ids = scheduler_.next_batch(queue_.pending());
    const auto batch = queue_.take(ids);
    const double start = clock_seconds_;
    QD_LOG_INFO << "api: cycle " << cycles_ << " serving " << batch.size()
                << " request(s) at t=" << start;
    auto result = executor_.execute(state_, batch, config_.service.cursor_callback);
    state_ = std::move(result.state);
    clock_seconds_ += result.sim_seconds;
    for (const auto& request : batch) {
      serve::RequestMetrics metrics;
      metrics.id = request.id;
      metrics.kind = request.kind;
      metrics.target = request.target;
      metrics.arrival_seconds = request.arrival_seconds;
      metrics.start_seconds = start;
      metrics.completion_seconds = clock_seconds_;
      metrics.unlearn_rounds = result.unlearn_stats.rounds;
      metrics.recovery_rounds = result.recovery_stats.rounds;
      metrics.bytes_up = result.unlearn_stats.cost.bytes_up + result.recovery_stats.cost.bytes_up;
      metrics.bytes_down =
          result.unlearn_stats.cost.bytes_down + result.recovery_stats.cost.bytes_down;
      metrics.batch_size = static_cast<int>(batch.size());
      metrics.cycle = cycles_;
      if (config_.service.evaluator) config_.service.evaluator(request, state_, metrics);
      completed_index_[metrics.id] = completed_.size();
      completed_.push_back(metrics);
      const auto owner = owner_.find(metrics.id);
      if (owner != owner_.end()) ++tenants_seen_[owner->second].completed;
    }
    total_fl_rounds_ += result.unlearn_stats.rounds + result.recovery_stats.rounds;
    total_bytes_ += result.unlearn_stats.cost.bytes_up + result.unlearn_stats.cost.bytes_down +
                    result.recovery_stats.cost.bytes_up + result.recovery_stats.cost.bytes_down;
    ++cycles_;
  }
}

serve::ServiceReport ApiService::report() const {
  serve::ServiceReport report;
  report.policy = serve::policy_name(scheduler_.policy());
  report.transport = config_.service.transport;
  report.completed = completed_;
  report.rejected = queue_.rejected();
  report.cycles = cycles_;
  report.total_fl_rounds = total_fl_rounds_;
  report.total_bytes = total_bytes_;
  report.sim_clock_seconds = clock_seconds_;
  return report;
}

}  // namespace quickdrop::net
