// Byte transport behind the network front-end.
//
// Every net/ layer — frame codec, HTTP parser, replay sessions — moves bytes
// through the `Io` interface instead of a file descriptor, so the whole
// protocol stack is testable (and tier-1 gated) over an in-memory loopback
// pipe with no ports, while production traffic rides the POSIX socket
// implementation in net/socket.h. The loopback pipe is thread-safe and its
// writes never block (unbounded buffer), which lets a single thread write an
// entire replay trace and then serve it back deterministically.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>

namespace quickdrop::net {

/// What went wrong at the transport or protocol layer. Mirrors nn::StateError
/// / serve::TraceError: typed, derived from a std:: exception so generic
/// catch sites keep working, with a stable code for tests and logs.
enum class NetErrorCode {
  kBadMagic,        ///< frame does not start with the protocol magic
  kBadVersion,      ///< protocol version this build does not speak
  kUnknownType,     ///< frame type byte outside the known set
  kTruncated,       ///< stream or buffer ended mid-frame
  kOversized,       ///< declared length exceeds the protocol cap
  kCrcMismatch,     ///< CRC-64 trailer does not verify
  kLayoutMismatch,  ///< frame's layout hash is not this deployment's
  kTrailingBytes,   ///< well-formed frame followed by garbage
  kBadPayload,      ///< frame payload fails its type-specific decode
  kMalformedHttp,   ///< HTTP head/body violates the grammar or caps
  kClosed,          ///< peer closed where the protocol required more
  kTimeout,         ///< peer stayed silent past the allowed idle window
  kIoFailure,       ///< OS-level socket failure (errno in the message)
};

/// Stable lower-case token, e.g. "crc-mismatch" (used in logs and tests).
const char* net_error_name(NetErrorCode code);

/// Typed transport/protocol failure.
struct NetError : std::runtime_error {
  NetError(NetErrorCode code, const std::string& what)
      : std::runtime_error(std::string(net_error_name(code)) + ": " + what), code(code) {}
  NetErrorCode code;
};

/// A bidirectional byte stream. Implementations: TcpConn (net/socket.h,
/// EINTR-safe POSIX sockets) and the in-memory loopback pair below.
class Io {
 public:
  virtual ~Io() = default;

  /// Reads between 1 and buf.size() bytes, blocking until data is available.
  /// Returns 0 only on clean end-of-stream (peer finished writing).
  virtual std::size_t read_some(std::span<std::uint8_t> buf) = 0;

  /// Writes all of `bytes` (looping as needed). Throws NetError on failure.
  virtual void write_all(std::span<const std::uint8_t> bytes) = 0;

  /// Signals end-of-stream to the peer: after its buffered bytes drain, the
  /// peer's read_some returns 0. Further write_all calls are an error.
  virtual void finish_write() = 0;

  /// Best-effort readability probe: true when read_some will not block (at
  /// least one byte buffered, or end-of-stream reached). timeout_ms 0 polls;
  /// positive values wait up to that long. The conservative default says
  /// "cannot tell" — callers use this only to drain opportunistically, so
  /// false never deadlocks, it just skips the optimization.
  virtual bool poll_readable(int timeout_ms) {
    (void)timeout_ms;
    return false;
  }
};

/// Fills `buf` exactly. Returns false when the stream ends cleanly before the
/// first byte (a frame boundary); throws NetError(kTruncated) when the stream
/// ends mid-buffer (a torn frame).
bool read_exact(Io& io, std::span<std::uint8_t> buf);

/// The two ends of an in-memory duplex pipe: bytes written to `client` are
/// read from `server` and vice versa. Thread-safe; writes never block.
struct LoopbackPair {
  std::shared_ptr<Io> client;
  std::shared_ptr<Io> server;
};

/// Creates a connected loopback pair.
LoopbackPair make_loopback();

}  // namespace quickdrop::net
