#include "net/replay.h"

#include <utility>

#include "util/logging.h"

namespace quickdrop::net {

namespace {

std::int64_t frame_wire_bytes(const Frame& frame) {
  return static_cast<std::int64_t>(kFrameHeaderBytes + frame.payload.size() +
                                   kFrameTrailerBytes);
}

/// Folds one server->client frame (ack or report) into the client result.
void absorb_server_frame(ReplayClientResult& result, const Frame& frame) {
  result.bytes_received += frame_wire_bytes(frame);
  switch (frame.type) {
    case FrameType::kAck:
      result.acks.push_back(decode_ack_payload(frame.payload));
      break;
    case FrameType::kReport:
      result.report_json.assign(frame.payload.begin(), frame.payload.end());
      break;
    default:
      throw NetError(NetErrorCode::kBadPayload,
                     "replay client: unexpected frame type from server");
  }
}

/// RequestSource decoding frames off an Io stream. peek() blocks on the
/// underlying read; requests are delivered in frame order, which the replay
/// client guarantees is trace order — so the service loop sees exactly the
/// stream the in-process TraceSource would produce.
class WireSource : public serve::RequestSource {
 public:
  WireSource(Io& io, std::uint64_t layout_hash) : io_(io), layout_hash_(layout_hash) {}

  const serve::ServiceRequest* peek() override {
    while (!have_ && !eof_) {
      auto frame = read_frame(io_, layout_hash_);
      if (!frame || frame->type == FrameType::kEndOfTrace) {
        eof_ = true;
        break;
      }
      if (frame->type != FrameType::kUnlearnRequest) {
        throw NetError(NetErrorCode::kBadPayload,
                       "replay: unexpected frame type mid-trace");
      }
      const std::int64_t bytes = frame_wire_bytes(*frame);
      request_bytes_ += bytes;
      WireRequest wire = decode_request_payload(frame->payload);
      current_ = wire.request;
      current_tenant_ = std::move(wire.tenant);
      current_bytes_ = bytes;
      have_ = true;
    }
    return have_ ? &current_ : nullptr;
  }

  void pop() override { have_ = false; }

  void on_decision(const serve::ServiceRequest& /*request*/, std::int64_t id,
                   const serve::AdmissionDecision& decision) override {
    WireAck ack;
    ack.accepted = decision.accepted;
    ack.id = id;
    ack.reason = decision.reason;
    ack.message = decision.message;
    const auto bytes = encode_frame(make_ack_frame(ack, layout_hash_));
    io_.write_all(bytes);
    ack_bytes_ += static_cast<std::int64_t>(bytes.size());
    if (id >= 0) {
      // Charge the request its own frame plus the ack we just sent.
      per_id_bytes_[id] = current_bytes_ + static_cast<std::int64_t>(bytes.size());
    }
  }

  [[nodiscard]] std::int64_t wire_bytes(std::int64_t id) const override {
    const auto it = per_id_bytes_.find(id);
    return it == per_id_bytes_.end() ? 0 : it->second;
  }

  [[nodiscard]] std::int64_t request_bytes() const { return request_bytes_; }
  [[nodiscard]] std::int64_t ack_bytes() const { return ack_bytes_; }

 private:
  Io& io_;
  std::uint64_t layout_hash_;
  serve::ServiceRequest current_;
  std::string current_tenant_;
  std::int64_t current_bytes_ = 0;
  bool have_ = false;
  bool eof_ = false;
  std::int64_t request_bytes_ = 0;
  std::int64_t ack_bytes_ = 0;
  std::map<std::int64_t, std::int64_t> per_id_bytes_;
};

}  // namespace

std::int64_t replay_send_trace(Io& io, const std::vector<serve::ServiceRequest>& trace,
                               const std::string& tenant, std::uint64_t layout_hash) {
  std::int64_t total = 0;
  for (const auto& request : trace) {
    const auto bytes = encode_frame(make_request_frame({request, tenant}, layout_hash));
    io.write_all(bytes);
    total += static_cast<std::int64_t>(bytes.size());
  }
  const auto end = encode_frame(make_end_frame(layout_hash));
  io.write_all(end);
  total += static_cast<std::int64_t>(end.size());
  io.finish_write();
  return total;
}

ReplayClientResult replay_collect(Io& io, std::uint64_t layout_hash) {
  ReplayClientResult result;
  for (;;) {
    auto frame = read_frame(io, layout_hash);
    if (!frame) break;
    absorb_server_frame(result, *frame);
  }
  return result;
}

ReplayClientResult replay_trace_client(Io& io, const std::vector<serve::ServiceRequest>& trace,
                                       const std::string& tenant, std::uint64_t layout_hash) {
  ReplayClientResult result;
  bool server_closed = false;
  for (const auto& request : trace) {
    // Drain every ack the server has already pushed before each send. The
    // server writes an ack per admission on the same socket, so a client
    // that sent a large trace without reading could fill both kernel
    // buffers and deadlock against the server's blocking ack write; a
    // drained ack direction keeps the server's writes from ever blocking.
    while (!server_closed && io.poll_readable(0)) {
      auto frame = read_frame(io, layout_hash);
      if (!frame) {
        server_closed = true;
        break;
      }
      absorb_server_frame(result, *frame);
    }
    io.write_all(encode_frame(make_request_frame({request, tenant}, layout_hash)));
  }
  io.write_all(encode_frame(make_end_frame(layout_hash)));
  io.finish_write();
  while (!server_closed) {
    auto frame = read_frame(io, layout_hash);
    if (!frame) break;
    absorb_server_frame(result, *frame);
  }
  return result;
}

NetReplaySession::NetReplaySession(std::shared_ptr<core::QuickDrop> quickdrop,
                                   nn::ModelState initial, ReplayConfig config)
    : quickdrop_(quickdrop),
      service_(std::move(quickdrop), std::move(initial), std::move(config.service)),
      codec_(config.codec) {}

serve::ServiceReport NetReplaySession::run(Io& io) {
  const std::uint64_t layout_hash = quickdrop_->state_layout()->hash();
  WireSource source(io, layout_hash);
  serve::ServiceReport report = service_.run(source);
  report.wire_request_bytes = source.request_bytes();
  report.wire_ack_bytes = source.ack_bytes();

  // Bytes-on-wire for the final model, raw vs quantized: what one client
  // update frame carrying this state costs under each codec.
  const auto raw =
      encode_frame(make_update_frame(service_.state(), fl::Codec::kNone, layout_hash));
  report.wire_state_bytes_raw = static_cast<std::int64_t>(raw.size());
  if (codec_ == fl::Codec::kNone) {
    report.wire_state_bytes_quantized = report.wire_state_bytes_raw;
  } else {
    const auto quantized =
        encode_frame(make_update_frame(service_.state(), codec_, layout_hash));
    report.wire_state_bytes_quantized = static_cast<std::int64_t>(quantized.size());
  }

  write_frame(io, make_report_frame(report.to_json(), layout_hash));
  io.finish_write();
  QD_LOG_INFO << "net: replay session complete (" << report.completed.size()
              << " completed, " << report.rejected.size() << " rejected, "
              << source.request_bytes() + source.ack_bytes() << " wire bytes)";
  return report;
}

}  // namespace quickdrop::net
