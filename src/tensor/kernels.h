// Pure numeric kernels on Tensors. Every autograd primitive wraps one of
// these. Kernels allocate their result; inputs are never mutated.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace quickdrop::kernels {

/// Elementwise binary ops with NumPy-style broadcasting.
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);

/// Elementwise unary ops.
Tensor neg(const Tensor& a);
Tensor exp(const Tensor& a);
Tensor log(const Tensor& a);
Tensor sqrt(const Tensor& a);
Tensor relu(const Tensor& a);
/// 1 where a > 0, else 0 (the ReLU mask).
Tensor gt_zero_mask(const Tensor& a);

/// Scalar ops.
Tensor add_scalar(const Tensor& a, float s);
Tensor mul_scalar(const Tensor& a, float s);

/// Dense [M,K] x [K,N] -> [M,N] matrix product.
Tensor matmul(const Tensor& a, const Tensor& b);

/// 2-D transpose.
Tensor transpose2d(const Tensor& a);

/// General axis permutation; dims is a permutation of 0..rank-1.
Tensor permute(const Tensor& a, const std::vector<int>& dims);

/// Sums `a` down to `target_shape` (which must broadcast to a.shape()).
/// The adjoint of broadcast_to.
Tensor reduce_sum_to(const Tensor& a, const Shape& target_shape);

/// Broadcasts `a` up to `shape`. The adjoint of reduce_sum_to.
Tensor broadcast_to(const Tensor& a, const Shape& shape);

/// Unfolds x [N,C,H,W] into columns [C*k*k, N*OH*OW] for kernel size k,
/// zero padding p and stride s. OH = (H + 2p - k)/s + 1 (likewise OW).
Tensor im2col(const Tensor& x, int k, int pad, int stride);

/// Adjoint of im2col: folds columns back into an [N,C,H,W] image,
/// accumulating overlapping contributions.
Tensor col2im(const Tensor& cols, const Shape& image_shape, int k, int pad, int stride);

/// Per-row maximum of a [N,C] matrix, returned as [N,1].
Tensor row_max(const Tensor& a);

/// One-hot encodes integer labels into an [N,C] matrix.
Tensor one_hot(const std::vector<int>& labels, int num_classes);

/// Per-row argmax of a [N,C] matrix.
std::vector<int> argmax_rows(const Tensor& a);

}  // namespace quickdrop::kernels
