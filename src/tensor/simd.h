// Runtime-dispatched SIMD microkernels for the flat-state hot paths.
//
// Two implementations of one microkernel table: a portable hand-tiled scalar
// fallback (the *oracle*) and an AVX2 path compiled into its own translation
// unit with -mavx2 only — never -mfma, because contracting a*b+c into one
// fused operation would change result bits versus the scalar mul-then-add.
// The table is selected ONCE at startup from CPUID plus the QUICKDROP_SIMD
// environment variable and never changes mid-run.
//
// Bitwise-determinism contract (DESIGN.md §13): both paths must produce
// bit-identical results for every kernel. Elementwise kernels (axpy, scale,
// subtract, the weighted-average fold, matmul_tile4) keep each element's
// operation chain unchanged — vectorization only batches independent chains —
// so parity is structural. The reductions (sum_squares, sum_squared_diff) are
// lane-structured: four independent double accumulators over elements
// i ≡ 0..3 (mod 4), combined as ((l0 + l2) + (l1 + l3)) + tail, which is
// exactly the fold an AVX2 4x64-bit register reduction performs. The scalar
// oracle mirrors that structure, so the two paths agree bit-for-bit.
#pragma once

#include <cstdint>

namespace quickdrop::simd {

/// Which microkernel table to run. kAuto derives the choice from CPUID and
/// the QUICKDROP_SIMD environment variable ("off"/"scalar" forces the scalar
/// oracle; "avx2" requests AVX2 and falls back to scalar when unsupported).
enum class Dispatch : int { kAuto = 0, kScalar = 1, kAvx2 = 2 };

/// One table of microkernels. All pointers are non-null in both tables; the
/// caller owns partitioning and passes disjoint [0, n) slices.
struct Kernels {
  const char* name;

  /// y[i] += a * x[i]
  void (*axpy)(float* y, const float* x, float a, std::int64_t n);
  /// y[i] *= a
  void (*scale)(float* y, float a, std::int64_t n);
  /// o[i] = a[i] - b[i]
  void (*subtract)(float* o, const float* a, const float* b, std::int64_t n);
  /// Lane-structured sum of (double)x[i] squared (see header comment).
  double (*sum_squares)(const float* x, std::int64_t n);
  /// Lane-structured sum of ((float)(a[i] - b[i])) squared: the float
  /// difference is formed first, then widened — matches l2_norm over
  /// subtract(a, b) bit-for-bit.
  double (*sum_squared_diff)(const float* a, const float* b, std::int64_t n);
  /// acc[i] += w * (double)x[i] — one client's fold into the double
  /// accumulator of weighted_average.
  void (*wavg_fold)(double* acc, const float* x, double w, std::int64_t n);
  /// o[i] = (float)acc[i] — round the finished accumulator to float.
  void (*wavg_store)(float* o, const double* acc, std::int64_t n);
  /// acc[i] += x[i] — one pairwise combine step of the shard-tree lane merge
  /// (nn/state_accumulator.h). Pure double add, elementwise: parity is
  /// structural.
  void (*dadd)(double* acc, const double* x, std::int64_t n);
  /// o[i] = (float)(acc[i] * s) — scale the finished double accumulator and
  /// round to float in one pass (the streaming weighted-average finalize,
  /// where the weight normalizer is only known after the last fold).
  void (*dscale_store)(float* o, const double* acc, double s, std::int64_t n);
  /// c[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j], left-associated,
  /// mul-then-add (no FMA) — the blocked matmul's 4-way kk inner tile.
  void (*matmul_tile4)(float* c, float a0, float a1, float a2, float a3, const float* b0,
                       const float* b1, const float* b2, const float* b3, std::int64_t n);
};

/// The hand-tiled scalar oracle. Always available.
const Kernels& scalar_kernels();

/// The AVX2 table when this binary was built with AVX2 support; the scalar
/// table otherwise. Callers gate on avx2_compiled() && avx2_supported().
const Kernels& avx2_kernels();

/// The table selected at startup (or by force_dispatch). All state/tensor
/// kernels route through this.
const Kernels& active();

/// True when the AVX2 translation unit was compiled into this binary.
bool avx2_compiled();
/// True when the running CPU reports AVX2.
bool avx2_supported();

/// Test hook: override the dispatch decision. kAuto re-derives the startup
/// choice (CPUID + QUICKDROP_SIMD). Not meant for concurrent use with
/// in-flight kernels; tests switch between whole runs.
void force_dispatch(Dispatch d);
/// The dispatch the active table was selected under.
Dispatch active_dispatch();

}  // namespace quickdrop::simd
