#include "tensor/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace quickdrop::simd {
namespace {

// ---- Hand-tiled scalar oracle -------------------------------------------
//
// The elementwise kernels are unrolled 4-wide purely for throughput; the
// per-element operation chain is the single expression in each body, so the
// tiling (and any auto-vectorization of it) cannot change result bits. The
// reductions carry the 4-lane structure that defines the contract.

void axpy_scalar(float* y, const float* x, float a, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    y[i] += a * x[i];
    y[i + 1] += a * x[i + 1];
    y[i + 2] += a * x[i + 2];
    y[i + 3] += a * x[i + 3];
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void scale_scalar(float* y, float a, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    y[i] *= a;
    y[i + 1] *= a;
    y[i + 2] *= a;
    y[i + 3] *= a;
  }
  for (; i < n; ++i) y[i] *= a;
}

void subtract_scalar(float* o, const float* a, const float* b, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    o[i] = a[i] - b[i];
    o[i + 1] = a[i + 1] - b[i + 1];
    o[i + 2] = a[i + 2] - b[i + 2];
    o[i + 3] = a[i + 3] - b[i + 3];
  }
  for (; i < n; ++i) o[i] = a[i] - b[i];
}

double sum_squares_scalar(const float* x, std::int64_t n) {
  // Four independent accumulator lanes over i ≡ 0..3 (mod 4), combined as
  // ((l0 + l2) + (l1 + l3)) + tail — the AVX2 register reduction performs
  // exactly this fold, so both paths agree bit-for-bit.
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double v0 = x[i], v1 = x[i + 1], v2 = x[i + 2], v3 = x[i + 3];
    l0 += v0 * v0;
    l1 += v1 * v1;
    l2 += v2 * v2;
    l3 += v3 * v3;
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double v = x[i];
    tail += v * v;
  }
  return ((l0 + l2) + (l1 + l3)) + tail;
}

double sum_squared_diff_scalar(const float* a, const float* b, std::int64_t n) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // The float difference is formed first, then widened (matches l2_norm
    // over subtract(a, b) bit-for-bit).
    const double v0 = static_cast<float>(a[i] - b[i]);
    const double v1 = static_cast<float>(a[i + 1] - b[i + 1]);
    const double v2 = static_cast<float>(a[i + 2] - b[i + 2]);
    const double v3 = static_cast<float>(a[i + 3] - b[i + 3]);
    l0 += v0 * v0;
    l1 += v1 * v1;
    l2 += v2 * v2;
    l3 += v3 * v3;
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double v = static_cast<float>(a[i] - b[i]);
    tail += v * v;
  }
  return ((l0 + l2) + (l1 + l3)) + tail;
}

void wavg_fold_scalar(double* acc, const float* x, double w, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc[i] += w * static_cast<double>(x[i]);
    acc[i + 1] += w * static_cast<double>(x[i + 1]);
    acc[i + 2] += w * static_cast<double>(x[i + 2]);
    acc[i + 3] += w * static_cast<double>(x[i + 3]);
  }
  for (; i < n; ++i) acc[i] += w * static_cast<double>(x[i]);
}

void wavg_store_scalar(float* o, const double* acc, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) o[i] = static_cast<float>(acc[i]);
}

void dadd_scalar(double* acc, const double* x, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc[i] += x[i];
    acc[i + 1] += x[i + 1];
    acc[i + 2] += x[i + 2];
    acc[i + 3] += x[i + 3];
  }
  for (; i < n; ++i) acc[i] += x[i];
}

void dscale_store_scalar(float* o, const double* acc, double s, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) o[i] = static_cast<float>(acc[i] * s);
}

void matmul_tile4_scalar(float* c, float a0, float a1, float a2, float a3, const float* b0,
                         const float* b1, const float* b2, const float* b3, std::int64_t n) {
  for (std::int64_t j = 0; j < n; ++j) {
    c[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
  }
}

constexpr Kernels kScalarKernels = {
    "scalar",          axpy_scalar,      scale_scalar,      subtract_scalar,
    sum_squares_scalar, sum_squared_diff_scalar, wavg_fold_scalar, wavg_store_scalar,
    dadd_scalar,       dscale_store_scalar,
    matmul_tile4_scalar,
};

// ---- Dispatch ------------------------------------------------------------

Dispatch env_dispatch() {
  const char* env = std::getenv("QUICKDROP_SIMD");
  if (env == nullptr) return Dispatch::kAuto;
  if (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0) return Dispatch::kScalar;
  if (std::strcmp(env, "avx2") == 0) return Dispatch::kAvx2;
  return Dispatch::kAuto;
}

const Kernels* resolve(Dispatch d) {
  if (d == Dispatch::kScalar) return &kScalarKernels;
  if (d == Dispatch::kAvx2) return avx2_compiled() && avx2_supported() ? &avx2_kernels() : &kScalarKernels;
  // kAuto: honor the environment escape hatch, then CPUID.
  const Dispatch env = env_dispatch();
  if (env != Dispatch::kAuto) return resolve(env);
  return avx2_compiled() && avx2_supported() ? &avx2_kernels() : &kScalarKernels;
}

// Selected once at startup (first kernel call) and then immutable, except via
// the force_dispatch test hook; atomic so TSan-clean under concurrent reads.
// NOLINTNEXTLINE(qdlint-conc-static-local) — write-once dispatch table, atomic access only
std::atomic<const Kernels*> g_active{nullptr};

}  // namespace

const Kernels& scalar_kernels() { return kScalarKernels; }

bool avx2_supported() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

const Kernels& active() {
  const Kernels* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) {
    // Idempotent: every racing initializer resolves the same table.
    k = resolve(Dispatch::kAuto);
    g_active.store(k, std::memory_order_release);
  }
  return *k;
}

void force_dispatch(Dispatch d) { g_active.store(resolve(d), std::memory_order_release); }

Dispatch active_dispatch() {
  return &active() == &kScalarKernels ? Dispatch::kScalar : Dispatch::kAvx2;
}

}  // namespace quickdrop::simd
