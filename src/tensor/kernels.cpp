#include "tensor/kernels.h"

#include <cmath>
#include <stdexcept>

namespace quickdrop::kernels {
namespace {

/// Strides for iterating an input of shape `in` as if it had the broadcast
/// shape `out` (stride 0 on broadcast dimensions).
std::vector<std::int64_t> broadcast_strides(const Shape& in, const Shape& out) {
  const auto in_strides = contiguous_strides(in);
  std::vector<std::int64_t> strides(out.size(), 0);
  const std::size_t off = out.size() - in.size();
  for (std::size_t i = 0; i < in.size(); ++i) {
    strides[off + i] = in[i] == 1 ? 0 : in_strides[i];
  }
  return strides;
}

template <typename F>
Tensor binary_op(const Tensor& a, const Tensor& b, F f, const char* name) {
  if (a.shape() == b.shape()) {  // fast path
    Tensor out(a.shape());
    auto oa = a.data(), ob = b.data();
    auto od = out.data();
    for (std::size_t i = 0; i < od.size(); ++i) od[i] = f(oa[i], ob[i]);
    return out;
  }
  Shape out_shape;
  try {
    out_shape = broadcast_shapes(a.shape(), b.shape());
  } catch (const std::invalid_argument&) {
    throw std::invalid_argument(std::string(name) + ": cannot broadcast " +
                                shape_to_string(a.shape()) + " with " + shape_to_string(b.shape()));
  }
  Tensor out(out_shape);
  const auto sa = broadcast_strides(a.shape(), out_shape);
  const auto sb = broadcast_strides(b.shape(), out_shape);
  const auto rank = out_shape.size();
  std::vector<std::int64_t> idx(rank, 0);
  auto da = a.data(), db = b.data();
  auto od = out.data();
  std::int64_t ia = 0, ib = 0;
  for (std::int64_t flat = 0; flat < out.numel(); ++flat) {
    od[static_cast<std::size_t>(flat)] =
        f(da[static_cast<std::size_t>(ia)], db[static_cast<std::size_t>(ib)]);
    // Odometer increment.
    for (int d = static_cast<int>(rank) - 1; d >= 0; --d) {
      ++idx[d];
      ia += sa[d];
      ib += sb[d];
      if (idx[d] < out_shape[d]) break;
      ia -= sa[d] * out_shape[d];
      ib -= sb[d] * out_shape[d];
      idx[d] = 0;
    }
  }
  return out;
}

template <typename F>
Tensor unary_op(const Tensor& a, F f) {
  Tensor out(a.shape());
  auto da = a.data();
  auto od = out.data();
  for (std::size_t i = 0; i < od.size(); ++i) od[i] = f(da[i]);
  return out;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return x + y; }, "add");
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return x - y; }, "sub");
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return x * y; }, "mul");
}
Tensor div(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return x / y; }, "div");
}

Tensor neg(const Tensor& a) {
  return unary_op(a, [](float x) { return -x; });
}
Tensor exp(const Tensor& a) {
  return unary_op(a, [](float x) { return std::exp(x); });
}
Tensor log(const Tensor& a) {
  return unary_op(a, [](float x) { return std::log(x); });
}
Tensor sqrt(const Tensor& a) {
  return unary_op(a, [](float x) { return std::sqrt(x); });
}
Tensor relu(const Tensor& a) {
  return unary_op(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}
Tensor gt_zero_mask(const Tensor& a) {
  return unary_op(a, [](float x) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor add_scalar(const Tensor& a, float s) {
  return unary_op(a, [s](float x) { return x + s; });
}
Tensor mul_scalar(const Tensor& a, float s) {
  return unary_op(a, [s](float x) { return x * s; });
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(0)) {
    throw std::invalid_argument("matmul: bad shapes " + shape_to_string(a.shape()) + " x " +
                                shape_to_string(b.shape()));
  }
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  auto da = a.data(), db = b.data();
  auto od = out.data();
  // ikj loop order: streams over b and out rows.
  for (std::int64_t i = 0; i < m; ++i) {
    float* orow = od.data() + i * n;
    const float* arow = da.data() + i * k;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = db.data() + kk * n;
      for (std::int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Tensor transpose2d(const Tensor& a) {
  if (a.rank() != 2) throw std::invalid_argument("transpose2d: rank must be 2");
  const std::int64_t m = a.dim(0), n = a.dim(1);
  Tensor out({n, m});
  auto da = a.data();
  auto od = out.data();
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) od[j * m + i] = da[i * n + j];
  }
  return out;
}

Tensor permute(const Tensor& a, const std::vector<int>& dims) {
  const int rank = a.rank();
  if (static_cast<int>(dims.size()) != rank) {
    throw std::invalid_argument("permute: dims size mismatch");
  }
  std::vector<bool> seen(static_cast<std::size_t>(rank), false);
  Shape out_shape(static_cast<std::size_t>(rank));
  for (int i = 0; i < rank; ++i) {
    const int d = dims[static_cast<std::size_t>(i)];
    if (d < 0 || d >= rank || seen[static_cast<std::size_t>(d)]) {
      throw std::invalid_argument("permute: dims is not a permutation");
    }
    seen[static_cast<std::size_t>(d)] = true;
    out_shape[static_cast<std::size_t>(i)] = a.shape()[static_cast<std::size_t>(d)];
  }
  Tensor out(out_shape);
  const auto in_strides = contiguous_strides(a.shape());
  std::vector<std::int64_t> strides(static_cast<std::size_t>(rank));
  for (int i = 0; i < rank; ++i) {
    strides[static_cast<std::size_t>(i)] = in_strides[static_cast<std::size_t>(dims[static_cast<std::size_t>(i)])];
  }
  std::vector<std::int64_t> idx(static_cast<std::size_t>(rank), 0);
  auto da = a.data();
  auto od = out.data();
  std::int64_t src = 0;
  for (std::int64_t flat = 0; flat < out.numel(); ++flat) {
    od[static_cast<std::size_t>(flat)] = da[static_cast<std::size_t>(src)];
    for (int d = rank - 1; d >= 0; --d) {
      ++idx[static_cast<std::size_t>(d)];
      src += strides[static_cast<std::size_t>(d)];
      if (idx[static_cast<std::size_t>(d)] < out_shape[static_cast<std::size_t>(d)]) break;
      src -= strides[static_cast<std::size_t>(d)] * out_shape[static_cast<std::size_t>(d)];
      idx[static_cast<std::size_t>(d)] = 0;
    }
  }
  return out;
}

Tensor reduce_sum_to(const Tensor& a, const Shape& target_shape) {
  if (a.shape() == target_shape) return a.clone();
  if (!broadcastable_to(target_shape, a.shape())) {
    throw std::invalid_argument("reduce_sum_to: " + shape_to_string(target_shape) +
                                " does not broadcast to " + shape_to_string(a.shape()));
  }
  Tensor out(target_shape);
  const auto strides = broadcast_strides(target_shape, a.shape());
  const auto& in_shape = a.shape();
  std::vector<std::int64_t> idx(in_shape.size(), 0);
  auto da = a.data();
  auto od = out.data();
  std::int64_t dst = 0;
  for (std::int64_t flat = 0; flat < a.numel(); ++flat) {
    od[static_cast<std::size_t>(dst)] += da[static_cast<std::size_t>(flat)];
    for (int d = static_cast<int>(in_shape.size()) - 1; d >= 0; --d) {
      ++idx[static_cast<std::size_t>(d)];
      dst += strides[static_cast<std::size_t>(d)];
      if (idx[static_cast<std::size_t>(d)] < in_shape[static_cast<std::size_t>(d)]) break;
      dst -= strides[static_cast<std::size_t>(d)] * in_shape[static_cast<std::size_t>(d)];
      idx[static_cast<std::size_t>(d)] = 0;
    }
  }
  return out;
}

Tensor broadcast_to(const Tensor& a, const Shape& shape) {
  if (a.shape() == shape) return a.clone();
  if (!broadcastable_to(a.shape(), shape)) {
    throw std::invalid_argument("broadcast_to: " + shape_to_string(a.shape()) +
                                " does not broadcast to " + shape_to_string(shape));
  }
  Tensor out(shape);
  const auto strides = broadcast_strides(a.shape(), shape);
  std::vector<std::int64_t> idx(shape.size(), 0);
  auto da = a.data();
  auto od = out.data();
  std::int64_t src = 0;
  for (std::int64_t flat = 0; flat < out.numel(); ++flat) {
    od[static_cast<std::size_t>(flat)] = da[static_cast<std::size_t>(src)];
    for (int d = static_cast<int>(shape.size()) - 1; d >= 0; --d) {
      ++idx[static_cast<std::size_t>(d)];
      src += strides[static_cast<std::size_t>(d)];
      if (idx[static_cast<std::size_t>(d)] < shape[static_cast<std::size_t>(d)]) break;
      src -= strides[static_cast<std::size_t>(d)] * shape[static_cast<std::size_t>(d)];
      idx[static_cast<std::size_t>(d)] = 0;
    }
  }
  return out;
}

namespace {
void check_conv_geometry(const Shape& image_shape, int k, int pad, int stride) {
  if (image_shape.size() != 4) throw std::invalid_argument("im2col: input must be [N,C,H,W]");
  if (k <= 0 || pad < 0 || stride <= 0) throw std::invalid_argument("im2col: bad geometry");
  const std::int64_t h = image_shape[2], w = image_shape[3];
  if (h + 2 * pad < k || w + 2 * pad < k) {
    throw std::invalid_argument("im2col: kernel larger than padded input");
  }
}
}  // namespace

Tensor im2col(const Tensor& x, int k, int pad, int stride) {
  check_conv_geometry(x.shape(), k, pad, stride);
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = (h + 2 * pad - k) / stride + 1;
  const std::int64_t ow = (w + 2 * pad - k) / stride + 1;
  Tensor cols({c * k * k, n * oh * ow});
  auto dx = x.data();
  auto dc = cols.data();
  const std::int64_t col_width = n * oh * ow;
  for (std::int64_t ci = 0; ci < c; ++ci) {
    for (int ki = 0; ki < k; ++ki) {
      for (int kj = 0; kj < k; ++kj) {
        const std::int64_t row = (ci * k + ki) * k + kj;
        float* out_row = dc.data() + row * col_width;
        for (std::int64_t ni = 0; ni < n; ++ni) {
          const float* img = dx.data() + (ni * c + ci) * h * w;
          for (std::int64_t y = 0; y < oh; ++y) {
            const std::int64_t iy = y * stride + ki - pad;
            for (std::int64_t xo = 0; xo < ow; ++xo) {
              const std::int64_t ix = xo * stride + kj - pad;
              const bool in_bounds = iy >= 0 && iy < h && ix >= 0 && ix < w;
              out_row[(ni * oh + y) * ow + xo] = in_bounds ? img[iy * w + ix] : 0.0f;
            }
          }
        }
      }
    }
  }
  return cols;
}

Tensor col2im(const Tensor& cols, const Shape& image_shape, int k, int pad, int stride) {
  check_conv_geometry(image_shape, k, pad, stride);
  const std::int64_t n = image_shape[0], c = image_shape[1], h = image_shape[2], w = image_shape[3];
  const std::int64_t oh = (h + 2 * pad - k) / stride + 1;
  const std::int64_t ow = (w + 2 * pad - k) / stride + 1;
  if (cols.rank() != 2 || cols.dim(0) != c * k * k || cols.dim(1) != n * oh * ow) {
    throw std::invalid_argument("col2im: columns shape mismatch " + shape_to_string(cols.shape()));
  }
  Tensor out(image_shape);
  auto dc = cols.data();
  auto od = out.data();
  const std::int64_t col_width = n * oh * ow;
  for (std::int64_t ci = 0; ci < c; ++ci) {
    for (int ki = 0; ki < k; ++ki) {
      for (int kj = 0; kj < k; ++kj) {
        const std::int64_t row = (ci * k + ki) * k + kj;
        const float* in_row = dc.data() + row * col_width;
        for (std::int64_t ni = 0; ni < n; ++ni) {
          float* img = od.data() + (ni * c + ci) * h * w;
          for (std::int64_t y = 0; y < oh; ++y) {
            const std::int64_t iy = y * stride + ki - pad;
            if (iy < 0 || iy >= h) continue;
            for (std::int64_t xo = 0; xo < ow; ++xo) {
              const std::int64_t ix = xo * stride + kj - pad;
              if (ix < 0 || ix >= w) continue;
              img[iy * w + ix] += in_row[(ni * oh + y) * ow + xo];
            }
          }
        }
      }
    }
  }
  return out;
}

Tensor row_max(const Tensor& a) {
  if (a.rank() != 2) throw std::invalid_argument("row_max: rank must be 2");
  const std::int64_t n = a.dim(0), c = a.dim(1);
  if (c == 0) throw std::invalid_argument("row_max: empty rows");
  Tensor out({n, 1});
  auto da = a.data();
  auto od = out.data();
  for (std::int64_t i = 0; i < n; ++i) {
    float m = da[static_cast<std::size_t>(i * c)];
    for (std::int64_t j = 1; j < c; ++j) m = std::max(m, da[static_cast<std::size_t>(i * c + j)]);
    od[static_cast<std::size_t>(i)] = m;
  }
  return out;
}

Tensor one_hot(const std::vector<int>& labels, int num_classes) {
  Tensor out({static_cast<std::int64_t>(labels.size()), num_classes});
  auto od = out.data();
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] < 0 || labels[i] >= num_classes) {
      throw std::invalid_argument("one_hot: label out of range");
    }
    od[i * static_cast<std::size_t>(num_classes) + static_cast<std::size_t>(labels[i])] = 1.0f;
  }
  return out;
}

std::vector<int> argmax_rows(const Tensor& a) {
  if (a.rank() != 2) throw std::invalid_argument("argmax_rows: rank must be 2");
  const std::int64_t n = a.dim(0), c = a.dim(1);
  std::vector<int> out(static_cast<std::size_t>(n));
  auto da = a.data();
  for (std::int64_t i = 0; i < n; ++i) {
    int best = 0;
    float best_v = da[static_cast<std::size_t>(i * c)];
    for (std::int64_t j = 1; j < c; ++j) {
      const float v = da[static_cast<std::size_t>(i * c + j)];
      if (v > best_v) {
        best_v = v;
        best = static_cast<int>(j);
      }
    }
    out[static_cast<std::size_t>(i)] = best;
  }
  return out;
}

}  // namespace quickdrop::kernels
