#include "tensor/kernels.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/simd.h"
#include "util/thread_pool.h"

// Parallelization strategy (see DESIGN.md "Threading model"): every kernel
// partitions its *output* so each element is written by exactly one chunk,
// and the per-element operation order is fixed by the element itself, never
// by the chunk layout. Results are therefore bit-identical at any thread
// count, including the serial fallback at 1 thread.
namespace quickdrop::kernels {
namespace {

/// Strides for iterating an input of shape `in` as if it had the broadcast
/// shape `out` (stride 0 on broadcast dimensions).
std::vector<std::int64_t> broadcast_strides(const Shape& in, const Shape& out) {
  const auto in_strides = contiguous_strides(in);
  std::vector<std::int64_t> strides(out.size(), 0);
  const std::size_t off = out.size() - in.size();
  for (std::size_t i = 0; i < in.size(); ++i) {
    strides[off + i] = in[i] == 1 ? 0 : in_strides[i];
  }
  return strides;
}

/// Multi-index of flat position `flat` in `shape` (row-major).
std::vector<std::int64_t> unflatten(std::int64_t flat, const Shape& shape) {
  std::vector<std::int64_t> idx(shape.size(), 0);
  for (int d = static_cast<int>(shape.size()) - 1; d >= 0; --d) {
    const auto ud = static_cast<std::size_t>(d);
    idx[ud] = flat % shape[ud];
    flat /= shape[ud];
  }
  return idx;
}

std::int64_t offset_of(const std::vector<std::int64_t>& idx,
                       const std::vector<std::int64_t>& strides) {
  std::int64_t off = 0;
  for (std::size_t d = 0; d < idx.size(); ++d) off += idx[d] * strides[d];
  return off;
}

/// Gathers out[flat] = da[offset(flat)] for flat in [begin, end), where the
/// offset walks `strides` over `out_shape` (an odometer seeked to `begin`).
/// Pure per-element map: safe and bit-stable under any output partition.
void strided_gather(std::span<const float> da, std::span<float> od, const Shape& out_shape,
                    const std::vector<std::int64_t>& strides, std::int64_t begin,
                    std::int64_t end) {
  auto idx = unflatten(begin, out_shape);
  std::int64_t src = offset_of(idx, strides);
  const auto rank = out_shape.size();
  for (std::int64_t flat = begin; flat < end; ++flat) {
    od[static_cast<std::size_t>(flat)] = da[static_cast<std::size_t>(src)];
    for (int d = static_cast<int>(rank) - 1; d >= 0; --d) {
      const auto ud = static_cast<std::size_t>(d);
      ++idx[ud];
      src += strides[ud];
      if (idx[ud] < out_shape[ud]) break;
      src -= strides[ud] * out_shape[ud];
      idx[ud] = 0;
    }
  }
}

template <typename F>
Tensor binary_op(const Tensor& a, const Tensor& b, F f, const char* name) {
  if (a.shape() == b.shape()) {  // fast path
    Tensor out(a.shape());
    auto oa = a.data(), ob = b.data();
    auto od = out.data();
    ThreadPool::global().parallel_for(
        // qdlint: shared-write(each chunk writes its own disjoint od[lo,hi) slice)
        0, out.numel(), grain_for(1), [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            const auto u = static_cast<std::size_t>(i);
            od[u] = f(oa[u], ob[u]);
          }
        });
    return out;
  }
  Shape out_shape;
  try {
    out_shape = broadcast_shapes(a.shape(), b.shape());
  } catch (const std::invalid_argument&) {
    throw std::invalid_argument(std::string(name) + ": cannot broadcast " +
                                shape_to_string(a.shape()) + " with " + shape_to_string(b.shape()));
  }
  Tensor out(out_shape);
  const auto sa = broadcast_strides(a.shape(), out_shape);
  const auto sb = broadcast_strides(b.shape(), out_shape);
  const auto rank = out_shape.size();
  auto da = a.data(), db = b.data();
  auto od = out.data();
  ThreadPool::global().parallel_for(
      // qdlint: shared-write(each chunk writes its own disjoint od[lo,hi) slice)
      0, out.numel(), grain_for(2), [&](std::int64_t lo, std::int64_t hi) {
        auto idx = unflatten(lo, out_shape);
        std::int64_t ia = offset_of(idx, sa), ib = offset_of(idx, sb);
        for (std::int64_t flat = lo; flat < hi; ++flat) {
          od[static_cast<std::size_t>(flat)] =
              f(da[static_cast<std::size_t>(ia)], db[static_cast<std::size_t>(ib)]);
          // Odometer increment.
          for (int d = static_cast<int>(rank) - 1; d >= 0; --d) {
            const auto ud = static_cast<std::size_t>(d);
            ++idx[ud];
            ia += sa[ud];
            ib += sb[ud];
            if (idx[ud] < out_shape[ud]) break;
            ia -= sa[ud] * out_shape[ud];
            ib -= sb[ud] * out_shape[ud];
            idx[ud] = 0;
          }
        }
      });
  return out;
}

template <typename F>
Tensor unary_op(const Tensor& a, F f) {
  Tensor out(a.shape());
  auto da = a.data();
  auto od = out.data();
  ThreadPool::global().parallel_for(
      // qdlint: shared-write(each chunk writes its own disjoint od[lo,hi) slice)
      0, out.numel(), grain_for(1), [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          const auto u = static_cast<std::size_t>(i);
          od[u] = f(da[u]);
        }
      });
  return out;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return x + y; }, "add");
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return x - y; }, "sub");
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return x * y; }, "mul");
}
Tensor div(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return x / y; }, "div");
}

Tensor neg(const Tensor& a) {
  return unary_op(a, [](float x) { return -x; });
}
Tensor exp(const Tensor& a) {
  return unary_op(a, [](float x) { return std::exp(x); });
}
Tensor log(const Tensor& a) {
  return unary_op(a, [](float x) { return std::log(x); });
}
Tensor sqrt(const Tensor& a) {
  return unary_op(a, [](float x) { return std::sqrt(x); });
}
Tensor relu(const Tensor& a) {
  return unary_op(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}
Tensor gt_zero_mask(const Tensor& a) {
  return unary_op(a, [](float x) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor add_scalar(const Tensor& a, float s) {
  return unary_op(a, [s](float x) { return x + s; });
}
Tensor mul_scalar(const Tensor& a, float s) {
  return unary_op(a, [s](float x) { return x * s; });
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(0)) {
    throw std::invalid_argument("matmul: bad shapes " + shape_to_string(a.shape()) + " x " +
                                shape_to_string(b.shape()));
  }
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  auto da = a.data(), db = b.data();
  auto od = out.data();
  // Row-partitioned blocked ikj: each output row is owned by one chunk, and
  // its accumulation order over kk is fixed by the kk-tiling constants alone,
  // so any row partition yields bit-identical results. The kk tile keeps a
  // block of B rows hot across the chunk's rows; the 4-way kk unroll keeps
  // the inner j loop branch-free and vectorizable (the old `av == 0` skip
  // defeated both).
  constexpr std::int64_t kKTile = 128;
  const auto& simd_k = simd::active();
  ThreadPool::global().parallel_for(
      // qdlint: shared-write(each chunk owns output rows [i0,i1); db/da are read-only)
      0, m, grain_for(2 * k * n), [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t kk0 = 0; kk0 < k; kk0 += kKTile) {
          const std::int64_t kk1 = kk0 + kKTile < k ? kk0 + kKTile : k;
          for (std::int64_t i = i0; i < i1; ++i) {
            float* orow = od.data() + i * n;
            const float* arow = da.data() + i * k;
            std::int64_t kk = kk0;
            for (; kk + 4 <= kk1; kk += 4) {
              const float* b0 = db.data() + kk * n;
              // The dispatched tile keeps the exact left-associated
              // mul-then-add chain of the scalar expression
              // orow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j],
              // so results stay bitwise identical across dispatch paths.
              simd_k.matmul_tile4(orow, arow[kk], arow[kk + 1], arow[kk + 2], arow[kk + 3], b0,
                                  b0 + n, b0 + 2 * n, b0 + 3 * n, n);
            }
            for (; kk < kk1; ++kk) {
              // Remainder rows are plain axpy over the output row.
              simd_k.axpy(orow, db.data() + kk * n, arow[kk], n);
            }
          }
        }
      });
  return out;
}

Tensor transpose2d(const Tensor& a) {
  if (a.rank() != 2) throw std::invalid_argument("transpose2d: rank must be 2");
  const std::int64_t m = a.dim(0), n = a.dim(1);
  Tensor out({n, m});
  auto da = a.data();
  auto od = out.data();
  // Partitioned over output rows; pure gather.
  // qdlint: shared-write(each chunk owns output rows [j0,j1))
  ThreadPool::global().parallel_for(0, n, grain_for(m), [&](std::int64_t j0, std::int64_t j1) {
    for (std::int64_t j = j0; j < j1; ++j) {
      float* orow = od.data() + j * m;
      for (std::int64_t i = 0; i < m; ++i) orow[i] = da[static_cast<std::size_t>(i * n + j)];
    }
  });
  return out;
}

Tensor permute(const Tensor& a, const std::vector<int>& dims) {
  const int rank = a.rank();
  if (static_cast<int>(dims.size()) != rank) {
    throw std::invalid_argument("permute: dims size mismatch");
  }
  std::vector<bool> seen(static_cast<std::size_t>(rank), false);
  Shape out_shape(static_cast<std::size_t>(rank));
  for (int i = 0; i < rank; ++i) {
    const int d = dims[static_cast<std::size_t>(i)];
    if (d < 0 || d >= rank || seen[static_cast<std::size_t>(d)]) {
      throw std::invalid_argument("permute: dims is not a permutation");
    }
    seen[static_cast<std::size_t>(d)] = true;
    out_shape[static_cast<std::size_t>(i)] = a.shape()[static_cast<std::size_t>(d)];
  }
  Tensor out(out_shape);
  const auto in_strides = contiguous_strides(a.shape());
  std::vector<std::int64_t> strides(static_cast<std::size_t>(rank));
  for (int i = 0; i < rank; ++i) {
    strides[static_cast<std::size_t>(i)] = in_strides[static_cast<std::size_t>(dims[static_cast<std::size_t>(i)])];
  }
  auto da = a.data();
  auto od = out.data();
  ThreadPool::global().parallel_for(
      // qdlint: shared-write(strided_gather writes only od[lo,hi); da is read-only)
      0, out.numel(), grain_for(2), [&](std::int64_t lo, std::int64_t hi) {
        strided_gather(da, od, out_shape, strides, lo, hi);
      });
  return out;
}

Tensor reduce_sum_to(const Tensor& a, const Shape& target_shape) {
  if (a.shape() == target_shape) return a.clone();
  if (!broadcastable_to(target_shape, a.shape())) {
    throw std::invalid_argument("reduce_sum_to: " + shape_to_string(target_shape) +
                                " does not broadcast to " + shape_to_string(a.shape()));
  }
  Tensor out(target_shape);
  const auto& in_shape = a.shape();
  const auto in_strides = contiguous_strides(in_shape);
  const std::size_t in_rank = in_shape.size();
  const std::size_t off = in_rank - target_shape.size();
  // Split input dimensions into kept (present in the target) and reduced
  // (missing or broadcast). Each output element sums its reduced sub-lattice
  // in increasing input-flat order — exactly the per-element accumulation
  // order of a serial streaming pass — so partitioning over *output*
  // elements is both race-free and bit-stable at any thread count.
  std::vector<std::int64_t> red_extent, red_stride;
  for (std::size_t d = 0; d < in_rank; ++d) {
    if (d < off || target_shape[d - off] == 1) {
      if (in_shape[d] > 1) {
        red_extent.push_back(in_shape[d]);
        red_stride.push_back(in_strides[d]);
      }
    }
  }
  std::int64_t reduce_count = 1;
  for (const auto e : red_extent) reduce_count *= e;
  auto da = a.data();
  auto od = out.data();
  ThreadPool::global().parallel_for(
      // qdlint: shared-write(each chunk writes its own disjoint od[lo,hi) slice)
      0, out.numel(), grain_for(reduce_count), [&](std::int64_t lo, std::int64_t hi) {
        std::vector<std::int64_t> ridx(red_extent.size());
        for (std::int64_t o = lo; o < hi; ++o) {
          // Base input offset of this output element (kept dims only).
          std::int64_t base = 0, rem = o;
          for (int dt = static_cast<int>(target_shape.size()) - 1; dt >= 0; --dt) {
            const auto ud = static_cast<std::size_t>(dt);
            const std::int64_t id = rem % target_shape[ud];
            rem /= target_shape[ud];
            if (target_shape[ud] != 1) base += id * in_strides[off + ud];
          }
          float acc = 0.0f;
          if (red_extent.empty()) {
            acc = da[static_cast<std::size_t>(base)];
          } else {
            std::fill(ridx.begin(), ridx.end(), 0);
            std::int64_t roff = 0;
            for (;;) {
              acc += da[static_cast<std::size_t>(base + roff)];
              int d = static_cast<int>(red_extent.size()) - 1;
              for (; d >= 0; --d) {
                const auto ud = static_cast<std::size_t>(d);
                ++ridx[ud];
                roff += red_stride[ud];
                if (ridx[ud] < red_extent[ud]) break;
                roff -= red_stride[ud] * red_extent[ud];
                ridx[ud] = 0;
              }
              if (d < 0) break;
            }
          }
          od[static_cast<std::size_t>(o)] = acc;
        }
      });
  return out;
}

Tensor broadcast_to(const Tensor& a, const Shape& shape) {
  if (a.shape() == shape) return a.clone();
  if (!broadcastable_to(a.shape(), shape)) {
    throw std::invalid_argument("broadcast_to: " + shape_to_string(a.shape()) +
                                " does not broadcast to " + shape_to_string(shape));
  }
  Tensor out(shape);
  const auto strides = broadcast_strides(a.shape(), shape);
  auto da = a.data();
  auto od = out.data();
  ThreadPool::global().parallel_for(
      // qdlint: shared-write(strided_gather writes only od[lo,hi); da is read-only)
      0, out.numel(), grain_for(2), [&](std::int64_t lo, std::int64_t hi) {
        strided_gather(da, od, shape, strides, lo, hi);
      });
  return out;
}

namespace {
void check_conv_geometry(const Shape& image_shape, int k, int pad, int stride) {
  if (image_shape.size() != 4) throw std::invalid_argument("im2col: input must be [N,C,H,W]");
  if (k <= 0 || pad < 0 || stride <= 0) throw std::invalid_argument("im2col: bad geometry");
  const std::int64_t h = image_shape[2], w = image_shape[3];
  if (h + 2 * pad < k || w + 2 * pad < k) {
    throw std::invalid_argument("im2col: kernel larger than padded input");
  }
}
}  // namespace

Tensor im2col(const Tensor& x, int k, int pad, int stride) {
  check_conv_geometry(x.shape(), k, pad, stride);
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = (h + 2 * pad - k) / stride + 1;
  const std::int64_t ow = (w + 2 * pad - k) / stride + 1;
  Tensor cols({c * k * k, n * oh * ow});
  auto dx = x.data();
  auto dc = cols.data();
  const std::int64_t col_width = n * oh * ow;
  // Partitioned over output rows (one per (ci, ki, kj)); each row is a
  // disjoint slice of `cols`, written by pure gathers.
  ThreadPool::global().parallel_for(
      // qdlint: shared-write(each chunk owns cols rows [r0,r1); dx is read-only)
      0, c * k * k, grain_for(col_width), [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t row = r0; row < r1; ++row) {
          const std::int64_t ci = row / (k * k);
          const int ki = static_cast<int>((row / k) % k);
          const int kj = static_cast<int>(row % k);
          float* out_row = dc.data() + row * col_width;
          for (std::int64_t ni = 0; ni < n; ++ni) {
            const float* img = dx.data() + (ni * c + ci) * h * w;
            for (std::int64_t y = 0; y < oh; ++y) {
              const std::int64_t iy = y * stride + ki - pad;
              for (std::int64_t xo = 0; xo < ow; ++xo) {
                const std::int64_t ix = xo * stride + kj - pad;
                const bool in_bounds = iy >= 0 && iy < h && ix >= 0 && ix < w;
                out_row[(ni * oh + y) * ow + xo] = in_bounds ? img[iy * w + ix] : 0.0f;
              }
            }
          }
        }
      });
  return cols;
}

Tensor col2im(const Tensor& cols, const Shape& image_shape, int k, int pad, int stride) {
  check_conv_geometry(image_shape, k, pad, stride);
  const std::int64_t n = image_shape[0], c = image_shape[1], h = image_shape[2], w = image_shape[3];
  const std::int64_t oh = (h + 2 * pad - k) / stride + 1;
  const std::int64_t ow = (w + 2 * pad - k) / stride + 1;
  if (cols.rank() != 2 || cols.dim(0) != c * k * k || cols.dim(1) != n * oh * ow) {
    throw std::invalid_argument("col2im: columns shape mismatch " + shape_to_string(cols.shape()));
  }
  Tensor out(image_shape);
  auto dc = cols.data();
  auto od = out.data();
  const std::int64_t col_width = n * oh * ow;
  // Partitioned over output image planes (ni, ci): every output pixel
  // belongs to exactly one plane, so the overlapping += accumulation is
  // race-free, and each pixel receives its contributions in the fixed
  // (ki, kj, y, xo) order regardless of how planes are distributed.
  ThreadPool::global().parallel_for(
      0, n * c, grain_for(static_cast<std::int64_t>(k) * k * oh * ow),
      // qdlint: shared-write(each chunk owns image planes [p0,p1); dc is read-only)
      [&](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t p = p0; p < p1; ++p) {
          const std::int64_t ni = p / c;
          const std::int64_t ci = p % c;
          float* img = od.data() + p * h * w;
          for (int ki = 0; ki < k; ++ki) {
            for (int kj = 0; kj < k; ++kj) {
              const std::int64_t row = (ci * k + ki) * k + kj;
              const float* in_row = dc.data() + row * col_width;
              for (std::int64_t y = 0; y < oh; ++y) {
                const std::int64_t iy = y * stride + ki - pad;
                if (iy < 0 || iy >= h) continue;
                for (std::int64_t xo = 0; xo < ow; ++xo) {
                  const std::int64_t ix = xo * stride + kj - pad;
                  if (ix < 0 || ix >= w) continue;
                  img[iy * w + ix] += in_row[(ni * oh + y) * ow + xo];
                }
              }
            }
          }
        }
      });
  return out;
}

Tensor row_max(const Tensor& a) {
  if (a.rank() != 2) throw std::invalid_argument("row_max: rank must be 2");
  const std::int64_t n = a.dim(0), c = a.dim(1);
  if (c == 0) throw std::invalid_argument("row_max: empty rows");
  Tensor out({n, 1});
  auto da = a.data();
  auto od = out.data();
  // qdlint: shared-write(each chunk owns output rows [i0,i1))
  ThreadPool::global().parallel_for(0, n, grain_for(c), [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      float m = da[static_cast<std::size_t>(i * c)];
      for (std::int64_t j = 1; j < c; ++j) m = std::max(m, da[static_cast<std::size_t>(i * c + j)]);
      od[static_cast<std::size_t>(i)] = m;
    }
  });
  return out;
}

Tensor one_hot(const std::vector<int>& labels, int num_classes) {
  Tensor out({static_cast<std::int64_t>(labels.size()), num_classes});
  auto od = out.data();
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] < 0 || labels[i] >= num_classes) {
      throw std::invalid_argument("one_hot: label out of range");
    }
    od[i * static_cast<std::size_t>(num_classes) + static_cast<std::size_t>(labels[i])] = 1.0f;
  }
  return out;
}

std::vector<int> argmax_rows(const Tensor& a) {
  if (a.rank() != 2) throw std::invalid_argument("argmax_rows: rank must be 2");
  const std::int64_t n = a.dim(0), c = a.dim(1);
  std::vector<int> out(static_cast<std::size_t>(n));
  auto da = a.data();
  // qdlint: shared-write(each chunk owns out[i0,i1))
  ThreadPool::global().parallel_for(0, n, grain_for(c), [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      int best = 0;
      float best_v = da[static_cast<std::size_t>(i * c)];
      for (std::int64_t j = 1; j < c; ++j) {
        const float v = da[static_cast<std::size_t>(i * c + j)];
        if (v > best_v) {
          best_v = v;
          best = static_cast<int>(j);
        }
      }
      out[static_cast<std::size_t>(i)] = best;
    }
  });
  return out;
}

}  // namespace quickdrop::kernels
