// AVX2 microkernel table. This translation unit is the ONLY one compiled
// with -mavx2 — and deliberately NOT -mfma: fusing a*b+c would change result
// bits versus the scalar oracle's mul-then-add, breaking the cross-dispatch
// bitwise contract (see simd.h and DESIGN.md §13). Every arithmetic step
// below uses explicit mul/add intrinsics in the same association order as
// the scalar oracle. The dispatch layer never selects this table unless the
// running CPU reports AVX2.
#include "tensor/simd.h"

#if defined(QUICKDROP_HAVE_AVX2) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

namespace quickdrop::simd {
namespace {

void axpy_avx2(float* y, const float* x, float a, std::int64_t n) {
  const __m256 av = _mm256_set1_ps(a);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 xv = _mm256_loadu_ps(x + i);
    const __m256 yv = _mm256_loadu_ps(y + i);
    // qdlint: shared-write(caller passes a disjoint y[0,n) slice; this tile writes only it)
    _mm256_storeu_ps(y + i, _mm256_add_ps(yv, _mm256_mul_ps(av, xv)));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void scale_avx2(float* y, float a, std::int64_t n) {
  const __m256 av = _mm256_set1_ps(a);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // qdlint: shared-write(caller passes a disjoint y[0,n) slice; this tile writes only it)
    _mm256_storeu_ps(y + i, _mm256_mul_ps(_mm256_loadu_ps(y + i), av));
  }
  for (; i < n; ++i) y[i] *= a;
}

void subtract_avx2(float* o, const float* a, const float* b, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // qdlint: shared-write(caller passes a disjoint o[0,n) slice; this tile writes only it)
    _mm256_storeu_ps(o + i, _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) o[i] = a[i] - b[i];
}

/// Reduces a 4x64-bit accumulator to ((l0 + l2) + (l1 + l3)) — the lane fold
/// the scalar oracle mirrors.
double reduce_lanes(__m256d acc) {
  const __m128d lo = _mm256_castpd256_pd128(acc);        // (l0, l1)
  const __m128d hi = _mm256_extractf128_pd(acc, 1);      // (l2, l3)
  const __m128d sums = _mm_add_pd(lo, hi);               // (l0+l2, l1+l3)
  return _mm_cvtsd_f64(_mm_hadd_pd(sums, sums));         // (l0+l2) + (l1+l3)
}

double sum_squares_avx2(const float* x, std::int64_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_cvtps_pd(_mm_loadu_ps(x + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(v, v));
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double v = x[i];
    tail += v * v;
  }
  return reduce_lanes(acc) + tail;
}

double sum_squared_diff_avx2(const float* a, const float* b, std::int64_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // Float difference first, then widen — matches the oracle and l2_norm
    // over subtract(a, b).
    const __m128 d = _mm_sub_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i));
    const __m256d v = _mm256_cvtps_pd(d);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(v, v));
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double v = static_cast<float>(a[i] - b[i]);
    tail += v * v;
  }
  return reduce_lanes(acc) + tail;
}

void wavg_fold_avx2(double* acc, const float* x, double w, std::int64_t n) {
  const __m256d wv = _mm256_set1_pd(w);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d xv = _mm256_cvtps_pd(_mm_loadu_ps(x + i));
    const __m256d av = _mm256_loadu_pd(acc + i);
    // qdlint: shared-write(caller passes a disjoint acc[0,n) scratch; this tile writes only it)
    _mm256_storeu_pd(acc + i, _mm256_add_pd(av, _mm256_mul_pd(wv, xv)));
  }
  for (; i < n; ++i) acc[i] += w * static_cast<double>(x[i]);
}

void wavg_store_avx2(float* o, const double* acc, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // _mm256_cvtpd_ps rounds to nearest-even — identical to the C cast.
    // qdlint: shared-write(caller passes a disjoint o[0,n) slice; this tile writes only it)
    _mm_storeu_ps(o + i, _mm256_cvtpd_ps(_mm256_loadu_pd(acc + i)));
  }
  for (; i < n; ++i) o[i] = static_cast<float>(acc[i]);
}

void dadd_avx2(double* acc, const double* x, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d av = _mm256_loadu_pd(acc + i);
    const __m256d xv = _mm256_loadu_pd(x + i);
    // qdlint: shared-write(caller passes a disjoint acc[0,n) slice; this tile writes only it)
    _mm256_storeu_pd(acc + i, _mm256_add_pd(av, xv));
  }
  for (; i < n; ++i) acc[i] += x[i];
}

void dscale_store_avx2(float* o, const double* acc, double s, std::int64_t n) {
  const __m256d sv = _mm256_set1_pd(s);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // Double multiply then _mm256_cvtpd_ps — both round to nearest-even,
    // identical to the scalar (float)(acc[i] * s).
    // qdlint: shared-write(caller passes a disjoint o[0,n) slice; this tile writes only it)
    _mm_storeu_ps(o + i, _mm256_cvtpd_ps(_mm256_mul_pd(_mm256_loadu_pd(acc + i), sv)));
  }
  for (; i < n; ++i) o[i] = static_cast<float>(acc[i] * s);
}

void matmul_tile4_avx2(float* c, float a0, float a1, float a2, float a3, const float* b0,
                       const float* b1, const float* b2, const float* b3, std::int64_t n) {
  const __m256 a0v = _mm256_set1_ps(a0), a1v = _mm256_set1_ps(a1);
  const __m256 a2v = _mm256_set1_ps(a2), a3v = _mm256_set1_ps(a3);
  std::int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    // Same left-associated mul-then-add chain as the scalar expression
    // c[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j].
    __m256 t = _mm256_mul_ps(a0v, _mm256_loadu_ps(b0 + j));
    t = _mm256_add_ps(t, _mm256_mul_ps(a1v, _mm256_loadu_ps(b1 + j)));
    t = _mm256_add_ps(t, _mm256_mul_ps(a2v, _mm256_loadu_ps(b2 + j)));
    t = _mm256_add_ps(t, _mm256_mul_ps(a3v, _mm256_loadu_ps(b3 + j)));
    // qdlint: shared-write(caller owns this output row; the tile writes only c[0,n))
    _mm256_storeu_ps(c + j, _mm256_add_ps(_mm256_loadu_ps(c + j), t));
  }
  for (; j < n; ++j) {
    c[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
  }
}

constexpr Kernels kAvx2Kernels = {
    "avx2",          axpy_avx2,      scale_avx2,      subtract_avx2,
    sum_squares_avx2, sum_squared_diff_avx2, wavg_fold_avx2, wavg_store_avx2,
    dadd_avx2,       dscale_store_avx2,
    matmul_tile4_avx2,
};

}  // namespace

bool avx2_compiled() { return true; }
const Kernels& avx2_kernels() { return kAvx2Kernels; }

}  // namespace quickdrop::simd

#else  // !QUICKDROP_HAVE_AVX2

namespace quickdrop::simd {

bool avx2_compiled() { return false; }
const Kernels& avx2_kernels() { return scalar_kernels(); }

}  // namespace quickdrop::simd

#endif
