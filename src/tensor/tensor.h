// Dense float32 tensor with shared storage.
//
// Tensor is a cheap-to-copy handle: copies alias the same buffer (like
// torch.Tensor). Use clone() for a deep copy. All tensors are contiguous and
// row-major; views are not supported — ops materialize their results.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "tensor/shape.h"
#include "util/rng.h"

namespace quickdrop {

class Tensor {
 public:
  /// Empty scalar-shaped tensor holding a single zero.
  Tensor();

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor adopting the given values; values.size() must equal numel(shape).
  Tensor(Shape shape, std::vector<float> values);

  /// Factories.
  static Tensor zeros(Shape shape);
  static Tensor full(Shape shape, float value);
  static Tensor ones(Shape shape) { return full(std::move(shape), 1.0f); }
  /// I.i.d. normal entries with the given stddev.
  static Tensor randn(Shape shape, Rng& rng, float stddev = 1.0f);
  /// 1-element scalar tensor.
  static Tensor scalar(float value) { return Tensor({}, {value}); }

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] std::int64_t numel() const { return static_cast<std::int64_t>(data_->size()); }
  [[nodiscard]] std::int64_t dim(int i) const { return shape_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] int rank() const { return static_cast<int>(shape_.size()); }

  /// Flat element access.
  [[nodiscard]] float& at(std::int64_t i) { return (*data_)[static_cast<std::size_t>(i)]; }
  [[nodiscard]] float at(std::int64_t i) const { return (*data_)[static_cast<std::size_t>(i)]; }

  /// Raw contiguous storage.
  [[nodiscard]] std::span<float> data() { return {data_->data(), data_->size()}; }
  [[nodiscard]] std::span<const float> data() const { return {data_->data(), data_->size()}; }

  /// True if two handles alias the same buffer.
  [[nodiscard]] bool same_storage(const Tensor& other) const { return data_ == other.data_; }

  /// Deep copy.
  [[nodiscard]] Tensor clone() const;

  /// Reinterprets the buffer with a new shape of equal numel (shares storage).
  [[nodiscard]] Tensor reshaped(Shape new_shape) const;

  /// In-place helpers (mutate the shared buffer).
  void fill(float value);
  void add_(const Tensor& other, float scale = 1.0f);  ///< this += scale * other
  void scale_(float factor);                           ///< this *= factor
  void copy_from(const Tensor& other);                 ///< elementwise copy, same shape

  /// Scalar value of a 1-element tensor.
  [[nodiscard]] float item() const;

  /// Sum / mean / max-abs of all entries (convenience for tests & metrics).
  [[nodiscard]] float sum() const;
  [[nodiscard]] float mean() const;
  [[nodiscard]] float max_abs() const;

 private:
  Shape shape_;
  std::shared_ptr<std::vector<float>> data_;
};

}  // namespace quickdrop
