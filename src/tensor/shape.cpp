#include "tensor/shape.h"

#include <algorithm>
#include <stdexcept>

namespace quickdrop {

std::int64_t numel(const Shape& shape) {
  std::int64_t n = 1;
  for (const auto d : shape) {
    if (d < 0) throw std::invalid_argument("numel: negative dimension in " + shape_to_string(shape));
    n *= d;
  }
  return n;
}

std::vector<std::int64_t> contiguous_strides(const Shape& shape) {
  std::vector<std::int64_t> strides(shape.size());
  std::int64_t acc = 1;
  for (int i = static_cast<int>(shape.size()) - 1; i >= 0; --i) {
    strides[i] = acc;
    acc *= shape[i];
  }
  return strides;
}

Shape broadcast_shapes(const Shape& a, const Shape& b) {
  const std::size_t rank = std::max(a.size(), b.size());
  Shape out(rank);
  for (std::size_t i = 0; i < rank; ++i) {
    const std::int64_t da = i < rank - a.size() ? 1 : a[i - (rank - a.size())];
    const std::int64_t db = i < rank - b.size() ? 1 : b[i - (rank - b.size())];
    if (da != db && da != 1 && db != 1) {
      throw std::invalid_argument("broadcast_shapes: incompatible " + shape_to_string(a) +
                                  " vs " + shape_to_string(b));
    }
    out[i] = std::max(da, db);
  }
  return out;
}

bool broadcastable_to(const Shape& from, const Shape& to) {
  if (from.size() > to.size()) return false;
  const std::size_t off = to.size() - from.size();
  for (std::size_t i = 0; i < from.size(); ++i) {
    if (from[i] != to[off + i] && from[i] != 1) return false;
  }
  return true;
}

std::string shape_to_string(const Shape& shape) {
  std::string s = "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) s += ", ";
    s += std::to_string(shape[i]);
  }
  return s + "]";
}

void check_same_shape(const Shape& a, const Shape& b, const char* context) {
  if (a != b) {
    throw std::invalid_argument(std::string(context) + ": shape mismatch " +
                                shape_to_string(a) + " vs " + shape_to_string(b));
  }
}

}  // namespace quickdrop
