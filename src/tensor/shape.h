// Shape arithmetic for dense tensors.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace quickdrop {

/// Dimension sizes of a dense row-major tensor. An empty Shape denotes a
/// scalar with one element.
using Shape = std::vector<std::int64_t>;

/// Total number of elements of a shape (1 for a scalar/empty shape).
std::int64_t numel(const Shape& shape);

/// Row-major strides (in elements) for a contiguous tensor of this shape.
std::vector<std::int64_t> contiguous_strides(const Shape& shape);

/// NumPy-style broadcast of two shapes. Throws std::invalid_argument when the
/// shapes are incompatible.
Shape broadcast_shapes(const Shape& a, const Shape& b);

/// True if `from` can be broadcast to `to`.
bool broadcastable_to(const Shape& from, const Shape& to);

/// Human-readable form, e.g. "[2, 3, 4]".
std::string shape_to_string(const Shape& shape);

/// Equality helper with a readable error on mismatch (used in kernels).
void check_same_shape(const Shape& a, const Shape& b, const char* context);

}  // namespace quickdrop
