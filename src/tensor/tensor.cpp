#include "tensor/tensor.h"

#include <cmath>
#include <stdexcept>

namespace quickdrop {

Tensor::Tensor() : shape_{}, data_(std::make_shared<std::vector<float>>(1, 0.0f)) {}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(std::make_shared<std::vector<float>>(static_cast<std::size_t>(quickdrop::numel(shape_)), 0.0f)) {}

Tensor::Tensor(Shape shape, std::vector<float> values) : shape_(std::move(shape)) {
  if (static_cast<std::int64_t>(values.size()) != quickdrop::numel(shape_)) {
    throw std::invalid_argument("Tensor: values size does not match shape " + shape_to_string(shape_));
  }
  data_ = std::make_shared<std::vector<float>>(std::move(values));
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : *t.data_) v = rng.normal(0.0f, stddev);
  return t;
}

Tensor Tensor::clone() const {
  Tensor t;
  t.shape_ = shape_;
  t.data_ = std::make_shared<std::vector<float>>(*data_);
  return t;
}

Tensor Tensor::reshaped(Shape new_shape) const {
  if (quickdrop::numel(new_shape) != numel()) {
    throw std::invalid_argument("Tensor::reshaped: numel mismatch " + shape_to_string(shape_) +
                                " -> " + shape_to_string(new_shape));
  }
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

void Tensor::fill(float value) {
  for (auto& v : *data_) v = value;
}

void Tensor::add_(const Tensor& other, float scale) {
  check_same_shape(shape_, other.shape_, "Tensor::add_");
  for (std::size_t i = 0; i < data_->size(); ++i) (*data_)[i] += scale * (*other.data_)[i];
}

void Tensor::scale_(float factor) {
  for (auto& v : *data_) v *= factor;
}

void Tensor::copy_from(const Tensor& other) {
  check_same_shape(shape_, other.shape_, "Tensor::copy_from");
  *data_ = *other.data_;
}

float Tensor::item() const {
  if (numel() != 1) {
    throw std::logic_error("Tensor::item: tensor has " + std::to_string(numel()) + " elements");
  }
  return (*data_)[0];
}

float Tensor::sum() const {
  double acc = 0.0;
  for (const auto v : *data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::mean() const { return numel() == 0 ? 0.0f : sum() / static_cast<float>(numel()); }

float Tensor::max_abs() const {
  float m = 0.0f;
  for (const auto v : *data_) m = std::max(m, std::fabs(v));
  return m;
}

}  // namespace quickdrop
