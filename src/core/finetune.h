// Optional synthetic-data fine-tuning (paper §3.3.2).
//
// After FL training, each client can refine its synthetic dataset for
// generalization using the dataset-condensation algorithm of Zhao et al.:
// gradient matching repeated across fresh random model initializations
// (outer steps F), with an inner loop that alternates matching and training
// the probe model on the synthetic data.
#pragma once

#include "core/distillation.h"
#include "fl/fedavg.h"

namespace quickdrop::core {

struct FinetuneConfig {
  int outer_steps = 0;     ///< F: number of fresh model initializations
  int inner_steps = 5;     ///< matching/training alternations per init (paper: 50)
  int batch_size = 32;     ///< real mini-batch per class gradient
  float model_lr = 0.05f;  ///< probe-model training rate on synthetic data
  DistillConfig distill;   ///< pixel-update hyperparameters
};

/// Fine-tunes one client's synthetic store against its real data. Real-batch
/// gradient computations are counted as training cost and synthetic-side
/// computations as distillation cost in `cost` (callers use a dedicated
/// meter to report Figure 5's gradient counts).
void finetune_store(const fl::ModelFactory& factory, SyntheticStore& store,
                    const data::Dataset& client_data, const FinetuneConfig& config, Rng& rng,
                    fl::CostMeter& cost);

}  // namespace quickdrop::core
