#include "core/finetune.h"

#include "nn/optimizer.h"

namespace quickdrop::core {

void finetune_store(const fl::ModelFactory& factory, SyntheticStore& store,
                    const data::Dataset& client_data, const FinetuneConfig& config, Rng& rng,
                    fl::CostMeter& cost) {
  if (config.outer_steps <= 0) return;
  const auto classes = store.present_classes();
  if (classes.empty()) return;

  for (int f = 0; f < config.outer_steps; ++f) {
    // Fresh random initialization: matching across many initializations is
    // what targets generalization rather than one trajectory.
    const auto model = factory();
    const auto params = model->parameters();

    for (int t = 0; t < config.inner_steps; ++t) {
      for (const int c : classes) {
        const auto rows = client_data.indices_of_class(c);
        if (rows.empty()) continue;
        const auto batch_rows =
            data::Dataset::sample_batch_indices(rows, config.batch_size, rng);
        auto [images, labels] = client_data.batch(batch_rows);
        const ag::Var loss = ag::cross_entropy(model->forward_tensor(images), labels);
        const auto grads = ag::grad(loss, std::span<const ag::Var>(params));
        cost.add_training(static_cast<std::int64_t>(batch_rows.size()));
        // NOLINTNEXTLINE(qdlint-api-flatstate): gradient list feeding match_synthetic_to_gradient
        std::vector<Tensor> grad_tensors;
        grad_tensors.reserve(grads.size());
        for (const auto& g : grads) grad_tensors.push_back(g.value());
        match_synthetic_to_gradient(*model, store.class_samples(c), c, grad_tensors,
                                    config.distill, cost);
      }
      // Advance the probe model on the synthetic data so later matches see
      // parameters further along a plausible optimization path.
      const data::Dataset synthetic = store.to_dataset();
      std::vector<int> pool(static_cast<std::size_t>(synthetic.size()));
      for (int i = 0; i < synthetic.size(); ++i) pool[static_cast<std::size_t>(i)] = i;
      const auto rows = data::Dataset::sample_batch_indices(pool, config.batch_size, rng);
      auto [images, labels] = synthetic.batch(rows);
      fl::CostMeter synth_cost;  // model-probe steps on synthetic data
      fl::sgd_step_on_batch(*model, images, labels, config.model_lr,
                            nn::UpdateDirection::kDescent, synth_cost);
      cost.add_distillation(synth_cost.sample_grads);
    }
  }
}

}  // namespace quickdrop::core
