// Per-client synthetic dataset store (paper §3.1-3.2).
//
// Each client holds a per-class synthetic counterpart S_i^c of its original
// per-class data D_i^c with |S_i^c| = ceil(|D_i^c| / s) for scale parameter s
// (paper: s=100, i.e. ~1% of the data volume). Samples are initialized from
// random real samples of the class and subsequently optimized by gradient
// matching. The store also keeps the 1:1 original-sample augmentation sets
// used during recovery (paper §3.3.1).
#pragma once

#include <optional>
#include <vector>

#include "data/dataset.h"

namespace quickdrop::core {

/// How synthetic samples are initialized before gradient matching.
enum class SyntheticInit {
  kRealSamples,    ///< random real samples of the class (paper default, §4.1)
  kGaussianNoise,  ///< i.i.d. N(0,1) pixels (the paper found this weaker)
};

class SyntheticStore {
 public:
  /// Builds the store from one client's training data. The synthetic samples
  /// of class c are initialized per `init`; the augmentation set holds an
  /// equally sized random selection of real samples.
  SyntheticStore(const data::Dataset& client_data, int scale, Rng& rng,
                 SyntheticInit init = SyntheticInit::kRealSamples);

  /// Reassembles a store from raw per-class tensors (e.g. from a checkpoint).
  /// Entries without a value (or with zero rows) mean the class is absent.
  static SyntheticStore from_parts(Shape image_shape, int num_classes,
                                   std::vector<std::optional<Tensor>> synthetic,
                                   std::vector<std::optional<Tensor>> augmentation);

  [[nodiscard]] int num_classes() const { return num_classes_; }
  [[nodiscard]] bool has_class(int c) const;

  /// Synthetic samples of class c as an [m_c, C, H, W] tensor (mutable: the
  /// distiller optimizes these pixels in place via shared storage).
  [[nodiscard]] Tensor& class_samples(int c);
  [[nodiscard]] const Tensor& class_samples(int c) const;
  [[nodiscard]] int class_count(int c) const;

  /// Synthetic data of the given classes as a Dataset (empty selection ok).
  [[nodiscard]] data::Dataset to_dataset(const std::vector<int>& classes) const;
  /// All synthetic data.
  [[nodiscard]] data::Dataset to_dataset() const;

  /// Real-sample augmentation set restricted to the given classes.
  [[nodiscard]] data::Dataset augmentation(const std::vector<int>& classes) const;

  /// Synthetic data of `classes` mixed 1:1 with augmentation samples — the
  /// recovery-phase dataset of §3.3.1.
  [[nodiscard]] data::Dataset augmented_dataset(const std::vector<int>& classes) const;

  /// Total number of synthetic samples.
  [[nodiscard]] int total_samples() const;

  /// Storage footprint of the synthetic data in bytes.
  [[nodiscard]] std::int64_t byte_size() const;

  [[nodiscard]] const Shape& image_shape() const { return image_shape_; }

  /// Classes with at least one synthetic sample.
  [[nodiscard]] std::vector<int> present_classes() const;

 private:
  SyntheticStore() = default;  // for from_parts

  int num_classes_ = 0;
  Shape image_shape_;
  std::vector<std::optional<Tensor>> per_class_;  // [m_c, C, H, W]
  std::vector<std::optional<Tensor>> augment_;    // same shapes as per_class_
};

}  // namespace quickdrop::core
