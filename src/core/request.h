// Unlearning request types (paper §2.2).
#pragma once

#include <stdexcept>
#include <string>

namespace quickdrop::core {

/// A class-level or client-level unlearning (or relearning) request.
struct UnlearningRequest {
  enum class Kind { kClass, kClient };

  Kind kind;
  int target;  ///< class id or client id

  static UnlearningRequest for_class(int class_id) {
    if (class_id < 0) throw std::invalid_argument("UnlearningRequest: negative class");
    return {Kind::kClass, class_id};
  }
  static UnlearningRequest for_client(int client_id) {
    if (client_id < 0) throw std::invalid_argument("UnlearningRequest: negative client");
    return {Kind::kClient, client_id};
  }

  [[nodiscard]] std::string to_string() const {
    return (kind == Kind::kClass ? "class " : "client ") + std::to_string(target);
  }
};

}  // namespace quickdrop::core
