#include "core/quickdrop.h"

#include <stdexcept>

#include "tensor/kernels.h"
#include "util/timer.h"

namespace quickdrop::core {

QuickDrop::QuickDrop(fl::ModelFactory factory, std::vector<data::Dataset> client_train,
                     QuickDropConfig config, std::uint64_t seed)
    : factory_(std::move(factory)),
      client_train_(std::move(client_train)),
      config_(config),
      rng_(seed) {
  if (client_train_.empty()) throw std::invalid_argument("QuickDrop: no clients");
  scratch_model_ = factory_();
  initial_state_ = nn::state_of(*scratch_model_);
  Rng store_rng = rng_.split(0x5707);
  stores_.reserve(client_train_.size());
  for (std::size_t i = 0; i < client_train_.size(); ++i) {
    Rng client_rng = store_rng.split(i);
    stores_.emplace_back(client_train_[i], config_.scale, client_rng, config_.synthetic_init);
  }
}

nn::ModelState QuickDrop::train(const fl::RoundCallback& callback,
                                const fl::ClientStateCallback& client_callback,
                                const fl::RoundCursorCallback& cursor_callback,
                                const TrainResume* resume) {
  const Timer timer;
  DistillingLocalUpdate update(stores_, config_.local_steps, config_.batch_size,
                               config_.train_lr, config_.distill);
  fl::FedAvgConfig fed{.rounds = config_.fl_rounds, .participation = config_.participation};
  fed.faults = config_.faults;
  fed.defense = config_.defense;
  fed.transport = config_.transport;
  fed.aggregation = config_.aggregation;
  // Concurrent clients, except when fine-tuning follows: finetune_store
  // re-initializes models from the shared factory RNG, and the number of
  // factory calls the parallel engine makes depends on the thread count —
  // running serially here keeps that stream position (and therefore the
  // fine-tuned stores) bit-identical at any thread count.
  if (config_.finetune.outer_steps == 0) fed.client_model_factory = factory_;
  nn::ModelState start = initial_state_;
  Rng fed_rng = rng_.split(0xF1);
  if (resume) {
    if (resume->rounds_done < 0 || resume->rounds_done > config_.fl_rounds) {
      throw std::invalid_argument("QuickDrop::train: resume cursor out of range");
    }
    fed.start_round = resume->rounds_done;
    start = resume->global;
    fed_rng = Rng::deserialize(resume->rng_state);
  }
  nn::ModelState global =
      fl::run_fedavg(*scratch_model_, std::move(start), client_train_, update, fed, fed_rng,
                     training_stats_.cost, callback, client_callback, cursor_callback);
  distill_seconds_ = update.distill_seconds();

  // Optional fine-tuning of every client's synthetic store (§3.3.2).
  if (config_.finetune.outer_steps > 0) {
    const Timer ft_timer;
    Rng ft_rng = rng_.split(0xF7);
    for (std::size_t i = 0; i < stores_.size(); ++i) {
      Rng client_rng = ft_rng.split(i);
      finetune_store(factory_, stores_[i], client_train_[i], config_.finetune, client_rng,
                     training_stats_.cost);
    }
    distill_seconds_ += ft_timer.seconds();
  }

  training_stats_.seconds = timer.seconds();
  training_stats_.rounds = config_.fl_rounds;
  training_stats_.data_size = fl::total_samples(client_train_);
  return global;
}

void QuickDrop::load_stores(std::vector<SyntheticStore> stores) {
  if (stores.size() != client_train_.size()) {
    throw std::invalid_argument("QuickDrop::load_stores: need one store per client");
  }
  stores_ = std::move(stores);
}

nn::ModelState QuickDrop::initial_state() const {
  return initial_state_;  // FlatState copies are deep
}

std::vector<data::Dataset> QuickDrop::forget_datasets(const UnlearningRequest& request) const {
  return forget_datasets(std::vector<UnlearningRequest>{request});
}

std::vector<data::Dataset> QuickDrop::forget_datasets(
    const std::vector<UnlearningRequest>& batch) const {
  std::set<int> classes, clients;
  for (const auto& request : batch) {
    (request.kind == UnlearningRequest::Kind::kClass ? classes : clients).insert(request.target);
  }
  const std::vector<int> class_list(classes.begin(), classes.end());
  std::vector<data::Dataset> out;
  out.reserve(stores_.size());
  for (std::size_t i = 0; i < stores_.size(); ++i) {
    if (clients.count(static_cast<int>(i))) {
      // S_f includes the whole store of a targeted client (which already
      // covers any class-level targets it holds).
      out.push_back(stores_[i].to_dataset());
    } else {
      // S_f := union_c S_i^c over the batch's class targets.
      out.push_back(stores_[i].to_dataset(class_list));
    }
  }
  return out;
}

std::vector<data::Dataset> QuickDrop::retain_datasets(const UnlearningRequest* request) const {
  std::vector<UnlearningRequest> batch;
  if (request) batch.push_back(*request);
  return retain_datasets(batch);
}

std::vector<data::Dataset> QuickDrop::retain_datasets(
    const std::vector<UnlearningRequest>& batch) const {
  std::set<int> dropped_classes = forgotten_classes_;
  std::set<int> dropped_clients = forgotten_clients_;
  for (const auto& request : batch) {
    (request.kind == UnlearningRequest::Kind::kClass ? dropped_classes : dropped_clients)
        .insert(request.target);
  }
  std::vector<data::Dataset> out;
  out.reserve(stores_.size());
  for (std::size_t i = 0; i < stores_.size(); ++i) {
    if (dropped_clients.count(static_cast<int>(i))) {
      out.push_back(data::Dataset(stores_[i].image_shape(), stores_[i].num_classes()));
      continue;
    }
    std::vector<int> classes;
    for (const int c : stores_[i].present_classes()) {
      if (!dropped_classes.count(c)) classes.push_back(c);
    }
    out.push_back(config_.augment_recovery ? stores_[i].augmented_dataset(classes)
                                           : stores_[i].to_dataset(classes));
  }
  return out;
}

double QuickDrop::forget_accuracy(const data::Dataset& dataset) {
  if (dataset.empty()) return 0.0;
  std::vector<int> rows(static_cast<std::size_t>(dataset.size()));
  for (int i = 0; i < dataset.size(); ++i) rows[static_cast<std::size_t>(i)] = i;
  auto [images, labels] = dataset.batch(rows);
  const Tensor logits = scratch_model_->forward_tensor(images).value();
  const auto preds = kernels::argmax_rows(logits);
  int correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) correct += preds[i] == labels[i];
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

nn::ModelState QuickDrop::run_phase(const nn::ModelState& start,
                                    const std::vector<data::Dataset>& client_data, int rounds,
                                    float lr, nn::UpdateDirection direction, float participation,
                                    PhaseStats* stats, const fl::RoundCallback& callback,
                                    int start_round, const std::vector<std::uint8_t>* resume_rng,
                                    const fl::RoundCursorCallback& cursor_callback) {
  const Timer timer;
  fl::SgdLocalUpdate update(config_.unlearn_local_steps, config_.unlearn_batch_size, lr,
                            direction);
  fl::FedAvgConfig fed{.rounds = rounds, .participation = participation};
  fed.faults = config_.faults;
  fed.defense = config_.defense;
  fed.transport = config_.transport;
  fed.aggregation = config_.aggregation;
  fed.start_round = start_round;
  fed.client_model_factory = factory_;
  fl::CostMeter cost;
  Rng phase_rng = resume_rng ? Rng::deserialize(*resume_rng) : rng_.split(0xE0);
  nn::ModelState result = fl::run_fedavg(*scratch_model_, start, client_data, update, fed,
                                         phase_rng, cost, callback, {}, cursor_callback);
  if (stats) {
    stats->seconds = timer.seconds();
    stats->cost = cost;
    stats->rounds = rounds - start_round;
    stats->data_size = fl::total_samples(client_data);
  }
  return result;
}

nn::ModelState QuickDrop::unlearn(const nn::ModelState& state, const UnlearningRequest& request,
                                  PhaseStats* unlearn_stats, PhaseStats* recovery_stats,
                                  const fl::RoundCallback& callback) {
  return unlearn_batch(state, {request}, unlearn_stats, recovery_stats, callback);
}

nn::ModelState QuickDrop::unlearn_batch(const nn::ModelState& state,
                                        const std::vector<UnlearningRequest>& batch,
                                        PhaseStats* unlearn_stats, PhaseStats* recovery_stats,
                                        const fl::RoundCallback& callback,
                                        const UnlearnCursorCallback& cursor_callback,
                                        const UnlearnCursor* resume) {
  if (batch.empty()) throw std::invalid_argument("QuickDrop::unlearn: empty request batch");
  if (resume && (resume->shards != config_.aggregation.shards ||
                 resume->shard_fanout != config_.aggregation.fanout)) {
    // Rounds are atomic, so the merge bits would match either way — but a
    // topology switch mid-request silently changes the per-shard accounting
    // the cursor was captured under, so reject it loudly.
    throw std::invalid_argument(
        "QuickDrop::unlearn: resume cursor shard topology (" +
        std::to_string(resume->shards) + "x fanout " + std::to_string(resume->shard_fanout) +
        ") does not match the coordinator (" + std::to_string(config_.aggregation.shards) +
        "x fanout " + std::to_string(config_.aggregation.fanout) + ")");
  }
  const bool resume_sga = resume && resume->phase == UnlearnCursor::kPhaseUnlearn;
  const bool resume_recovery = resume && resume->phase == UnlearnCursor::kPhaseRecover;

  // Unlearning rounds: SGA on the synthetic forget counterpart S_f (the
  // per-client union over the batch).
  const auto forget = forget_datasets(batch);
  if (fl::total_samples(forget) == 0) {
    std::string targets;
    for (const auto& request : batch) {
      targets += (targets.empty() ? "" : ", ") + request.to_string();
    }
    throw std::invalid_argument("QuickDrop::unlearn: no synthetic data for " + targets);
  }

  nn::ModelState current = state;
  if (resume_recovery) {
    // SGA already completed before the crash; only recovery rounds remain.
    if (unlearn_stats) *unlearn_stats = PhaseStats{};
  } else if (config_.max_unlearn_rounds > config_.unlearn_rounds) {
    // Verified unlearning: repeat SGA rounds until the synthetic forget set
    // is actually erased (or the cap is reached). Each iteration derives a
    // fresh tagged RNG, so a cursor needs only the iteration count.
    PhaseStats accumulated;
    const Timer timer;
    data::Dataset forget_union = forget.front();
    for (std::size_t i = 1; i < forget.size(); ++i) {
      if (!forget[i].empty()) {
        forget_union = forget_union.empty() ? forget[i]
                                            : data::Dataset::concat(forget_union, forget[i]);
      }
    }
    int rounds_run = resume_sga ? resume->rounds_done : 0;
    while (rounds_run < config_.max_unlearn_rounds) {
      if (rounds_run >= config_.unlearn_rounds) {  // minimum rounds first
        nn::load_state(*scratch_model_, current);
        if (forget_accuracy(forget_union) <= config_.unlearn_target_accuracy) break;
      }
      PhaseStats step;
      current = run_phase(current, forget, 1, config_.unlearn_lr,
                          nn::UpdateDirection::kAscent, 1.0f, &step, callback);
      accumulated.cost += step.cost;
      ++rounds_run;
      if (cursor_callback) {
        cursor_callback(UnlearnCursor{.phase = UnlearnCursor::kPhaseUnlearn,
                                      .rounds_done = rounds_run,
                                      .shards = config_.aggregation.shards,
                                      .shard_fanout = config_.aggregation.fanout},
                        current);
      }
    }
    accumulated.seconds = timer.seconds();
    accumulated.rounds = rounds_run - (resume_sga ? resume->rounds_done : 0);
    accumulated.data_size = fl::total_samples(forget);
    if (unlearn_stats) *unlearn_stats = accumulated;
  } else {
    fl::RoundCursorCallback sga_cursor;
    if (cursor_callback) {
      sga_cursor = [&](int round, const nn::ModelState& s, const Rng& rng) {
        cursor_callback(UnlearnCursor{.phase = UnlearnCursor::kPhaseUnlearn,
                                      .rounds_done = round + 1,
                                      .rng_state = rng.serialize(),
                                      .shards = config_.aggregation.shards,
                                      .shard_fanout = config_.aggregation.fanout},
                        s);
      };
    }
    const int start_round = resume_sga ? resume->rounds_done : 0;
    const std::vector<std::uint8_t>* rng_state =
        resume_sga && !resume->rng_state.empty() ? &resume->rng_state : nullptr;
    current = run_phase(state, forget, config_.unlearn_rounds, config_.unlearn_lr,
                        nn::UpdateDirection::kAscent, 1.0f, unlearn_stats, callback, start_round,
                        rng_state, sga_cursor);
  }

  // Recovery rounds: SGD on the augmented synthetic retain sets.
  const auto retain = retain_datasets(batch);
  if (fl::total_samples(retain) > 0) {
    fl::RoundCursorCallback recover_cursor;
    if (cursor_callback) {
      recover_cursor = [&](int round, const nn::ModelState& s, const Rng& rng) {
        cursor_callback(UnlearnCursor{.phase = UnlearnCursor::kPhaseRecover,
                                      .rounds_done = round + 1,
                                      .rng_state = rng.serialize(),
                                      .shards = config_.aggregation.shards,
                                      .shard_fanout = config_.aggregation.fanout},
                        s);
      };
    }
    const int start_round = resume_recovery ? resume->rounds_done : 0;
    const std::vector<std::uint8_t>* rng_state =
        resume_recovery && !resume->rng_state.empty() ? &resume->rng_state : nullptr;
    current = run_phase(current, retain, config_.recovery_rounds, config_.recover_lr,
                        nn::UpdateDirection::kDescent, config_.participation, recovery_stats,
                        callback, start_round, rng_state, recover_cursor);
  }

  for (const auto& request : batch) mark_forgotten(request);
  return current;
}

nn::ModelState QuickDrop::relearn(const nn::ModelState& state, const UnlearningRequest& request,
                                  PhaseStats* stats) {
  const auto forget = forget_datasets(request);
  if (fl::total_samples(forget) == 0) {
    throw std::invalid_argument("QuickDrop::relearn: no synthetic data for " +
                                request.to_string());
  }
  nn::ModelState current = run_phase(state, forget, config_.relearn_rounds, config_.relearn_lr,
                                     nn::UpdateDirection::kDescent, config_.participation, stats,
                                     {});
  if (request.kind == UnlearningRequest::Kind::kClass) {
    forgotten_classes_.erase(request.target);
  } else {
    forgotten_clients_.erase(request.target);
  }
  return current;
}

}  // namespace quickdrop::core
