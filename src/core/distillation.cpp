#include "core/distillation.h"

#include <map>
#include <stdexcept>

#include "nn/optimizer.h"
#include "nn/state.h"
#include "util/timer.h"

namespace quickdrop::core {
namespace {

constexpr float kCosineEps = 1e-6f;

/// Reshapes a gradient to [groups, rest] following Zhao et al.: matrices and
/// higher-rank tensors group by leading dim; vectors and scalars form one
/// group.
Shape group_shape(const Shape& s) {
  if (s.size() >= 2) {
    std::int64_t rest = 1;
    for (std::size_t i = 1; i < s.size(); ++i) rest *= s[i];
    return {s[0], rest};
  }
  return {1, numel(s)};
}

}  // namespace

ag::Var matching_distance(const std::vector<ag::Var>& grad_synth,
                          // NOLINTNEXTLINE(qdlint-api-flatstate): gradient list, not a model state
                          const std::vector<Tensor>& grad_real) {
  if (grad_synth.size() != grad_real.size() || grad_synth.empty()) {
    throw std::invalid_argument("matching_distance: gradient list mismatch");
  }
  ag::Var total = ag::scalar(0.0f);
  for (std::size_t i = 0; i < grad_synth.size(); ++i) {
    const Shape gs = group_shape(grad_synth[i].shape());
    const std::int64_t groups = gs[0];
    const ag::Var a = ag::reshape(grad_synth[i], gs);
    const Tensor real = grad_real[i].reshaped(gs);
    const ag::Var b = ag::Var::constant(real);
    const Shape row{groups, 1};
    // Groups whose real gradient is (numerically) zero carry no matching
    // signal — e.g. a conv bias feeding InstanceNorm has an exactly-zero
    // gradient — and would otherwise contribute a constant distance of 1.
    Tensor mask(row);
    float active = 0.0f;
    for (std::int64_t g = 0; g < groups; ++g) {
      double norm2 = 0.0;
      for (std::int64_t j = 0; j < gs[1]; ++j) {
        const float v = real.at(g * gs[1] + j);
        norm2 += static_cast<double>(v) * v;
      }
      mask.at(g) = norm2 > static_cast<double>(kCosineEps) * kCosineEps ? 1.0f : 0.0f;
      active += mask.at(g);
    }
    // Exact sentinel: `active` is a sum of exact 0/1 mask entries (an
    // integer-valued count), so == 0 means "no active groups in this row".
    if (active == 0.0f) continue;  // NOLINT(qdlint-num-float-eq)
    const ag::Var dot = ag::reduce_sum_to(ag::mul(a, b), row);
    const ag::Var na = ag::sqrt(ag::reduce_sum_to(ag::square(a), row));
    const ag::Var nb = ag::sqrt(ag::reduce_sum_to(ag::square(b), row));
    const ag::Var cosine = ag::div(dot, ag::add_scalar(ag::mul(na, nb), kCosineEps));
    const ag::Var masked = ag::mul(cosine, ag::Var::constant(mask));
    // Sum over active groups of (1 - cos).
    total = ag::add(total, ag::sub(ag::scalar(active), ag::sum_all(masked)));
  }
  return total;
}

float match_synthetic_to_gradient(nn::Module& model, Tensor& synthetic, int label,
                                  // NOLINTNEXTLINE(qdlint-api-flatstate): gradient list
                                  const std::vector<Tensor>& grad_real,
                                  const DistillConfig& config, fl::CostMeter& cost) {
  const auto params = model.parameters();
  const std::vector<int> labels(static_cast<std::size_t>(synthetic.dim(0)), label);
  float distance = 0.0f;
  for (int step = 0; step < config.opt_steps; ++step) {
    const ag::Var pixels = ag::Var::leaf(synthetic);  // shares storage
    const ag::Var loss = ag::cross_entropy(model.forward(pixels), labels);
    const auto grad_synth = ag::grad(loss, std::span<const ag::Var>(params),
                                     {.create_graph = true});
    const ag::Var dist = matching_distance(grad_synth, grad_real);
    const auto pixel_grad = ag::grad(dist, {pixels});
    synthetic.add_(pixel_grad[0].value(), -config.learning_rate);
    distance = dist.value().item();
    cost.add_distillation(synthetic.dim(0));
  }
  return distance;
}

DistillingLocalUpdate::DistillingLocalUpdate(std::vector<SyntheticStore>& stores, int local_steps,
                                             int batch_size, float model_learning_rate,
                                             DistillConfig distill)
    : stores_(stores),
      local_steps_(local_steps),
      batch_size_(batch_size),
      model_lr_(model_learning_rate),
      distill_(distill) {
  if (local_steps <= 0 || batch_size <= 0 || model_learning_rate <= 0.0f) {
    throw std::invalid_argument("DistillingLocalUpdate: bad hyperparameters");
  }
}

void DistillingLocalUpdate::run(nn::Module& model, const data::Dataset& dataset, int round,
                                int client_id, Rng& rng, fl::CostMeter& cost) {
  (void)round;
  if (dataset.empty()) return;
  auto& store = stores_.at(static_cast<std::size_t>(client_id));
  const auto params = model.parameters();

  std::vector<int> pool(static_cast<std::size_t>(dataset.size()));
  for (int i = 0; i < dataset.size(); ++i) pool[static_cast<std::size_t>(i)] = i;

  double local_seconds = 0.0;
  for (int t = 0; t < local_steps_; ++t) {
    const auto rows = data::Dataset::sample_batch_indices(pool, batch_size_, rng);
    // Group the batch rows per class: per-class gradients feed the matching
    // loss and their weighted sum reproduces the full-batch FL gradient.
    std::map<int, std::vector<int>> by_class;
    for (const int r : rows) by_class[dataset.label(r)].push_back(r);

    // Per-parameter gradient list (not a model state): feeds Sgd::step_tensors.
    std::vector<Tensor> model_grad;  // NOLINT(qdlint-api-flatstate)
    bool first = true;
    for (const auto& [label, class_rows] : by_class) {
      auto [images, labels] = dataset.batch(class_rows);
      const ag::Var loss = ag::cross_entropy(model.forward_tensor(images), labels);
      const auto grads = ag::grad(loss, std::span<const ag::Var>(params));
      cost.add_training(static_cast<std::int64_t>(class_rows.size()));
      // Accumulate (n_c / n) * g_c, which equals the mixed-batch gradient.
      const float weight =
          static_cast<float>(class_rows.size()) / static_cast<float>(rows.size());
      // NOLINTNEXTLINE(qdlint-api-flatstate): gradient list feeding match_synthetic_to_gradient
      std::vector<Tensor> grad_tensors;
      grad_tensors.reserve(grads.size());
      for (std::size_t i = 0; i < grads.size(); ++i) {
        grad_tensors.push_back(grads[i].value());
        if (first) {
          Tensor g = grads[i].value().clone();
          g.scale_(weight);
          model_grad.push_back(std::move(g));
        } else {
          model_grad[i].add_(grads[i].value(), weight);
        }
      }
      first = false;

      // Match the class's synthetic samples against this real gradient
      // (Algorithm 2 line 15 / Eq. 6).
      const Timer dd_timer;
      if (store.has_class(label)) {
        Tensor& synthetic = store.class_samples(label);
        if (synthetic.dim(0) <= distill_.max_synthetic_batch) {
          match_synthetic_to_gradient(model, synthetic, label, grad_tensors, distill_, cost);
        } else {
          // Match a random contiguous chunk to bound per-step cost.
          const int m = static_cast<int>(synthetic.dim(0));
          const int start = rng.uniform_int(0, m - distill_.max_synthetic_batch);
          const std::int64_t stride = synthetic.numel() / m;
          Tensor chunk({distill_.max_synthetic_batch, synthetic.shape()[1], synthetic.shape()[2],
                        synthetic.shape()[3]});
          for (std::int64_t i = 0; i < chunk.numel(); ++i) {
            chunk.at(i) = synthetic.at(start * stride + i);
          }
          match_synthetic_to_gradient(model, chunk, label, grad_tensors, distill_, cost);
          for (std::int64_t i = 0; i < chunk.numel(); ++i) {
            synthetic.at(start * stride + i) = chunk.at(i);
          }
        }
      }
      local_seconds += dd_timer.seconds();
    }

    // FL model update with the reused real gradient (Algorithm 2 line 17).
    nn::Sgd optimizer(params, model_lr_);
    optimizer.step_tensors(model_grad, nn::UpdateDirection::kDescent);
  }
  const std::lock_guard<std::mutex> lock(seconds_mu_);
  distill_seconds_ += local_seconds;
}

}  // namespace quickdrop::core
