// QuickDrop end-to-end coordinator (paper §3.4).
//
// Ties together: (1) FL training with in-situ gradient-matching distillation,
// (2) augmentation + optional fine-tuning, (3) SGA unlearning on synthetic
// forget sets, (4) SGD recovery on (augmented) synthetic retain sets, and
// (5) relearning. Sequential requests are supported; the coordinator tracks
// what has been forgotten so recovery never reintroduces erased knowledge.
#pragma once

#include <set>

#include "core/finetune.h"
#include "core/request.h"
#include "core/synthetic_store.h"
#include "fl/fedavg.h"

namespace quickdrop::core {

/// All hyperparameters of QuickDrop (paper §4.1 defaults, scaled down).
struct QuickDropConfig {
  // FL training (Algorithm 2).
  int fl_rounds = 20;
  int local_steps = 5;
  int batch_size = 32;
  float train_lr = 0.05f;
  float participation = 1.0f;

  // Synthetic data generation.
  int scale = 100;  ///< s: |S_i^c| = ceil(|D_i^c| / s)
  SyntheticInit synthetic_init = SyntheticInit::kRealSamples;
  DistillConfig distill;
  FinetuneConfig finetune;        ///< outer_steps == 0 disables fine-tuning
  bool augment_recovery = true;   ///< §3.3.1 1:1 original-sample mix

  // Unlearning / recovery / relearning (Algorithm 1 on synthetic data).
  int unlearn_rounds = 1;
  /// Verified unlearning: when > 0, SGA rounds repeat (up to this cap) until
  /// the model's accuracy on the synthetic forget set falls below
  /// `unlearn_target_accuracy`. One round suffices in the paper's regime
  /// (§4.2.1), but late requests in a long sequence (Fig. 4's tail, when
  /// almost no retain data remains to assist) can need more.
  int max_unlearn_rounds = 0;
  float unlearn_target_accuracy = 0.05f;
  int recovery_rounds = 2;
  int relearn_rounds = 3;
  float unlearn_lr = 0.02f;
  float recover_lr = 0.01f;

  /// Fault schedule applied to every FedAvg phase (train/unlearn/recover/
  /// relearn; round indices restart per phase). Default: no faults.
  fl::FaultPlan faults;
  /// Server-side defenses (update validation, quorum/retry) for every phase.
  fl::DefenseConfig defense;
  /// Client→server update transport for every phase (train/unlearn/recover/
  /// relearn). Quantizing codecs cut uploaded bytes ~4× (int8) at a small,
  /// bounded accuracy cost (see fl/quantize.h and DESIGN.md §13).
  fl::TransportConfig transport;
  /// Shard-tree aggregation topology for every phase (fl/shard_tree.h,
  /// DESIGN.md §16). Pure topology/accounting knob: the merged bits are
  /// identical for any shards/fanout setting.
  fl::AggregationConfig aggregation;
  /// Relearning trains on the (synthetic) forget set ONLY, so it must be
  /// gentle enough not to catastrophically forget the retained classes.
  float relearn_lr = 0.02f;
  int unlearn_local_steps = 5;
  int unlearn_batch_size = 32;
};

/// Measured cost of one phase.
struct PhaseStats {
  double seconds = 0.0;
  fl::CostMeter cost;
  std::int64_t data_size = 0;  ///< samples involved per round of this phase
  int rounds = 0;
};

/// Resume point for an interrupted train() run: the cursor of the last
/// completed FL round (see core/checkpoint.h RoundCursor). The synthetic
/// stores as of that round must be restored separately via load_stores().
struct TrainResume {
  nn::ModelState global;  ///< global state after `rounds_done` rounds
  int rounds_done = 0;
  std::vector<std::uint8_t> rng_state;  ///< phase RNG entering the next round
};

/// Position inside an interrupted unlearn/recover cycle, reported after every
/// completed round so a killed service can resume a request mid-flight (see
/// serve/executor.h). `rng_state` is the phase RNG entering the next round;
/// it is empty on the verified-SGA path, whose iterations re-derive their RNG
/// from the coordinator seed and therefore need only `rounds_done`.
struct UnlearnCursor {
  static constexpr int kPhaseUnlearn = 0;
  static constexpr int kPhaseRecover = 1;
  int phase = kPhaseUnlearn;
  int rounds_done = 0;  ///< completed rounds within `phase`
  std::vector<std::uint8_t> rng_state;
  /// Shard-tree topology the interrupted cycle ran under. Rounds are atomic
  /// (lane accumulators never outlive a round), so a killed-mid-merge resume
  /// replays the in-flight round from this cursor; unlearn_batch() rejects a
  /// resume whose coordinator is configured with a different topology, so
  /// the replayed merge provably runs the same shard plan.
  int shards = 1;
  int shard_fanout = 8;
};

/// Fires after every completed unlearn/recover round with the cursor and the
/// global state as of that round. Serializing (cursor, state, stores) — e.g.
/// via core/checkpoint.h — yields a mid-request checkpoint from which
/// unlearn_batch() resumes bit-identically.
using UnlearnCursorCallback =
    std::function<void(const UnlearnCursor& cursor, const nn::ModelState& state)>;

class QuickDrop {
 public:
  /// `client_train` holds each client's local dataset D_i.
  QuickDrop(fl::ModelFactory factory, std::vector<data::Dataset> client_train,
            QuickDropConfig config, std::uint64_t seed);

  /// Steps 1-2: FL training with in-situ distillation, then optional
  /// fine-tuning. Returns the trained global model state. `client_callback`
  /// observes per-client local states (e.g. to record FedEraser history in a
  /// shared training run). `cursor_callback` fires after every completed FL
  /// round with the engine RNG, enabling partial checkpoints; pass `resume`
  /// (with the matching stores loaded) to continue a killed run from its
  /// last completed round — the result is bit-identical to an uninterrupted
  /// run with the same seed.
  nn::ModelState train(const fl::RoundCallback& callback = {},
                       const fl::ClientStateCallback& client_callback = {},
                       const fl::RoundCursorCallback& cursor_callback = {},
                       const TrainResume* resume = nullptr);

  /// The (random-initialization) state FL training started from.
  [[nodiscard]] nn::ModelState initial_state() const;

  /// Shape manifest of the coordinator's model. States fed back into this
  /// coordinator (serve layer, checkpoints) must carry a layout with the
  /// same hash.
  [[nodiscard]] const std::shared_ptr<const nn::StateLayout>& state_layout() const {
    return initial_state_.layout();
  }

  /// Steps 3-4: serves an unlearning request via SGA on S_f followed by
  /// recovery on the augmented S \ S_f. Marks the target as forgotten.
  /// Equivalent to unlearn_batch() with a one-request batch.
  nn::ModelState unlearn(const nn::ModelState& state, const UnlearningRequest& request,
                         PhaseStats* unlearn_stats = nullptr, PhaseStats* recovery_stats = nullptr,
                         const fl::RoundCallback& callback = {});

  /// Serves a *batch* of compatible requests in one SGA + recovery cycle:
  /// the forget set is the union of every request's synthetic counterpart and
  /// the retain set excludes every target (the serve/ scheduler's coalescing
  /// policy rides on this). `cursor_callback` fires after every completed
  /// round of either phase; pass a captured cursor (with the matching state)
  /// as `resume` to continue a killed cycle bit-identically. Marks every
  /// target forgotten on completion.
  nn::ModelState unlearn_batch(const nn::ModelState& state,
                               const std::vector<UnlearningRequest>& batch,
                               PhaseStats* unlearn_stats = nullptr,
                               PhaseStats* recovery_stats = nullptr,
                               const fl::RoundCallback& callback = {},
                               const UnlearnCursorCallback& cursor_callback = {},
                               const UnlearnCursor* resume = nullptr);

  /// Step 5: relearns previously erased knowledge via SGD on S_f and clears
  /// the forgotten mark.
  nn::ModelState relearn(const nn::ModelState& state, const UnlearningRequest& request,
                         PhaseStats* stats = nullptr);

  [[nodiscard]] const std::vector<SyntheticStore>& stores() const { return stores_; }
  [[nodiscard]] std::vector<SyntheticStore>& stores() { return stores_; }
  [[nodiscard]] const PhaseStats& training_stats() const { return training_stats_; }
  /// Wall-clock seconds of training spent on distillation (Table 6).
  [[nodiscard]] double distill_seconds() const { return distill_seconds_; }
  [[nodiscard]] const std::set<int>& forgotten_classes() const { return forgotten_classes_; }
  [[nodiscard]] const std::set<int>& forgotten_clients() const { return forgotten_clients_; }

  /// Clears the forgotten-targets bookkeeping. For experiment harnesses that
  /// evaluate several *independent* requests against the same trained model
  /// (sequential requests in one history should NOT call this).
  void reset_forgotten() {
    forgotten_classes_.clear();
    forgotten_clients_.clear();
  }

  /// Records a target as forgotten without running any rounds — used when a
  /// restarted service replays its completed-request history onto a fresh
  /// coordinator before resuming an in-flight cycle.
  void mark_forgotten(const UnlearningRequest& request) {
    if (request.kind == UnlearningRequest::Kind::kClass) {
      forgotten_classes_.insert(request.target);
    } else {
      forgotten_clients_.insert(request.target);
    }
  }

  /// Toggles §3.3.1 recovery augmentation (used by the ablation bench; does
  /// not require retraining).
  void set_augment_recovery(bool enabled) { config_.augment_recovery = enabled; }

  /// Swaps the update-transport codec for subsequent phases (used by the
  /// accuracy-vs-compression sweep bench; does not require retraining).
  void set_transport(fl::TransportConfig transport) { config_.transport = transport; }

  /// Swaps the shard-tree aggregation topology for subsequent phases (used
  /// by the scale bench and the serve CLI override; validates eagerly and
  /// does not require retraining — the merge bits are topology-invariant).
  void set_aggregation(fl::AggregationConfig aggregation) {
    aggregation.validate();
    config_.aggregation = aggregation;
  }

  /// Replaces the synthetic stores, e.g. with stores restored from a
  /// checkpoint (see core/checkpoint.h) — unlearning requests can then be
  /// served without retraining. One store per client is required.
  void load_stores(std::vector<SyntheticStore> stores);
  [[nodiscard]] int num_clients() const { return static_cast<int>(client_train_.size()); }
  [[nodiscard]] int num_classes() const { return client_train_.front().num_classes(); }
  [[nodiscard]] const std::vector<data::Dataset>& client_train() const { return client_train_; }
  [[nodiscard]] const QuickDropConfig& config() const { return config_; }

  /// Per-client synthetic forget counterparts S_f for a request (empty
  /// datasets for uninvolved clients).
  [[nodiscard]] std::vector<data::Dataset> forget_datasets(const UnlearningRequest& request) const;

  /// Batched S_f: the per-client union of every request's forget counterpart
  /// (a client targeted by a client-level request contributes its whole
  /// store exactly once, even when class-level requests overlap it).
  [[nodiscard]] std::vector<data::Dataset> forget_datasets(
      const std::vector<UnlearningRequest>& batch) const;

  /// Per-client recovery datasets: synthetic data of everything not
  /// currently forgotten (excluding `request`'s target), augmented per
  /// config. Pass nullptr to build the retain sets for the current
  /// forgotten-state only.
  [[nodiscard]] std::vector<data::Dataset> retain_datasets(
      const UnlearningRequest* request) const;

  /// Batched retain sets: excludes every already-forgotten target plus every
  /// target in `batch`.
  [[nodiscard]] std::vector<data::Dataset> retain_datasets(
      const std::vector<UnlearningRequest>& batch) const;

 private:
  /// Top-1 accuracy of scratch_model_ (already loaded) on a dataset; used by
  /// the verified-unlearning loop.
  [[nodiscard]] double forget_accuracy(const data::Dataset& dataset);

  /// Runs FedAvg rounds over per-client datasets with the given
  /// direction/lr; fills `stats`.
  /// Unlearning runs at 100% participation; recovery and relearning reuse
  /// the training participation rate (paper §4.5). `start_round`/`resume_rng`
  /// splice into a phase interrupted after `start_round` rounds (resume_rng
  /// is the serialized phase RNG from the matching cursor; nullptr derives a
  /// fresh tagged stream); `cursor_callback` exposes per-round cursors.
  nn::ModelState run_phase(const nn::ModelState& start,
                           const std::vector<data::Dataset>& client_data, int rounds, float lr,
                           nn::UpdateDirection direction, float participation, PhaseStats* stats,
                           const fl::RoundCallback& callback, int start_round = 0,
                           const std::vector<std::uint8_t>* resume_rng = nullptr,
                           const fl::RoundCursorCallback& cursor_callback = {});

  fl::ModelFactory factory_;
  std::vector<data::Dataset> client_train_;
  QuickDropConfig config_;
  Rng rng_;
  std::vector<SyntheticStore> stores_;
  std::unique_ptr<nn::Module> scratch_model_;
  nn::ModelState initial_state_;
  PhaseStats training_stats_;
  double distill_seconds_ = 0.0;
  std::set<int> forgotten_classes_;
  std::set<int> forgotten_clients_;
};

}  // namespace quickdrop::core
