// In-situ gradient-matching dataset distillation (paper Algorithm 2).
//
// During each FL local step the client samples a real mini-batch, computes
// per-class real gradients (whose weighted sum is reused as the FL model
// update — "reuse the gradients on original data computed by FL", §4.8),
// computes per-class synthetic gradients *with* graph, and descends the
// layer-wise cosine matching distance of Zhao et al. (ICLR'21) with respect
// to the synthetic pixels.
#pragma once

#include <mutex>
#include <vector>

#include "core/synthetic_store.h"
#include "fl/client_update.h"

namespace quickdrop::core {

/// Hyperparameters of the distillation (paper §4.1: varsigma_S=1,
/// eta_S=0.1, SGD as opt-alg).
struct DistillConfig {
  int opt_steps = 1;          ///< varsigma_S: pixel-update steps per match
  float learning_rate = 0.1f;  ///< eta_S
  int max_synthetic_batch = 16;  ///< cap on synthetic samples matched at once
};

/// Zhao et al.'s layer-wise matching distance between two gradient lists:
/// each parameter gradient is reshaped to [groups, rest] (rows of a matrix,
/// whole vector for biases) and the per-group cosine distances are summed.
/// `grad_synth` carries graph; `grad_real` is treated as constant.
ag::Var matching_distance(const std::vector<ag::Var>& grad_synth,
                          // NOLINTNEXTLINE(qdlint-api-flatstate): gradient list
                          const std::vector<Tensor>& grad_real);

/// One client's local update that trains the model AND distills its
/// synthetic dataset in the same pass (Algorithm 2 lines 9-17).
class DistillingLocalUpdate final : public fl::ClientUpdate {
 public:
  /// `stores` maps client id -> synthetic store; not owned.
  DistillingLocalUpdate(std::vector<SyntheticStore>& stores, int local_steps, int batch_size,
                        float model_learning_rate, DistillConfig distill);

  void run(nn::Module& model, const data::Dataset& dataset, int round, int client_id, Rng& rng,
           fl::CostMeter& cost) override;

  /// Cumulative wall-clock seconds spent in distillation work (the paper's
  /// Table 6 "DD Compute Time").
  [[nodiscard]] double distill_seconds() const { return distill_seconds_; }

 private:
  std::vector<SyntheticStore>& stores_;
  int local_steps_;
  int batch_size_;
  float model_lr_;
  DistillConfig distill_;
  /// run() may execute concurrently for distinct clients; the per-client
  /// stores are disjoint, but this cross-client total needs a guard.
  std::mutex seconds_mu_;
  double distill_seconds_ = 0.0;
};

/// Performs `opt_steps` pixel updates of `synthetic` (an [m,C,H,W] tensor,
/// modified in place) to match `grad_real` at the current model parameters.
/// Returns the final matching distance. Used by both the in-situ distiller
/// and the fine-tuner.
float match_synthetic_to_gradient(nn::Module& model, Tensor& synthetic, int label,
                                  // NOLINTNEXTLINE(qdlint-api-flatstate): gradient list
                                  const std::vector<Tensor>& grad_real,
                                  const DistillConfig& config, fl::CostMeter& cost);

}  // namespace quickdrop::core
