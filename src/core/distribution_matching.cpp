#include "core/distribution_matching.h"

#include <stdexcept>

#include "nn/convnet.h"
#include "nn/optimizer.h"

namespace quickdrop::core {
namespace {

/// Features of a batch under the ConvNet body (all layers but the final
/// classifier): [N, F].
ag::Var embed(nn::Sequential& net, const ag::Var& images) {
  if (net.size() < 2) throw std::logic_error("distribution matching: embedder too shallow");
  ag::Var x = images;
  for (std::size_t i = 0; i + 1 < net.size(); ++i) x = net.layer(i).forward(x);
  if (x.shape().size() != 2) {
    throw std::logic_error("distribution matching: expected flattened features");
  }
  return x;
}

}  // namespace

ag::Var feature_mean_distance(const ag::Var& synth_features, const ag::Var& real_features) {
  const auto fs = synth_features.shape();
  const auto fr = real_features.shape();
  if (fs.size() != 2 || fr.size() != 2 || fs[1] != fr[1]) {
    throw std::invalid_argument("feature_mean_distance: feature shapes incompatible");
  }
  const ag::Var mean_s = ag::mul_scalar(ag::reduce_sum_to(synth_features, {1, fs[1]}),
                                        1.0f / static_cast<float>(fs[0]));
  const ag::Var mean_r = ag::mul_scalar(ag::reduce_sum_to(real_features, {1, fr[1]}),
                                        1.0f / static_cast<float>(fr[0]));
  return ag::sum_all(ag::square(ag::sub(mean_s, mean_r)));
}

void distill_distribution_matching(const fl::ModelFactory& factory, SyntheticStore& store,
                                   const data::Dataset& client_data, const DmConfig& config,
                                   Rng& rng, fl::CostMeter& cost) {
  if (config.iterations <= 0) return;
  const auto classes = store.present_classes();
  if (classes.empty()) return;

  // One persistent momentum optimizer per class's pixel tensor.
  std::vector<std::unique_ptr<nn::Sgd>> optimizers;
  std::vector<ag::Var> pixel_leaves;
  for (const int c : classes) {
    pixel_leaves.push_back(ag::Var::leaf(store.class_samples(c)));  // shares storage
    optimizers.push_back(std::make_unique<nn::Sgd>(
        std::vector<ag::Var>{pixel_leaves.back()}, config.learning_rate, config.momentum));
  }

  for (int it = 0; it < config.iterations; ++it) {
    const auto model = factory();
    auto* net = dynamic_cast<nn::Sequential*>(model.get());
    if (net == nullptr) {
      throw std::logic_error("distribution matching: factory must build a Sequential");
    }
    for (std::size_t ci = 0; ci < classes.size(); ++ci) {
      const int c = classes[ci];
      const auto rows = client_data.indices_of_class(c);
      if (rows.empty()) continue;
      const auto batch_rows = data::Dataset::sample_batch_indices(rows, config.real_batch, rng);
      auto [real_images, labels] = client_data.batch(batch_rows);
      (void)labels;
      const ag::Var real_features = embed(*net, ag::Var::constant(real_images)).detach();
      cost.add_training(static_cast<std::int64_t>(batch_rows.size()));

      const ag::Var synth_features = embed(*net, pixel_leaves[ci]);
      const ag::Var loss = feature_mean_distance(synth_features, real_features);
      const auto grad = ag::grad(loss, {pixel_leaves[ci]});
      optimizers[ci]->step(grad);
      cost.add_distillation(store.class_samples(c).dim(0));
    }
  }
}

}  // namespace quickdrop::core
