// Sample-level unlearning — the paper's §5.1 future-work direction.
//
// QuickDrop proper distills one synthetic set per (client, class) and can
// therefore only forget whole classes or whole clients. Following the paper's
// sketch ("consider subsets of data within each class; generate synthetic
// samples for each subset and unlearn at the granularity of these subsets"),
// this extension partitions every client's per-class data into K disjoint
// subsets, distills one synthetic set per (client, class, subset) in situ,
// and serves a sample-level request by unlearning exactly the subsets that
// contain the requested samples and recovering on all remaining subsets —
// including the *same class's* other subsets, which is what preserves class
// knowledge while erasing specific samples.
#pragma once

#include <map>

#include "core/quickdrop.h"

namespace quickdrop::core {

/// One client's subset bookkeeping: row -> (class, subset) plus one
/// synthetic tensor per non-empty (class, subset) cell.
class SubsetStore {
 public:
  /// Partitions each class's rows into `subsets_per_class` random subsets and
  /// initializes each cell's synthetic tensor with ceil(|cell| / scale)
  /// random real samples of the cell.
  SubsetStore(const data::Dataset& client_data, int scale, int subsets_per_class, Rng& rng);

  [[nodiscard]] int subsets_per_class() const { return subsets_per_class_; }
  [[nodiscard]] int num_classes() const { return num_classes_; }

  /// Cell id of a client-local row: class * K + subset.
  [[nodiscard]] int cell_of_row(int row) const;
  [[nodiscard]] bool has_cell(int cell) const;
  [[nodiscard]] Tensor& cell_samples(int cell);
  [[nodiscard]] int cell_class(int cell) const { return cell / subsets_per_class_; }

  /// Synthetic data of the given cells as a Dataset (true class labels).
  [[nodiscard]] data::Dataset cells_dataset(const std::vector<int>& cells) const;

  /// All cells, or all cells except the given ones.
  [[nodiscard]] std::vector<int> all_cells() const;
  [[nodiscard]] std::vector<int> cells_excluding(const std::vector<int>& excluded) const;

  /// Total synthetic samples across cells.
  [[nodiscard]] int total_samples() const;

  [[nodiscard]] const Shape& image_shape() const { return image_shape_; }

 private:
  int num_classes_ = 0;
  int subsets_per_class_ = 0;
  Shape image_shape_;
  std::vector<int> row_cell_;                    // per client-local row
  std::map<int, Tensor> cells_;                  // cell id -> [m, C, H, W]
};

/// A sample-level unlearning request: client id -> client-local row indices.
struct SampleRequest {
  std::map<int, std::vector<int>> rows_per_client;
};

/// In-situ distillation at subset granularity: like DistillingLocalUpdate but
/// batches are grouped per cell instead of per class.
class SubsetDistillingUpdate final : public fl::ClientUpdate {
 public:
  SubsetDistillingUpdate(std::vector<SubsetStore>& stores, int local_steps, int batch_size,
                         float model_learning_rate, DistillConfig distill);

  void run(nn::Module& model, const data::Dataset& dataset, int round, int client_id, Rng& rng,
           fl::CostMeter& cost) override;

 private:
  std::vector<SubsetStore>& stores_;
  int local_steps_;
  int batch_size_;
  float model_lr_;
  DistillConfig distill_;
};

/// End-to-end coordinator for sample-level QuickDrop.
class SampleLevelQuickDrop {
 public:
  /// `config` supplies the FL/unlearning hyperparameters (scale applies
  /// within each cell); `subsets_per_class` is the paper's K.
  SampleLevelQuickDrop(fl::ModelFactory factory, std::vector<data::Dataset> client_train,
                       QuickDropConfig config, int subsets_per_class, std::uint64_t seed);

  /// FL training with in-situ subset-granular distillation.
  nn::ModelState train(const fl::RoundCallback& callback = {});

  /// SGA on the cells containing the requested samples, then recovery on all
  /// other cells. Cells stay marked forgotten for later requests.
  nn::ModelState unlearn(const nn::ModelState& state, const SampleRequest& request,
                         PhaseStats* unlearn_stats = nullptr,
                         PhaseStats* recovery_stats = nullptr);

  [[nodiscard]] const std::vector<SubsetStore>& stores() const { return stores_; }
  [[nodiscard]] int num_clients() const { return static_cast<int>(client_train_.size()); }
  [[nodiscard]] const std::vector<data::Dataset>& client_train() const { return client_train_; }

  /// The cells a request touches, per client (exposed for tests).
  [[nodiscard]] std::map<int, std::vector<int>> affected_cells(const SampleRequest& request) const;

 private:
  fl::ModelFactory factory_;
  std::vector<data::Dataset> client_train_;
  QuickDropConfig config_;
  Rng rng_;
  std::vector<SubsetStore> stores_;
  std::unique_ptr<nn::Module> scratch_model_;
  std::vector<std::vector<int>> forgotten_cells_;  // per client
};

}  // namespace quickdrop::core
