#include "core/synthetic_store.h"

#include <cstring>
#include <stdexcept>

namespace quickdrop::core {
namespace {

Shape stacked(const Shape& image_shape, std::int64_t m) {
  Shape s{m};
  s.insert(s.end(), image_shape.begin(), image_shape.end());
  return s;
}

Tensor stack_rows(const data::Dataset& dataset, const std::vector<int>& rows) {
  auto [images, labels] = dataset.batch(rows);
  (void)labels;
  return images;
}

}  // namespace

SyntheticStore::SyntheticStore(const data::Dataset& client_data, int scale, Rng& rng,
                               SyntheticInit init)
    : num_classes_(client_data.num_classes()), image_shape_(client_data.image_shape()) {
  if (scale <= 0) throw std::invalid_argument("SyntheticStore: scale must be positive");
  per_class_.resize(static_cast<std::size_t>(num_classes_));
  augment_.resize(static_cast<std::size_t>(num_classes_));
  for (int c = 0; c < num_classes_; ++c) {
    const auto rows = client_data.indices_of_class(c);
    if (rows.empty()) continue;
    // ceil(|D_i^c| / s) synthetic samples; at least one when the class exists.
    const int m = static_cast<int>((rows.size() + static_cast<std::size_t>(scale) - 1) /
                                   static_cast<std::size_t>(scale));
    const auto synth_rows = data::Dataset::sample_batch_indices(rows, m, rng);
    if (init == SyntheticInit::kRealSamples) {
      per_class_[static_cast<std::size_t>(c)] = stack_rows(client_data, synth_rows).clone();
    } else {
      per_class_[static_cast<std::size_t>(c)] = Tensor::randn(stacked(image_shape_, m), rng);
    }
    const auto aug_rows = data::Dataset::sample_batch_indices(rows, m, rng);
    augment_[static_cast<std::size_t>(c)] = stack_rows(client_data, aug_rows).clone();
  }
}

SyntheticStore SyntheticStore::from_parts(Shape image_shape, int num_classes,
                                          std::vector<std::optional<Tensor>> synthetic,
                                          std::vector<std::optional<Tensor>> augmentation) {
  if (num_classes <= 0 ||
      synthetic.size() != static_cast<std::size_t>(num_classes) ||
      augmentation.size() != static_cast<std::size_t>(num_classes)) {
    throw std::invalid_argument("SyntheticStore::from_parts: bad arity");
  }
  SyntheticStore store;
  store.num_classes_ = num_classes;
  store.image_shape_ = std::move(image_shape);
  const Shape expected_tail = store.image_shape_;
  auto validate = [&](std::optional<Tensor>& t) {
    if (t && t->numel() == 0) t.reset();
    if (!t) return;
    const auto& s = t->shape();
    if (s.size() != expected_tail.size() + 1 ||
        !std::equal(expected_tail.begin(), expected_tail.end(), s.begin() + 1)) {
      throw std::invalid_argument("SyntheticStore::from_parts: sample shape mismatch");
    }
  };
  for (auto& t : synthetic) validate(t);
  for (auto& t : augmentation) validate(t);
  store.per_class_ = std::move(synthetic);
  store.augment_ = std::move(augmentation);
  return store;
}

bool SyntheticStore::has_class(int c) const {
  return c >= 0 && c < num_classes_ && per_class_[static_cast<std::size_t>(c)].has_value();
}

Tensor& SyntheticStore::class_samples(int c) {
  if (!has_class(c)) throw std::out_of_range("SyntheticStore: class absent");
  return *per_class_[static_cast<std::size_t>(c)];
}

const Tensor& SyntheticStore::class_samples(int c) const {
  if (!has_class(c)) throw std::out_of_range("SyntheticStore: class absent");
  return *per_class_[static_cast<std::size_t>(c)];
}

int SyntheticStore::class_count(int c) const {
  return has_class(c) ? static_cast<int>(per_class_[static_cast<std::size_t>(c)]->dim(0)) : 0;
}

namespace {
data::Dataset dataset_from(const std::vector<std::optional<Tensor>>& per_class,
                           const std::vector<int>& classes, const Shape& image_shape,
                           int num_classes) {
  std::int64_t m = 0;
  for (const int c : classes) {
    if (c < 0 || c >= num_classes) throw std::out_of_range("SyntheticStore: class out of range");
    if (per_class[static_cast<std::size_t>(c)]) m += per_class[static_cast<std::size_t>(c)]->dim(0);
  }
  Tensor images(stacked(image_shape, m));
  std::vector<int> labels;
  labels.reserve(static_cast<std::size_t>(m));
  const std::int64_t stride = numel(image_shape);
  std::int64_t row = 0;
  for (const int c : classes) {
    const auto& opt = per_class[static_cast<std::size_t>(c)];
    if (!opt) continue;
    std::memcpy(images.data().data() + row * stride, opt->data().data(),
                opt->data().size() * sizeof(float));
    row += opt->dim(0);
    labels.insert(labels.end(), static_cast<std::size_t>(opt->dim(0)), c);
  }
  return data::Dataset(std::move(images), std::move(labels), num_classes);
}
}  // namespace

data::Dataset SyntheticStore::to_dataset(const std::vector<int>& classes) const {
  return dataset_from(per_class_, classes, image_shape_, num_classes_);
}

data::Dataset SyntheticStore::to_dataset() const { return to_dataset(present_classes()); }

data::Dataset SyntheticStore::augmentation(const std::vector<int>& classes) const {
  return dataset_from(augment_, classes, image_shape_, num_classes_);
}

data::Dataset SyntheticStore::augmented_dataset(const std::vector<int>& classes) const {
  return data::Dataset::concat(to_dataset(classes), augmentation(classes));
}

int SyntheticStore::total_samples() const {
  int n = 0;
  for (const auto& opt : per_class_) {
    if (opt) n += static_cast<int>(opt->dim(0));
  }
  return n;
}

std::int64_t SyntheticStore::byte_size() const {
  std::int64_t bytes = 0;
  for (const auto& opt : per_class_) {
    if (opt) bytes += opt->numel() * static_cast<std::int64_t>(sizeof(float));
  }
  return bytes;
}

std::vector<int> SyntheticStore::present_classes() const {
  std::vector<int> out;
  for (int c = 0; c < num_classes_; ++c) {
    if (has_class(c)) out.push_back(c);
  }
  return out;
}

}  // namespace quickdrop::core
