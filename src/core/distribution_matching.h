// Distribution-matching dataset distillation (Zhao & Bilen, WACV'23) — an
// alternative distillation backend from the paper's related work (§6.2).
//
// Instead of matching parameter *gradients* (second-order in the synthetic
// pixels), DM matches class-conditional *feature distributions* under
// randomly initialized embedding networks: minimize
//   || mean phi(S^c) - mean phi(B^c) ||^2
// per class, where phi is the ConvNet body without its classifier head.
// First-order only, hence much cheaper per step; QuickDrop's gradient
// matching remains the default because it targets unlearning specifically.
#pragma once

#include "core/synthetic_store.h"
#include "fl/fedavg.h"

namespace quickdrop::core {

struct DmConfig {
  int iterations = 20;        ///< outer steps; each uses a fresh random embedder
  int real_batch = 32;        ///< real samples per class per step
  float learning_rate = 0.1f;  ///< pixel learning rate
  float momentum = 0.5f;       ///< pixel-optimizer momentum (Zhao's setting)
};

/// Refines one client's synthetic store by distribution matching against its
/// real data. The embedding network is drawn from `factory` (its classifier
/// head is skipped). Synthetic-side work is charged as distillation cost,
/// real-side embeddings as training cost.
void distill_distribution_matching(const fl::ModelFactory& factory, SyntheticStore& store,
                                   const data::Dataset& client_data, const DmConfig& config,
                                   Rng& rng, fl::CostMeter& cost);

/// The per-class DM objective at a fixed embedder; exposed for tests.
/// `embedder_output` must be the feature Var of shape [N, F].
ag::Var feature_mean_distance(const ag::Var& synth_features, const ag::Var& real_features);

}  // namespace quickdrop::core
