// Checkpointing: persist a trained QuickDrop deployment to disk.
//
// The paper's workflow separates training time from unlearning time: the
// synthetic stores generated during training must survive until unlearning
// requests arrive, possibly across process restarts. A checkpoint bundles the
// global model state and every client's synthetic + augmentation data in one
// versioned binary blob. Current format: v4 (flat global state, see
// DESIGN.md §11); v3 checkpoints written before the FlatState refactor load
// through a compatibility shim.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/synthetic_store.h"
#include "nn/state.h"
#include "store/store.h"
#include "util/rng.h"

namespace quickdrop::core {

/// Record kinds inside a crash-safe store file (store::Key::kind). The store
/// itself treats kinds as opaque; these are quickdrop's assignments.
inline constexpr std::uint32_t kRecordCheckpoint = 1;     ///< full Checkpoint; cursor = round
inline constexpr std::uint32_t kRecordUnlearnCursor = 2;  ///< serve mid-request cursor; cursor = (phase<<32)|rounds
inline constexpr std::uint32_t kRecordClientStore = 3;    ///< one client's SyntheticStore; cursor = client id

/// Position of an interrupted multi-round phase, persisted so a killed run
/// can resume from the last completed round instead of from scratch. The
/// checkpoint's `global` is the state after `rounds_done` rounds; `rng_state`
/// is the phase RNG (util/rng.h Rng::serialize) as it stood entering round
/// `rounds_done`.
struct RoundCursor {
  std::string phase;      ///< "train", "unlearn", "recover", "relearn", ...
  int rounds_done = 0;    ///< rounds completed == next round index to execute
  std::vector<std::uint8_t> rng_state;
};

/// Everything needed to serve unlearning requests later.
struct Checkpoint {
  /// Free-form key/value metadata (dataset name, federation config, ...);
  /// the CLI uses it to make checkpoints self-describing.
  std::map<std::string, std::string> metadata;
  nn::ModelState global;
  /// Per client, per class: synthetic samples (empty tensor when the class is
  /// absent) and the matching augmentation samples.
  struct ClientStore {
    int num_classes = 0;
    Shape image_shape;
    // Synthetic image tensors, not model states. NOLINTNEXTLINE(qdlint-api-flatstate)
    std::vector<Tensor> synthetic;  // indexed by class; numel 0 == absent
    std::vector<Tensor> augmentation;  // same indexing NOLINT(qdlint-api-flatstate)
  };
  std::vector<ClientStore> clients;
  /// Present while a phase is mid-flight (partial checkpoint written by the
  /// orchestrator every k rounds); absent in finished checkpoints.
  std::optional<RoundCursor> cursor;
};

/// Extracts a checkpointable snapshot from live stores.
Checkpoint make_checkpoint(const nn::ModelState& global,
                           const std::vector<SyntheticStore>& stores);

/// Binary round-trip. The blob ends in an FNV-1a checksum over the payload,
/// so truncation *and* bit flips are both detected. Throws
/// std::invalid_argument on malformed or corrupted input.
std::vector<std::uint8_t> serialize_checkpoint(const Checkpoint& checkpoint);
Checkpoint deserialize_checkpoint(std::span<const std::uint8_t> bytes);

/// File I/O. The write is atomic (tmp + fsync + rename), so a crash mid-save
/// leaves either the old checkpoint or the new one, never a torn file.
/// `load_checkpoint(path)` sniffs the format: a crash-safe store file (page
/// magic) loads its latest committed checkpoint record; anything else is
/// parsed as a legacy single-blob checkpoint. Throws std::runtime_error on
/// I/O failure.
void save_checkpoint(const Checkpoint& checkpoint, const std::string& path);
Checkpoint load_checkpoint(const std::string& path);

/// Layout hash of the checkpoint's global state — the store key namespace
/// for this deployment (0 when the global state is empty).
std::uint64_t checkpoint_layout_hash(const Checkpoint& checkpoint);

/// Store-backed persistence. Writes the checkpoint under
/// (layout hash, kRecordCheckpoint, round) and commits; round-over-round
/// saves dedup unchanged pages (synthetic stores that did not change between
/// rounds are stored once). Throws store::StoreError on failure.
void save_checkpoint(const Checkpoint& checkpoint, store::Store& store, std::uint64_t round);
Checkpoint load_checkpoint(store::Store& store, std::uint64_t layout_hash, std::uint64_t round);
/// Highest round holding a checkpoint for this layout, if any.
std::optional<std::uint64_t> latest_checkpoint_round(store::Store& store,
                                                     std::uint64_t layout_hash);
/// Loads the newest committed checkpoint in the store regardless of layout
/// (the record with the highest round; ties broken by layout hash). Throws
/// store::StoreError when the store holds no checkpoint records.
Checkpoint load_latest_checkpoint(store::Store& store);

/// Per-client synthetic-store persistence: one record per client under
/// (layout hash, kRecordClientStore, client id), so a single client's store
/// can be rewritten after unlearning without touching the others. Not
/// committed — call store.commit() after the batch of puts.
void save_client_store(store::Store& store, std::uint64_t layout_hash, std::uint64_t client,
                       const Checkpoint::ClientStore& client_store);
Checkpoint::ClientStore load_client_store(store::Store& store, std::uint64_t layout_hash,
                                          std::uint64_t client);

/// Rebuilds live stores from a checkpoint (shapes/classes restored exactly).
std::vector<SyntheticStore> restore_stores(const Checkpoint& checkpoint);

}  // namespace quickdrop::core
