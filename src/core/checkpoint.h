// Checkpointing: persist a trained QuickDrop deployment to disk.
//
// The paper's workflow separates training time from unlearning time: the
// synthetic stores generated during training must survive until unlearning
// requests arrive, possibly across process restarts. A checkpoint bundles the
// global model state and every client's synthetic + augmentation data in one
// versioned binary blob.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/synthetic_store.h"
#include "nn/state.h"

namespace quickdrop::core {

/// Everything needed to serve unlearning requests later.
struct Checkpoint {
  /// Free-form key/value metadata (dataset name, federation config, ...);
  /// the CLI uses it to make checkpoints self-describing.
  std::map<std::string, std::string> metadata;
  nn::ModelState global;
  /// Per client, per class: synthetic samples (empty tensor when the class is
  /// absent) and the matching augmentation samples.
  struct ClientStore {
    int num_classes = 0;
    Shape image_shape;
    std::vector<Tensor> synthetic;     // indexed by class; numel 0 == absent
    std::vector<Tensor> augmentation;  // same indexing
  };
  std::vector<ClientStore> clients;
};

/// Extracts a checkpointable snapshot from live stores.
Checkpoint make_checkpoint(const nn::ModelState& global,
                           const std::vector<SyntheticStore>& stores);

/// Binary round-trip. Throws std::invalid_argument on malformed input.
std::vector<std::uint8_t> serialize_checkpoint(const Checkpoint& checkpoint);
Checkpoint deserialize_checkpoint(std::span<const std::uint8_t> bytes);

/// File I/O. Throws std::runtime_error on I/O failure.
void save_checkpoint(const Checkpoint& checkpoint, const std::string& path);
Checkpoint load_checkpoint(const std::string& path);

/// Rebuilds live stores from a checkpoint (shapes/classes restored exactly).
std::vector<SyntheticStore> restore_stores(const Checkpoint& checkpoint);

}  // namespace quickdrop::core
