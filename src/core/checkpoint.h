// Checkpointing: persist a trained QuickDrop deployment to disk.
//
// The paper's workflow separates training time from unlearning time: the
// synthetic stores generated during training must survive until unlearning
// requests arrive, possibly across process restarts. A checkpoint bundles the
// global model state and every client's synthetic + augmentation data in one
// versioned binary blob. Current format: v4 (flat global state, see
// DESIGN.md §11); v3 checkpoints written before the FlatState refactor load
// through a compatibility shim.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/synthetic_store.h"
#include "nn/state.h"
#include "util/rng.h"

namespace quickdrop::core {

/// Position of an interrupted multi-round phase, persisted so a killed run
/// can resume from the last completed round instead of from scratch. The
/// checkpoint's `global` is the state after `rounds_done` rounds; `rng_state`
/// is the phase RNG (util/rng.h Rng::serialize) as it stood entering round
/// `rounds_done`.
struct RoundCursor {
  std::string phase;      ///< "train", "unlearn", "recover", "relearn", ...
  int rounds_done = 0;    ///< rounds completed == next round index to execute
  std::vector<std::uint8_t> rng_state;
};

/// Everything needed to serve unlearning requests later.
struct Checkpoint {
  /// Free-form key/value metadata (dataset name, federation config, ...);
  /// the CLI uses it to make checkpoints self-describing.
  std::map<std::string, std::string> metadata;
  nn::ModelState global;
  /// Per client, per class: synthetic samples (empty tensor when the class is
  /// absent) and the matching augmentation samples.
  struct ClientStore {
    int num_classes = 0;
    Shape image_shape;
    // Synthetic image tensors, not model states. NOLINTNEXTLINE(qdlint-api-flatstate)
    std::vector<Tensor> synthetic;  // indexed by class; numel 0 == absent
    std::vector<Tensor> augmentation;  // same indexing NOLINT(qdlint-api-flatstate)
  };
  std::vector<ClientStore> clients;
  /// Present while a phase is mid-flight (partial checkpoint written by the
  /// orchestrator every k rounds); absent in finished checkpoints.
  std::optional<RoundCursor> cursor;
};

/// Extracts a checkpointable snapshot from live stores.
Checkpoint make_checkpoint(const nn::ModelState& global,
                           const std::vector<SyntheticStore>& stores);

/// Binary round-trip. The blob ends in an FNV-1a checksum over the payload,
/// so truncation *and* bit flips are both detected. Throws
/// std::invalid_argument on malformed or corrupted input.
std::vector<std::uint8_t> serialize_checkpoint(const Checkpoint& checkpoint);
Checkpoint deserialize_checkpoint(std::span<const std::uint8_t> bytes);

/// File I/O. Throws std::runtime_error on I/O failure.
void save_checkpoint(const Checkpoint& checkpoint, const std::string& path);
Checkpoint load_checkpoint(const std::string& path);

/// Rebuilds live stores from a checkpoint (shapes/classes restored exactly).
std::vector<SyntheticStore> restore_stores(const Checkpoint& checkpoint);

}  // namespace quickdrop::core
