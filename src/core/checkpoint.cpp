#include "core/checkpoint.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "util/atomic_file.h"

namespace quickdrop::core {
namespace {

// "QDCP" + format version. v4 stores the global model as one flat
// serialized-state blob (nn/state.h format v2: layout hash + shape manifest +
// contiguous payload); v3 stored it per-tensor and is still loadable — the
// pre-FlatState golden checkpoint in tests/core/golden/ pins that shim.
constexpr std::uint64_t kMagicV3 = 0x51444350'00000003ULL;
constexpr std::uint64_t kMagicV4 = 0x51444350'00000004ULL;

/// Upper bound for a serialized global state inside a checkpoint (floats +
/// manifest); far above any model this repo trains but finite, so a corrupt
/// length cannot drive a huge allocation.
constexpr std::uint64_t kMaxStateBlob = std::uint64_t{1} << 33;

/// FNV-1a over a byte range; the checkpoint's integrity checksum.
std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

class Writer {
 public:
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void string(const std::string& s) {
    u64(s.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }
  void tensor(const Tensor& t) {
    u64(t.shape().size());
    for (const auto d : t.shape()) u64(static_cast<std::uint64_t>(d));
    const auto offset = bytes_.size();
    bytes_.resize(offset + t.data().size() * sizeof(float));
    std::memcpy(bytes_.data() + offset, t.data().data(), t.data().size() * sizeof(float));
  }
  void blob(std::span<const std::uint8_t> b) {
    u64(b.size());
    bytes_.insert(bytes_.end(), b.begin(), b.end());
  }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}
  std::uint64_t u64() {
    if (pos_ + 8 > bytes_.size()) throw std::invalid_argument("checkpoint: truncated");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(bytes_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  std::string string() {
    const auto size = u64();
    if (size > 1 << 20 || pos_ + size > bytes_.size()) {
      throw std::invalid_argument("checkpoint: bad string");
    }
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_),
                  static_cast<std::size_t>(size));
    pos_ += static_cast<std::size_t>(size);
    return s;
  }
  Tensor tensor() {
    const auto rank = u64();
    if (rank > 8) throw std::invalid_argument("checkpoint: absurd tensor rank");
    Shape shape(rank);
    for (auto& d : shape) d = static_cast<std::int64_t>(u64());
    Tensor t(shape);
    const auto nbytes = static_cast<std::size_t>(t.numel()) * sizeof(float);
    if (pos_ + nbytes > bytes_.size()) throw std::invalid_argument("checkpoint: truncated");
    std::memcpy(t.data().data(), bytes_.data() + pos_, nbytes);
    pos_ += nbytes;
    return t;
  }
  std::vector<std::uint8_t> blob(std::uint64_t max_size = 1 << 20) {
    const auto size = u64();
    if (size > max_size || pos_ + size > bytes_.size()) {
      throw std::invalid_argument("checkpoint: bad blob");
    }
    std::vector<std::uint8_t> b(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + size));
    pos_ += static_cast<std::size_t>(size);
    return b;
  }
  [[nodiscard]] bool done() const { return pos_ == bytes_.size(); }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

Checkpoint make_checkpoint(const nn::ModelState& global,
                           const std::vector<SyntheticStore>& stores) {
  Checkpoint cp;
  cp.global = global;  // FlatState copies are deep
  for (const auto& store : stores) {
    Checkpoint::ClientStore client;
    client.num_classes = store.num_classes();
    client.image_shape = store.image_shape();
    for (int c = 0; c < store.num_classes(); ++c) {
      if (store.has_class(c)) {
        client.synthetic.push_back(store.class_samples(c).clone());
        // Augmentation set of exactly this class.
        const auto aug = store.augmentation({c});
        auto [images, labels] = aug.batch([&] {
          std::vector<int> rows(static_cast<std::size_t>(aug.size()));
          for (int i = 0; i < aug.size(); ++i) rows[static_cast<std::size_t>(i)] = i;
          return rows;
        }());
        (void)labels;
        client.augmentation.push_back(std::move(images));
      } else {
        client.synthetic.push_back(Tensor(Shape{0}));
        client.augmentation.push_back(Tensor(Shape{0}));
      }
    }
    cp.clients.push_back(std::move(client));
  }
  return cp;
}

std::vector<std::uint8_t> serialize_checkpoint(const Checkpoint& cp) {
  Writer w;
  w.u64(kMagicV4);
  w.u64(cp.metadata.size());
  for (const auto& [key, value] : cp.metadata) {
    w.string(key);
    w.string(value);
  }
  w.blob(nn::serialize_state(cp.global));
  w.u64(cp.clients.size());
  for (const auto& client : cp.clients) {
    w.u64(static_cast<std::uint64_t>(client.num_classes));
    w.u64(client.image_shape.size());
    for (const auto d : client.image_shape) w.u64(static_cast<std::uint64_t>(d));
    for (int c = 0; c < client.num_classes; ++c) {
      w.tensor(client.synthetic[static_cast<std::size_t>(c)]);
      w.tensor(client.augmentation[static_cast<std::size_t>(c)]);
    }
  }
  w.u64(cp.cursor.has_value() ? 1 : 0);
  if (cp.cursor) {
    w.string(cp.cursor->phase);
    w.u64(static_cast<std::uint64_t>(cp.cursor->rounds_done));
    w.blob(cp.cursor->rng_state);
  }
  auto bytes = w.take();
  // Trailing integrity checksum: detects bit flips that would otherwise
  // decode into silently-wrong tensors.
  const std::uint64_t checksum = fnv1a(bytes);
  for (int i = 0; i < 8; ++i) bytes.push_back(static_cast<std::uint8_t>(checksum >> (8 * i)));
  return bytes;
}

Checkpoint deserialize_checkpoint(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 16) throw std::invalid_argument("checkpoint: truncated");
  const auto payload = bytes.first(bytes.size() - 8);
  std::uint64_t stored = 0;
  for (int i = 0; i < 8; ++i) {
    stored |= static_cast<std::uint64_t>(bytes[bytes.size() - 8 + static_cast<std::size_t>(i)])
              << (8 * i);
  }
  if (fnv1a(payload) != stored) {
    throw std::invalid_argument("checkpoint: checksum mismatch (truncated or corrupted)");
  }
  Reader r(payload);
  const auto magic = r.u64();
  if (magic != kMagicV4 && magic != kMagicV3) {
    throw std::invalid_argument("checkpoint: bad magic/version");
  }
  Checkpoint cp;
  const auto metadata_count = r.u64();
  if (metadata_count > 1 << 16) throw std::invalid_argument("checkpoint: bad metadata count");
  for (std::uint64_t i = 0; i < metadata_count; ++i) {
    const auto key = r.string();
    cp.metadata[key] = r.string();
  }
  if (magic == kMagicV4) {
    cp.global = nn::deserialize_state(r.blob(kMaxStateBlob));
  } else {
    // v3 shim: the global was stored per-tensor; repack into a flat state.
    const auto params = r.u64();
    if (params > 1 << 20) throw std::invalid_argument("checkpoint: bad parameter count");
    // NOLINTNEXTLINE(qdlint-api-flatstate): transient list for the legacy format only
    std::vector<Tensor> tensors;
    tensors.reserve(params);
    for (std::uint64_t i = 0; i < params; ++i) tensors.push_back(r.tensor());
    if (!tensors.empty()) cp.global = nn::FlatState::from_tensors(tensors);
  }
  const auto clients = r.u64();
  for (std::uint64_t i = 0; i < clients; ++i) {
    Checkpoint::ClientStore client;
    client.num_classes = static_cast<int>(r.u64());
    if (client.num_classes <= 0 || client.num_classes > 1 << 20) {
      throw std::invalid_argument("checkpoint: bad class count");
    }
    const auto rank = r.u64();
    client.image_shape.resize(rank);
    for (auto& d : client.image_shape) d = static_cast<std::int64_t>(r.u64());
    for (int c = 0; c < client.num_classes; ++c) {
      client.synthetic.push_back(r.tensor());
      client.augmentation.push_back(r.tensor());
    }
    cp.clients.push_back(std::move(client));
  }
  const auto has_cursor = r.u64();
  if (has_cursor > 1) throw std::invalid_argument("checkpoint: bad cursor flag");
  if (has_cursor == 1) {
    RoundCursor cursor;
    cursor.phase = r.string();
    cursor.rounds_done = static_cast<int>(r.u64());
    if (cursor.rounds_done < 0 || cursor.rounds_done > 1 << 24) {
      throw std::invalid_argument("checkpoint: bad cursor round");
    }
    cursor.rng_state = r.blob();
    if (cursor.rng_state.size() != Rng::kSerializedSize) {
      throw std::invalid_argument("checkpoint: bad cursor rng state");
    }
    cp.cursor = std::move(cursor);
  }
  if (!r.done()) throw std::invalid_argument("checkpoint: trailing bytes");
  return cp;
}

void save_checkpoint(const Checkpoint& cp, const std::string& path) {
  // Atomic replace: a crash mid-save leaves the previous checkpoint intact.
  write_file_atomic(path, serialize_checkpoint(cp));
}

Checkpoint load_checkpoint(const std::string& path) {
  // A path can hold either format; the page magic disambiguates.
  if (store::Store::sniff(path)) {
    store::Store store(path);
    return load_latest_checkpoint(store);
  }
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("load_checkpoint: cannot open " + path);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<std::uint8_t> bytes(size);
  in.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(size));
  if (!in) throw std::runtime_error("load_checkpoint: read failed for " + path);
  return deserialize_checkpoint(bytes);
}

std::uint64_t checkpoint_layout_hash(const Checkpoint& cp) {
  const auto& layout = cp.global.layout();
  return layout ? layout->hash() : 0;
}

void save_checkpoint(const Checkpoint& cp, store::Store& store, std::uint64_t round) {
  const store::Key key{checkpoint_layout_hash(cp), kRecordCheckpoint, round};
  store.put(key, serialize_checkpoint(cp));
  store.commit();
}

Checkpoint load_checkpoint(store::Store& store, std::uint64_t layout_hash,
                           std::uint64_t round) {
  return deserialize_checkpoint(store.get({layout_hash, kRecordCheckpoint, round}));
}

std::optional<std::uint64_t> latest_checkpoint_round(store::Store& store,
                                                     std::uint64_t layout_hash) {
  const auto key = store.latest(layout_hash, kRecordCheckpoint);
  if (!key) return std::nullopt;
  return key->cursor;
}

Checkpoint load_latest_checkpoint(store::Store& store) {
  std::optional<store::Key> best;
  for (const auto& key : store.keys()) {
    if (key.kind != kRecordCheckpoint) continue;
    if (!best || key.cursor > best->cursor ||
        (key.cursor == best->cursor && key.layout_hash > best->layout_hash)) {
      best = key;
    }
  }
  if (!best) throw store::StoreError("store: no checkpoint records in " + store.path());
  return deserialize_checkpoint(store.get(*best));
}

void save_client_store(store::Store& store, std::uint64_t layout_hash, std::uint64_t client,
                       const Checkpoint::ClientStore& cs) {
  Writer w;
  w.u64(static_cast<std::uint64_t>(cs.num_classes));
  w.u64(cs.image_shape.size());
  for (const auto d : cs.image_shape) w.u64(static_cast<std::uint64_t>(d));
  for (int c = 0; c < cs.num_classes; ++c) {
    w.tensor(cs.synthetic[static_cast<std::size_t>(c)]);
    w.tensor(cs.augmentation[static_cast<std::size_t>(c)]);
  }
  store.put({layout_hash, kRecordClientStore, client}, w.take());
}

Checkpoint::ClientStore load_client_store(store::Store& store, std::uint64_t layout_hash,
                                          std::uint64_t client) {
  const auto bytes = store.get({layout_hash, kRecordClientStore, client});
  Reader r(bytes);
  Checkpoint::ClientStore cs;
  cs.num_classes = static_cast<int>(r.u64());
  if (cs.num_classes <= 0 || cs.num_classes > 1 << 20) {
    throw std::invalid_argument("client store record: bad class count");
  }
  const auto rank = r.u64();
  if (rank > 8) throw std::invalid_argument("client store record: absurd shape rank");
  cs.image_shape.resize(rank);
  for (auto& d : cs.image_shape) d = static_cast<std::int64_t>(r.u64());
  for (int c = 0; c < cs.num_classes; ++c) {
    cs.synthetic.push_back(r.tensor());
    cs.augmentation.push_back(r.tensor());
  }
  if (!r.done()) throw std::invalid_argument("client store record: trailing bytes");
  return cs;
}

std::vector<SyntheticStore> restore_stores(const Checkpoint& cp) {
  std::vector<SyntheticStore> stores;
  stores.reserve(cp.clients.size());
  for (const auto& client : cp.clients) {
    std::vector<std::optional<Tensor>> synthetic, augmentation;
    for (int c = 0; c < client.num_classes; ++c) {
      const auto& s = client.synthetic[static_cast<std::size_t>(c)];
      const auto& a = client.augmentation[static_cast<std::size_t>(c)];
      synthetic.push_back(s.numel() > 0 ? std::optional<Tensor>(s.clone()) : std::nullopt);
      augmentation.push_back(a.numel() > 0 ? std::optional<Tensor>(a.clone()) : std::nullopt);
    }
    stores.push_back(SyntheticStore::from_parts(client.image_shape, client.num_classes,
                                                std::move(synthetic), std::move(augmentation)));
  }
  return stores;
}

}  // namespace quickdrop::core
