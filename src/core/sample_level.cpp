#include "core/sample_level.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <stdexcept>

#include "nn/optimizer.h"
#include "nn/state.h"
#include "util/timer.h"

namespace quickdrop::core {

SubsetStore::SubsetStore(const data::Dataset& client_data, int scale, int subsets_per_class,
                         Rng& rng)
    : num_classes_(client_data.num_classes()),
      subsets_per_class_(subsets_per_class),
      image_shape_(client_data.image_shape()),
      row_cell_(static_cast<std::size_t>(client_data.size()), -1) {
  if (scale <= 0 || subsets_per_class <= 0) {
    throw std::invalid_argument("SubsetStore: scale and subsets_per_class must be positive");
  }
  for (int c = 0; c < num_classes_; ++c) {
    auto rows = client_data.indices_of_class(c);
    if (rows.empty()) continue;
    rng.shuffle(rows);
    // Deal class rows round-robin into K subsets; small classes may leave
    // some subsets empty, which is fine.
    std::vector<std::vector<int>> subsets(static_cast<std::size_t>(subsets_per_class));
    for (std::size_t i = 0; i < rows.size(); ++i) {
      subsets[i % static_cast<std::size_t>(subsets_per_class)].push_back(rows[i]);
    }
    for (int k = 0; k < subsets_per_class; ++k) {
      const auto& members = subsets[static_cast<std::size_t>(k)];
      if (members.empty()) continue;
      const int cell = c * subsets_per_class + k;
      for (const int row : members) row_cell_[static_cast<std::size_t>(row)] = cell;
      const int m = static_cast<int>(
          (members.size() + static_cast<std::size_t>(scale) - 1) / static_cast<std::size_t>(scale));
      const auto synth_rows = data::Dataset::sample_batch_indices(members, m, rng);
      auto [images, labels] = client_data.batch(synth_rows);
      (void)labels;
      cells_.emplace(cell, images.clone());
    }
  }
}

int SubsetStore::cell_of_row(int row) const {
  const int cell = row_cell_.at(static_cast<std::size_t>(row));
  if (cell < 0) throw std::logic_error("SubsetStore: row not assigned to a cell");
  return cell;
}

bool SubsetStore::has_cell(int cell) const { return cells_.count(cell) > 0; }

Tensor& SubsetStore::cell_samples(int cell) {
  const auto it = cells_.find(cell);
  if (it == cells_.end()) throw std::out_of_range("SubsetStore: no such cell");
  return it->second;
}

data::Dataset SubsetStore::cells_dataset(const std::vector<int>& cells) const {
  std::int64_t m = 0;
  for (const int cell : cells) {
    const auto it = cells_.find(cell);
    if (it != cells_.end()) m += it->second.dim(0);
  }
  Shape shape{m};
  shape.insert(shape.end(), image_shape_.begin(), image_shape_.end());
  Tensor images(shape);
  std::vector<int> labels;
  labels.reserve(static_cast<std::size_t>(m));
  const std::int64_t stride = numel(image_shape_);
  std::int64_t row = 0;
  for (const int cell : cells) {
    const auto it = cells_.find(cell);
    if (it == cells_.end()) continue;
    std::memcpy(images.data().data() + row * stride, it->second.data().data(),
                it->second.data().size() * sizeof(float));
    row += it->second.dim(0);
    labels.insert(labels.end(), static_cast<std::size_t>(it->second.dim(0)), cell_class(cell));
  }
  return data::Dataset(std::move(images), std::move(labels), num_classes_);
}

std::vector<int> SubsetStore::all_cells() const {
  std::vector<int> out;
  out.reserve(cells_.size());
  for (const auto& [cell, _] : cells_) out.push_back(cell);
  return out;
}

std::vector<int> SubsetStore::cells_excluding(const std::vector<int>& excluded) const {
  const std::set<int> skip(excluded.begin(), excluded.end());
  std::vector<int> out;
  for (const auto& [cell, _] : cells_) {
    if (!skip.count(cell)) out.push_back(cell);
  }
  return out;
}

int SubsetStore::total_samples() const {
  int n = 0;
  for (const auto& [_, t] : cells_) n += static_cast<int>(t.dim(0));
  return n;
}

SubsetDistillingUpdate::SubsetDistillingUpdate(std::vector<SubsetStore>& stores, int local_steps,
                                               int batch_size, float model_learning_rate,
                                               DistillConfig distill)
    : stores_(stores),
      local_steps_(local_steps),
      batch_size_(batch_size),
      model_lr_(model_learning_rate),
      distill_(distill) {
  if (local_steps <= 0 || batch_size <= 0 || model_learning_rate <= 0.0f) {
    throw std::invalid_argument("SubsetDistillingUpdate: bad hyperparameters");
  }
}

void SubsetDistillingUpdate::run(nn::Module& model, const data::Dataset& dataset, int round,
                                 int client_id, Rng& rng, fl::CostMeter& cost) {
  (void)round;
  if (dataset.empty()) return;
  auto& store = stores_.at(static_cast<std::size_t>(client_id));
  const auto params = model.parameters();

  std::vector<int> pool(static_cast<std::size_t>(dataset.size()));
  for (int i = 0; i < dataset.size(); ++i) pool[static_cast<std::size_t>(i)] = i;

  for (int t = 0; t < local_steps_; ++t) {
    const auto rows = data::Dataset::sample_batch_indices(pool, batch_size_, rng);
    std::map<int, std::vector<int>> by_cell;
    for (const int r : rows) by_cell[store.cell_of_row(r)].push_back(r);

    // Per-parameter gradient list (not a model state): feeds Sgd::step_tensors.
    std::vector<Tensor> model_grad;  // NOLINT(qdlint-api-flatstate)
    bool first = true;
    for (const auto& [cell, cell_rows] : by_cell) {
      auto [images, labels] = dataset.batch(cell_rows);
      const ag::Var loss = ag::cross_entropy(model.forward_tensor(images), labels);
      const auto grads = ag::grad(loss, std::span<const ag::Var>(params));
      cost.add_training(static_cast<std::int64_t>(cell_rows.size()));
      const float weight = static_cast<float>(cell_rows.size()) / static_cast<float>(rows.size());
      // NOLINTNEXTLINE(qdlint-api-flatstate): gradient list feeding match_synthetic_to_gradient
      std::vector<Tensor> grad_tensors;
      grad_tensors.reserve(grads.size());
      for (std::size_t i = 0; i < grads.size(); ++i) {
        grad_tensors.push_back(grads[i].value());
        if (first) {
          Tensor g = grads[i].value().clone();
          g.scale_(weight);
          model_grad.push_back(std::move(g));
        } else {
          model_grad[i].add_(grads[i].value(), weight);
        }
      }
      first = false;
      if (store.has_cell(cell)) {
        match_synthetic_to_gradient(model, store.cell_samples(cell), store.cell_class(cell),
                                    grad_tensors, distill_, cost);
      }
    }
    nn::Sgd optimizer(params, model_lr_);
    optimizer.step_tensors(model_grad, nn::UpdateDirection::kDescent);
  }
}

SampleLevelQuickDrop::SampleLevelQuickDrop(fl::ModelFactory factory,
                                           std::vector<data::Dataset> client_train,
                                           QuickDropConfig config, int subsets_per_class,
                                           std::uint64_t seed)
    : factory_(std::move(factory)),
      client_train_(std::move(client_train)),
      config_(config),
      rng_(seed),
      forgotten_cells_(client_train_.size()) {
  if (client_train_.empty()) throw std::invalid_argument("SampleLevelQuickDrop: no clients");
  scratch_model_ = factory_();
  Rng store_rng = rng_.split(0x5B5);
  stores_.reserve(client_train_.size());
  for (std::size_t i = 0; i < client_train_.size(); ++i) {
    Rng client_rng = store_rng.split(i);
    stores_.emplace_back(client_train_[i], config_.scale, subsets_per_class, client_rng);
  }
}

nn::ModelState SampleLevelQuickDrop::train(const fl::RoundCallback& callback) {
  SubsetDistillingUpdate update(stores_, config_.local_steps, config_.batch_size,
                                config_.train_lr, config_.distill);
  fl::FedAvgConfig fed{.rounds = config_.fl_rounds, .participation = config_.participation};
  fed.client_model_factory = factory_;
  fl::CostMeter cost;
  Rng fed_rng = rng_.split(0xF2);
  return fl::run_fedavg(*scratch_model_, nn::state_of(*scratch_model_), client_train_, update,
                        fed, fed_rng, cost, callback);
}

std::map<int, std::vector<int>> SampleLevelQuickDrop::affected_cells(
    const SampleRequest& request) const {
  std::map<int, std::vector<int>> out;
  for (const auto& [client, rows] : request.rows_per_client) {
    if (client < 0 || client >= num_clients()) {
      throw std::out_of_range("SampleRequest: bad client id");
    }
    std::set<int> cells;
    for (const int row : rows) {
      cells.insert(stores_[static_cast<std::size_t>(client)].cell_of_row(row));
    }
    out[client] = std::vector<int>(cells.begin(), cells.end());
  }
  return out;
}

nn::ModelState SampleLevelQuickDrop::unlearn(const nn::ModelState& state,
                                             const SampleRequest& request,
                                             PhaseStats* unlearn_stats,
                                             PhaseStats* recovery_stats) {
  const auto affected = affected_cells(request);
  if (affected.empty()) throw std::invalid_argument("SampleLevelQuickDrop: empty request");

  // Forget counterparts: the affected cells' synthetic data per client.
  std::vector<data::Dataset> forget;
  forget.reserve(stores_.size());
  for (std::size_t i = 0; i < stores_.size(); ++i) {
    const auto it = affected.find(static_cast<int>(i));
    forget.push_back(it == affected.end()
                         ? data::Dataset(stores_[i].image_shape(), client_train_[i].num_classes())
                         : stores_[i].cells_dataset(it->second));
  }

  auto run = [&](const std::vector<data::Dataset>& data, int rounds, float lr,
                 nn::UpdateDirection dir, PhaseStats* stats, const nn::ModelState& start) {
    const Timer timer;
    fl::SgdLocalUpdate update(config_.unlearn_local_steps, config_.unlearn_batch_size, lr, dir);
    fl::FedAvgConfig fed{.rounds = rounds, .participation = 1.0f};
    fed.client_model_factory = factory_;
    fl::CostMeter cost;
    Rng phase_rng = rng_.split(0xE5);
    auto result = fl::run_fedavg(*scratch_model_, start, data, update, fed, phase_rng, cost);
    if (stats) {
      stats->seconds = timer.seconds();
      stats->cost = cost;
      stats->rounds = rounds;
      stats->data_size = fl::total_samples(data);
    }
    return result;
  };

  nn::ModelState current = run(forget, config_.unlearn_rounds,
                               config_.unlearn_lr, nn::UpdateDirection::kAscent, unlearn_stats,
                               state);

  // Mark cells forgotten, then recover on everything not forgotten.
  for (const auto& [client, cells] : affected) {
    auto& forgotten = forgotten_cells_[static_cast<std::size_t>(client)];
    forgotten.insert(forgotten.end(), cells.begin(), cells.end());
  }
  std::vector<data::Dataset> retain;
  retain.reserve(stores_.size());
  for (std::size_t i = 0; i < stores_.size(); ++i) {
    retain.push_back(stores_[i].cells_dataset(stores_[i].cells_excluding(forgotten_cells_[i])));
  }
  if (fl::total_samples(retain) > 0) {
    current = run(retain, config_.recovery_rounds, config_.recover_lr,
                  nn::UpdateDirection::kDescent, recovery_stats, current);
  }
  return current;
}

}  // namespace quickdrop::core
