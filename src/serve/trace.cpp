#include "serve/trace.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/atomic_file.h"

namespace quickdrop::serve {

std::vector<ServiceRequest> generate_trace(const ArrivalConfig& config, Rng& rng) {
  if (config.num_requests < 0) throw std::invalid_argument("generate_trace: negative count");
  if (!(config.mean_interarrival_seconds > 0.0)) {
    throw std::invalid_argument("generate_trace: mean inter-arrival must be > 0");
  }
  if (config.client_fraction < 0.0 || config.client_fraction > 1.0) {
    throw std::invalid_argument("generate_trace: client fraction outside [0, 1]");
  }
  if (config.num_classes <= 0 || config.num_clients <= 0 || config.priority_levels <= 0) {
    throw std::invalid_argument("generate_trace: counts must be positive");
  }

  // Without-replacement pools: shuffled once up front so each draw is O(1)
  // and the trace depends only on the rng stream, not on draw interleaving.
  std::vector<int> class_pool = rng.permutation(config.num_classes);
  std::vector<int> client_pool = rng.permutation(config.num_clients);
  std::size_t class_next = 0, client_next = 0;

  std::vector<ServiceRequest> trace;
  trace.reserve(static_cast<std::size_t>(config.num_requests));
  double clock = 0.0;
  for (int i = 0; i < config.num_requests; ++i) {
    // Exponential inter-arrival gap: -mean * ln(1 - U), U in [0, 1).
    const double u = static_cast<double>(rng.uniform());
    clock += -config.mean_interarrival_seconds * std::log(1.0 - u);

    const bool client_kind = static_cast<double>(rng.uniform()) < config.client_fraction;
    ServiceRequest request;
    request.arrival_seconds = clock;
    request.priority =
        config.priority_levels > 1 ? rng.uniform_int(0, config.priority_levels - 1) : 0;
    if (client_kind) {
      request.kind = RequestKind::kClient;
      if (config.allow_duplicates) {
        request.target = rng.uniform_int(0, config.num_clients - 1);
      } else if (client_next < client_pool.size()) {
        request.target = client_pool[client_next++];
      } else {
        break;  // every client already requested once
      }
    } else {
      request.kind = RequestKind::kClass;
      if (config.allow_duplicates) {
        request.target = rng.uniform_int(0, config.num_classes - 1);
      } else if (class_next < class_pool.size()) {
        request.target = class_pool[class_next++];
      } else {
        break;  // every class already requested once
      }
    }
    trace.push_back(std::move(request));
  }
  return trace;
}

std::string format_trace(const std::vector<ServiceRequest>& trace) {
  std::string out = "# quickdrop request trace: <arrival-seconds> <kind> <target>"
                    " [prio=<p>] [rows=<a,b,...>]\n";
  for (const auto& request : trace) {
    out += format_request(request);
    out += "\n";
  }
  return out;
}

std::vector<ServiceRequest> parse_trace(const std::string& text) {
  // No legitimate trace line approaches this; longer means a binary or
  // corrupted file was fed in, and the error should say so rather than let a
  // multi-megabyte "line" reach the request parser.
  constexpr std::size_t kMaxLine = 4096;
  // A well-formed trace file ends in a newline (format_trace guarantees it);
  // a final line without one is the signature of a file truncated mid-write.
  if (!text.empty() && text.back() != '\n') {
    const int lines = 1 + static_cast<int>(std::count(text.begin(), text.end(), '\n'));
    throw TraceError(lines, "truncated trace (no final newline)");
  }
  std::vector<ServiceRequest> trace;
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.size() > kMaxLine) {
      throw TraceError(line_number, "line exceeds " + std::to_string(kMaxLine) +
                                        " bytes (garbage or binary input)");
    }
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) line.pop_back();
    std::size_t start = 0;
    while (start < line.size() && (line[start] == ' ' || line[start] == '\t')) ++start;
    if (start == line.size() || line[start] == '#') continue;
    try {
      trace.push_back(parse_request(line.substr(start)));
    } catch (const TraceError&) {
      throw;
    } catch (const std::exception& e) {
      // parse_request throws invalid_argument; std::stoi/stod can also throw
      // out_of_range on absurd numerals. Both become a typed, line-numbered
      // TraceError.
      throw TraceError(line_number, e.what());
    }
  }
  std::stable_sort(trace.begin(), trace.end(),
                   [](const ServiceRequest& a, const ServiceRequest& b) {
                     return a.arrival_seconds < b.arrival_seconds;
                   });
  return trace;
}

void save_trace(const std::vector<ServiceRequest>& trace, const std::string& path) {
  write_file_atomic(path, format_trace(trace));
}

std::vector<ServiceRequest> load_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_trace: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_trace(ss.str());
}

}  // namespace quickdrop::serve
