// Typed unlearning-service requests (the serve/ subsystem's wire format).
//
// Extends core/request.h's two-kind model with sample-level granularity plus
// the service-side lifecycle fields: a stable id (assigned at admission), the
// simulated arrival time of the request, and a scheduling priority. Requests
// round-trip through a line-oriented text form so whole traces can be dumped
// and replayed bit-for-bit (see serve/trace.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/request.h"

namespace quickdrop::serve {

/// Granularity of a right-to-be-forgotten request.
enum class RequestKind {
  kClass,   ///< erase one class across all clients
  kClient,  ///< erase one client's entire contribution
  kSample,  ///< erase specific client-local rows (paper §5.1 direction)
};

/// "class" | "client" | "sample".
const char* kind_name(RequestKind kind);
/// Inverse of kind_name(). Throws std::invalid_argument on anything else.
RequestKind kind_from_name(const std::string& name);

/// One unlearning request as seen by the service.
struct ServiceRequest {
  /// Unique, monotonically increasing id assigned by the admission queue;
  /// -1 until admitted.
  std::int64_t id = -1;
  RequestKind kind = RequestKind::kClass;
  /// Class id (kClass) or client id (kClient, kSample).
  int target = 0;
  /// Client-local row indices; kSample only, must be non-empty there.
  std::vector<int> rows;
  /// Simulated arrival time in seconds since service start.
  double arrival_seconds = 0.0;
  /// Scheduling priority (higher runs first under the priority policy).
  int priority = 0;

  /// The core counterpart driving QuickDrop. Throws std::invalid_argument
  /// for kSample, which core::QuickDrop cannot serve (class/class-subset
  /// stores only — see core/sample_level.h for the sample-level coordinator).
  [[nodiscard]] core::UnlearningRequest to_core() const;

  /// Human-readable one-liner, e.g. "#3 class 5 @t=12.5s".
  [[nodiscard]] std::string describe() const;
};

/// One trace line: `<arrival> <kind> <target> [prio=<p>] [rows=<a,b,c>]`.
/// The arrival time is formatted with enough digits to round-trip exactly.
std::string format_request(const ServiceRequest& request);

/// Inverse of format_request(). Throws std::invalid_argument on malformed
/// input (unknown kind, garbage fields, missing rows on a sample request).
ServiceRequest parse_request(const std::string& line);

}  // namespace quickdrop::serve
