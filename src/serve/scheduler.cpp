#include "serve/scheduler.h"

#include <stdexcept>

namespace quickdrop::serve {

const char* policy_name(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kFifo:
      return "fifo";
    case SchedulerPolicy::kPriority:
      return "priority";
    case SchedulerPolicy::kCoalesce:
      return "coalesce";
  }
  return "?";
}

SchedulerPolicy policy_from_name(const std::string& name) {
  if (name == "fifo") return SchedulerPolicy::kFifo;
  if (name == "priority") return SchedulerPolicy::kPriority;
  if (name == "coalesce") return SchedulerPolicy::kCoalesce;
  throw std::invalid_argument("unknown scheduler policy '" + name + "' (fifo|priority|coalesce)");
}

Scheduler::Scheduler(SchedulerPolicy policy, int max_batch)
    : policy_(policy), max_batch_(max_batch) {
  if (max_batch < 0) throw std::invalid_argument("Scheduler: negative max_batch");
}

std::vector<std::int64_t> Scheduler::next_batch(
    const std::vector<ServiceRequest>& pending) const {
  if (pending.empty()) return {};

  if (policy_ == SchedulerPolicy::kFifo) {
    // Admission order == arrival order; ids are monotone, so front wins.
    return {pending.front().id};
  }

  if (policy_ == SchedulerPolicy::kPriority) {
    const ServiceRequest* best = &pending.front();
    for (const auto& request : pending) {
      if (request.priority > best->priority) best = &request;
      // Equal priority keeps the earlier admission (stable scan order).
    }
    return {best->id};
  }

  // Coalesce: every batchable (class/client) pending request, admission
  // order, up to max_batch_. A sample request at the queue front runs alone
  // (its forget set is row-granular and cannot merge into a class/client
  // cycle).
  if (pending.front().kind == RequestKind::kSample) return {pending.front().id};
  std::vector<std::int64_t> ids;
  for (const auto& request : pending) {
    if (request.kind == RequestKind::kSample) continue;
    ids.push_back(request.id);
    if (max_batch_ > 0 && static_cast<int>(ids.size()) >= max_batch_) break;
  }
  return ids;
}

}  // namespace quickdrop::serve
