#include "serve/options.h"

#include "serve/scheduler.h"

namespace quickdrop::serve {

namespace {

/// The flags that parameterize trace *generation*, which conflict with an
/// explicit --trace file and with --listen (HTTP mode has no trace at all).
const char* const kTraceGenFlags[] = {"requests", "arrival-rate", "client-fraction",
                                      "trace-seed"};

}  // namespace

ServeOptions parse_serve_options(CliFlags& flags) {
  ServeOptions o;
  o.checkpoint = flags.get_string("checkpoint", o.checkpoint);
  o.trace_path = flags.get_string("trace", o.trace_path);
  o.requests = flags.get_int("requests", o.requests);
  o.arrival_rate_seconds = flags.get_double("arrival-rate", o.arrival_rate_seconds);
  o.client_fraction = flags.get_double("client-fraction", o.client_fraction);
  o.trace_seed_set = flags.has("trace-seed");
  o.trace_seed = static_cast<std::uint64_t>(flags.get_int("trace-seed", 0));
  o.policy = flags.get_string("policy", o.policy);
  o.max_batch = flags.get_int("max-batch", o.max_batch);
  o.resume = flags.get_bool("resume", o.resume);
  o.sec_per_round = flags.get_double("sec-per-round", o.sec_per_round);
  o.sec_per_grad = flags.get_double("sec-per-grad", o.sec_per_grad);
  o.dump_trace = flags.get_string("dump-trace", o.dump_trace);
  o.json_path = flags.get_string("json", o.json_path);
  o.out = flags.get_string("out", o.out);
  o.shards = flags.get_int("shards", o.shards);
  o.shard_fanout = flags.get_int("shard-fanout", o.shard_fanout);
  o.transport = flags.get_string("transport", o.transport);
  o.listen_port = flags.get_int("listen", o.listen_port);
  o.wire_listen_port = flags.get_int("wire-listen", o.wire_listen_port);
  o.tenants_spec = flags.get_string("tenants", o.tenants_spec);
  o.wire_bandwidth = flags.get_double("wire-bandwidth", o.wire_bandwidth);

  // Value ranges.
  if (o.requests <= 0) {
    throw OptionsError("requests", "must be >= 1, got " + std::to_string(o.requests));
  }
  if (o.arrival_rate_seconds <= 0.0) {
    throw OptionsError("arrival-rate", "mean inter-arrival seconds must be > 0");
  }
  if (o.client_fraction < 0.0 || o.client_fraction > 1.0) {
    throw OptionsError("client-fraction", "must be in [0, 1]");
  }
  if (o.max_batch < 0) {
    throw OptionsError("max-batch", "must be >= 0 (0 = unlimited)");
  }
  if (o.sec_per_round < 0.0) {
    throw OptionsError("sec-per-round", "must be >= 0");
  }
  if (o.sec_per_grad < 0.0) {
    throw OptionsError("sec-per-grad", "must be >= 0");
  }
  if (o.wire_bandwidth < 0.0) {
    throw OptionsError("wire-bandwidth", "bytes/second must be >= 0 (0 = no breakdown)");
  }
  if (flags.has("shards") &&
      (o.shards < 1 || o.shards > 64 || (o.shards & (o.shards - 1)) != 0)) {
    throw OptionsError("shards", "must be a power of two in [1, 64], got " +
                                     std::to_string(o.shards));
  }
  if (flags.has("shard-fanout") && (o.shard_fanout < 2 || o.shard_fanout > 64)) {
    throw OptionsError("shard-fanout",
                       "must be in [2, 64], got " + std::to_string(o.shard_fanout));
  }
  try {
    (void)policy_from_name(o.policy);
  } catch (const std::invalid_argument& e) {
    throw OptionsError("policy", e.what());
  }
  if (o.max_batch > 0 && policy_from_name(o.policy) != SchedulerPolicy::kCoalesce) {
    throw OptionsError("max-batch", "only the coalesce policy batches; drop the flag or use "
                                    "--policy coalesce");
  }
  if (o.transport != "inproc" && o.transport != "loopback") {
    throw OptionsError("transport", "must be 'inproc' or 'loopback', got '" + o.transport + "'");
  }

  // Cross-flag conflicts.
  if (!o.trace_path.empty()) {
    for (const char* flag : kTraceGenFlags) {
      if (flags.has(flag)) {
        throw OptionsError(flag, "conflicts with --trace (the file fixes the workload)");
      }
    }
  }
  if (flags.has("listen")) {
    if (o.listen_port < 1 || o.listen_port > 65535) {
      throw OptionsError("listen", "port must be in [1, 65535], got " +
                                       std::to_string(o.listen_port));
    }
    if (flags.has("transport")) {
      throw OptionsError("listen", "conflicts with --transport (HTTP mode is its own front-end)");
    }
    if (!o.trace_path.empty()) {
      throw OptionsError("listen", "conflicts with --trace (HTTP requests arrive live)");
    }
    for (const char* flag : kTraceGenFlags) {
      if (flags.has(flag)) {
        throw OptionsError(flag, "conflicts with --listen (HTTP requests arrive live)");
      }
    }
    if (!o.dump_trace.empty()) {
      throw OptionsError("dump-trace", "conflicts with --listen");
    }
  } else if (flags.has("tenants")) {
    throw OptionsError("tenants", "only meaningful with --listen");
  }
  if (flags.has("wire-listen")) {
    if (o.wire_listen_port < 1 || o.wire_listen_port > 65535) {
      throw OptionsError("wire-listen",
                         "port must be in [1, 65535], got " + std::to_string(o.wire_listen_port));
    }
    if (flags.has("listen")) {
      throw OptionsError("wire-listen", "conflicts with --listen (pick one front-end)");
    }
    if (flags.has("transport")) {
      throw OptionsError("wire-listen",
                         "conflicts with --transport (the wire server is its own transport)");
    }
    if (!o.trace_path.empty()) {
      throw OptionsError("wire-listen", "conflicts with --trace (the client streams the trace)");
    }
    for (const char* flag : kTraceGenFlags) {
      if (flags.has(flag)) {
        throw OptionsError(flag, "conflicts with --wire-listen (the client streams the trace)");
      }
    }
    if (!o.dump_trace.empty()) {
      throw OptionsError("dump-trace", "conflicts with --wire-listen");
    }
  }
  return o;
}

void validate_resume_policy(const ServeOptions& options,
                            const std::map<std::string, std::string>& metadata) {
  if (!options.resume) return;
  const auto it = metadata.find(kServePolicyKey);
  if (it == metadata.end()) {
    throw OptionsError("resume",
                       "checkpoint records no serve policy (was it written by serve --out?)");
  }
  if (it->second != options.policy) {
    throw OptionsError("resume", "checkpoint was served with policy '" + it->second +
                                     "' but this run requests '" + options.policy +
                                     "'; re-run with --policy " + it->second);
  }
}

std::pair<std::string, std::uint16_t> parse_host_port(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size()) {
    throw OptionsError("connect", "expected HOST:PORT, got '" + spec + "'");
  }
  const std::string port_text = spec.substr(colon + 1);
  if (port_text.find_first_not_of("0123456789") != std::string::npos || port_text.size() > 5) {
    throw OptionsError("connect", "bad port '" + port_text + "'");
  }
  const long port = std::stol(port_text);
  if (port < 1 || port > 65535) {
    throw OptionsError("connect", "port must be in [1, 65535], got " + port_text);
  }
  return {spec.substr(0, colon), static_cast<std::uint16_t>(port)};
}

ReplayOptions parse_replay_options(CliFlags& flags) {
  ReplayOptions o;
  if (!flags.has("connect")) {
    throw OptionsError("connect", "is required (replay --connect HOST:PORT)");
  }
  const auto [host, port] = parse_host_port(flags.get_string("connect", ""));
  o.host = host;
  o.port = port;
  o.checkpoint = flags.get_string("checkpoint", o.checkpoint);
  o.trace_path = flags.get_string("trace", o.trace_path);
  o.tenant = flags.get_string("tenant", o.tenant);
  if (o.trace_path.empty()) {
    throw OptionsError("trace", "is required (replay sends an existing trace file)");
  }
  if (o.tenant.empty()) {
    throw OptionsError("tenant", "must be non-empty");
  }
  return o;
}

}  // namespace quickdrop::serve
