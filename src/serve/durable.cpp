#include "serve/durable.h"

#include <string>
#include <vector>

namespace quickdrop::serve {
namespace {

// Record body: a small cursor wrapper around a full serialized checkpoint.
// The cursor's rng_state travels here rather than in Checkpoint::RoundCursor
// because the verified-SGA path legitimately has an EMPTY rng state (its
// iterations re-derive RNG from the coordinator seed), which the checkpoint
// cursor format rejects.
// v2 appends the shard topology (shards, fanout) the cursor was captured
// under, so a resumed service can reject a topology switch mid-request. v1
// records (pre-shard-tree builds) are rejected with a clear error rather than
// silently resumed under assumed defaults.
constexpr std::uint64_t kCursorMagic = 0x51445543'00000002ULL;  // "QDUC" v2
constexpr std::uint64_t kCursorMagicV1 = 0x51445543'00000001ULL;

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t get_u64(std::span<const std::uint8_t> bytes, std::size_t& pos) {
  if (bytes.size() - pos < 8) {
    throw store::StoreError("durable cursor record: truncated");
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bytes[pos + i]) << (8 * i);
  pos += 8;
  return v;
}

}  // namespace

std::uint64_t encode_unlearn_cursor(const core::UnlearnCursor& cursor) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cursor.phase)) << 32) |
         static_cast<std::uint32_t>(cursor.rounds_done);
}

core::UnlearnCursorCallback durable_cursor_callback(store::Store& store,
                                                    core::QuickDrop& quickdrop) {
  return [&store, &quickdrop](const core::UnlearnCursor& cursor, const nn::ModelState& state) {
    const auto cp = core::make_checkpoint(state, quickdrop.stores());
    const auto cp_bytes = core::serialize_checkpoint(cp);
    std::vector<std::uint8_t> body;
    body.reserve(cp_bytes.size() + 64);
    put_u64(body, kCursorMagic);
    put_u64(body, static_cast<std::uint64_t>(cursor.phase));
    put_u64(body, static_cast<std::uint64_t>(cursor.rounds_done));
    put_u64(body, cursor.rng_state.size());
    body.insert(body.end(), cursor.rng_state.begin(), cursor.rng_state.end());
    put_u64(body, static_cast<std::uint64_t>(cursor.shards));
    put_u64(body, static_cast<std::uint64_t>(cursor.shard_fanout));
    put_u64(body, cp_bytes.size());
    body.insert(body.end(), cp_bytes.begin(), cp_bytes.end());
    const std::uint64_t layout_hash = core::checkpoint_layout_hash(cp);
    store.put({layout_hash, core::kRecordUnlearnCursor, encode_unlearn_cursor(cursor)}, body);
    store.commit();
  };
}

std::optional<DurableCursor> load_durable_cursor(store::Store& store,
                                                 std::uint64_t layout_hash) {
  const auto key = store.latest(layout_hash, core::kRecordUnlearnCursor);
  if (!key) return std::nullopt;
  const auto body = store.get(*key);
  std::size_t pos = 0;
  const std::uint64_t magic = get_u64(body, pos);
  if (magic == kCursorMagicV1) {
    throw store::StoreError(
        "durable cursor record: v1 record lacks shard topology; "
        "clear stale cursors before resuming with this build");
  }
  if (magic != kCursorMagic) {
    throw store::StoreError("durable cursor record: bad magic");
  }
  DurableCursor out;
  out.cursor.phase = static_cast<int>(get_u64(body, pos));
  if (out.cursor.phase != core::UnlearnCursor::kPhaseUnlearn &&
      out.cursor.phase != core::UnlearnCursor::kPhaseRecover) {
    throw store::StoreError("durable cursor record: bad phase");
  }
  out.cursor.rounds_done = static_cast<int>(get_u64(body, pos));
  if (out.cursor.rounds_done < 0 || out.cursor.rounds_done > 1 << 24) {
    throw store::StoreError("durable cursor record: bad round count");
  }
  const std::uint64_t rng_len = get_u64(body, pos);
  if (rng_len > 4096 || body.size() - pos < rng_len) {
    throw store::StoreError("durable cursor record: bad rng state length");
  }
  out.cursor.rng_state.assign(body.begin() + static_cast<std::ptrdiff_t>(pos),
                              body.begin() + static_cast<std::ptrdiff_t>(pos + rng_len));
  pos += static_cast<std::size_t>(rng_len);
  const std::uint64_t shards = get_u64(body, pos);
  const std::uint64_t fanout = get_u64(body, pos);
  if (shards < 1 || shards > 64 || (shards & (shards - 1)) != 0) {
    throw store::StoreError("durable cursor record: bad shard count");
  }
  if (fanout < 2 || fanout > 64) {
    throw store::StoreError("durable cursor record: bad shard fanout");
  }
  out.cursor.shards = static_cast<int>(shards);
  out.cursor.shard_fanout = static_cast<int>(fanout);
  const std::uint64_t cp_len = get_u64(body, pos);
  if (body.size() - pos != cp_len) {
    throw store::StoreError("durable cursor record: bad checkpoint length");
  }
  out.checkpoint = core::deserialize_checkpoint(
      std::span<const std::uint8_t>(body.data() + pos, static_cast<std::size_t>(cp_len)));
  return out;
}

void clear_durable_cursors(store::Store& store, std::uint64_t layout_hash) {
  bool changed = false;
  for (const auto& key : store.keys()) {
    if (key.layout_hash == layout_hash && key.kind == core::kRecordUnlearnCursor) {
      changed = store.erase(key) || changed;
    }
  }
  if (changed) store.commit();
}

}  // namespace quickdrop::serve
