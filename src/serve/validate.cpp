#include "serve/validate.h"

namespace quickdrop::serve {

const char* reject_reason_name(RejectReason reason) {
  switch (reason) {
    case RejectReason::kTargetOutOfRange:
      return "target-out-of-range";
    case RejectReason::kAlreadyForgotten:
      return "already-forgotten";
    case RejectReason::kDuplicatePending:
      return "duplicate-pending";
    case RejectReason::kEmptyForgetSet:
      return "empty-forget-set";
    case RejectReason::kEmptyRows:
      return "empty-rows";
    case RejectReason::kUnsupportedKind:
      return "unsupported-kind";
  }
  return "?";
}

AdmissionDecision validate_request(const ServiceRequest& request, const ValidationContext& ctx) {
  const std::string what = std::string(kind_name(request.kind)) + " " +
                           std::to_string(request.target);

  // Range first: later checks index per-target state.
  if (request.kind == RequestKind::kClass) {
    if (request.target < 0 || request.target >= ctx.num_classes) {
      return AdmissionDecision::reject(
          RejectReason::kTargetOutOfRange,
          what + " outside [0, " + std::to_string(ctx.num_classes) + ")");
    }
  } else {
    if (request.target < 0 || request.target >= ctx.num_clients) {
      return AdmissionDecision::reject(
          RejectReason::kTargetOutOfRange,
          what + " outside [0, " + std::to_string(ctx.num_clients) + ")");
    }
  }

  if (request.kind == RequestKind::kSample) {
    if (!ctx.supports_sample_level) {
      return AdmissionDecision::reject(
          RejectReason::kUnsupportedKind,
          "executor serves class/client granularity only; sample requests need the "
          "sample-level coordinator (core/sample_level.h)");
    }
    if (request.rows.empty()) {
      return AdmissionDecision::reject(RejectReason::kEmptyRows,
                                       what + " names no rows to forget");
    }
  }

  if (request.kind == RequestKind::kClass && ctx.forgotten_classes &&
      ctx.forgotten_classes->count(request.target)) {
    return AdmissionDecision::reject(RejectReason::kAlreadyForgotten,
                                     what + " was already unlearned");
  }
  if (request.kind == RequestKind::kClient && ctx.forgotten_clients &&
      ctx.forgotten_clients->count(request.target)) {
    return AdmissionDecision::reject(RejectReason::kAlreadyForgotten,
                                     what + " was already unlearned");
  }

  if (ctx.pending) {
    for (const auto& other : *ctx.pending) {
      if (other.kind == request.kind && other.target == request.target) {
        return AdmissionDecision::reject(
            RejectReason::kDuplicatePending,
            what + " duplicates pending request #" + std::to_string(other.id));
      }
    }
  }

  if (ctx.has_forget_data && !ctx.has_forget_data(request)) {
    return AdmissionDecision::reject(RejectReason::kEmptyForgetSet,
                                     "no synthetic forget data exists for " + what);
  }
  return AdmissionDecision::ok();
}

}  // namespace quickdrop::serve
