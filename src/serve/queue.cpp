#include "serve/queue.h"

#include <algorithm>
#include <stdexcept>

#include "util/logging.h"

namespace quickdrop::serve {

AdmissionDecision AdmissionQueue::admit(ServiceRequest request, ValidationContext ctx) {
  ctx.pending = &pending_;
  AdmissionDecision decision = validate_request(request, ctx);
  if (!decision.accepted) {
    QD_LOG_INFO << "serve: rejected " << request.describe() << ": "
                << reject_reason_name(decision.reason) << " (" << decision.message << ")";
    rejected_.push_back({std::move(request), decision.reason, decision.message});
    return decision;
  }
  request.id = next_id_++;
  QD_LOG_DEBUG << "serve: admitted " << request.describe();
  pending_.push_back(std::move(request));
  return decision;
}

std::vector<ServiceRequest> AdmissionQueue::take(const std::vector<std::int64_t>& ids) {
  std::vector<ServiceRequest> out;
  out.reserve(ids.size());
  for (const std::int64_t id : ids) {
    const auto it = std::find_if(pending_.begin(), pending_.end(),
                                 [id](const ServiceRequest& r) { return r.id == id; });
    if (it == pending_.end()) {
      throw std::invalid_argument("AdmissionQueue::take: no pending request #" +
                                  std::to_string(id));
    }
    out.push_back(std::move(*it));
    pending_.erase(it);
  }
  std::sort(out.begin(), out.end(),
            [](const ServiceRequest& a, const ServiceRequest& b) { return a.id < b.id; });
  return out;
}

}  // namespace quickdrop::serve
