// Typed validation for the `serve` and `replay` CLI surfaces.
//
// Before this layer, flag mistakes either fell through to std::sto* noise
// ("stoi") or silently produced a degenerate run (zero requests, negative
// rates). Every constraint now lives in one place, fails with an
// OptionsError naming the offending flag, and is unit-testable without
// invoking the binary. Cross-flag conflicts (e.g. --trace together with
// trace-generation knobs, --listen together with replay knobs) are rejected
// eagerly, and `serve --resume` refuses to continue a run under a different
// scheduler policy than the checkpoint records.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/cli.h"

namespace quickdrop::serve {

/// Checkpoint-metadata key where `serve --out` records its scheduler policy,
/// and which `serve --resume` validates against.
inline constexpr const char* kServePolicyKey = "serve_policy";

/// A rejected flag value or combination. `flag` is the offending flag
/// without the leading dashes.
struct OptionsError : std::invalid_argument {
  OptionsError(std::string flag_name, const std::string& what)
      : std::invalid_argument("--" + flag_name + ": " + what), flag(std::move(flag_name)) {}
  std::string flag;
};

/// Everything `serve` accepts, post-validation.
struct ServeOptions {
  std::string checkpoint = "model.qdcp";
  // Trace: either an explicit file or generation parameters, never both.
  std::string trace_path;
  int requests = 6;
  double arrival_rate_seconds = 60.0;  ///< mean inter-arrival
  double client_fraction = 0.25;
  std::uint64_t trace_seed = 0;  ///< resolved against the federation seed later
  bool trace_seed_set = false;
  // Scheduling.
  std::string policy = "fifo";
  int max_batch = 0;
  bool resume = false;  ///< validate policy against the checkpoint's record
  // Cost model.
  double sec_per_round = 2.0;
  double sec_per_grad = 1e-4;
  // Outputs.
  std::string dump_trace;
  std::string json_path;
  std::string out;
  // Aggregation topology override (fl/shard_tree.h). 0 = inherit the
  // checkpoint's recorded topology. The fold bits are shard-count-invariant,
  // so overriding is safe for fresh requests — but a mid-request --resume
  // under a different topology is rejected by the coordinator.
  int shards = 0;
  int shard_fanout = 0;
  // Network front-end.
  std::string transport = "inproc";  ///< "inproc" or "loopback"
  int listen_port = -1;              ///< --listen PORT (HTTP mode), -1 = off
  int wire_listen_port = -1;         ///< --wire-listen PORT (serves one `replay --connect`)
  std::string tenants_spec;          ///< "name=token,..." for the HTTP API
  double wire_bandwidth = 0.0;       ///< bytes/second for the net-time column
};

/// Reads and validates every serve flag. Throws OptionsError on bad values
/// or conflicting combinations; leaves unknown-flag detection to the
/// caller's flags.check_unused().
ServeOptions parse_serve_options(CliFlags& flags);

/// `serve --resume` gate: the checkpoint must record the same scheduler
/// policy the run requests. Throws OptionsError otherwise (including when
/// the checkpoint predates policy recording).
void validate_resume_policy(const ServeOptions& options,
                            const std::map<std::string, std::string>& metadata);

/// Everything `replay` accepts, post-validation.
struct ReplayOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string checkpoint = "model.qdcp";
  std::string trace_path;
  std::string tenant = "default";
};

/// Reads and validates every replay flag (--connect HOST:PORT is required).
ReplayOptions parse_replay_options(CliFlags& flags);

/// Splits "host:port". Throws OptionsError("connect", ...) on a missing
/// colon, empty host or a port outside [1, 65535].
std::pair<std::string, std::uint16_t> parse_host_port(const std::string& spec);

}  // namespace quickdrop::serve
