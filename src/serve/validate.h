// Admission-time request validation.
//
// Before the fault-tolerant runtime without this layer, a bad request either
// threw deep inside a phase (class id out of range) or silently wasted a full
// SGA+recovery cycle (unlearning an already-forgotten class). The validator
// front-loads every such check into a structured decision with a stable
// reject reason, so callers can count, log and unit-test each failure mode.
#pragma once

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "serve/request.h"

namespace quickdrop::serve {

/// Why a request was refused admission.
enum class RejectReason {
  kTargetOutOfRange,   ///< class/client id outside the deployment
  kAlreadyForgotten,   ///< target was erased by an earlier request
  kDuplicatePending,   ///< an identical request is already queued
  kEmptyForgetSet,     ///< no synthetic data exists for the target
  kEmptyRows,          ///< sample request with no rows
  kUnsupportedKind,    ///< executor cannot serve this granularity
};

/// Stable lower-case token, e.g. "already-forgotten" (used in logs/JSON).
const char* reject_reason_name(RejectReason reason);

/// Outcome of validating one request.
struct AdmissionDecision {
  bool accepted = true;
  RejectReason reason = RejectReason::kTargetOutOfRange;  ///< valid when !accepted
  std::string message;                                    ///< human-readable detail

  static AdmissionDecision ok() { return {}; }
  static AdmissionDecision reject(RejectReason reason, std::string message) {
    return {.accepted = false, .reason = reason, .message = std::move(message)};
  }
};

/// Everything validation needs to know about the deployment and queue state.
/// Pointers are non-owning views valid for the duration of the call.
struct ValidationContext {
  int num_classes = 0;
  int num_clients = 0;
  /// Granularities the executor can serve (sample-level is typically off).
  bool supports_sample_level = false;
  const std::set<int>* forgotten_classes = nullptr;
  const std::set<int>* forgotten_clients = nullptr;
  /// Requests currently queued (duplicate detection); nullptr = skip.
  const std::vector<ServiceRequest>* pending = nullptr;
  /// True iff synthetic forget data exists for the request's target;
  /// empty = skip the check.
  std::function<bool(const ServiceRequest&)> has_forget_data;
};

/// Runs every admission check in a fixed order (range, support, rows,
/// already-forgotten, duplicate, empty forget set) and returns the first
/// failure, so rejection reasons are deterministic.
AdmissionDecision validate_request(const ServiceRequest& request, const ValidationContext& ctx);

}  // namespace quickdrop::serve
