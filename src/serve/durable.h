// Durable mid-request checkpoints: the serve executor's UnlearnCursor stream
// persisted through the crash-safe state store.
//
// The executor reports an UnlearnCursor after every completed unlearn/recover
// round (core/quickdrop.h). `durable_cursor_callback` turns that stream into
// committed store records — each round individually durable, keyed by
// (layout hash, kRecordUnlearnCursor, (phase<<32)|rounds_done) so the latest
// key IS the temporally newest round. A service killed mid-request reopens
// the store, loads the last committed cursor + checkpoint with
// `load_durable_cursor`, and resumes the in-flight cycle bit-identically to
// an uninterrupted run (tests/store/durable_resume_test.cpp proves bitwise
// equality at 1 and 4 threads). After a request completes, the cursor
// records are cleared so a later crash does not resurrect a finished cycle.
#pragma once

#include <optional>

#include "core/checkpoint.h"
#include "core/quickdrop.h"
#include "store/store.h"

namespace quickdrop::serve {

/// A mid-request resume point loaded back from a store: the cursor plus the
/// full checkpoint (global state + synthetic stores) as of that round.
struct DurableCursor {
  core::UnlearnCursor cursor;
  core::Checkpoint checkpoint;
};

/// Store-key cursor for an UnlearnCursor position. Recover-phase keys sort
/// above unlearn-phase keys and rounds sort within a phase, matching
/// execution order, so store::Store::latest() returns the newest round.
std::uint64_t encode_unlearn_cursor(const core::UnlearnCursor& cursor);

/// A cursor callback that persists every reported round into `store` (one
/// committed record per round) together with `quickdrop`'s synthetic stores
/// as of that round. `quickdrop` and `store` must outlive the callback.
core::UnlearnCursorCallback durable_cursor_callback(store::Store& store,
                                                    core::QuickDrop& quickdrop);

/// Newest committed mid-request cursor for this deployment, or nullopt when
/// no request was in flight.
std::optional<DurableCursor> load_durable_cursor(store::Store& store,
                                                 std::uint64_t layout_hash);

/// Removes all mid-request cursor records for this deployment and commits —
/// call once the request's cycle has completed and its result is durable.
void clear_durable_cursors(store::Store& store, std::uint64_t layout_hash);

}  // namespace quickdrop::serve
