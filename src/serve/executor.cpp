#include "serve/executor.h"

#include <stdexcept>

namespace quickdrop::serve {

ExecutionResult Executor::execute(const nn::ModelState& state,
                                  const std::vector<ServiceRequest>& batch,
                                  const core::UnlearnCursorCallback& cursor_callback,
                                  const core::UnlearnCursor* resume) {
  if (batch.empty()) throw std::invalid_argument("Executor::execute: empty batch");
  std::vector<core::UnlearningRequest> core_batch;
  core_batch.reserve(batch.size());
  for (const auto& request : batch) {
    if (!supports(request.kind)) {
      throw std::invalid_argument("Executor::execute: unsupported kind for " + request.describe());
    }
    core_batch.push_back(request.to_core());
  }

  ExecutionResult result;
  result.state = quickdrop_->unlearn_batch(state, core_batch, &result.unlearn_stats,
                                           &result.recovery_stats, {}, cursor_callback, resume);
  result.sim_seconds =
      cost_model_.seconds(result.unlearn_stats) + cost_model_.seconds(result.recovery_stats);
  return result;
}

}  // namespace quickdrop::serve
