// Deterministic admission queue.
//
// Requests enter in trace order; each is validated against the deployment
// and the queue's own state (see serve/validate.h), assigned a monotonically
// increasing id on acceptance, and either queued or recorded as rejected with
// its reason. The pending list preserves admission order (== arrival order,
// since the service admits in trace order), which the schedulers rely on.
#pragma once

#include <vector>

#include "serve/validate.h"

namespace quickdrop::serve {

/// A refused request plus why, kept for the service report.
struct RejectedRequest {
  ServiceRequest request;  ///< id stays -1 (never admitted)
  RejectReason reason = RejectReason::kTargetOutOfRange;
  std::string message;
};

class AdmissionQueue {
 public:
  /// Validates and, on acceptance, assigns the next id and enqueues. The
  /// context's `pending` pointer is overridden to this queue's own pending
  /// list. Returns the decision either way.
  AdmissionDecision admit(ServiceRequest request, ValidationContext ctx);

  /// Pending requests in admission order.
  [[nodiscard]] const std::vector<ServiceRequest>& pending() const { return pending_; }
  [[nodiscard]] bool empty() const { return pending_.empty(); }

  /// Removes and returns the requests with the given ids, preserving
  /// admission order. Throws std::invalid_argument on an unknown id.
  std::vector<ServiceRequest> take(const std::vector<std::int64_t>& ids);

  [[nodiscard]] const std::vector<RejectedRequest>& rejected() const { return rejected_; }
  [[nodiscard]] std::int64_t admitted_count() const { return next_id_; }

 private:
  std::vector<ServiceRequest> pending_;
  std::vector<RejectedRequest> rejected_;
  std::int64_t next_id_ = 0;
};

}  // namespace quickdrop::serve
