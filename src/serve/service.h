// The unlearning request service: a simulated-time event loop over
// (trace → admission queue → scheduler → executor → metrics).
//
// The loop is strictly deterministic: the simulated clock advances either to
// the next trace arrival (when idle) or by the executor's CostModel seconds
// (when serving), and every decision depends only on (trace, seed, config).
// Identical inputs therefore yield a bitwise-identical final model and
// report at any --threads count, including under an active fault plan.
#pragma once

#include <functional>
#include <memory>

#include "serve/executor.h"
#include "serve/metrics.h"
#include "serve/scheduler.h"
#include "serve/trace.h"

namespace quickdrop::serve {

/// Hook evaluated after each cycle for every request it served; fills the
/// accuracy fields of `metrics` (e.g. F-Set / R-Set accuracy against a test
/// set — see bench/ext_request_service.cpp). Optional and purely
/// observational.
using RequestEvaluator =
    std::function<void(const ServiceRequest& request, const nn::ModelState& state,
                       RequestMetrics& metrics)>;

struct ServiceConfig {
  SchedulerPolicy policy = SchedulerPolicy::kFifo;
  int max_batch = 0;  ///< coalescing cap, 0 = unlimited
  CostModel cost_model;
  /// Forwarded to the executor for mid-request checkpointing.
  core::UnlearnCursorCallback cursor_callback;
  RequestEvaluator evaluator;
  /// Transport label stamped into the report ("inproc" unless a net session
  /// overrides it).
  std::string transport = "inproc";
  /// Simulated wire bandwidth used to derive each request's network-time
  /// column from its bytes-on-wire. 0 disables the breakdown (in-process
  /// runs, where nothing crosses a wire). Network time is accounted
  /// *out-of-band* — it never advances the service's sim clock — so the SLA
  /// outcomes of a net replay stay bitwise identical to the in-process path.
  double wire_bytes_per_second = 0.0;
};

/// Pull-based request feed for the service loop. The in-process path wraps a
/// trace vector; the network path (net/replay.h) reads frames off an Io
/// stream lazily. peek() may block (a socket read); the returned pointer
/// stays valid until the next pop().
class RequestSource {
 public:
  virtual ~RequestSource() = default;
  /// Next request in arrival order, or nullptr when the source is exhausted.
  virtual const ServiceRequest* peek() = 0;
  virtual void pop() = 0;
  /// Admission decision for a popped request (`id` is the assigned id, -1 on
  /// rejection). The net source turns these into ack frames.
  virtual void on_decision(const ServiceRequest& request, std::int64_t id,
                           const AdmissionDecision& decision);
  /// Bytes this request cost on the wire (0 for in-process requests).
  [[nodiscard]] virtual std::int64_t wire_bytes(std::int64_t id) const;
};

/// RequestSource over an in-memory trace (the in-process path).
class TraceSource : public RequestSource {
 public:
  explicit TraceSource(const std::vector<ServiceRequest>& trace) : trace_(trace) {}
  const ServiceRequest* peek() override {
    return next_ < trace_.size() ? &trace_[next_] : nullptr;
  }
  void pop() override { ++next_; }

 private:
  const std::vector<ServiceRequest>& trace_;
  std::size_t next_ = 0;
};

/// Builds the admission-validation view of a deployment (class/client
/// ranges, forgotten sets, forget-data probe over the synthetic stores).
/// The context borrows from `quickdrop`; keep it alive for the call.
ValidationContext make_validation_context(const core::QuickDrop& quickdrop);

class UnlearningService {
 public:
  /// `initial` is the trained global model the first cycle starts from.
  UnlearningService(std::shared_ptr<core::QuickDrop> quickdrop, nn::ModelState initial,
                    ServiceConfig config);

  /// Drains the whole trace and returns the aggregate report. May be called
  /// once per service instance.
  ServiceReport run(const std::vector<ServiceRequest>& trace);

  /// Same loop, drawing requests from `source` until it is exhausted. The
  /// trace overload wraps this with a TraceSource; net/replay.h feeds it a
  /// frame-decoding source. Identical request streams yield bitwise-identical
  /// models and SLA outcomes regardless of the source's transport.
  ServiceReport run(RequestSource& source);

  /// Global model after the last completed cycle.
  [[nodiscard]] const nn::ModelState& state() const { return state_; }
  [[nodiscard]] const AdmissionQueue& queue() const { return queue_; }

 private:
  /// Admits every source request with arrival <= the sim clock.
  void admit_due(RequestSource& source);
  [[nodiscard]] ValidationContext validation_context() const;

  std::shared_ptr<core::QuickDrop> quickdrop_;
  nn::ModelState state_;
  ServiceConfig config_;
  Scheduler scheduler_;
  Executor executor_;
  AdmissionQueue queue_;
  double clock_seconds_ = 0.0;
};

}  // namespace quickdrop::serve
