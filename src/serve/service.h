// The unlearning request service: a simulated-time event loop over
// (trace → admission queue → scheduler → executor → metrics).
//
// The loop is strictly deterministic: the simulated clock advances either to
// the next trace arrival (when idle) or by the executor's CostModel seconds
// (when serving), and every decision depends only on (trace, seed, config).
// Identical inputs therefore yield a bitwise-identical final model and
// report at any --threads count, including under an active fault plan.
#pragma once

#include <functional>
#include <memory>

#include "serve/executor.h"
#include "serve/metrics.h"
#include "serve/scheduler.h"
#include "serve/trace.h"

namespace quickdrop::serve {

/// Hook evaluated after each cycle for every request it served; fills the
/// accuracy fields of `metrics` (e.g. F-Set / R-Set accuracy against a test
/// set — see bench/ext_request_service.cpp). Optional and purely
/// observational.
using RequestEvaluator =
    std::function<void(const ServiceRequest& request, const nn::ModelState& state,
                       RequestMetrics& metrics)>;

struct ServiceConfig {
  SchedulerPolicy policy = SchedulerPolicy::kFifo;
  int max_batch = 0;  ///< coalescing cap, 0 = unlimited
  CostModel cost_model;
  /// Forwarded to the executor for mid-request checkpointing.
  core::UnlearnCursorCallback cursor_callback;
  RequestEvaluator evaluator;
};

class UnlearningService {
 public:
  /// `initial` is the trained global model the first cycle starts from.
  UnlearningService(std::shared_ptr<core::QuickDrop> quickdrop, nn::ModelState initial,
                    ServiceConfig config);

  /// Drains the whole trace and returns the aggregate report. May be called
  /// once per service instance.
  ServiceReport run(const std::vector<ServiceRequest>& trace);

  /// Global model after the last completed cycle.
  [[nodiscard]] const nn::ModelState& state() const { return state_; }
  [[nodiscard]] const AdmissionQueue& queue() const { return queue_; }

 private:
  /// Admits every trace request with arrival <= the sim clock.
  void admit_due(const std::vector<ServiceRequest>& trace, std::size_t* next_arrival);
  [[nodiscard]] ValidationContext validation_context() const;

  std::shared_ptr<core::QuickDrop> quickdrop_;
  nn::ModelState state_;
  ServiceConfig config_;
  Scheduler scheduler_;
  Executor executor_;
  AdmissionQueue queue_;
  double clock_seconds_ = 0.0;
};

}  // namespace quickdrop::serve
