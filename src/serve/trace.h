// Seeded arrival-process generation and replayable trace files.
//
// A trace is the service's workload: a time-ordered list of ServiceRequests.
// Traces are either generated from a Poisson-style arrival process (seeded
// Rng => the same seed always yields the identical trace, bit for bit) or
// loaded from the line-oriented text form written by save_trace(), so any
// observed workload can be replayed exactly — the basis of the determinism
// contract "identical trace + seed => identical final model and metrics".
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "serve/request.h"
#include "util/rng.h"

namespace quickdrop::serve {

/// Malformed, truncated, or garbage trace input. Mirrors nn/state.h
/// StateError: derives from std::invalid_argument so generic catch sites keep
/// working, while carrying the 1-based line number of the offending input so
/// a hand-edited trace error is pinpointable.
struct TraceError : std::invalid_argument {
  TraceError(int line, const std::string& what)
      : std::invalid_argument("trace line " + std::to_string(line) + ": " + what),
        line_number(line) {}
  int line_number;
};

/// Parameters of the synthetic arrival process.
struct ArrivalConfig {
  int num_requests = 8;
  /// Mean of the exponential inter-arrival gap (Poisson process); the
  /// service CLI exposes this as --arrival-rate in requests/hour.
  double mean_interarrival_seconds = 120.0;
  /// Fraction of client-level requests; the rest are class-level. Sample
  /// requests are never generated (core::QuickDrop cannot serve them) —
  /// hand-write trace lines to exercise that path.
  double client_fraction = 0.25;
  int num_classes = 10;
  int num_clients = 10;
  /// Priorities are drawn uniformly from [0, priority_levels); 1 keeps every
  /// request at priority 0 (pure FIFO ordering under every policy).
  int priority_levels = 1;
  /// When false (default) targets are drawn without replacement per kind, so
  /// a generated trace never contains requests the validator must reject as
  /// duplicates; generation stops early if targets run out. When true,
  /// targets are drawn with replacement (rejection-path workloads).
  bool allow_duplicates = false;
};

/// Generates a time-ordered trace from the arrival process. Deterministic in
/// (config, rng state). Throws std::invalid_argument on nonsensical config.
std::vector<ServiceRequest> generate_trace(const ArrivalConfig& config, Rng& rng);

/// One request per line, in trace order (see serve/request.h for the format).
std::string format_trace(const std::vector<ServiceRequest>& trace);

/// Inverse of format_trace(). Blank lines and '#' comment lines are skipped.
/// Requests are re-sorted by arrival time (stable), so hand-edited traces
/// need not be pre-sorted. Malformed lines, over-long lines (> 4096 bytes —
/// a binary file fed in by mistake), and a missing final newline (the
/// signature of a mid-line truncated file) all throw TraceError with the
/// offending line number; no input can make parsing crash or yield a
/// silently-shortened trace.
std::vector<ServiceRequest> parse_trace(const std::string& text);

/// File round-trip. save_trace writes atomically (tmp + fsync + rename), so
/// a crash mid-save never leaves a torn trace. Throws std::runtime_error on
/// I/O failure.
void save_trace(const std::vector<ServiceRequest>& trace, const std::string& path);
std::vector<ServiceRequest> load_trace(const std::string& path);

}  // namespace quickdrop::serve
