#include "serve/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace quickdrop::serve {

std::string json_double(double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

double ServiceReport::latency_percentile(double p) const {
  if (completed.empty()) return 0.0;
  std::vector<double> latencies;
  latencies.reserve(completed.size());
  for (const auto& m : completed) latencies.push_back(m.latency());
  std::sort(latencies.begin(), latencies.end());
  // Nearest-rank: ceil(p/100 * N), clamped to [1, N].
  const double clamped = std::min(100.0, std::max(0.0, p));
  auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(latencies.size())));
  if (rank < 1) rank = 1;
  return latencies[rank - 1];
}

double ServiceReport::requests_per_hour() const {
  if (sim_clock_seconds <= 0.0) return 0.0;
  return static_cast<double>(completed.size()) * 3600.0 / sim_clock_seconds;
}

std::string ServiceReport::to_json() const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"policy\": \"" << policy << "\",\n";
  out << "  \"completed\": " << completed.size() << ",\n";
  out << "  \"rejected\": " << rejected.size() << ",\n";
  out << "  \"cycles\": " << cycles << ",\n";
  out << "  \"total_fl_rounds\": " << total_fl_rounds << ",\n";
  out << "  \"total_bytes\": " << total_bytes << ",\n";
  out << "  \"sim_clock_seconds\": " << json_double(sim_clock_seconds) << ",\n";
  out << "  \"latency_p50_seconds\": " << json_double(latency_percentile(50.0)) << ",\n";
  out << "  \"latency_p95_seconds\": " << json_double(latency_percentile(95.0)) << ",\n";
  out << "  \"requests_per_hour\": " << json_double(requests_per_hour()) << ",\n";
  out << "  \"requests\": [\n";
  for (std::size_t i = 0; i < completed.size(); ++i) {
    const auto& m = completed[i];
    out << "    {\"id\": " << m.id << ", \"kind\": \"" << kind_name(m.kind)
        << "\", \"target\": " << m.target
        << ", \"arrival\": " << json_double(m.arrival_seconds)
        << ", \"queue_wait\": " << json_double(m.queue_wait())
        << ", \"latency\": " << json_double(m.latency())
        << ", \"unlearn_rounds\": " << m.unlearn_rounds
        << ", \"recovery_rounds\": " << m.recovery_rounds << ", \"bytes_up\": " << m.bytes_up
        << ", \"bytes_down\": " << m.bytes_down << ", \"batch_size\": " << m.batch_size
        << ", \"cycle\": " << m.cycle << ", \"fset_accuracy\": " << json_double(m.fset_accuracy)
        << ", \"rset_accuracy\": " << json_double(m.rset_accuracy) << "}"
        << (i + 1 < completed.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"rejections\": [\n";
  for (std::size_t i = 0; i < rejected.size(); ++i) {
    const auto& r = rejected[i];
    out << "    {\"kind\": \"" << kind_name(r.request.kind)
        << "\", \"target\": " << r.request.target << ", \"reason\": \""
        << reject_reason_name(r.reason) << "\"}" << (i + 1 < rejected.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  return out.str();
}

}  // namespace quickdrop::serve
