#include "serve/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace quickdrop::serve {

std::string json_double(double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

namespace {

/// Nearest-rank percentile: ceil(p/100 * N), clamped to [1, N]. 0 when empty.
double nearest_rank(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double clamped = std::min(100.0, std::max(0.0, p));
  auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(values.size())));
  if (rank < 1) rank = 1;
  return values[rank - 1];
}

}  // namespace

double ServiceReport::latency_percentile(double p) const {
  std::vector<double> latencies;
  latencies.reserve(completed.size());
  for (const auto& m : completed) latencies.push_back(m.latency());
  return nearest_rank(std::move(latencies), p);
}

double ServiceReport::queue_wait_percentile(double p) const {
  std::vector<double> waits;
  waits.reserve(completed.size());
  for (const auto& m : completed) waits.push_back(m.queue_wait());
  return nearest_rank(std::move(waits), p);
}

double ServiceReport::net_seconds_total() const {
  double total = 0.0;
  for (const auto& m : completed) total += m.net_seconds;
  return total;
}

std::int64_t ServiceReport::wire_bytes_total() const {
  std::int64_t total = 0;
  for (const auto& m : completed) total += m.wire_bytes;
  return total;
}

double ServiceReport::requests_per_hour() const {
  if (sim_clock_seconds <= 0.0) return 0.0;
  return static_cast<double>(completed.size()) * 3600.0 / sim_clock_seconds;
}

std::string ServiceReport::to_json() const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"policy\": \"" << policy << "\",\n";
  // Net-only overlay fields live on dedicated single lines whose keys start
  // with "transport", "wire_" or "net_": the in-process-vs-loopback identity
  // gate (scripts/run_all.sh) greps those lines away and requires the rest of
  // the report to match byte-for-byte.
  out << "  \"transport\": \"" << transport << "\",\n";
  out << "  \"wire_request_bytes\": " << wire_request_bytes << ",\n";
  out << "  \"wire_ack_bytes\": " << wire_ack_bytes << ",\n";
  out << "  \"wire_bytes_total\": " << wire_bytes_total() << ",\n";
  out << "  \"wire_state_bytes_raw\": " << wire_state_bytes_raw << ",\n";
  out << "  \"wire_state_bytes_quantized\": " << wire_state_bytes_quantized << ",\n";
  out << "  \"net_seconds_total\": " << json_double(net_seconds_total()) << ",\n";
  out << "  \"queue_wait_p50_seconds\": " << json_double(queue_wait_percentile(50.0)) << ",\n";
  out << "  \"queue_wait_p95_seconds\": " << json_double(queue_wait_percentile(95.0)) << ",\n";
  out << "  \"completed\": " << completed.size() << ",\n";
  out << "  \"rejected\": " << rejected.size() << ",\n";
  out << "  \"cycles\": " << cycles << ",\n";
  out << "  \"total_fl_rounds\": " << total_fl_rounds << ",\n";
  out << "  \"total_bytes\": " << total_bytes << ",\n";
  out << "  \"sim_clock_seconds\": " << json_double(sim_clock_seconds) << ",\n";
  out << "  \"latency_p50_seconds\": " << json_double(latency_percentile(50.0)) << ",\n";
  out << "  \"latency_p95_seconds\": " << json_double(latency_percentile(95.0)) << ",\n";
  out << "  \"requests_per_hour\": " << json_double(requests_per_hour()) << ",\n";
  out << "  \"requests\": [\n";
  for (std::size_t i = 0; i < completed.size(); ++i) {
    const auto& m = completed[i];
    out << "    {\"id\": " << m.id << ", \"kind\": \"" << kind_name(m.kind)
        << "\", \"target\": " << m.target
        << ", \"arrival\": " << json_double(m.arrival_seconds)
        << ", \"queue_wait\": " << json_double(m.queue_wait())
        << ", \"latency\": " << json_double(m.latency())
        << ", \"unlearn_rounds\": " << m.unlearn_rounds
        << ", \"recovery_rounds\": " << m.recovery_rounds << ", \"bytes_up\": " << m.bytes_up
        << ", \"bytes_down\": " << m.bytes_down << ", \"batch_size\": " << m.batch_size
        << ", \"cycle\": " << m.cycle << ", \"fset_accuracy\": " << json_double(m.fset_accuracy)
        << ", \"rset_accuracy\": " << json_double(m.rset_accuracy) << "}"
        << (i + 1 < completed.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  // Per-request network overlay, on ONE line so the identity gate's grep
  // filter can drop the whole array.
  out << "  \"net_requests\": [";
  for (std::size_t i = 0; i < completed.size(); ++i) {
    const auto& m = completed[i];
    out << (i ? ", " : "") << "{\"id\": " << m.id << ", \"wire_bytes\": " << m.wire_bytes
        << ", \"net_seconds\": " << json_double(m.net_seconds) << "}";
  }
  out << "],\n";
  out << "  \"rejections\": [\n";
  for (std::size_t i = 0; i < rejected.size(); ++i) {
    const auto& r = rejected[i];
    out << "    {\"kind\": \"" << kind_name(r.request.kind)
        << "\", \"target\": " << r.request.target << ", \"reason\": \""
        << reject_reason_name(r.reason) << "\"}" << (i + 1 < rejected.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  return out.str();
}

}  // namespace quickdrop::serve
