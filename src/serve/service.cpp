#include "serve/service.h"

#include <stdexcept>
#include <utility>

#include "util/logging.h"

namespace quickdrop::serve {

UnlearningService::UnlearningService(std::shared_ptr<core::QuickDrop> quickdrop,
                                     nn::ModelState initial, ServiceConfig config)
    : quickdrop_(std::move(quickdrop)),
      state_(std::move(initial)),
      config_(std::move(config)),
      scheduler_(config_.policy, config_.max_batch),
      executor_(quickdrop_, config_.cost_model) {
  if (!quickdrop_) throw std::invalid_argument("UnlearningService: null coordinator");
  // Layout-hash compatibility gate: a state restored from the wrong
  // checkpoint (different net width/depth) must fail here, not as a shape
  // error mid-request.
  if (state_.empty() || !quickdrop_->state_layout() ||
      state_.layout()->hash() != quickdrop_->state_layout()->hash()) {
    throw std::invalid_argument(
        "UnlearningService: initial state layout does not match the coordinator's model");
  }
}

ValidationContext make_validation_context(const core::QuickDrop& quickdrop) {
  ValidationContext ctx;
  ctx.num_classes = quickdrop.num_classes();
  ctx.num_clients = quickdrop.num_clients();
  ctx.supports_sample_level = Executor::supports(RequestKind::kSample);
  ctx.forgotten_classes = &quickdrop.forgotten_classes();
  ctx.forgotten_clients = &quickdrop.forgotten_clients();
  const auto& stores = quickdrop.stores();
  ctx.has_forget_data = [&stores](const ServiceRequest& request) {
    if (request.kind == RequestKind::kClass) {
      for (const auto& store : stores) {
        if (store.has_class(request.target)) return true;
      }
      return false;
    }
    if (request.kind == RequestKind::kClient) {
      return stores[static_cast<std::size_t>(request.target)].total_samples() > 0;
    }
    return true;  // sample-level data lives outside the synthetic stores
  };
  return ctx;
}

ValidationContext UnlearningService::validation_context() const {
  return make_validation_context(*quickdrop_);
}

void RequestSource::on_decision(const ServiceRequest& /*request*/, std::int64_t /*id*/,
                                const AdmissionDecision& /*decision*/) {}

std::int64_t RequestSource::wire_bytes(std::int64_t /*id*/) const { return 0; }

void UnlearningService::admit_due(RequestSource& source) {
  while (const ServiceRequest* next = source.peek()) {
    if (next->arrival_seconds > clock_seconds_) break;
    const ServiceRequest request = *next;
    source.pop();
    const auto decision = queue_.admit(request, validation_context());
    const std::int64_t id = decision.accepted ? queue_.pending().back().id : -1;
    source.on_decision(request, id, decision);
  }
}

ServiceReport UnlearningService::run(const std::vector<ServiceRequest>& trace) {
  TraceSource source(trace);
  return run(source);
}

ServiceReport UnlearningService::run(RequestSource& source) {
  ServiceReport report;
  report.policy = policy_name(scheduler_.policy());
  report.transport = config_.transport;

  while (true) {
    if (queue_.empty()) {
      const ServiceRequest* next = source.peek();
      if (next == nullptr) break;
      // Idle: fast-forward the sim clock to the next arrival.
      clock_seconds_ = std::max(clock_seconds_, next->arrival_seconds);
    }
    admit_due(source);
    if (queue_.empty()) continue;  // everything due was rejected

    const auto ids = scheduler_.next_batch(queue_.pending());
    const auto batch = queue_.take(ids);
    const double start = clock_seconds_;
    QD_LOG_INFO << "serve: cycle " << report.cycles << " (" << policy_name(scheduler_.policy())
                << ") serving " << batch.size() << " request(s) at t=" << start;

    auto result = executor_.execute(state_, batch, config_.cursor_callback);
    state_ = std::move(result.state);
    clock_seconds_ += result.sim_seconds;

    for (const auto& request : batch) {
      RequestMetrics metrics;
      metrics.id = request.id;
      metrics.kind = request.kind;
      metrics.target = request.target;
      metrics.arrival_seconds = request.arrival_seconds;
      metrics.start_seconds = start;
      metrics.completion_seconds = clock_seconds_;
      metrics.unlearn_rounds = result.unlearn_stats.rounds;
      metrics.recovery_rounds = result.recovery_stats.rounds;
      metrics.bytes_up = result.unlearn_stats.cost.bytes_up + result.recovery_stats.cost.bytes_up;
      metrics.bytes_down =
          result.unlearn_stats.cost.bytes_down + result.recovery_stats.cost.bytes_down;
      metrics.batch_size = static_cast<int>(batch.size());
      metrics.cycle = report.cycles;
      metrics.wire_bytes = source.wire_bytes(metrics.id);
      metrics.net_seconds = config_.wire_bytes_per_second > 0.0
                                ? static_cast<double>(metrics.wire_bytes) /
                                      config_.wire_bytes_per_second
                                : 0.0;
      if (config_.evaluator) config_.evaluator(request, state_, metrics);
      report.completed.push_back(metrics);
    }
    report.total_fl_rounds += result.unlearn_stats.rounds + result.recovery_stats.rounds;
    report.total_bytes += result.unlearn_stats.cost.bytes_up +
                          result.unlearn_stats.cost.bytes_down +
                          result.recovery_stats.cost.bytes_up +
                          result.recovery_stats.cost.bytes_down;
    ++report.cycles;
  }

  report.rejected = queue_.rejected();
  report.sim_clock_seconds = clock_seconds_;
  return report;
}

}  // namespace quickdrop::serve
