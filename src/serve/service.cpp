#include "serve/service.h"

#include <stdexcept>
#include <utility>

#include "util/logging.h"

namespace quickdrop::serve {

UnlearningService::UnlearningService(std::shared_ptr<core::QuickDrop> quickdrop,
                                     nn::ModelState initial, ServiceConfig config)
    : quickdrop_(std::move(quickdrop)),
      state_(std::move(initial)),
      config_(std::move(config)),
      scheduler_(config_.policy, config_.max_batch),
      executor_(quickdrop_, config_.cost_model) {
  if (!quickdrop_) throw std::invalid_argument("UnlearningService: null coordinator");
  // Layout-hash compatibility gate: a state restored from the wrong
  // checkpoint (different net width/depth) must fail here, not as a shape
  // error mid-request.
  if (state_.empty() || !quickdrop_->state_layout() ||
      state_.layout()->hash() != quickdrop_->state_layout()->hash()) {
    throw std::invalid_argument(
        "UnlearningService: initial state layout does not match the coordinator's model");
  }
}

ValidationContext UnlearningService::validation_context() const {
  ValidationContext ctx;
  ctx.num_classes = quickdrop_->num_classes();
  ctx.num_clients = quickdrop_->num_clients();
  ctx.supports_sample_level = Executor::supports(RequestKind::kSample);
  ctx.forgotten_classes = &quickdrop_->forgotten_classes();
  ctx.forgotten_clients = &quickdrop_->forgotten_clients();
  const auto& stores = quickdrop_->stores();
  ctx.has_forget_data = [&stores](const ServiceRequest& request) {
    if (request.kind == RequestKind::kClass) {
      for (const auto& store : stores) {
        if (store.has_class(request.target)) return true;
      }
      return false;
    }
    if (request.kind == RequestKind::kClient) {
      return stores[static_cast<std::size_t>(request.target)].total_samples() > 0;
    }
    return true;  // sample-level data lives outside the synthetic stores
  };
  return ctx;
}

void UnlearningService::admit_due(const std::vector<ServiceRequest>& trace,
                                  std::size_t* next_arrival) {
  while (*next_arrival < trace.size() &&
         trace[*next_arrival].arrival_seconds <= clock_seconds_) {
    queue_.admit(trace[*next_arrival], validation_context());
    ++(*next_arrival);
  }
}

ServiceReport UnlearningService::run(const std::vector<ServiceRequest>& trace) {
  ServiceReport report;
  report.policy = policy_name(scheduler_.policy());

  std::size_t next_arrival = 0;
  while (next_arrival < trace.size() || !queue_.empty()) {
    if (queue_.empty()) {
      // Idle: fast-forward the sim clock to the next arrival.
      clock_seconds_ = std::max(clock_seconds_, trace[next_arrival].arrival_seconds);
    }
    admit_due(trace, &next_arrival);
    if (queue_.empty()) continue;  // everything due was rejected

    const auto ids = scheduler_.next_batch(queue_.pending());
    const auto batch = queue_.take(ids);
    const double start = clock_seconds_;
    QD_LOG_INFO << "serve: cycle " << report.cycles << " (" << policy_name(scheduler_.policy())
                << ") serving " << batch.size() << " request(s) at t=" << start;

    auto result = executor_.execute(state_, batch, config_.cursor_callback);
    state_ = std::move(result.state);
    clock_seconds_ += result.sim_seconds;

    for (const auto& request : batch) {
      RequestMetrics metrics;
      metrics.id = request.id;
      metrics.kind = request.kind;
      metrics.target = request.target;
      metrics.arrival_seconds = request.arrival_seconds;
      metrics.start_seconds = start;
      metrics.completion_seconds = clock_seconds_;
      metrics.unlearn_rounds = result.unlearn_stats.rounds;
      metrics.recovery_rounds = result.recovery_stats.rounds;
      metrics.bytes_up = result.unlearn_stats.cost.bytes_up + result.recovery_stats.cost.bytes_up;
      metrics.bytes_down =
          result.unlearn_stats.cost.bytes_down + result.recovery_stats.cost.bytes_down;
      metrics.batch_size = static_cast<int>(batch.size());
      metrics.cycle = report.cycles;
      if (config_.evaluator) config_.evaluator(request, state_, metrics);
      report.completed.push_back(metrics);
    }
    report.total_fl_rounds += result.unlearn_stats.rounds + result.recovery_stats.rounds;
    report.total_bytes += result.unlearn_stats.cost.bytes_up +
                          result.unlearn_stats.cost.bytes_down +
                          result.recovery_stats.cost.bytes_up +
                          result.recovery_stats.cost.bytes_down;
    ++report.cycles;
  }

  report.rejected = queue_.rejected();
  report.sim_clock_seconds = clock_seconds_;
  return report;
}

}  // namespace quickdrop::serve
