#include "serve/request.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace quickdrop::serve {

namespace {

/// Shortest decimal form of `v` that parses back to the identical double.
std::string format_exact(double v) {
  char buf[64];
  for (const int precision : {9, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::stod(buf) == v) break;  // NOLINT(qdlint-num-float-eq) exact round-trip test
  }
  return buf;
}

std::vector<int> parse_int_list(const std::string& text) {
  std::vector<int> out;
  std::string cur;
  std::istringstream in(text);
  while (std::getline(in, cur, ',')) {
    std::size_t used = 0;
    const int v = std::stoi(cur, &used);
    if (used != cur.size()) throw std::invalid_argument("trailing characters in row list");
    out.push_back(v);
  }
  return out;
}

}  // namespace

const char* kind_name(RequestKind kind) {
  switch (kind) {
    case RequestKind::kClass:
      return "class";
    case RequestKind::kClient:
      return "client";
    case RequestKind::kSample:
      return "sample";
  }
  return "?";
}

RequestKind kind_from_name(const std::string& name) {
  if (name == "class") return RequestKind::kClass;
  if (name == "client") return RequestKind::kClient;
  if (name == "sample") return RequestKind::kSample;
  throw std::invalid_argument("unknown request kind '" + name + "'");
}

core::UnlearningRequest ServiceRequest::to_core() const {
  switch (kind) {
    case RequestKind::kClass:
      return core::UnlearningRequest::for_class(target);
    case RequestKind::kClient:
      return core::UnlearningRequest::for_client(target);
    case RequestKind::kSample:
      break;
  }
  throw std::invalid_argument(
      "sample-level requests need the sample-level coordinator (core/sample_level.h)");
}

std::string ServiceRequest::describe() const {
  std::string out = "#" + std::to_string(id) + " " + kind_name(kind) + " " +
                    std::to_string(target) + " @t=" + format_exact(arrival_seconds) + "s";
  if (priority != 0) out += " prio=" + std::to_string(priority);
  if (!rows.empty()) out += " (" + std::to_string(rows.size()) + " rows)";
  return out;
}

std::string format_request(const ServiceRequest& request) {
  std::string line = format_exact(request.arrival_seconds);
  line += " ";
  line += kind_name(request.kind);
  line += " " + std::to_string(request.target);
  if (request.priority != 0) line += " prio=" + std::to_string(request.priority);
  if (!request.rows.empty()) {
    line += " rows=";
    for (std::size_t i = 0; i < request.rows.size(); ++i) {
      if (i > 0) line += ",";
      line += std::to_string(request.rows[i]);
    }
  }
  return line;
}

ServiceRequest parse_request(const std::string& line) {
  std::istringstream in(line);
  std::string arrival_text, kind_text;
  ServiceRequest request;
  if (!(in >> arrival_text >> kind_text >> request.target)) {
    throw std::invalid_argument("malformed trace line '" + line + "'");
  }
  std::size_t used = 0;
  request.arrival_seconds = std::stod(arrival_text, &used);
  if (used != arrival_text.size()) {
    throw std::invalid_argument("malformed arrival time '" + arrival_text + "'");
  }
  request.kind = kind_from_name(kind_text);
  std::string field;
  while (in >> field) {
    if (field.rfind("prio=", 0) == 0) {
      request.priority = std::stoi(field.substr(5));
    } else if (field.rfind("rows=", 0) == 0) {
      request.rows = parse_int_list(field.substr(5));
    } else {
      throw std::invalid_argument("unknown trace field '" + field + "'");
    }
  }
  if (request.kind == RequestKind::kSample && request.rows.empty()) {
    throw std::invalid_argument("sample request without rows= in '" + line + "'");
  }
  return request;
}

}  // namespace quickdrop::serve
