// Executes a scheduled batch through core/QuickDrop's unlearn/recover cycle.
//
// The executor is the bridge between the service's request-level world and
// the coordinator's dataset-level world. It also owns the deterministic cost
// model: service latency is *simulated* seconds derived from the cycle's
// cost counters (rounds, sample gradients, fault backoff) — never wall
// clock — so the metrics JSON is bitwise identical at any --threads count.
#pragma once

#include <memory>
#include <vector>

#include "core/quickdrop.h"
#include "serve/request.h"

namespace quickdrop::serve {

/// Converts a phase's cost counters into simulated seconds.
struct CostModel {
  double seconds_per_round = 2.0;         ///< per-round coordination overhead
  double seconds_per_sample_grad = 1e-4;  ///< per sample-gradient computation

  [[nodiscard]] double seconds(const core::PhaseStats& stats) const {
    return static_cast<double>(stats.rounds) * seconds_per_round +
           static_cast<double>(stats.cost.sample_grads) * seconds_per_sample_grad +
           stats.cost.sim_backoff_seconds;
  }
};

/// Outcome of one unlearn/recover cycle over a batch of requests.
struct ExecutionResult {
  nn::ModelState state;           ///< global model after recovery
  core::PhaseStats unlearn_stats;
  core::PhaseStats recovery_stats;
  double sim_seconds = 0.0;       ///< CostModel seconds for the whole cycle
};

class Executor {
 public:
  Executor(std::shared_ptr<core::QuickDrop> quickdrop, CostModel cost_model)
      : quickdrop_(std::move(quickdrop)), cost_model_(cost_model) {}

  /// Whether this executor can serve requests of `kind`. Sample-level
  /// requests need the core/sample_level.h coordinator, which QuickDrop's
  /// class/client-granular stores do not expose — the queue rejects them at
  /// admission based on this answer.
  [[nodiscard]] static bool supports(RequestKind kind) { return kind != RequestKind::kSample; }

  /// Runs one SGA + recovery cycle over `batch` starting from `state`.
  /// `cursor_callback`/`resume` thread straight through to
  /// QuickDrop::unlearn_batch for mid-request checkpoint and resume.
  ExecutionResult execute(const nn::ModelState& state, const std::vector<ServiceRequest>& batch,
                          const core::UnlearnCursorCallback& cursor_callback = {},
                          const core::UnlearnCursor* resume = nullptr);

  [[nodiscard]] const CostModel& cost_model() const { return cost_model_; }
  [[nodiscard]] core::QuickDrop& quickdrop() { return *quickdrop_; }

 private:
  std::shared_ptr<core::QuickDrop> quickdrop_;
  CostModel cost_model_;
};

}  // namespace quickdrop::serve
