// Per-request lifecycle metrics and the aggregate service report.
//
// Every timestamp here is *simulated* seconds (trace arrival times plus the
// executor's CostModel), so a report is a pure function of (trace, seed,
// config) and bitwise identical at any thread count. Wall-clock never enters
// the JSON.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/queue.h"

namespace quickdrop::serve {

/// Lifecycle record of one completed request.
struct RequestMetrics {
  std::int64_t id = -1;
  RequestKind kind = RequestKind::kClass;
  int target = 0;
  double arrival_seconds = 0.0;     ///< from the trace
  double start_seconds = 0.0;       ///< sim clock when its cycle began
  double completion_seconds = 0.0;  ///< sim clock when its cycle finished
  int unlearn_rounds = 0;           ///< shared across the cycle's batch
  int recovery_rounds = 0;
  std::int64_t bytes_up = 0;  ///< whole-cycle communication (shared)
  std::int64_t bytes_down = 0;
  int batch_size = 1;  ///< requests merged into this cycle
  int cycle = 0;       ///< 0-based index of the cycle that served it
  double fset_accuracy = -1.0;  ///< post-cycle accuracy on the forget set (-1 = not evaluated)
  double rset_accuracy = -1.0;  ///< post-cycle accuracy on the retained classes
  /// Bytes this request cost on the wire (request + ack frames; 0 when it
  /// arrived in-process). Accounted out-of-band: never part of the sim clock.
  std::int64_t wire_bytes = 0;
  /// wire_bytes / ServiceConfig::wire_bytes_per_second (0 when no bandwidth
  /// is configured). A reporting overlay, not a scheduling input.
  double net_seconds = 0.0;

  [[nodiscard]] double queue_wait() const { return start_seconds - arrival_seconds; }
  [[nodiscard]] double latency() const { return completion_seconds - arrival_seconds; }
};

/// Aggregate view of one service run, serializable to deterministic JSON.
struct ServiceReport {
  std::string policy;
  std::string transport = "inproc";       ///< "inproc", "loopback" or "tcp"
  std::vector<RequestMetrics> completed;  ///< completion order
  std::vector<RejectedRequest> rejected;  ///< admission order
  int cycles = 0;
  int total_fl_rounds = 0;  ///< SGA + recovery rounds across all cycles
  std::int64_t total_bytes = 0;
  double sim_clock_seconds = 0.0;  ///< sim clock at last completion
  // Bytes-on-wire accounting, filled only by net sessions (net/replay.h).
  // These are overlay columns: the JSON emits them on dedicated lines
  // (prefixes "transport", "wire_", "net_") so the in-process-vs-loopback
  // identity gate can strip them before diffing reports.
  std::int64_t wire_request_bytes = 0;        ///< request frames received
  std::int64_t wire_ack_bytes = 0;            ///< ack frames sent
  std::int64_t wire_state_bytes_raw = 0;      ///< final state as a raw-v2 update frame
  std::int64_t wire_state_bytes_quantized = 0;  ///< same state under the run's codec

  /// Nearest-rank percentile of completed-request latency, p in [0, 100].
  /// Returns 0 when nothing completed.
  [[nodiscard]] double latency_percentile(double p) const;

  /// Nearest-rank percentile of queueing delay (admission -> cycle start).
  /// The queueing-vs-network latency breakdown pairs this with
  /// net_seconds_total(): queue wait is sim-clock time, network time is the
  /// out-of-band wire cost.
  [[nodiscard]] double queue_wait_percentile(double p) const;

  /// Sum of per-request network seconds (0 for in-process runs).
  [[nodiscard]] double net_seconds_total() const;

  /// Sum of per-request bytes-on-wire.
  [[nodiscard]] std::int64_t wire_bytes_total() const;

  /// Completed requests per simulated hour (0 when the clock never moved).
  [[nodiscard]] double requests_per_hour() const;

  /// Deterministic JSON (fixed field order, fixed float formatting).
  [[nodiscard]] std::string to_json() const;
};

/// Round-trippable fixed-precision float for JSON ("%.6f", never NaN/inf —
/// non-finite values are clamped to 0 with a "null"-free representation).
std::string json_double(double v);

}  // namespace quickdrop::serve
