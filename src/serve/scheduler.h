// Pluggable scheduling policies over the admission queue.
//
// A scheduler looks at the pending requests (all of which have arrived by
// the service's simulated clock) and picks the ids to serve in the next
// unlearn/recover cycle. FIFO and priority pick exactly one request; the
// coalescing batcher merges every compatible pending request into a single
// cycle — one SGA pass over the union forget set plus one recovery pass —
// which generalises bench/fig4's sequential loop and is where the service
// wins its throughput (k merged requests cost one cycle instead of k).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/request.h"

namespace quickdrop::serve {

enum class SchedulerPolicy {
  kFifo,      ///< earliest-admitted request first, one per cycle
  kPriority,  ///< highest priority first (ties: earliest admission)
  kCoalesce,  ///< merge all compatible pending requests into one cycle
};

/// "fifo" | "priority" | "coalesce".
const char* policy_name(SchedulerPolicy policy);
/// Inverse of policy_name(). Throws std::invalid_argument on anything else.
SchedulerPolicy policy_from_name(const std::string& name);

class Scheduler {
 public:
  /// `max_batch` caps a coalesced cycle's size (0 = unlimited); ignored by
  /// the single-request policies.
  explicit Scheduler(SchedulerPolicy policy, int max_batch = 0);

  [[nodiscard]] SchedulerPolicy policy() const { return policy_; }

  /// Ids of the requests to serve next, in admission order. Empty iff
  /// `pending` is empty. Only class/client requests are batchable; a
  /// sample-level request (when an executor supports them) always forms a
  /// singleton cycle.
  [[nodiscard]] std::vector<std::int64_t> next_batch(
      const std::vector<ServiceRequest>& pending) const;

 private:
  SchedulerPolicy policy_;
  int max_batch_;
};

}  // namespace quickdrop::serve
