// Method registry: construct any UnlearningMethod by name.
#pragma once

#include <memory>
#include <vector>

#include "baselines/method.h"

namespace quickdrop::baselines {

/// Known method names: "QuickDrop", "Retrain-Or", "SGA-Or", "FedEraser",
/// "FU-MP", "S2U". Throws std::invalid_argument for unknown names.
std::unique_ptr<UnlearningMethod> make_method(const std::string& name,
                                              const BaselineConfig& config);

/// All method names, QuickDrop last (the tables' presentation order).
std::vector<std::string> all_method_names();

/// The methods applicable to a request kind, in table order.
std::vector<std::unique_ptr<UnlearningMethod>> methods_for(core::UnlearningRequest::Kind kind,
                                                           const BaselineConfig& config);

}  // namespace quickdrop::baselines
