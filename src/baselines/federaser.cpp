#include "baselines/federaser.h"

#include <stdexcept>

#include "util/timer.h"

namespace quickdrop::baselines {

UnlearnOutcome FedEraser::unlearn(TrainedFederation& fed,
                                  const core::UnlearningRequest& request) {
  const auto& history = fed.history;
  if (history.rounds.empty()) {
    throw std::logic_error("FedEraser: no recorded history (harness must record it)");
  }
  const auto retain = original_retain(fed, request);

  UnlearnOutcome out;
  const Timer timer;
  const auto model = fed.factory();
  fl::SgdLocalUpdate calibration(config_.eraser_calibration_steps, config_.batch_size,
                                 config_.train_lr, nn::UpdateDirection::kDescent);
  Rng rng(0xBA5E0005ULL);
  fl::CostMeter cost;

  nn::ModelState state = fed.initial;
  for (std::size_t r = 0; r < history.rounds.size(); ++r) {
    // Remaining clients of this round: recorded participants with retain
    // data. Calibrating only them keeps the cost proportional to the original
    // round (important under partial participation) and matches the stored
    // update being recalibrated.
    std::vector<std::size_t> remaining;
    std::int64_t remaining_samples = 0;
    for (std::size_t i = 0; i < retain.size(); ++i) {
      if (retain[i].empty() || history.updates[r][i].empty()) continue;
      remaining.push_back(i);
      remaining_samples += retain[i].size();
    }
    if (remaining.empty()) continue;  // the target was the round's only participant

    // Stored aggregated update of the remaining clients in this round.
    nn::ModelState stored = nn::zeros_like(state);
    for (const auto i : remaining) {
      const float w = static_cast<float>(retain[i].size()) /
                      static_cast<float>(remaining_samples);
      nn::axpy(stored, history.updates[r][i], w);
    }
    const double stored_norm = nn::l2_norm(stored);

    // Calibrated direction: a few local steps of the remaining clients on
    // their retain data at the *current* reconstructed state.
    nn::ModelState calibrated = nn::zeros_like(state);
    for (const auto i : remaining) {
      nn::load_state(*model, state);
      Rng client_rng = rng.split(r * 131 + i);
      calibration.run(*model, retain[i], history.rounds[r], static_cast<int>(i), client_rng,
                      cost);
      const float w = static_cast<float>(retain[i].size()) /
                      static_cast<float>(remaining_samples);
      nn::axpy(calibrated, nn::subtract(nn::state_of(*model), state), w);
    }
    const double calib_norm = nn::l2_norm(calibrated);

    // new_update = |stored| * calibrated / |calibrated|.
    if (calib_norm > 1e-12) {
      nn::scale(calibrated, static_cast<float>(stored_norm / calib_norm));
      nn::axpy(state, calibrated, 1.0f);
    }
    ++cost.rounds;
  }
  out.after_unlearn = state;
  out.unlearn.seconds = timer.seconds();
  out.unlearn.rounds = static_cast<int>(history.rounds.size());
  out.unlearn.data_size = fl::total_samples(retain);
  out.unlearn.cost = cost;

  // Short recovery fine-tuning on the retain data.
  out.state = run_rounds(fed, state, retain, config_.eraser_recovery_rounds, config_.recover_lr,
                         nn::UpdateDirection::kDescent, &out.recovery, 0x06);
  return out;
}

}  // namespace quickdrop::baselines
