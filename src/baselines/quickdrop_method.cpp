#include "baselines/quickdrop_method.h"

namespace quickdrop::baselines {
namespace {

StageReport to_report(const core::PhaseStats& stats) {
  StageReport r;
  r.seconds = stats.seconds;
  r.rounds = stats.rounds;
  r.data_size = stats.data_size;
  r.cost = stats.cost;
  return r;
}

}  // namespace

UnlearnOutcome QuickDropMethod::unlearn(TrainedFederation& fed,
                                        const core::UnlearningRequest& request) {
  UnlearnOutcome out;
  core::PhaseStats unlearn_stats, recovery_stats;
  // Capture the intermediate state right after the SGA stage for per-stage
  // reporting: run the callback on unlearning rounds only.
  nn::ModelState after_unlearn;
  out.state = fed.quickdrop->unlearn(
      fed.global, request, &unlearn_stats, &recovery_stats,
      [&](int round, const nn::ModelState& state) {
        if (round + 1 == fed.quickdrop->config().unlearn_rounds && after_unlearn.empty()) {
          after_unlearn = state;
        }
      });
  out.after_unlearn = after_unlearn.empty() ? out.state : after_unlearn;
  out.unlearn = to_report(unlearn_stats);
  out.recovery = to_report(recovery_stats);
  return out;
}

nn::ModelState QuickDropMethod::relearn(TrainedFederation& fed, const nn::ModelState& state,
                                        const core::UnlearningRequest& request,
                                        StageReport* report) {
  core::PhaseStats stats;
  nn::ModelState result = fed.quickdrop->relearn(state, request, &stats);
  if (report) *report = to_report(stats);
  return result;
}

}  // namespace quickdrop::baselines
