// FedEraser (Liu et al., IWQoS'21): gradient calibration from stored history.
//
// During training the harness records, every `interval` rounds, the global
// state and each client's local update. Unlearning replays training: starting
// from the initial model, for each recorded round the remaining clients run a
// few *calibration* local steps on their retain data; the stored aggregated
// update of the remaining clients supplies the step *magnitude* while the
// calibrated update supplies the *direction*. A short recovery phase on the
// retain data follows. Storage grows linearly with clients x rounds, the
// drawback the paper highlights.
#pragma once

#include "baselines/method.h"

namespace quickdrop::baselines {

class FedEraser final : public UnlearningMethod {
 public:
  explicit FedEraser(BaselineConfig config) : UnlearningMethod(config) {}
  [[nodiscard]] std::string name() const override { return "FedEraser"; }
  [[nodiscard]] bool supports(core::UnlearningRequest::Kind) const override { return true; }
  UnlearnOutcome unlearn(TrainedFederation& fed, const core::UnlearningRequest& request) override;
};

}  // namespace quickdrop::baselines
