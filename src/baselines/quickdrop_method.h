// Adapter exposing core::QuickDrop behind the UnlearningMethod interface so
// benches can sweep it uniformly against the baselines.
#pragma once

#include "baselines/method.h"

namespace quickdrop::baselines {

class QuickDropMethod final : public UnlearningMethod {
 public:
  explicit QuickDropMethod(BaselineConfig config) : UnlearningMethod(config) {}
  [[nodiscard]] std::string name() const override { return "QuickDrop"; }
  [[nodiscard]] bool supports(core::UnlearningRequest::Kind) const override { return true; }
  UnlearnOutcome unlearn(TrainedFederation& fed, const core::UnlearningRequest& request) override;

  /// Relearning uses the synthetic forget set, keeping QuickDrop's
  /// computation-efficiency edge (paper §4.7).
  nn::ModelState relearn(TrainedFederation& fed, const nn::ModelState& state,
                         const core::UnlearningRequest& request, StageReport* report) override;
};

}  // namespace quickdrop::baselines
