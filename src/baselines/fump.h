// FU-MP (Wang et al., WWW'22): federated unlearning via class-discriminative
// channel pruning.
//
// The relevance of each output channel of the last convolutional block to
// each class is scored with TF-IDF over per-class mean activations; the
// channels most discriminative for the target class are pruned (their
// filters, biases and normalization affine parameters are zeroed), followed
// by recovery rounds on the retain data. Pruning irreversibly modifies the
// model, so FU-MP supports neither client-level unlearning nor relearning.
#pragma once

#include "baselines/method.h"

namespace quickdrop::baselines {

class FuMp final : public UnlearningMethod {
 public:
  explicit FuMp(BaselineConfig config) : UnlearningMethod(config) {}
  [[nodiscard]] std::string name() const override { return "FU-MP"; }
  [[nodiscard]] bool supports(core::UnlearningRequest::Kind kind) const override {
    return kind == core::UnlearningRequest::Kind::kClass;
  }
  [[nodiscard]] bool supports_relearning() const override { return false; }
  UnlearnOutcome unlearn(TrainedFederation& fed, const core::UnlearningRequest& request) override;

  nn::ModelState relearn(TrainedFederation&, const nn::ModelState&,
                         const core::UnlearningRequest&, StageReport*) override;

  /// TF-IDF class-discrimination scores of the last conv block's channels:
  /// [num_classes][channels]. Exposed for tests.
  static std::vector<std::vector<double>> channel_scores(nn::Module& model,
                                                         const TrainedFederation& fed,
                                                         int samples_per_class);
};

}  // namespace quickdrop::baselines
