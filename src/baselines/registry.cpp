#include "baselines/registry.h"

#include <stdexcept>

#include "baselines/federaser.h"
#include "baselines/fump.h"
#include "baselines/quickdrop_method.h"
#include "baselines/simple_methods.h"

namespace quickdrop::baselines {

std::unique_ptr<UnlearningMethod> make_method(const std::string& name,
                                              const BaselineConfig& config) {
  if (name == "QuickDrop") return std::make_unique<QuickDropMethod>(config);
  if (name == "Retrain-Or") return std::make_unique<RetrainOracle>(config);
  if (name == "SGA-Or") return std::make_unique<SgaOriginal>(config);
  if (name == "FedEraser") return std::make_unique<FedEraser>(config);
  if (name == "FU-MP") return std::make_unique<FuMp>(config);
  if (name == "S2U") return std::make_unique<S2U>(config);
  throw std::invalid_argument("make_method: unknown method '" + name + "'");
}

std::vector<std::string> all_method_names() {
  return {"Retrain-Or", "FedEraser", "S2U", "SGA-Or", "FU-MP", "QuickDrop"};
}

std::vector<std::unique_ptr<UnlearningMethod>> methods_for(core::UnlearningRequest::Kind kind,
                                                           const BaselineConfig& config) {
  std::vector<std::unique_ptr<UnlearningMethod>> out;
  for (const auto& name : all_method_names()) {
    auto method = make_method(name, config);
    if (method->supports(kind)) out.push_back(std::move(method));
  }
  return out;
}

}  // namespace quickdrop::baselines
