#include "baselines/simple_methods.h"

#include <stdexcept>

#include "nn/state_accumulator.h"
#include "util/timer.h"

namespace quickdrop::baselines {

UnlearnOutcome RetrainOracle::unlearn(TrainedFederation& fed,
                                      const core::UnlearningRequest& request) {
  const auto retain = original_retain(fed, request);
  UnlearnOutcome out;
  // Full retraining from the original random initialization, excluding D_f.
  out.state = run_rounds(fed, fed.initial, retain, config_.retrain_rounds, config_.train_lr,
                         nn::UpdateDirection::kDescent, &out.unlearn, 0x01);
  out.after_unlearn = out.state;
  return out;
}

UnlearnOutcome SgaOriginal::unlearn(TrainedFederation& fed,
                                    const core::UnlearningRequest& request) {
  const auto forget = original_forget(fed, request);
  const auto retain = original_retain(fed, request);
  UnlearnOutcome out;
  out.after_unlearn =
      run_rounds(fed, fed.global, forget, config_.sga_unlearn_rounds, config_.unlearn_lr,
                 nn::UpdateDirection::kAscent, &out.unlearn, 0x02, /*participation=*/1.0f);
  out.state = run_rounds(fed, out.after_unlearn, retain, config_.sga_recovery_rounds,
                         config_.recover_lr, nn::UpdateDirection::kDescent, &out.recovery, 0x03);
  return out;
}

UnlearnOutcome S2U::unlearn(TrainedFederation& fed, const core::UnlearningRequest& request) {
  if (request.kind != core::UnlearningRequest::Kind::kClient) {
    throw std::invalid_argument("S2U supports client-level unlearning only");
  }
  const auto& clients = fed.client_train();
  const auto target = static_cast<std::size_t>(request.target);
  if (target >= clients.size()) throw std::out_of_range("S2U: bad target client");

  UnlearnOutcome out;
  const Timer timer;
  const auto model = fed.factory();
  fl::SgdLocalUpdate update(config_.local_steps, config_.batch_size, config_.train_lr,
                            nn::UpdateDirection::kDescent);
  Rng rng(0xBA5E0004ULL);
  nn::ModelState global = fed.global;
  fl::CostMeter cost;

  // The reweighting depends only on dataset sizes, so the normalized weights
  // are known before any client trains — which lets each client's state fold
  // straight into a streaming accumulator and be discarded, instead of the
  // old materialize-the-whole-cohort-then-weighted_average copy. A
  // single-lane accumulator fed in index order reproduces weighted_average's
  // per-element double chain bit for bit.
  std::int64_t cohort_samples = 0;
  for (const auto& d : clients) cohort_samples += d.size();
  std::vector<float> weights;
  float weight_sum = 0.0f;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    if (clients[i].empty()) continue;
    // Down-scale the forgetting client; up-scale the rest.
    const float base = static_cast<float>(clients[i].size()) /
                       static_cast<float>(cohort_samples);
    const float w = base * (i == target ? config_.s2u_down : config_.s2u_up);
    weights.push_back(w);
    weight_sum += w;
  }
  if (weight_sum <= 0.0f) throw std::logic_error("S2U: degenerate aggregation weights");
  for (auto& w : weights) w /= weight_sum;

  nn::StateAccumulator acc(global.layout(), /*lanes=*/1);
  nn::ModelState local{global.layout()};
  for (int round = 0; round < config_.s2u_rounds; ++round) {
    std::size_t next_weight = 0;
    for (std::size_t i = 0; i < clients.size(); ++i) {
      if (clients[i].empty()) continue;
      nn::load_state(*model, global);
      Rng client_rng = rng.split(static_cast<std::uint64_t>(round) * 1009 + i);
      update.run(*model, clients[i], round, static_cast<int>(i), client_rng, cost);
      nn::snapshot_into(*model, local);
      acc.fold(local, static_cast<double>(weights[next_weight++]));
    }
    global = acc.finalize();
    acc.reset();
    ++cost.rounds;
  }

  out.state = global;
  out.after_unlearn = global;  // unlearning and recovery are integrated
  out.unlearn.seconds = timer.seconds();
  out.unlearn.rounds = config_.s2u_rounds;
  out.unlearn.data_size = fl::total_samples(clients);
  out.unlearn.cost = cost;
  return out;
}

}  // namespace quickdrop::baselines
