#include "baselines/method.h"

#include "util/timer.h"

namespace quickdrop::baselines {

nn::ModelState UnlearningMethod::run_rounds(TrainedFederation& fed, const nn::ModelState& start,
                                            const std::vector<data::Dataset>& client_data,
                                            int rounds, float lr, nn::UpdateDirection direction,
                                            StageReport* report, std::uint64_t rng_tag,
                                            float participation) {
  const Timer timer;
  const auto model = fed.factory();
  fl::SgdLocalUpdate update(config_.local_steps, config_.batch_size, lr, direction);
  fl::FedAvgConfig fedcfg{
      .rounds = rounds,
      .participation = participation < 0.0f ? config_.participation : participation};
  fedcfg.client_model_factory = fed.factory;
  fl::CostMeter cost;
  Rng rng(0xBA5E0000ULL + rng_tag);
  nn::ModelState result =
      fl::run_fedavg(*model, start, client_data, update, fedcfg, rng, cost);
  if (report) {
    report->seconds = timer.seconds();
    report->rounds = rounds;
    report->data_size = fl::total_samples(client_data);
    report->cost = cost;
  }
  return result;
}

nn::ModelState UnlearningMethod::relearn(TrainedFederation& fed, const nn::ModelState& state,
                                         const core::UnlearningRequest& request,
                                         StageReport* report) {
  const auto forget = original_forget(fed, request);
  return run_rounds(fed, state, forget, config_.relearn_rounds, config_.relearn_lr,
                    nn::UpdateDirection::kDescent, report, 0x9E);
}

}  // namespace quickdrop::baselines
