// Common interface for federated-unlearning methods (QuickDrop + baselines).
#pragma once

#include <string>

#include "baselines/harness.h"
#include "core/request.h"

namespace quickdrop::baselines {

/// Measured cost of one stage (unlearning / recovery / relearning).
struct StageReport {
  double seconds = 0.0;
  int rounds = 0;
  std::int64_t data_size = 0;  ///< samples involved per round
  fl::CostMeter cost;
};

/// Result of serving one unlearning request.
struct UnlearnOutcome {
  nn::ModelState state;          ///< final model (after recovery, if any)
  nn::ModelState after_unlearn;  ///< model right after the unlearning stage
  StageReport unlearn;
  StageReport recovery;
};

/// Hyperparameters shared by the baseline implementations (paper §4.1).
struct BaselineConfig {
  float train_lr = 0.05f;
  float unlearn_lr = 0.02f;
  float recover_lr = 0.01f;
  int local_steps = 5;
  int batch_size = 32;
  float participation = 1.0f;

  // Per-stage round counts. The paper's rounds (SGA: 2+2, FU-MP: 1+4,
  // FedEraser: 10+3) assume T=50 local steps on batches of 256; our rounds
  // carry ~1/50 of that work, so recovery gets proportionally more rounds to
  // reach the same convergence the paper's Table 2 reports per stage.
  int retrain_rounds = 30;          ///< Retrain-Or
  int sga_unlearn_rounds = 2;       ///< SGA-Or
  int sga_recovery_rounds = 4;
  int eraser_calibration_steps = 4; ///< FedEraser: local steps per calibration
  int eraser_recovery_rounds = 4;
  float fump_prune_ratio = 0.6f;    ///< FU-MP: fraction of last-block channels pruned
  int fump_recovery_rounds = 4;
  int s2u_rounds = 6;               ///< S2U: integrated unlearn+recover rounds
  float s2u_down = 0.0f;            ///< weight scale of the forgetting client
  float s2u_up = 1.0f;              ///< weight scale of the remaining clients
  int relearn_rounds = 3;
  /// Gentler than recover_lr: relearning trains on the forget data only and
  /// must not catastrophically forget the retained classes.
  float relearn_lr = 0.02f;
};

/// A federated-unlearning algorithm.
class UnlearningMethod {
 public:
  virtual ~UnlearningMethod() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual bool supports(core::UnlearningRequest::Kind kind) const = 0;
  [[nodiscard]] virtual bool supports_relearning() const { return true; }

  /// Serves an unlearning request starting from fed.global.
  virtual UnlearnOutcome unlearn(TrainedFederation& fed,
                                 const core::UnlearningRequest& request) = 0;

  /// Relearns previously erased knowledge. The default performs FedAvg SGD
  /// rounds on the original forget data; QuickDrop overrides to use its
  /// synthetic data; FU-MP cannot relearn (pruning is irreversible).
  virtual nn::ModelState relearn(TrainedFederation& fed, const nn::ModelState& state,
                                 const core::UnlearningRequest& request,
                                 StageReport* report = nullptr);

 protected:
  explicit UnlearningMethod(BaselineConfig config) : config_(config) {}

  /// Runs FedAvg rounds with plain SGD/SGA local steps over per-client data.
  /// `participation` < 0 means "use config_.participation"; unlearning stages
  /// pass 1.0 (the paper runs unlearning at 100% participation, §4.5).
  nn::ModelState run_rounds(TrainedFederation& fed, const nn::ModelState& start,
                            const std::vector<data::Dataset>& client_data, int rounds, float lr,
                            nn::UpdateDirection direction, StageReport* report,
                            std::uint64_t rng_tag, float participation = -1.0f);

  BaselineConfig config_;
};

}  // namespace quickdrop::baselines
