// Shared training harness for comparing FU methods.
//
// The paper's evaluation unlearns from one FL-trained model per setting. The
// harness trains once with QuickDrop's in-situ distillation (which does not
// perturb model updates — they use the real-data gradients) while recording
// the per-round client updates FedEraser needs, so every method starts from
// the identical trained model.
#pragma once

#include <memory>

#include "core/quickdrop.h"
#include "data/partition.h"

namespace quickdrop::baselines {

/// Per-round history recorded for FedEraser (Liu et al., IWQoS'21).
struct EraserHistory {
  int interval = 1;  ///< rounds between snapshots
  /// Round indices of the snapshots.
  std::vector<int> rounds;
  /// Global state at the start of each recorded round.
  std::vector<nn::ModelState> globals;
  /// updates[r][i] = client i's local update (local - global) in recorded
  /// round r; empty ModelState when the client did not participate.
  std::vector<std::vector<nn::ModelState>> updates;

  /// Storage footprint of the recorded updates (the paper's storage-cost
  /// argument against gradient-calibration methods).
  [[nodiscard]] std::int64_t byte_size() const;

  /// Breakdown of the history's in-memory representation. Recorded states
  /// are FlatStates: one contiguous buffer each, all sharing layout
  /// manifests, versus the pre-refactor per-tensor representation that paid
  /// a Tensor handle + shape vector + refcounted float buffer per parameter
  /// of every stored state.
  struct MemoryReport {
    std::int64_t states = 0;           ///< non-empty stored states
    std::int64_t payload_bytes = 0;    ///< raw float payloads
    std::int64_t layout_bytes = 0;     ///< distinct shared layout manifests
    std::int64_t distinct_layouts = 0;
    /// Estimated extra bytes the same history cost as vector<Tensor>
    /// (per-tensor handles, control blocks, and shape storage) — the memory
    /// the flat representation saves.
    std::int64_t legacy_overhead_bytes = 0;
  };
  [[nodiscard]] MemoryReport memory_report() const;
};

/// Output of the shared training phase consumed by every UnlearningMethod.
struct TrainedFederation {
  fl::ModelFactory factory;
  std::shared_ptr<core::QuickDrop> quickdrop;  ///< owns synthetic stores & config
  data::Dataset test;                          ///< global test set
  nn::ModelState initial;                      ///< state before round 0
  nn::ModelState global;                       ///< trained model
  EraserHistory history;
  double train_seconds = 0.0;

  [[nodiscard]] const std::vector<data::Dataset>& client_train() const {
    return quickdrop->client_train();
  }
  [[nodiscard]] int num_classes() const { return test.num_classes(); }
};

/// Configuration of the shared harness.
struct HarnessConfig {
  core::QuickDropConfig quickdrop;
  int eraser_interval = 5;  ///< record FedEraser history every k rounds
  std::uint64_t seed = 1;
};

/// Trains the federation once; see file comment.
TrainedFederation train_federation(fl::ModelFactory factory,
                                   std::vector<data::Dataset> client_train, data::Dataset test,
                                   const HarnessConfig& config);

/// Per-client *original* forget datasets D_f for a request.
std::vector<data::Dataset> original_forget(const TrainedFederation& fed,
                                           const core::UnlearningRequest& request);

/// Per-client *original* retain datasets D \ D_f for a request.
std::vector<data::Dataset> original_retain(const TrainedFederation& fed,
                                           const core::UnlearningRequest& request);

}  // namespace quickdrop::baselines
