// Retrain-Or, SGA-Or and S2U baselines.
#pragma once

#include "baselines/method.h"

namespace quickdrop::baselines {

/// Retrain-Or: retrains the model from scratch on D \ D_f — the oracle
/// (paper §2.3). No recovery stage; the single "unlearning" stage is full
/// retraining.
class RetrainOracle final : public UnlearningMethod {
 public:
  explicit RetrainOracle(BaselineConfig config) : UnlearningMethod(config) {}
  [[nodiscard]] std::string name() const override { return "Retrain-Or"; }
  [[nodiscard]] bool supports(core::UnlearningRequest::Kind) const override { return true; }
  UnlearnOutcome unlearn(TrainedFederation& fed, const core::UnlearningRequest& request) override;
};

/// SGA-Or (Wu et al.): stochastic gradient ascent rounds on the original D_f
/// followed by SGD recovery rounds on the original D \ D_f (Algorithm 1).
class SgaOriginal final : public UnlearningMethod {
 public:
  explicit SgaOriginal(BaselineConfig config) : UnlearningMethod(config) {}
  [[nodiscard]] std::string name() const override { return "SGA-Or"; }
  [[nodiscard]] bool supports(core::UnlearningRequest::Kind) const override { return true; }
  UnlearnOutcome unlearn(TrainedFederation& fed, const core::UnlearningRequest& request) override;
};

/// S2U (Gao et al., VeriFi): integrated unlearning+recovery rounds in which
/// every client trains on its original data but the forgetting client's
/// update is scaled down while the remaining clients' updates are scaled up.
/// Client-level only.
class S2U final : public UnlearningMethod {
 public:
  explicit S2U(BaselineConfig config) : UnlearningMethod(config) {}
  [[nodiscard]] std::string name() const override { return "S2U"; }
  [[nodiscard]] bool supports(core::UnlearningRequest::Kind kind) const override {
    return kind == core::UnlearningRequest::Kind::kClient;
  }
  UnlearnOutcome unlearn(TrainedFederation& fed, const core::UnlearningRequest& request) override;
};

}  // namespace quickdrop::baselines
