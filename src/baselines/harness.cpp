#include "baselines/harness.h"

#include <set>

#include "util/logging.h"
#include "util/timer.h"

namespace quickdrop::baselines {

std::int64_t EraserHistory::byte_size() const {
  std::int64_t bytes = 0;
  for (const auto& round : updates) {
    for (const auto& state : round) bytes += nn::state_bytes(state);
  }
  for (const auto& g : globals) bytes += nn::state_bytes(g);
  return bytes;
}

EraserHistory::MemoryReport EraserHistory::memory_report() const {
  MemoryReport report;
  std::set<const nn::StateLayout*> layouts;
  const auto visit = [&](const nn::ModelState& state) {
    if (state.empty()) return;
    ++report.states;
    report.payload_bytes += nn::state_bytes(state);
    layouts.insert(state.layout().get());
    // What the same state cost as std::vector<Tensor>: per parameter, a
    // Tensor handle, a heap vector<float> + shared_ptr control block
    // (~2 pointers), and the shape's heap storage.
    for (const auto& shape : state.layout()->shapes()) {
      report.legacy_overhead_bytes +=
          static_cast<std::int64_t>(sizeof(Tensor) + sizeof(std::vector<float>) +
                                    2 * sizeof(void*) + shape.size() * sizeof(std::int64_t));
    }
  };
  for (const auto& round : updates) {
    for (const auto& state : round) visit(state);
  }
  for (const auto& g : globals) visit(g);
  report.distinct_layouts = static_cast<std::int64_t>(layouts.size());
  for (const auto* layout : layouts) {
    std::int64_t bytes = static_cast<std::int64_t>(sizeof(nn::StateLayout));
    for (const auto& shape : layout->shapes()) {
      // Shape dims plus the matching offset entry.
      bytes += static_cast<std::int64_t>((shape.size() + 1) * sizeof(std::int64_t));
    }
    report.layout_bytes += bytes;
  }
  return report;
}

TrainedFederation train_federation(fl::ModelFactory factory,
                                   std::vector<data::Dataset> client_train, data::Dataset test,
                                   const HarnessConfig& config) {
  TrainedFederation fed{.factory = factory,
                        .quickdrop = std::make_shared<core::QuickDrop>(
                            factory, std::move(client_train), config.quickdrop, config.seed),
                        .test = std::move(test),
                        .initial = {},
                        .global = {},
                        .history = {},
                        .train_seconds = 0.0};
  fed.initial = fed.quickdrop->initial_state();
  fed.history.interval = config.eraser_interval;
  const int num_clients = fed.quickdrop->num_clients();

  const Timer timer;
  // The client callback only fires for updates that passed the resilient
  // engine's validation, so quarantined (NaN/outlier) uploads can never
  // poison the FedEraser historical record.
  fed.global = fed.quickdrop->train(
      /*callback=*/{},
      /*client_callback=*/[&](int round, int client, const nn::ModelState& local,
                              const nn::ModelState& global_before) {
        if (round % config.eraser_interval != 0) return;
        auto& h = fed.history;
        if (h.rounds.empty() || h.rounds.back() != round) {
          h.rounds.push_back(round);
          h.globals.push_back(global_before);
          h.updates.emplace_back(static_cast<std::size_t>(num_clients));
        }
        h.updates.back()[static_cast<std::size_t>(client)] = nn::subtract(local, global_before);
      });
  fed.train_seconds = timer.seconds();
  const auto memory = fed.history.memory_report();
  QD_LOG_INFO << "FedEraser history: " << memory.states << " flat state(s), "
              << memory.payload_bytes << " payload bytes sharing " << memory.distinct_layouts
              << " layout manifest(s) (" << memory.layout_bytes << " bytes); flat representation"
              << " saves ~" << memory.legacy_overhead_bytes - memory.layout_bytes
              << " bytes of per-tensor overhead";
  const auto& cost = fed.quickdrop->training_stats().cost;
  if (cost.total_faults() > 0 || cost.lost_rounds > 0) {
    QD_LOG_WARN << "shared training survived faults: " << cost.crashed_clients << " crashes, "
                << cost.straggler_timeouts << " stragglers, " << cost.quarantined_updates
                << " quarantined updates, " << cost.retried_rounds << " retried and "
                << cost.lost_rounds << " lost rounds";
  }
  return fed;
}

namespace {

std::vector<data::Dataset> split_clients(const TrainedFederation& fed,
                                         const core::UnlearningRequest& request, bool forget) {
  const auto& clients = fed.client_train();
  std::vector<data::Dataset> out;
  out.reserve(clients.size());
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const auto& d = clients[i];
    if (request.kind == core::UnlearningRequest::Kind::kClient) {
      const bool is_target = static_cast<int>(i) == request.target;
      if (is_target == forget) {
        out.push_back(d);
      } else {
        out.push_back(data::Dataset(d.image_shape(), d.num_classes()));
      }
      continue;
    }
    std::vector<int> rows;
    for (int r = 0; r < d.size(); ++r) {
      if ((d.label(r) == request.target) == forget) rows.push_back(r);
    }
    out.push_back(d.subset(rows));
  }
  return out;
}

}  // namespace

std::vector<data::Dataset> original_forget(const TrainedFederation& fed,
                                           const core::UnlearningRequest& request) {
  return split_clients(fed, request, /*forget=*/true);
}

std::vector<data::Dataset> original_retain(const TrainedFederation& fed,
                                           const core::UnlearningRequest& request) {
  return split_clients(fed, request, /*forget=*/false);
}

}  // namespace quickdrop::baselines
