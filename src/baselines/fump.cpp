#include "baselines/fump.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "nn/convnet.h"
#include "util/timer.h"

namespace quickdrop::baselines {
namespace {

/// Index of the last Conv2d in the Sequential, and of the ReLU that follows.
struct ConvLocation {
  std::size_t conv = 0;
  std::size_t relu = 0;
  int channels = 0;
};

ConvLocation locate_last_conv(nn::Sequential& net) {
  ConvLocation loc;
  bool found = false;
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (auto* conv = dynamic_cast<nn::Conv2d*>(&net.layer(i))) {
      loc.conv = i;
      loc.channels = conv->out_channels();
      found = true;
      // Find the activation following this conv.
      for (std::size_t j = i + 1; j < net.size(); ++j) {
        if (dynamic_cast<nn::ReLU*>(&net.layer(j)) != nullptr) {
          loc.relu = j;
          break;
        }
      }
    }
  }
  if (!found) throw std::logic_error("FU-MP: model has no Conv2d layer");
  return loc;
}

/// Mean activation per channel of layer `upto` (inclusive) for a batch.
std::vector<double> mean_channel_activation(nn::Sequential& net, std::size_t upto,
                                            const Tensor& images) {
  ag::Var x = ag::Var::constant(images);
  for (std::size_t i = 0; i <= upto; ++i) x = net.layer(i).forward(x);
  const Tensor& act = x.value();  // [N, K, H, W]
  const std::int64_t n = act.dim(0), k = act.dim(1), hw = act.dim(2) * act.dim(3);
  std::vector<double> mean(static_cast<std::size_t>(k), 0.0);
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t c = 0; c < k; ++c) {
      double acc = 0.0;
      const auto base = (b * k + c) * hw;
      for (std::int64_t p = 0; p < hw; ++p) acc += act.at(base + p);
      mean[static_cast<std::size_t>(c)] += acc / static_cast<double>(hw);
    }
  }
  for (auto& m : mean) m /= static_cast<double>(n);
  return mean;
}

}  // namespace

std::vector<std::vector<double>> FuMp::channel_scores(nn::Module& model,
                                                      const TrainedFederation& fed,
                                                      int samples_per_class) {
  auto* net = dynamic_cast<nn::Sequential*>(&model);
  if (net == nullptr) throw std::logic_error("FU-MP: model must be a Sequential ConvNet");
  const auto loc = locate_last_conv(*net);
  const int num_classes = fed.num_classes();

  // Per-class mean channel activations, pooled over clients' local data
  // (each client scores locally in the real protocol; pooling is the same
  // computation).
  std::vector<std::vector<double>> activation(
      static_cast<std::size_t>(num_classes),
      std::vector<double>(static_cast<std::size_t>(loc.channels), 0.0));
  Rng rng(0xF0A9);
  for (int c = 0; c < num_classes; ++c) {
    // Gather up to samples_per_class rows of class c across clients.
    int taken = 0;
    std::vector<double> acc(static_cast<std::size_t>(loc.channels), 0.0);
    int batches = 0;
    for (const auto& client : fed.client_train()) {
      if (taken >= samples_per_class) break;
      auto rows = client.indices_of_class(c);
      if (rows.empty()) continue;
      rows = data::Dataset::sample_batch_indices(
          rows, std::min<int>(samples_per_class - taken, static_cast<int>(rows.size())), rng);
      auto [images, labels] = client.batch(rows);
      (void)labels;
      const auto mean = mean_channel_activation(*net, loc.relu, images);
      for (std::size_t k = 0; k < mean.size(); ++k) acc[k] += mean[k];
      ++batches;
      taken += static_cast<int>(rows.size());
    }
    if (batches > 0) {
      for (std::size_t k = 0; k < acc.size(); ++k) {
        activation[static_cast<std::size_t>(c)][k] = acc[k] / batches;
      }
    }
  }

  // TF-IDF scoring: TF normalizes a channel's activation within the class;
  // IDF discounts channels that fire for many classes.
  std::vector<std::vector<double>> scores = activation;
  for (std::size_t k = 0; k < static_cast<std::size_t>(loc.channels); ++k) {
    double column_mean = 0.0;
    for (int c = 0; c < num_classes; ++c) column_mean += activation[static_cast<std::size_t>(c)][k];
    column_mean /= num_classes;
    int active_classes = 0;
    for (int c = 0; c < num_classes; ++c) {
      active_classes += activation[static_cast<std::size_t>(c)][k] > column_mean;
    }
    const double idf =
        std::log(static_cast<double>(num_classes) / (1.0 + static_cast<double>(active_classes)));
    for (int c = 0; c < num_classes; ++c) {
      const auto& row = activation[static_cast<std::size_t>(c)];
      const double row_sum = std::accumulate(row.begin(), row.end(), 0.0) + 1e-12;
      scores[static_cast<std::size_t>(c)][k] = row[k] / row_sum * idf;
    }
  }
  return scores;
}

UnlearnOutcome FuMp::unlearn(TrainedFederation& fed, const core::UnlearningRequest& request) {
  if (request.kind != core::UnlearningRequest::Kind::kClass) {
    throw std::invalid_argument("FU-MP supports class-level unlearning only");
  }
  UnlearnOutcome out;
  const Timer timer;
  const auto model = fed.factory();
  nn::load_state(*model, fed.global);
  auto* net = dynamic_cast<nn::Sequential*>(model.get());
  if (net == nullptr) throw std::logic_error("FU-MP: model must be a Sequential ConvNet");
  const auto loc = locate_last_conv(*net);

  constexpr int kScoreSamples = 32;
  const auto scores = channel_scores(*model, fed, kScoreSamples);
  const auto& target_scores = scores.at(static_cast<std::size_t>(request.target));

  // Prune the channels most discriminative for the target class.
  const int prune_count = std::max(
      1, static_cast<int>(static_cast<float>(loc.channels) * config_.fump_prune_ratio));
  std::vector<int> order(target_scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return target_scores[static_cast<std::size_t>(a)] >
                                        target_scores[static_cast<std::size_t>(b)]; });

  auto* conv = dynamic_cast<nn::Conv2d*>(&net->layer(loc.conv));
  Tensor& weight = conv->weight().mutable_value();  // [F, C*k*k]
  Tensor& bias = conv->bias().mutable_value();      // [F]
  const std::int64_t row = weight.dim(1);
  for (int i = 0; i < prune_count; ++i) {
    const int k = order[static_cast<std::size_t>(i)];
    for (std::int64_t j = 0; j < row; ++j) weight.at(k * row + j) = 0.0f;
    bias.at(k) = 0.0f;
    // Zero the following InstanceNorm's affine parameters for this channel so
    // the pruned channel is exactly silent.
    if (loc.conv + 1 < net->size()) {
      if (auto* norm = dynamic_cast<nn::InstanceNorm2d*>(&net->layer(loc.conv + 1))) {
        auto params = norm->parameters();
        params[0].mutable_value().at(k) = 0.0f;  // gamma [1,C,1,1]
        params[1].mutable_value().at(k) = 0.0f;  // beta
      }
    }
  }
  out.after_unlearn = nn::state_of(*model);
  out.unlearn.seconds = timer.seconds();
  out.unlearn.rounds = 1;
  // Scoring touches the pooled per-class samples (inference only).
  out.unlearn.data_size = static_cast<std::int64_t>(kScoreSamples) * fed.num_classes();

  const auto retain = original_retain(fed, request);
  out.state = run_rounds(fed, out.after_unlearn, retain, config_.fump_recovery_rounds,
                         config_.recover_lr, nn::UpdateDirection::kDescent, &out.recovery, 0x07);
  return out;
}

nn::ModelState FuMp::relearn(TrainedFederation&, const nn::ModelState&,
                             const core::UnlearningRequest&, StageReport*) {
  throw std::logic_error("FU-MP cannot relearn: channel pruning is irreversible");
}

}  // namespace quickdrop::baselines
