// GDPR scenario: a hospital consortium trains a shared diagnostic model; one
// hospital exercises the right to be forgotten and must be erased from the
// model (client-level unlearning). The example contrasts QuickDrop with
// retraining from scratch and verifies the erasure with a membership
// inference attack — the workflow the paper's introduction motivates.
#include <cstdio>

#include "attack/mia.h"
#include "baselines/registry.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "metrics/evaluate.h"
#include "nn/convnet.h"

namespace qd = quickdrop;

int main() {
  // A consortium of 8 "hospitals" with highly skewed local case mixes.
  auto spec = qd::data::cifar10_like_spec();
  const auto dataset = qd::data::make_synthetic(spec);
  qd::Rng partition_rng(7);
  auto clients = qd::data::materialize(
      dataset.train, qd::data::dirichlet_partition(dataset.train, 8, 0.1f, partition_rng));

  qd::nn::ConvNetConfig net;
  net.in_channels = 3;
  net.image_size = 12;
  net.width = 16;
  net.depth = 2;
  auto model_rng = std::make_shared<qd::Rng>(11);
  qd::fl::ModelFactory factory = [model_rng, net] { return qd::nn::make_convnet(net, *model_rng); };

  qd::baselines::HarnessConfig harness;
  harness.quickdrop.fl_rounds = 30;
  harness.quickdrop.local_steps = 5;
  harness.quickdrop.train_lr = 0.05f;
  harness.quickdrop.scale = 10;
  harness.quickdrop.unlearn_lr = 0.05f;
  harness.quickdrop.recover_lr = 0.03f;
  harness.seed = 13;

  std::printf("training the consortium model (8 hospitals)...\n");
  auto fed = qd::baselines::train_federation(factory, std::move(clients), dataset.test, harness);
  auto model = factory();
  qd::nn::load_state(*model, fed.global);
  std::printf("consortium model test accuracy: %.1f%%\n\n",
              100.0 * qd::metrics::accuracy(*model, fed.test));

  // Hospital 2 invokes its right to be forgotten.
  const int leaving = 2;
  const auto request = qd::core::UnlearningRequest::for_client(leaving);
  const auto& leaving_data = fed.client_train()[static_cast<std::size_t>(leaving)];
  std::printf("hospital %d requests erasure (%d local records)\n\n", leaving,
              leaving_data.size());

  const auto baseline_cfg = qd::baselines::BaselineConfig{
      .train_lr = 0.05f, .unlearn_lr = 0.05f, .recover_lr = 0.03f, .local_steps = 5,
      .batch_size = 32, .participation = 1.0f, .retrain_rounds = 30};

  for (const auto& name : {"Retrain-Or", "QuickDrop"}) {
    auto method = qd::baselines::make_method(name, baseline_cfg);
    const auto out = method->unlearn(fed, request);
    qd::nn::load_state(*model, out.state);

    // Verify: accuracy on the leaving hospital's data should drop toward
    // what a model that never saw it would achieve, and a membership
    // inference attack should no longer recognize its records.
    std::vector<int> rows;
    for (int i = 0; i < fed.test.size(); ++i) rows.push_back(i);
    qd::Rng mia_rng(17);
    qd::data::Dataset retained(leaving_data.image_shape(), leaving_data.num_classes());
    for (std::size_t i = 0; i < fed.client_train().size(); ++i) {
      if (static_cast<int>(i) == leaving) continue;
      retained = retained.empty()
                     ? fed.client_train()[i]
                     : qd::data::Dataset::concat(retained, fed.client_train()[i]);
    }
    const auto mia = qd::attack::run_mia(*model, retained, fed.test, leaving_data, retained,
                                         mia_rng);
    std::printf("%-11s  acc on leaving hospital's data: %5.1f%%  test acc: %5.1f%%  "
                "MIA member-rate on erased records: %5.1f%%  (%.1fs)\n",
                name, 100.0 * qd::metrics::accuracy(*model, leaving_data),
                100.0 * qd::metrics::accuracy(*model, fed.test),
                100.0 * mia.forget_member_rate,
                out.unlearn.seconds + out.recovery.seconds);
  }
  std::printf("\nQuickDrop erases the hospital's influence at a fraction of retraining cost.\n");
  return 0;
}
