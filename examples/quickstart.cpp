// Quickstart: the complete QuickDrop lifecycle in ~60 lines of API use.
//
//   1. build a federation (synthetic CIFAR-10 stand-in, non-IID clients),
//   2. train with in-situ synthetic-data generation,
//   3. serve a class-level unlearning request,
//   4. relearn the class.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/quickdrop.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "metrics/evaluate.h"
#include "nn/convnet.h"

namespace qd = quickdrop;

int main() {
  // 1. Data: a 10-class image dataset, split across 10 non-IID clients.
  const auto dataset = qd::data::make_synthetic(qd::data::cifar10_like_spec());
  qd::Rng partition_rng(1);
  const auto clients = qd::data::materialize(
      dataset.train, qd::data::dirichlet_partition(dataset.train, 10, 0.1f, partition_rng));

  // Model family: the paper's ConvNet backbone, scaled for CPU.
  qd::nn::ConvNetConfig net;
  net.in_channels = 3;
  net.image_size = 12;
  net.width = 16;
  net.depth = 2;
  auto model_rng = std::make_shared<qd::Rng>(2);
  qd::fl::ModelFactory factory = [model_rng, net] { return qd::nn::make_convnet(net, *model_rng); };

  // 2. Train: FedAvg + in-situ gradient-matching distillation.
  qd::core::QuickDropConfig config;
  config.fl_rounds = 30;
  config.local_steps = 5;
  config.batch_size = 32;
  config.train_lr = 0.05f;
  config.scale = 10;  // synthetic data = ~10% of each client's volume here
  config.unlearn_lr = 0.05f;
  config.recover_lr = 0.03f;
  qd::core::QuickDrop quickdrop(factory, clients, config, /*seed=*/3);

  std::printf("training 10 clients, %d rounds (synthetic data generated in situ)...\n",
              config.fl_rounds);
  auto state = quickdrop.train();

  auto model = factory();
  qd::nn::load_state(*model, state);
  std::printf("test accuracy after training: %.1f%%\n",
              100.0 * qd::metrics::accuracy(*model, dataset.test));

  // 3. Unlearn class 9 — one SGA round + two recovery rounds, all on the
  // tiny synthetic datasets.
  const auto request = qd::core::UnlearningRequest::for_class(9);
  qd::core::PhaseStats unlearn_stats, recovery_stats;
  state = quickdrop.unlearn(state, request, &unlearn_stats, &recovery_stats);
  qd::nn::load_state(*model, state);
  std::printf("after unlearning class 9 (%.2fs unlearn + %.2fs recovery):\n",
              unlearn_stats.seconds, recovery_stats.seconds);
  std::printf("  class-9 accuracy: %.1f%%   other classes: %.1f%%\n",
              100.0 * qd::metrics::accuracy_on_classes(*model, dataset.test, {9}),
              100.0 * qd::metrics::accuracy_excluding_classes(*model, dataset.test, {9}));

  // 4. Relearn it (e.g. the request was revoked).
  state = quickdrop.relearn(state, request);
  qd::nn::load_state(*model, state);
  std::printf("after relearning: class-9 accuracy %.1f%%\n",
              100.0 * qd::metrics::accuracy_on_classes(*model, dataset.test, {9}));
  return 0;
}
