// Security scenario: one label of the federation turns out to be poisoned
// (mislabeled at the source). The operator must remove the class quickly,
// verify the removal, and — once the upstream data is fixed — relearn it.
// Exercises sequential class-level unlearning + relearning, where QuickDrop's
// amortized synthetic data pays off across multiple requests (paper §5).
#include <cstdio>

#include "core/quickdrop.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "metrics/evaluate.h"
#include "nn/convnet.h"
#include "util/timer.h"

namespace qd = quickdrop;

int main() {
  auto spec = qd::data::cifar10_like_spec();
  const auto dataset = qd::data::make_synthetic(spec);
  qd::Rng partition_rng(21);
  const auto clients = qd::data::materialize(
      dataset.train, qd::data::dirichlet_partition(dataset.train, 10, 0.1f, partition_rng));

  qd::nn::ConvNetConfig net;
  net.in_channels = 3;
  net.image_size = 12;
  net.width = 16;
  net.depth = 2;
  auto model_rng = std::make_shared<qd::Rng>(22);
  qd::fl::ModelFactory factory = [model_rng, net] { return qd::nn::make_convnet(net, *model_rng); };

  qd::core::QuickDropConfig config;
  config.fl_rounds = 30;
  config.local_steps = 5;
  config.train_lr = 0.05f;
  config.scale = 10;
  config.unlearn_lr = 0.05f;
  config.recover_lr = 0.03f;
  qd::core::QuickDrop quickdrop(factory, clients, config, 23);

  std::printf("training...\n");
  auto state = quickdrop.train();
  auto model = factory();

  auto report = [&](const char* label) {
    qd::nn::load_state(*model, state);
    const auto pc = qd::metrics::per_class_accuracy(*model, dataset.test);
    std::printf("%-26s", label);
    for (const double a : pc) std::printf(" %5.1f", 100.0 * a);
    std::printf("\n");
  };
  std::printf("%-26s", "per-class accuracy:");
  for (int c = 0; c < 10; ++c) std::printf("    c%d", c);
  std::printf("\n");
  report("trained");

  // Classes 4 and 7 are found to be poisoned: drop them back-to-back.
  qd::Timer timer;
  for (const int poisoned : {4, 7}) {
    state = quickdrop.unlearn(state, qd::core::UnlearningRequest::for_class(poisoned));
    report(("unlearned class " + std::to_string(poisoned)).c_str());
  }
  std::printf("both classes removed in %.2fs total\n\n", timer.seconds());

  // Upstream fixes class 4's labels: bring the class back.
  timer.reset();
  state = quickdrop.relearn(state, qd::core::UnlearningRequest::for_class(4));
  report("relearned class 4");
  std::printf("relearning took %.2fs — served from the stored synthetic data, no access to\n"
              "the original training data needed.\n",
              timer.seconds());
  return 0;
}
