#!/usr/bin/env bash
# Static-analysis entry point: qdlint always; clang-tidy when installed.
#
# Usage: scripts/lint.sh [build-dir]
#
# qdlint is the enforced tier-1 gate (also registered in ctest as
# qdlint_clean); clang-tidy is advisory depth on top — it needs
# compile_commands.json, which the build exports automatically
# (CMAKE_EXPORT_COMPILE_COMMANDS).
set -u
BUILD="${1:-build}"
REPO="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO"

status=0

# --- qdlint (always) -------------------------------------------------------
QDLINT="$BUILD/tools/qdlint/qdlint"
if [ ! -x "$QDLINT" ]; then
  echo "lint.sh: building qdlint..."
  cmake -B "$BUILD" -S . >/dev/null && cmake --build "$BUILD" -j --target qdlint >/dev/null || {
    echo "lint.sh: failed to build qdlint" >&2
    exit 2
  }
fi
echo "== qdlint =="
# Cold-vs-warm cache check: a pristine cache and a fully primed one must
# produce byte-identical JSON — a cache that changes findings is corrupt by
# definition (DESIGN.md §14).
CACHE="$BUILD/qdlint.lint_sh.cache"
rm -f "$CACHE"
"$QDLINT" --root "$REPO" --cache "$CACHE" --json > "$BUILD/qdlint.cold.json"
cold_exit=$?
"$QDLINT" --root "$REPO" --cache "$CACHE" --json > "$BUILD/qdlint.warm.json"
warm_exit=$?
if [ "$cold_exit" -ge 2 ] || [ "$warm_exit" -ge 2 ]; then
  echo "lint.sh: qdlint crashed (cold=$cold_exit warm=$warm_exit)" >&2
  status=1
elif ! cmp -s "$BUILD/qdlint.cold.json" "$BUILD/qdlint.warm.json"; then
  echo "lint.sh: FAIL — warm-cache findings differ from cold run:" >&2
  diff "$BUILD/qdlint.cold.json" "$BUILD/qdlint.warm.json" | head -20 >&2
  status=1
else
  echo "cold-vs-warm cache: byte-identical JSON"
fi
# The enforced gate: findings minus the (shrink-only) baseline must be empty.
"$QDLINT" --root "$REPO" --cache "$CACHE" --baseline "$REPO/qdlint_baseline.txt" || status=1

# --- clang-tidy (when available) -------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  if [ -f "$BUILD/compile_commands.json" ]; then
    echo "== clang-tidy =="
    # Library + tool sources only; tests/bench inherit fixes through headers.
    mapfile -t tidy_files < <(git ls-files 'src/**/*.cpp' 'tools/**/*.cpp' 'tools/*.cpp')
    if command -v run-clang-tidy >/dev/null 2>&1; then
      run-clang-tidy -quiet -p "$BUILD" "${tidy_files[@]}" || status=1
    else
      clang-tidy -quiet -p "$BUILD" "${tidy_files[@]}" || status=1
    fi
  else
    echo "lint.sh: skipping clang-tidy ($BUILD/compile_commands.json not found; configure first)"
  fi
else
  echo "lint.sh: clang-tidy not installed; ran qdlint only"
fi

exit "$status"
