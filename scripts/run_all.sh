#!/usr/bin/env bash
# Regenerates every paper table/figure plus the test report.
# Usage: scripts/run_all.sh [build-dir]
set -u
BUILD="${1:-build}"
REPO="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO"

ctest --test-dir "$BUILD" 2>&1 | tee test_output.txt

: > bench_output.txt
for b in "$BUILD"/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  echo "##### $(basename "$b") #####" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
  echo | tee -a bench_output.txt
done
