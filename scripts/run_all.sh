#!/usr/bin/env bash
# Regenerates every paper table/figure plus the test report.
# Usage: scripts/run_all.sh [build-dir]
set -u
BUILD="${1:-build}"
REPO="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO"

ctest --test-dir "$BUILD" 2>&1 | tee test_output.txt

# Static-analysis pass: qdlint (and clang-tidy when installed) runs before
# the sanitizer rebuilds — it is the cheapest gate, so it fails fastest.
scripts/lint.sh "$BUILD" 2>&1 | tee lint_output.txt
echo "lint pass exit: ${PIPESTATUS[0]}" | tee -a lint_output.txt

# SARIF artifact: the same findings in the interchange format code-review
# tooling ingests (uploaded alongside the other report files).
"$BUILD"/tools/qdlint/qdlint --root "$REPO" --cache "$BUILD/qdlint.cache" \
  --sarif qdlint_report.sarif >/dev/null
if [ -f qdlint_report.sarif ]; then
  echo "qdlint SARIF artifact: qdlint_report.sarif written" | tee -a lint_output.txt
else
  echo "qdlint SARIF artifact: MISSING qdlint_report.sarif" | tee -a lint_output.txt
fi

# Sanitizer pass: rebuild the fault-tolerance-critical suites (fl + core)
# plus the crash-safe store (engine fuzz + kill-point sweep — the recovery
# scan parses attacker-controlled bytes, exactly where UB would hide) with
# ASan/UBSan and run the binaries directly.
SAN_BUILD="${BUILD}-asan"
{
  cmake -B "$SAN_BUILD" -S . -DQUICKDROP_SANITIZE="address;undefined" &&
  cmake --build "$SAN_BUILD" -j --target fl_test core_test util_test nn_test \
    store_test store_crash_sweep_test lint_test lint_driver_test net_test &&
  "$SAN_BUILD"/tests/fl_test &&
  "$SAN_BUILD"/tests/nn_test &&
  "$SAN_BUILD"/tests/core_test &&
  "$SAN_BUILD"/tests/util_test &&
  "$SAN_BUILD"/tests/store_test &&
  "$SAN_BUILD"/tests/store_crash_sweep_test &&
  "$SAN_BUILD"/tests/lint_test &&
  "$SAN_BUILD"/tests/lint_driver_test &&
  "$SAN_BUILD"/tests/net_test
} 2>&1 | tee sanitizer_output.txt
echo "sanitizer pass exit: ${PIPESTATUS[0]}" | tee -a sanitizer_output.txt

# ThreadSanitizer pass: rebuild the suites that exercise the thread pool,
# parallel kernels, concurrent client rounds and the request service's
# parallel cycles, and run them with an oversubscribed pool so worker
# interleavings actually happen.
TSAN_BUILD="${BUILD}-tsan"
{
  cmake -B "$TSAN_BUILD" -S . -DQUICKDROP_SANITIZE="thread" &&
  cmake --build "$TSAN_BUILD" -j --target util_test tensor_test fl_test serve_test \
    net_test nn_test &&
  QUICKDROP_THREADS=4 "$TSAN_BUILD"/tests/util_test &&
  QUICKDROP_THREADS=4 "$TSAN_BUILD"/tests/tensor_test &&
  QUICKDROP_THREADS=4 "$TSAN_BUILD"/tests/nn_test &&
  QUICKDROP_THREADS=4 "$TSAN_BUILD"/tests/fl_test &&
  QUICKDROP_THREADS=4 "$TSAN_BUILD"/tests/serve_test &&
  QUICKDROP_THREADS=4 "$TSAN_BUILD"/tests/net_test
} 2>&1 | tee tsan_output.txt
echo "tsan pass exit: ${PIPESTATUS[0]}" | tee -a tsan_output.txt

# Request-service replay check: a short trained checkpoint + generated trace,
# replayed at 1 and 4 threads — the service's metrics JSON and the final
# model checkpoint must both be bitwise identical (see DESIGN.md §10).
{
  SERVE_DIR="$(mktemp -d)"
  "$BUILD"/tools/quickdrop_cli train --dataset mnist --clients 4 --rounds 5 --width 8 \
    --out "$SERVE_DIR/model.qdcp" &&
  "$BUILD"/tools/quickdrop_cli serve --checkpoint "$SERVE_DIR/model.qdcp" \
    --requests 4 --arrival-rate 10 --policy coalesce --sec-per-round 40 \
    --dump-trace "$SERVE_DIR/trace.txt" --json "$SERVE_DIR/replay1.json" \
    --out "$SERVE_DIR/served1.qdcp" --threads 1 &&
  "$BUILD"/tools/quickdrop_cli serve --checkpoint "$SERVE_DIR/model.qdcp" \
    --trace "$SERVE_DIR/trace.txt" --policy coalesce --sec-per-round 40 \
    --json "$SERVE_DIR/replay4.json" --out "$SERVE_DIR/served4.qdcp" --threads 4 &&
  cmp "$SERVE_DIR/replay1.json" "$SERVE_DIR/replay4.json" &&
  cmp "$SERVE_DIR/served1.qdcp" "$SERVE_DIR/served4.qdcp" &&
  echo "serve replay: metrics + model bitwise identical at 1 vs 4 threads" &&
  # Network front-end gate: the same trace through the loopback transport
  # (wire frames + acks + report frame) must land on the same model, and the
  # report must be identical outside the out-of-band wire/net overlay lines
  # (see DESIGN.md §15).
  "$BUILD"/tools/quickdrop_cli serve --checkpoint "$SERVE_DIR/model.qdcp" \
    --trace "$SERVE_DIR/trace.txt" --policy coalesce --sec-per-round 40 \
    --transport loopback --wire-bandwidth 1000000 \
    --json "$SERVE_DIR/loopback.json" --out "$SERVE_DIR/served_loop.qdcp" --threads 4 &&
  cmp "$SERVE_DIR/served1.qdcp" "$SERVE_DIR/served_loop.qdcp" &&
  diff <(grep -v -e '"transport"' -e '"wire_' -e '"net_' "$SERVE_DIR/replay1.json") \
       <(grep -v -e '"transport"' -e '"wire_' -e '"net_' "$SERVE_DIR/loopback.json") &&
  echo "loopback replay: model bitwise identical, report identical modulo wire overlay"
  rm -rf "$SERVE_DIR"
} 2>&1 | tee serve_replay_output.txt
echo "serve replay exit: ${PIPESTATUS[0]}" | tee -a serve_replay_output.txt

: > bench_output.txt
for b in "$BUILD"/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  echo "##### $(basename "$b") #####" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
  echo | tee -a bench_output.txt
done

# The state-ops microbenchmark (bench/ext_state_ops) writes its JSON into the
# working directory; the sweep above must have produced it (flat vs per-tensor
# representation, weighted_average thread scaling — see DESIGN.md §11).
if [ -f BENCH_state_ops.json ]; then
  echo "state-ops bench: BENCH_state_ops.json written" | tee -a bench_output.txt
else
  echo "state-ops bench: MISSING BENCH_state_ops.json" | tee -a bench_output.txt
fi

# Likewise the substrate microbenchmark (bench/micro_ops): kernel/autograd
# unit costs plus the scalar-vs-SIMD matmul dispatch columns (DESIGN.md §13).
if [ -f BENCH_micro_ops.json ]; then
  echo "micro-ops bench: BENCH_micro_ops.json written" | tee -a bench_output.txt
else
  echo "micro-ops bench: MISSING BENCH_micro_ops.json" | tee -a bench_output.txt
fi

# Likewise the store microbenchmark (bench/ext_store): commit/recover/vacuum
# throughput and store-vs-blob checkpoint saves — see DESIGN.md §12.
if [ -f BENCH_store.json ]; then
  echo "store bench: BENCH_store.json written" | tee -a bench_output.txt
else
  echo "store bench: MISSING BENCH_store.json" | tee -a bench_output.txt
fi

# Likewise the qdlint microbenchmark (bench/ext_qdlint): cold-vs-warm cache
# whole-tree lint at 1/4/8 threads over a synthetic repo — see DESIGN.md §14.
if [ -f BENCH_qdlint.json ]; then
  echo "qdlint bench: BENCH_qdlint.json written" | tee -a bench_output.txt
else
  echo "qdlint bench: MISSING BENCH_qdlint.json" | tee -a bench_output.txt
fi

# Likewise the network front-end bench (bench/ext_net): wire-codec frame
# sizes plus the loopback-vs-inproc identity verdicts — see DESIGN.md §15.
if [ -f BENCH_net.json ]; then
  echo "net bench: BENCH_net.json written" | tee -a bench_output.txt
else
  echo "net bench: MISSING BENCH_net.json" | tee -a bench_output.txt
fi

# Likewise the shard-tree scale sweep (bench/ext_scale_shard): streaming
# aggregation peak memory vs cohort size, plus the cross-shard bitwise
# invariance verdict — see DESIGN.md §16.
if [ -f BENCH_scale_shard.json ]; then
  echo "scale-shard bench: BENCH_scale_shard.json written" | tee -a bench_output.txt
else
  echo "scale-shard bench: MISSING BENCH_scale_shard.json" | tee -a bench_output.txt
fi
