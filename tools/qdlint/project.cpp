#include "qdlint.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <sstream>

// Whole-project stage: consumes every file's FileFacts and runs the rules
// that no per-file pass can see — the include graph against the declared
// layer DAG, include cycles, and the call-graph-lite reachability rules for
// parallel regions. Everything here is deterministic: files arrive sorted by
// path, maps iterate in key order, and BFS expansion is by (file, line).

namespace qdlint {
namespace {

// --------------------------------------------------------------------------
// Layer map
// --------------------------------------------------------------------------

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream ss(line);
  std::string w;
  while (ss >> w) out.push_back(w);
  return out;
}

std::string dirname_of(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

/// True when `path` is `prefix` or sits under `prefix/`.
bool under_prefix(const std::string& path, const std::string& prefix) {
  if (path.size() < prefix.size() || path.compare(0, prefix.size(), prefix) != 0) return false;
  return path.size() == prefix.size() || path[prefix.size()] == '/';
}

// --------------------------------------------------------------------------
// Suppression-aware reporting
// --------------------------------------------------------------------------

struct Linker {
  const std::vector<FileFacts>& files;
  std::vector<Finding>& out;

  const FileFacts* file_of(const std::string& path) const {
    for (const auto& f : files) {
      if (f.path == path) return &f;
    }
    return nullptr;
  }

  bool suppressed(const FileFacts& f, const std::string& rule, int line) const {
    const auto it = f.nolint.find(line);
    if (it == f.nolint.end()) return false;
    return it->second.count("*") != 0 || it->second.count("qdlint-" + rule) != 0;
  }

  void report(const FileFacts& f, const std::string& rule, int line, std::string message,
              std::string hint = "") {
    if (suppressed(f, rule, line)) return;
    out.push_back({rule, f.path, line, 1, std::move(message), std::move(hint)});
  }
};

// --------------------------------------------------------------------------
// Include graph: resolution, layer rule, cycles
// --------------------------------------------------------------------------

/// Resolves a quoted include against the analyzed file set: relative to the
/// includer's directory first (bench/common/world.h style), then src/ (the
/// library include root), then the repo root. Unresolved targets — system
/// headers spelled with quotes, genuinely missing files — resolve to "".
std::string resolve_include(const std::set<std::string>& known, const std::string& includer,
                            const std::string& target) {
  const std::string dir = dirname_of(includer);
  if (!dir.empty()) {
    const std::string local = dir + "/" + target;
    if (known.count(local)) return local;
  }
  const std::string in_src = "src/" + target;
  if (known.count(in_src)) return in_src;
  if (known.count(target)) return target;
  return {};
}

void check_layers(Linker& lk, const LayerMap& layers,
                  const std::map<std::string, std::vector<std::pair<std::string, int>>>& graph) {
  for (const auto& [from, edges] : graph) {
    const std::string from_prefix = layer_prefix_of(layers, from);
    if (from_prefix.empty()) continue;
    const int from_idx = layers.prefix_to_layer.at(from_prefix);
    const LayerMap::Layer& from_layer = layers.layers[static_cast<std::size_t>(from_idx)];
    const FileFacts* ff = lk.file_of(from);
    for (const auto& [to, line] : edges) {
      const std::string to_prefix = layer_prefix_of(layers, to);
      if (to_prefix.empty() || to_prefix == from_prefix) continue;
      const int to_idx = layers.prefix_to_layer.at(to_prefix);
      const LayerMap::Layer& to_layer = layers.layers[static_cast<std::size_t>(to_idx)];
      // Allowed: same layer (sibling prefixes), any strictly lower layer, or
      // an explicit allow edge between the two prefixes.
      const bool ok = to_idx == from_idx || to_layer.rank < from_layer.rank ||
                      layers.allowed.count({from_prefix, to_prefix}) != 0;
      if (ok) continue;
      lk.report(*ff, "arch-layer-violation", line,
                from + " (layer '" + from_layer.name + "') includes " + to + " (layer '" +
                    to_layer.name + "'), violating the declared layer DAG",
                "depend downward only; move shared code into a lower layer or add an "
                "explicit `allow " + from_prefix + " " + to_prefix +
                    "` edge to tools/qdlint/layers.txt if the layers are genuinely peers");
    }
  }
}

void check_cycles(Linker& lk,
                  const std::map<std::string, std::vector<std::pair<std::string, int>>>& graph) {
  // Iterative DFS with colors; every back edge yields one cycle. Cycles are
  // canonicalized (rotated to start at their lexicographically smallest
  // node) and deduped, and the path is printed in include order.
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  std::set<std::string> reported;

  std::function<void(const std::string&)> dfs = [&](const std::string& node) {
    color[node] = 1;
    stack.push_back(node);
    const auto it = graph.find(node);
    if (it != graph.end()) {
      for (const auto& [to, line] : it->second) {
        (void)line;
        const int c = color.count(to) ? color[to] : 0;
        if (c == 0) {
          dfs(to);
        } else if (c == 1) {
          // Cycle: stack suffix from `to` to node, then back to `to`.
          const auto at = std::find(stack.begin(), stack.end(), to);
          std::vector<std::string> cycle(at, stack.end());
          const auto smallest = std::min_element(cycle.begin(), cycle.end());
          std::rotate(cycle.begin(), smallest, cycle.end());
          std::string key;
          for (const auto& p : cycle) key += p + "\n";
          if (!reported.insert(key).second) continue;

          // Report at the first file's include of the next cycle member.
          const std::string& first = cycle[0];
          const std::string& second = cycle.size() > 1 ? cycle[1] : cycle[0];
          int at_line = 1;
          const auto ge = graph.find(first);
          if (ge != graph.end()) {
            for (const auto& [t2, l2] : ge->second) {
              if (t2 == second) {
                at_line = l2;
                break;
              }
            }
          }
          std::string path_str;
          for (const auto& p : cycle) path_str += p + " -> ";
          path_str += first;
          const FileFacts* ff = lk.file_of(first);
          lk.report(*ff, "arch-include-cycle", at_line, "include cycle: " + path_str,
                    "break the cycle with a forward declaration or by hoisting the shared "
                    "interface into a lower layer");
        }
      }
    }
    stack.pop_back();
    color[node] = 2;
  };

  for (const auto& [node, edges] : graph) {
    (void)edges;
    if ((color.count(node) ? color[node] : 0) == 0) dfs(node);
  }
}

// --------------------------------------------------------------------------
// Reachability rules (call-graph-lite)
// --------------------------------------------------------------------------

struct BodyKey {
  const FileFacts* file;
  const BodyFacts* body;
};

/// BFS over name-resolved call edges from a parallel site body. `stop_at_split`
/// prunes descent through bodies that tag-split their own child Rng (those
/// re-derive a deterministic stream; draws below them are sanitized).
/// Ambiguous names (more than one definition in the project) are not
/// traversed at all — following every candidate chains unrelated TUs
/// together through common helper names (fail, build, run) and drowns the
/// real findings; the cost is a documented false-negative class (DESIGN.md
/// §14). Depth-limited so pathological graphs cannot blow up.
std::vector<BodyKey> reachable_bodies(
    const std::vector<FileFacts>& files,
    const std::map<std::string, std::vector<BodyKey>>& by_name, const FileFacts& site_file,
    const BodyFacts& site, bool stop_at_split) {
  (void)files;
  std::vector<BodyKey> visited;
  std::set<const BodyFacts*> seen;
  std::deque<std::pair<BodyKey, int>> queue;
  queue.push_back({{&site_file, &site}, 0});
  seen.insert(&site);
  constexpr int kMaxDepth = 6;
  while (!queue.empty()) {
    const auto [key, depth] = queue.front();
    queue.pop_front();
    visited.push_back(key);
    if (depth >= kMaxDepth) continue;
    if (stop_at_split && key.body != &site && key.body->has_split) continue;
    for (const auto& call : key.body->calls) {
      const auto it = by_name.find(call.name);
      if (it == by_name.end() || it->second.size() != 1) continue;
      const BodyKey& callee = it->second.front();
      if (!seen.insert(callee.body).second) continue;
      queue.push_back({callee, depth + 1});
    }
  }
  return visited;
}

/// Human-readable call path for messages: "site -> f -> g".
std::string name_of(const BodyKey& k) {
  return k.body->is_site ? "<parallel region " + k.file->path + ":" +
                               std::to_string(k.body->line) + ">"
                         : k.body->name;
}

void check_reachability(Linker& lk, const std::vector<FileFacts>& files) {
  // Global + function indexes. Name collisions fan out to every definition —
  // conservative for reachability, and deterministic because files are
  // sorted and bodies appear in token order.
  std::map<std::string, const GlobalDecl*> globals;
  std::map<std::string, const FileFacts*> global_files;
  std::map<std::string, std::vector<BodyKey>> by_name;
  for (const FileFacts& f : files) {
    for (const GlobalDecl& g : f.globals) {
      if (!globals.count(g.name)) {
        globals[g.name] = &g;
        global_files[g.name] = &f;
      }
    }
    for (const BodyFacts& fn : f.functions) by_name[fn.name].push_back({&f, &fn});
  }

  for (const FileFacts& f : files) {
    for (const BodyFacts& site : f.sites) {
      // conc-unguarded-global: any mutable namespace-scope variable used in
      // a body reachable from the submitted work, with no lock guard in the
      // using body, is a cross-thread data race candidate.
      if (!site.annotated) {
        const auto bodies = reachable_bodies(files, by_name, f, site, /*stop_at_split=*/false);
        std::set<std::string> flagged;
        for (const BodyKey& key : bodies) {
          if (key.body->has_lock_guard) continue;
          for (const SymbolRef& use : key.body->ident_uses) {
            const auto git = globals.find(use.name);
            if (git == globals.end()) continue;
            if (!flagged.insert(use.name).second) continue;
            const std::string via =
                key.body == &site ? "" : " via " + name_of(key) + "()";
            lk.report(f, "conc-unguarded-global", site.line,
                      "mutable global '" + use.name + "' (" + global_files.at(use.name)->path +
                          ":" + std::to_string(git->second->line) +
                          ") is reachable from this parallel region" + via +
                          " without a lock guard",
                      "guard the access with std::lock_guard, make the global atomic/const, "
                      "or annotate the submit site with `// qdlint: shared-write(<why the "
                      "writes are disjoint>)`");
          }
        }
      }

      // det-rng-in-parallel: a stream draw inside pool work must come from a
      // generator tag-split at (or under) the submit site, or every thread
      // schedule reorders consumption and results stop being bitwise.
      if (!site.has_split) {
        const auto bodies = reachable_bodies(files, by_name, f, site, /*stop_at_split=*/true);
        for (const BodyKey& key : bodies) {
          if (key.body != &site && key.body->has_split) continue;
          if (key.body->rng_draws.empty()) continue;
          const SymbolRef& draw = key.body->rng_draws.front();
          const std::string via = key.body == &site ? "" : " via " + name_of(key) + "()";
          lk.report(f, "det-rng-in-parallel", site.line,
                    "Rng draw '" + draw.name + "' (" + key.file->path + ":" +
                        std::to_string(draw.line) + ") is reachable from this parallel region" +
                        via + " without a tag-split at the submit site",
                    "derive a per-chunk generator with rng.split(<stable tag>) inside the "
                    "submitted callable so draws are independent of thread schedule");
          break;  // one finding per site is enough signal
        }
      }
    }
  }
}

}  // namespace

bool parse_layer_map(const std::string& content, LayerMap* out, std::string* error) {
  *out = LayerMap{};
  std::istringstream ss(content);
  std::string line;
  int line_no = 0;
  int rank = 0;
  while (std::getline(ss, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    const auto words = split_ws(line);
    if (words.empty()) continue;
    if (words[0] == "layer") {
      if (words.size() < 3) {
        if (error) *error = "layers.txt:" + std::to_string(line_no) + ": layer needs a name and at least one prefix";
        return false;
      }
      out->layers.push_back({words[1], rank});
      for (std::size_t i = 2; i < words.size(); ++i) {
        if (out->prefix_to_layer.count(words[i])) {
          if (error) *error = "layers.txt:" + std::to_string(line_no) + ": duplicate prefix " + words[i];
          return false;
        }
        out->prefix_to_layer[words[i]] = static_cast<int>(out->layers.size()) - 1;
      }
      ++rank;
    } else if (words[0] == "allow") {
      if (words.size() != 3) {
        if (error) *error = "layers.txt:" + std::to_string(line_no) + ": allow needs exactly two prefixes";
        return false;
      }
      out->allowed.insert({words[1], words[2]});
    } else {
      if (error) *error = "layers.txt:" + std::to_string(line_no) + ": unknown directive '" + words[0] + "'";
      return false;
    }
  }
  return true;
}

std::string layer_prefix_of(const LayerMap& map, const std::string& relpath) {
  std::string best;
  for (const auto& [prefix, idx] : map.prefix_to_layer) {
    (void)idx;
    if (under_prefix(relpath, prefix) && prefix.size() > best.size()) best = prefix;
  }
  return best;
}

std::vector<Finding> link_project(const std::vector<FileFacts>& files, const LayerMap& layers) {
  std::vector<Finding> findings;
  Linker lk{files, findings};

  // Resolve the include graph once. Self-includes become self-edges (and
  // therefore 1-cycles); unresolved targets are dropped.
  std::set<std::string> known;
  for (const auto& f : files) known.insert(f.path);
  std::map<std::string, std::vector<std::pair<std::string, int>>> graph;
  for (const auto& f : files) {
    auto& edges = graph[f.path];
    for (const IncludeFact& inc : f.includes) {
      const std::string to = resolve_include(known, f.path, inc.target);
      if (to.empty()) continue;  // missing header / quoted system include
      edges.push_back({to, inc.line});
    }
  }

  check_layers(lk, layers, graph);
  check_cycles(lk, graph);
  check_reachability(lk, files);

  std::stable_sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.path != b.path) return a.path < b.path;
    if (a.line != b.line) return a.line < b.line;
    if (a.col != b.col) return a.col < b.col;
    return a.rule < b.rule;
  });
  return findings;
}

}  // namespace qdlint
