#include "qdlint.h"

#include <algorithm>
#include <cctype>

// Token-stream rules. Each rule walks the lexed tokens of one file with a
// small amount of local context (qualification, call argument regions,
// declared unordered-container names). The lexer already guarantees nothing
// here can fire inside comments or string/char/raw-string literals.

namespace qdlint {
namespace {

const std::vector<std::string> kAllRules = {
    "det-random-device", "det-rand",        "det-time-seed",   "det-sleep",
    "det-unordered-iter", "det-iter-order-escape", "det-rng-in-parallel",
    "conc-raw-thread",   "conc-detach",     "conc-ref-capture",
    "conc-static-local",  "conc-simd-store", "conc-lock-scope", "conc-unguarded-global",
    "num-float-eq",      "num-simd-lane-eq", "num-narrow-literal",
    "api-raw-io",         "api-pragma-once", "api-flatstate",   "api-durable-io",
    "api-net-io",
    "arch-layer-violation", "arch-include-cycle",
};

struct Ctx {
  const FileContext& file;
  const std::vector<Token>& toks;
  const LineMarks& marks;
  std::vector<Finding>& out;

  bool suppressed(const std::string& rule, int line) const {
    const auto it = marks.nolint.find(line);
    if (it == marks.nolint.end()) return false;
    return it->second.count("*") || it->second.count("qdlint-" + rule);
  }

  void report(const std::string& rule, const Token& at, std::string message,
              std::string hint = "") {
    if (suppressed(rule, at.line)) return;
    out.push_back({rule, file.path, at.line, at.col, std::move(message), std::move(hint)});
  }

  const Token* tok(std::size_t i) const { return i < toks.size() ? &toks[i] : nullptr; }
  bool is(std::size_t i, TokKind k, const char* text) const {
    return i < toks.size() && toks[i].kind == k && toks[i].text == text;
  }
  bool ident(std::size_t i, const char* text) const { return is(i, TokKind::kIdent, text); }
  bool punct(std::size_t i, const char* text) const { return is(i, TokKind::kPunct, text); }

  /// True when token i is qualified as std:: (directly or via nested names
  /// ending in std, e.g. ::std::). Conservative: only checks one level.
  bool std_qualified(std::size_t i) const {
    return i >= 2 && punct(i - 1, "::") && ident(i - 2, "std");
  }

  /// True when token i is preceded by a member access or any :: qualifier,
  /// i.e. it is not a free unqualified name.
  bool member_or_qualified(std::size_t i) const {
    if (i == 0) return false;
    return punct(i - 1, ".") || punct(i - 1, "->") || punct(i - 1, "::");
  }

  /// Index just past the matching `)` for the `(` at `open` (which must be a
  /// "(" token). Returns toks.size() when unbalanced.
  std::size_t match_paren(std::size_t open) const {
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kPunct) continue;
      if (toks[i].text == "(") ++depth;
      if (toks[i].text == ")" && --depth == 0) return i + 1;
    }
    return toks.size();
  }

  /// Index just past the matching `>` for the `<` at `open`, treating ">>"
  /// as two closers. Returns `open` when this does not look like a balanced
  /// template argument list (e.g. a comparison).
  std::size_t skip_angles(std::size_t open) const {
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind == TokKind::kPunct) {
        if (t.text == "<") ++depth;
        else if (t.text == ">") {
          if (--depth == 0) return i + 1;
        } else if (t.text == ">>") {
          depth -= 2;
          if (depth <= 0) return i + 1;
        } else if (t.text == ";" || t.text == "{") {
          return open;  // statement ended: was not a template list
        }
      }
    }
    return open;
  }
};

bool is_float_literal(const std::string& t) {
  if (t.size() >= 2 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X')) {
    return t.find('p') != std::string::npos || t.find('P') != std::string::npos;
  }
  if (t.find('.') != std::string::npos) return true;
  // 1e5 style exponent on a decimal literal.
  return t.find('e') != std::string::npos || t.find('E') != std::string::npos;
}

bool has_float_suffix(const std::string& t) {
  return !t.empty() && (t.back() == 'f' || t.back() == 'F');
}

bool has_long_double_suffix(const std::string& t) {
  return !t.empty() && (t.back() == 'l' || t.back() == 'L');
}

// --------------------------------------------------------------------------
// DET rules
// --------------------------------------------------------------------------

void rule_random_device(Ctx& c) {
  for (std::size_t i = 0; i < c.toks.size(); ++i) {
    if (c.ident(i, "random_device") && c.std_qualified(i)) {
      c.report("det-random-device", c.toks[i],
               "std::random_device is nondeterministic across runs",
               "seed an explicit quickdrop::Rng and split() it per component");
    }
  }
}

void rule_rand(Ctx& c) {
  for (std::size_t i = 0; i + 1 < c.toks.size(); ++i) {
    if (c.toks[i].kind != TokKind::kIdent) continue;
    const std::string& t = c.toks[i].text;
    if (t != "rand" && t != "srand") continue;
    if (!c.punct(i + 1, "(")) continue;
    // Allow member calls like gen.rand(); ban the C library free functions
    // whether spelled rand() or std::rand().
    if (c.member_or_qualified(i) && !c.std_qualified(i)) continue;
    c.report("det-rand", c.toks[i], t + "() draws from hidden global state",
             "use quickdrop::Rng, which is explicitly seeded and serializable");
  }
}

void rule_time_seed(Ctx& c) {
  // A seed-ish call — Rng(...), seed(...), set_seed(...), srand(...) — whose
  // argument list mentions now() or time() is a time-derived seed.
  for (std::size_t i = 0; i + 1 < c.toks.size(); ++i) {
    if (c.toks[i].kind != TokKind::kIdent) continue;
    const std::string& name = c.toks[i].text;
    const bool seedish = name == "Rng" || name == "srand" || name == "seed" ||
                         name == "set_seed" || name == "reseed";
    if (!seedish) continue;
    // Either a direct call `Rng(...)` / `seed(...)`, or a declaration with a
    // parenthesized initializer: `Rng gen(...)`.
    std::size_t open = c.toks.size();
    if (c.punct(i + 1, "(")) {
      open = i + 1;
    } else if (name == "Rng" && i + 2 < c.toks.size() &&
               c.toks[i + 1].kind == TokKind::kIdent && c.punct(i + 2, "(")) {
      open = i + 2;
    }
    if (open >= c.toks.size()) continue;
    const std::size_t end = c.match_paren(open);
    for (std::size_t j = open + 1; j + 1 < end; ++j) {
      if (c.toks[j].kind != TokKind::kIdent) continue;
      const std::string& a = c.toks[j].text;
      if ((a == "now" || a == "time" || a == "clock") && c.punct(j + 1, "(") &&
          (a != "time" || !c.member_or_qualified(j) || c.std_qualified(j))) {
        c.report("det-time-seed", c.toks[j],
                 "seed derived from wall-clock time breaks run-to-run reproducibility",
                 "take the seed from config/CLI so trajectories can be replayed exactly");
        break;
      }
    }
  }
}

void rule_sleep(Ctx& c) {
  if (!c.file.in_src) return;
  for (std::size_t i = 0; i < c.toks.size(); ++i) {
    if (c.ident(i, "sleep_for") || c.ident(i, "sleep_until")) {
      c.report("det-sleep", c.toks[i],
               "thread sleeps in library code hide timing dependence and skew cost metrics",
               "model delays via FaultPlan/CostMeter instead of real sleeps");
    }
  }
}

void rule_unordered_iter(Ctx& c) {
  if (!c.file.in_src) return;
  // Collect names declared with an unordered container type in this file.
  std::set<std::string> unordered_vars;
  for (std::size_t i = 0; i < c.toks.size(); ++i) {
    if (!(c.ident(i, "unordered_map") || c.ident(i, "unordered_set") ||
          c.ident(i, "unordered_multimap") || c.ident(i, "unordered_multiset"))) {
      continue;
    }
    std::size_t j = i + 1;
    if (c.punct(j, "<")) j = c.skip_angles(j);
    // Skip refs/pointers between the type and the declared name.
    while (c.punct(j, "&") || c.punct(j, "*") || c.ident(j, "const")) ++j;
    if (j < c.toks.size() && c.toks[j].kind == TokKind::kIdent) {
      unordered_vars.insert(c.toks[j].text);
    }
  }
  if (unordered_vars.empty()) return;

  const char* hint =
      "hash iteration order varies with pointer values/insertion order; iterate a "
      "sorted key vector or accumulate in deterministic (e.g. topological) order";

  for (std::size_t i = 0; i + 1 < c.toks.size(); ++i) {
    // Range-for: for ( <decl> : <expr> ) where expr names a tracked var.
    if (c.ident(i, "for") && c.punct(i + 1, "(")) {
      const std::size_t end = c.match_paren(i + 1);
      // Find the range ':' at depth 1 (the lexer emits '::' as one token, so
      // a bare ':' is unambiguous).
      int depth = 0;
      for (std::size_t j = i + 1; j + 1 < end; ++j) {
        if (c.toks[j].kind != TokKind::kPunct) continue;
        if (c.toks[j].text == "(") ++depth;
        else if (c.toks[j].text == ")") --depth;
        else if (c.toks[j].text == ":" && depth == 1) {
          for (std::size_t k = j + 1; k + 1 < end; ++k) {
            if (c.toks[k].kind == TokKind::kIdent && unordered_vars.count(c.toks[k].text)) {
              c.report("det-unordered-iter", c.toks[k],
                       "range-for over unordered container '" + c.toks[k].text +
                           "' visits elements in hash order",
                       hint);
              break;
            }
          }
          break;
        }
      }
    }
    // Iterator loop: <var>.begin() / <var>.cbegin().
    if (c.toks[i].kind == TokKind::kIdent && unordered_vars.count(c.toks[i].text) &&
        c.punct(i + 1, ".") &&
        (c.ident(i + 2, "begin") || c.ident(i + 2, "cbegin")) && c.punct(i + 3, "(")) {
      c.report("det-unordered-iter", c.toks[i],
               "iterating unordered container '" + c.toks[i].text + "' visits elements in hash order",
               hint);
    }
  }
}

// --------------------------------------------------------------------------
// CONC rules
// --------------------------------------------------------------------------

void rule_raw_thread(Ctx& c) {
  if (c.file.is_thread_pool) return;
  for (std::size_t i = 0; i < c.toks.size(); ++i) {
    if (c.toks[i].kind != TokKind::kIdent || !c.std_qualified(i)) continue;
    const std::string& t = c.toks[i].text;
    if (t == "thread" || t == "jthread" || t == "async") {
      // `std::thread::hardware_concurrency()` is a pure query, not a spawn.
      if (c.punct(i + 1, "::") && c.ident(i + 2, "hardware_concurrency")) continue;
      c.report("conc-raw-thread", c.toks[i],
               "raw std::" + t + " bypasses the shared ThreadPool",
               "submit work through ThreadPool::global() (util/thread_pool.h) so thread "
               "count and determinism stay centrally controlled");
    }
  }
}

void rule_detach(Ctx& c) {
  if (c.file.is_thread_pool) return;
  // Var::detach() is a legitimate autograd operation; only files that deal
  // in std::thread (by include or qualified use) are in scope.
  bool thread_context = false;
  for (std::size_t i = 0; i < c.toks.size(); ++i) {
    if (c.toks[i].kind == TokKind::kPreproc &&
        c.toks[i].text.find("<thread>") != std::string::npos) {
      thread_context = true;
    }
    if (c.ident(i, "thread") && c.std_qualified(i)) thread_context = true;
  }
  if (!thread_context) return;
  for (std::size_t i = 0; i + 2 < c.toks.size(); ++i) {
    if ((c.punct(i, ".") || c.punct(i, "->")) && c.ident(i + 1, "detach") &&
        c.punct(i + 2, "(")) {
      c.report("conc-detach", c.toks[i + 1],
               "detached threads outlive scope and cannot be joined or drained",
               "keep threads owned by the ThreadPool; join on shutdown");
    }
  }
}

void rule_ref_capture(Ctx& c) {
  if (c.file.is_thread_pool) return;
  // A [&] default capture inside a parallel_for(...) or run_chunks(...)
  // argument list shares every enclosing local by reference across workers.
  // That is often intended (disjoint writes) — but must say so.
  for (std::size_t i = 0; i + 1 < c.toks.size(); ++i) {
    if (!(c.ident(i, "parallel_for") || c.ident(i, "run_chunks"))) continue;
    if (!c.punct(i + 1, "(")) continue;
    const std::size_t end = c.match_paren(i + 1);
    for (std::size_t j = i + 2; j + 1 < end; ++j) {
      if (!c.punct(j, "[") || !c.punct(j + 1, "&")) continue;
      if (!(c.punct(j + 2, "]") || c.punct(j + 2, ","))) continue;
      const int line = c.toks[j].line;
      if (c.marks.shared_write.count(line) || c.marks.shared_write.count(line - 1)) continue;
      c.report("conc-ref-capture", c.toks[j],
               "[&] default capture in a parallel region shares all locals by reference",
               "capture explicitly, or annotate the lambda line with "
               "`// qdlint: shared-write(<why the writes are disjoint>)`");
    }
  }
}

void rule_static_local(Ctx& c) {
  if (!c.file.is_kernel_tu) return;
  for (std::size_t i = 0; i + 1 < c.toks.size(); ++i) {
    if (!c.ident(i, "static")) continue;
    // Walk the declaration: a '(' before '=', ';' or '[' means a function
    // declaration (fine); const/constexpr/constinit anywhere before the
    // terminator means immutable (fine).
    bool is_const = false, is_var = false;
    for (std::size_t j = i + 1; j < c.toks.size(); ++j) {
      const Token& t = c.toks[j];
      if (t.kind == TokKind::kIdent &&
          (t.text == "const" || t.text == "constexpr" || t.text == "constinit")) {
        is_const = true;
      }
      if (t.kind == TokKind::kPunct) {
        if (t.text == "<") {
          j = c.skip_angles(j) - 1;
          continue;
        }
        if (t.text == "(") break;  // function declaration/definition
        if (t.text == "=" || t.text == ";" || t.text == "[" || t.text == "{") {
          is_var = true;
          break;
        }
      }
    }
    if (is_var && !is_const) {
      c.report("conc-static-local", c.toks[i],
               "mutable static state in a kernel TU is shared across all pool workers",
               "hoist into an explicit context object, or make it constexpr");
    }
  }
}

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::char_traits<char>::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// Intrinsic name operating on floating-point lanes: _ps/_ss (float) or
/// _pd/_sd (double). Integer-lane suffixes (_epi32, _si256, ...) compare
/// exactly and are out of scope.
bool float_lane_intrinsic(const std::string& t) {
  return ends_with(t, "_ps") || ends_with(t, "_ss") || ends_with(t, "_pd") ||
         ends_with(t, "_sd");
}

void rule_simd_store(Ctx& c) {
  // SIMD stores in kernel TUs write 4-8 lanes at once from whichever pool
  // worker runs the tile; like [&] captures in parallel regions, the
  // disjointness argument must be stated next to the write.
  if (!c.file.is_kernel_tu) return;
  for (std::size_t i = 0; i + 1 < c.toks.size(); ++i) {
    if (c.toks[i].kind != TokKind::kIdent) continue;
    const std::string& t = c.toks[i].text;
    if (!starts_with(t, "_mm")) continue;
    if (t.find("store") == std::string::npos && t.find("stream") == std::string::npos) continue;
    if (!c.punct(i + 1, "(")) continue;
    const int line = c.toks[i].line;
    if (c.marks.shared_write.count(line) || c.marks.shared_write.count(line - 1)) continue;
    c.report("conc-simd-store", c.toks[i],
             t + " writes a multi-lane span from a pool worker without a disjointness note",
             "annotate the store (same line or the line above) with "
             "`// qdlint: shared-write(<why the written lanes are disjoint>)`");
  }
}

// --------------------------------------------------------------------------
// NUM rules
// --------------------------------------------------------------------------

void rule_float_eq(Ctx& c) {
  if (!c.file.in_src) return;
  for (std::size_t i = 0; i < c.toks.size(); ++i) {
    if (c.toks[i].kind != TokKind::kPunct) continue;
    if (c.toks[i].text != "==" && c.toks[i].text != "!=") continue;
    const Token* prev = i > 0 ? c.tok(i - 1) : nullptr;
    const Token* next = c.tok(i + 1);
    const bool fp_adjacent =
        (prev && prev->kind == TokKind::kNumber && is_float_literal(prev->text)) ||
        (next && next->kind == TokKind::kNumber && is_float_literal(next->text));
    if (!fp_adjacent) continue;
    c.report("num-float-eq", c.toks[i],
             "exact floating-point " + c.toks[i].text + " comparison",
             "compare against a tolerance, or NOLINT(qdlint-num-float-eq) if this is an "
             "exact sentinel value that is only ever assigned, never computed");
  }
}

void rule_simd_lane_eq(Ctx& c) {
  // The intrinsics spelling of num-float-eq: exact equality on float lanes
  // (_mm*_cmpeq_ps, or _mm*_cmp_* with an _CMP_EQ_*/_CMP_NEQ_* predicate)
  // inherits all the usual float-comparison hazards, eight lanes at a time.
  if (!c.file.in_src) return;
  const char* hint =
      "compare |a-b| against a tolerance lane-wise, or NOLINT(qdlint-num-simd-lane-eq) "
      "for an exact sentinel that is only ever assigned, never computed";
  for (std::size_t i = 0; i < c.toks.size(); ++i) {
    if (c.toks[i].kind != TokKind::kIdent) continue;
    const std::string& t = c.toks[i].text;
    if (!starts_with(t, "_mm") || !float_lane_intrinsic(t)) continue;
    if (t.find("cmpeq") != std::string::npos || t.find("cmpneq") != std::string::npos) {
      c.report("num-simd-lane-eq", c.toks[i],
               t + " is an exact floating-point lane comparison", hint);
      continue;
    }
    // Predicate form: _mm256_cmp_ps(a, b, _CMP_EQ_OQ) and friends.
    if (t.find("_cmp_") == std::string::npos || !c.punct(i + 1, "(")) continue;
    const std::size_t end = c.match_paren(i + 1);
    for (std::size_t j = i + 2; j + 1 < end; ++j) {
      if (c.toks[j].kind != TokKind::kIdent) continue;
      if (starts_with(c.toks[j].text, "_CMP_EQ") || starts_with(c.toks[j].text, "_CMP_NEQ")) {
        c.report("num-simd-lane-eq", c.toks[i],
                 t + " with predicate " + c.toks[j].text +
                     " is an exact floating-point lane comparison",
                 hint);
        break;
      }
    }
  }
}

void rule_narrow_literal(Ctx& c) {
  if (!c.file.is_kernel_tu) return;
  for (std::size_t i = 0; i < c.toks.size(); ++i) {
    const Token& t = c.toks[i];
    if (t.kind != TokKind::kNumber) continue;
    if (!is_float_literal(t.text)) continue;
    if (has_float_suffix(t.text) || has_long_double_suffix(t.text)) continue;
    // A literal inside a statement that explicitly names `double` (e.g. a
    // deliberate double accumulator: `double acc = 0.0;`) is not narrowing.
    bool explicit_double = false;
    for (std::size_t back = i; back-- > 0;) {
      const Token& p = c.toks[back];
      if (p.kind == TokKind::kPunct && (p.text == ";" || p.text == "{" || p.text == "}")) break;
      if (p.kind == TokKind::kIdent && p.text == "double") {
        explicit_double = true;
        break;
      }
    }
    if (explicit_double) continue;
    c.report("num-narrow-literal", t,
             "double literal '" + t.text + "' in a float kernel promotes the expression to "
             "double and narrows back",
             "add an 'f' suffix to keep kernel arithmetic in float");
  }
}

// --------------------------------------------------------------------------
// API rules
// --------------------------------------------------------------------------

void rule_raw_io(Ctx& c) {
  if (!c.file.in_src || c.file.is_logging) return;
  for (std::size_t i = 0; i < c.toks.size(); ++i) {
    if (c.toks[i].kind != TokKind::kIdent) continue;
    const std::string& t = c.toks[i].text;
    const bool stream = (t == "cout" || t == "cerr" || t == "clog") && c.std_qualified(i);
    const bool cfn = (t == "printf" || t == "fprintf" || t == "puts" || t == "fputs") &&
                     (!c.member_or_qualified(i) || c.std_qualified(i)) && c.punct(i + 1, "(");
    if (!stream && !cfn) continue;
    c.report("api-raw-io", c.toks[i],
             "direct console I/O in library code bypasses leveled logging",
             "use QD_LOG_* from util/logging.h (level-filtered, capturable in tests)");
  }
}

void rule_flatstate(Ctx& c) {
  // Model states are nn::FlatState (one contiguous buffer + shared layout
  // manifest); per-tensor vector<Tensor> state manipulation outside the
  // parameter plane's own implementation forfeits layout sharing, the pooled
  // flat kernels, and the layout-hash compatibility checks. Genuine
  // per-tensor lists (gradient lists feeding Sgd::step_tensors, image
  // batches) carry a NOLINT with a justification.
  if (!c.file.in_src) return;
  if (c.file.path.rfind("src/nn/state", 0) == 0) return;
  // autograd's API is tensor-level by design (gradients of arbitrary input
  // lists); it never represents a model state.
  if (c.file.path.rfind("src/autograd/", 0) == 0) return;
  for (std::size_t i = 0; i + 2 < c.toks.size(); ++i) {
    if (!c.ident(i, "vector") || !c.punct(i + 1, "<")) continue;
    // Skip nested-name qualifiers on the element type: vector<nn::Tensor>.
    std::size_t j = i + 2;
    while (j + 1 < c.toks.size() && c.toks[j].kind == TokKind::kIdent && c.punct(j + 1, "::")) {
      j += 2;
    }
    if (!c.ident(j, "Tensor")) continue;
    if (!(c.punct(j + 1, ">") || c.punct(j + 1, ">>"))) continue;
    c.report("api-flatstate", c.toks[i],
             "vector<Tensor> model-state representation bypasses the flat parameter plane",
             "use nn::FlatState (nn/state.h) so states share layout manifests and the pooled "
             "flat kernels; NOLINT(qdlint-api-flatstate) only for genuine per-tensor lists "
             "(gradients, image batches) with a comment saying why");
  }
}

void rule_pragma_once(Ctx& c) {
  if (!c.file.is_header) return;
  for (const Token& t : c.toks) {
    if (t.kind != TokKind::kPreproc) continue;
    // Normalize whitespace: "#  pragma   once" counts.
    std::string squeezed;
    for (char ch : t.text) {
      if (ch == ' ' || ch == '\t') {
        if (!squeezed.empty() && squeezed.back() != ' ') squeezed += ' ';
      } else {
        squeezed += ch;
      }
    }
    if (squeezed == "#pragma once" || squeezed == "# pragma once") return;
  }
  Token at{TokKind::kPreproc, "", 1, 1};
  c.report("api-pragma-once", at, "header is missing #pragma once",
           "add `#pragma once` as the first directive");
}

void rule_durable_io(Ctx& c) {
  // Persistence must go through the crash-safe layers: store/ (paged,
  // CRC'd, two-phase committed) or util/atomic_file.h (tmp + fsync +
  // rename). A raw std::ofstream / fwrite / write-mode fopen can tear on
  // crash, leaving a half-written checkpoint, trace or report that the
  // reader then mis-parses. Those two directories are the rule's home and
  // are exempt; reads (ifstream, read-mode fopen) are always fine.
  if (c.file.is_durable_io) return;
  const char* hint =
      "persist through store::Store (transactional) or util/atomic_file.h "
      "write_file_atomic (atomic replace); NOLINT(qdlint-api-durable-io) if "
      "the write is genuinely tear-tolerant";
  for (std::size_t i = 0; i < c.toks.size(); ++i) {
    if (c.toks[i].kind != TokKind::kIdent) continue;
    const std::string& t = c.toks[i].text;
    if (t == "ofstream" || t == "fstream") {
      // std::fstream opened for writing shares the tearing problem; plain
      // `fstream` idents also cover `using std::ofstream` styles.
      c.report("api-durable-io", c.toks[i],
               "raw " + t + " persistence can tear on crash", hint);
      continue;
    }
    const bool callish = (!c.member_or_qualified(i) || c.std_qualified(i)) && c.punct(i + 1, "(");
    if (!callish) continue;
    if (t == "fwrite") {
      c.report("api-durable-io", c.toks[i], "raw fwrite persistence can tear on crash", hint);
    } else if (t == "fopen") {
      // Only write modes are durable-io; inspect the mode string literal.
      const std::size_t end = c.match_paren(i + 1);
      const Token* mode = nullptr;
      for (std::size_t j = i + 2; j < end; ++j) {
        if (c.toks[j].kind == TokKind::kString) mode = &c.toks[j];
      }
      const bool writes = mode == nullptr ||  // non-literal mode: assume the worst
                          mode->text.find('w') != std::string::npos ||
                          mode->text.find('a') != std::string::npos ||
                          mode->text.find('+') != std::string::npos;
      if (writes) {
        c.report("api-durable-io", c.toks[i],
                 "fopen in a write mode can tear on crash", hint);
      }
    }
  }
}

void rule_net_io(Ctx& c) {
  // Raw socket traffic outside src/net bypasses the typed NetError handling,
  // the EINTR discipline and the Io seam that keeps the whole protocol stack
  // testable over an in-memory loopback. src/net is the rule's home and is
  // exempt; everything else goes through net::Io / net::TcpConn.
  if (c.file.is_net_io) return;
  static const char* const kSocketCalls[] = {"socket",   "accept", "bind",       "listen",
                                             "connect",  "recv",   "recvfrom",   "send",
                                             "sendto",   "poll",   "setsockopt", "shutdown"};
  const char* hint =
      "route network I/O through net::Io / net::TcpConn (src/net), which are "
      "EINTR-safe and loopback-testable; NOLINT(qdlint-api-net-io) if this "
      "is genuinely not socket traffic";
  for (std::size_t i = 0; i < c.toks.size(); ++i) {
    if (c.toks[i].kind != TokKind::kIdent) continue;
    const std::string& t = c.toks[i].text;
    bool named = false;
    for (const char* call : kSocketCalls) named = named || t == call;
    if (!named || !c.punct(i + 1, "(")) continue;
    // Member access (conn.send(...)) and namespace qualification (std::bind,
    // Channel::listen) are not the POSIX calls — but a global-scope ::send
    // is exactly what the rule is after.
    if (c.member_or_qualified(i)) {
      const bool global_scope =
          c.punct(i - 1, "::") && (i < 2 || c.toks[i - 2].kind != TokKind::kIdent);
      if (!global_scope) continue;
    } else if (i > 0 && c.toks[i - 1].kind == TokKind::kIdent &&
               c.toks[i - 1].text != "return") {
      continue;  // a declaration like `void send(...)`, not a call
    }
    c.report("api-net-io", c.toks[i], "raw " + t + "() outside src/net", hint);
  }
}

}  // namespace

const std::vector<std::string>& all_rules() { return kAllRules; }

FileContext classify(const std::string& relpath) {
  FileContext ctx;
  ctx.path = relpath;
  auto starts = [&](const char* prefix) { return relpath.rfind(prefix, 0) == 0; };
  auto ends = [&](const char* suffix) {
    const std::size_t n = std::char_traits<char>::length(suffix);
    return relpath.size() >= n && relpath.compare(relpath.size() - n, n, suffix) == 0;
  };
  ctx.in_src = starts("src/");
  ctx.is_header = ends(".h") || ends(".hpp");
  ctx.is_kernel_tu = starts("src/tensor/") && ends(".cpp");
  ctx.is_thread_pool = starts("src/util/thread_pool.");
  ctx.is_logging = starts("src/util/logging.");
  ctx.is_durable_io = starts("src/store/") || starts("src/util/");
  ctx.is_net_io = starts("src/net/");
  return ctx;
}

std::vector<Finding> analyze(const FileContext& ctx, const std::string& source) {
  return analyze_lexed(ctx, lex(source));
}

std::vector<Finding> analyze_lexed(const FileContext& ctx, const LexResult& lexed) {
  std::vector<Finding> findings;
  Ctx c{ctx, lexed.tokens, lexed.marks, findings};
  rule_random_device(c);
  rule_rand(c);
  rule_time_seed(c);
  rule_sleep(c);
  rule_unordered_iter(c);
  rule_raw_thread(c);
  rule_detach(c);
  rule_ref_capture(c);
  rule_static_local(c);
  rule_simd_store(c);
  rule_float_eq(c);
  rule_simd_lane_eq(c);
  rule_narrow_literal(c);
  rule_raw_io(c);
  rule_pragma_once(c);
  rule_flatstate(c);
  rule_durable_io(c);
  rule_net_io(c);
  detail::rule_lock_scope(ctx, lexed, findings);
  detail::rule_iter_order_escape(ctx, lexed, findings);
  std::stable_sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    if (a.col != b.col) return a.col < b.col;
    return a.rule < b.rule;
  });
  return findings;
}

}  // namespace qdlint
