#include "qdlint.h"

#include <cstdint>
#include <sstream>

// On-disk analysis cache. Line-oriented, tab-separated, versioned: the
// header embeds an FNV hash of the rule list so adding/renaming a rule
// invalidates every entry at once, and any parse hiccup rejects the whole
// file — a bad cache degrades to a cold run, never to stale findings.
//
// Format (one cache file, entries sorted by path):
//   qdlint-cache 2 <rule-hash hex>
//   F <mtime_ns> <size> <hash> <path>
//   f <line> <col> <rule>\t<message>\t<hint>\t<trimmed line text>
//   I <line> <conditional 0|1> <target>
//   G <line> <name>            (mutable namespace-scope global)
//   M <line> <name>            (mutex declaration)
//   B <fn|site> <line> <flags bitmask: 1=lock_guard 2=split 4=annotated> <name>
//   c|r|u <line> <name>        (call / rng draw / ident use, inside B..E)
//   E                          (end of body)
//   N <line> <rule,rule,...>   (NOLINT marks; '*' allowed)

namespace qdlint {
namespace {

std::string esc(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

std::string unesc(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    switch (s[++i]) {
      case '\\': out += '\\'; break;
      case 't': out += '\t'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      default: out += s[i];
    }
  }
  return out;
}

std::uint64_t rule_set_hash() {
  std::string joined;
  for (const auto& r : all_rules()) {
    joined += r;
    joined += '\n';
  }
  return fnv1a64(joined);
}

std::string hex(std::uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

/// Splits a line into at most `max_fields` space-separated fields; the last
/// field swallows the remainder (so paths/names may contain spaces).
std::vector<std::string> fields(const std::string& line, std::size_t max_fields) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (out.size() + 1 < max_fields && pos < line.size()) {
    const std::size_t sp = line.find(' ', pos);
    if (sp == std::string::npos) break;
    out.push_back(line.substr(pos, sp - pos));
    pos = sp + 1;
  }
  out.push_back(line.substr(pos));
  return out;
}

std::vector<std::string> tab_split(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t tab = s.find('\t', pos);
    if (tab == std::string::npos) {
      out.push_back(s.substr(pos));
      return out;
    }
    out.push_back(s.substr(pos, tab - pos));
    pos = tab + 1;
  }
}

bool to_i64(const std::string& s, std::int64_t* out) {
  if (s.empty()) return false;
  std::int64_t v = 0;
  std::size_t i = 0;
  bool neg = false;
  if (s[0] == '-') {
    neg = true;
    i = 1;
    if (s.size() == 1) return false;
  }
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
    v = v * 10 + (s[i] - '0');
  }
  *out = neg ? -v : v;
  return true;
}

bool to_u64(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

void write_body(std::ostringstream& out, const BodyFacts& b) {
  const int flags = (b.has_lock_guard ? 1 : 0) | (b.has_split ? 2 : 0) | (b.annotated ? 4 : 0);
  out << "B " << (b.is_site ? "site" : "fn") << ' ' << b.line << ' ' << flags << ' '
      << esc(b.name) << '\n';
  for (const auto& s : b.calls) out << "c " << s.line << ' ' << esc(s.name) << '\n';
  for (const auto& s : b.rng_draws) out << "r " << s.line << ' ' << esc(s.name) << '\n';
  for (const auto& s : b.ident_uses) out << "u " << s.line << ' ' << esc(s.name) << '\n';
  out << "E\n";
}

}  // namespace

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

std::string serialize_cache(const Cache& cache) {
  std::ostringstream out;
  out << "qdlint-cache 2 " << hex(rule_set_hash()) << '\n';
  for (const auto& [path, entry] : cache.entries) {
    out << "F " << entry.mtime_ns << ' ' << entry.size << ' ' << entry.hash << ' ' << esc(path)
        << '\n';
    const AnalyzedFile& a = entry.analysis;
    for (std::size_t i = 0; i < a.findings.size(); ++i) {
      const Finding& f = a.findings[i];
      const std::string text = i < a.line_texts.size() ? a.line_texts[i] : std::string();
      out << "f " << f.line << ' ' << f.col << ' ' << f.rule << '\t' << esc(f.message) << '\t'
          << esc(f.hint) << '\t' << esc(text) << '\n';
    }
    for (const auto& inc : a.facts.includes) {
      out << "I " << inc.line << ' ' << (inc.conditional ? 1 : 0) << ' ' << esc(inc.target)
          << '\n';
    }
    for (const auto& g : a.facts.globals) out << "G " << g.line << ' ' << esc(g.name) << '\n';
    for (const auto& m : a.facts.mutexes) out << "M " << m.line << ' ' << esc(m.name) << '\n';
    for (const auto& b : a.facts.functions) write_body(out, b);
    for (const auto& b : a.facts.sites) write_body(out, b);
    for (const auto& [line, rules] : a.facts.nolint) {
      out << "N " << line << ' ';
      bool first = true;
      for (const auto& r : rules) {
        if (!first) out << ',';
        out << r;
        first = false;
      }
      out << '\n';
    }
  }
  return out.str();
}

bool parse_cache(const std::string& content, Cache* out) {
  *out = Cache{};
  std::istringstream ss(content);
  std::string line;
  if (!std::getline(ss, line)) return false;
  if (line != "qdlint-cache 2 " + hex(rule_set_hash())) return false;

  CacheEntry* entry = nullptr;
  BodyFacts* body = nullptr;
  bool body_is_site = false;
  auto fail = [&] {
    *out = Cache{};
    return false;
  };

  while (std::getline(ss, line)) {
    if (line.empty()) continue;
    const char tag = line[0];
    if (line.size() < 2 || line[1] != ' ') {
      if (tag == 'E' && line.size() == 1) {
        if (body == nullptr || entry == nullptr) return fail();
        body = nullptr;
        continue;
      }
      return fail();
    }
    const std::string rest = line.substr(2);
    switch (tag) {
      case 'F': {
        const auto f = fields(rest, 4);
        std::int64_t mtime = 0;
        std::uint64_t size = 0, hash = 0;
        if (f.size() != 4 || !to_i64(f[0], &mtime) || !to_u64(f[1], &size) ||
            !to_u64(f[2], &hash)) {
          return fail();
        }
        const std::string path = unesc(f[3]);
        if (path.empty() || out->entries.count(path)) return fail();
        entry = &out->entries[path];
        entry->mtime_ns = mtime;
        entry->size = size;
        entry->hash = hash;
        entry->analysis.facts.path = path;
        body = nullptr;
        break;
      }
      case 'f': {
        if (entry == nullptr || body != nullptr) return fail();
        const auto head = fields(rest, 3);
        std::int64_t ln = 0, col = 0;
        if (head.size() != 3 || !to_i64(head[0], &ln) || !to_i64(head[1], &col)) return fail();
        const auto tabbed = tab_split(head[2]);
        if (tabbed.size() != 4) return fail();
        Finding f;
        f.rule = tabbed[0];
        f.path = entry->analysis.facts.path;
        f.line = static_cast<int>(ln);
        f.col = static_cast<int>(col);
        f.message = unesc(tabbed[1]);
        f.hint = unesc(tabbed[2]);
        entry->analysis.findings.push_back(std::move(f));
        entry->analysis.line_texts.push_back(unesc(tabbed[3]));
        break;
      }
      case 'I': {
        if (entry == nullptr || body != nullptr) return fail();
        const auto f = fields(rest, 3);
        std::int64_t ln = 0, cond = 0;
        if (f.size() != 3 || !to_i64(f[0], &ln) || !to_i64(f[1], &cond)) return fail();
        entry->analysis.facts.includes.push_back(
            {unesc(f[2]), static_cast<int>(ln), cond != 0});
        break;
      }
      case 'G':
      case 'M': {
        if (entry == nullptr || body != nullptr) return fail();
        const auto f = fields(rest, 2);
        std::int64_t ln = 0;
        if (f.size() != 2 || !to_i64(f[0], &ln)) return fail();
        auto& vec = tag == 'G' ? entry->analysis.facts.globals : entry->analysis.facts.mutexes;
        vec.push_back({unesc(f[1]), static_cast<int>(ln)});
        break;
      }
      case 'B': {
        if (entry == nullptr || body != nullptr) return fail();
        const auto f = fields(rest, 4);
        std::int64_t ln = 0, flags = 0;
        if (f.size() != 4 || (f[0] != "fn" && f[0] != "site") || !to_i64(f[1], &ln) ||
            !to_i64(f[2], &flags)) {
          return fail();
        }
        body_is_site = f[0] == "site";
        auto& vec = body_is_site ? entry->analysis.facts.sites : entry->analysis.facts.functions;
        vec.push_back(BodyFacts{});
        body = &vec.back();
        body->name = unesc(f[3]);
        body->line = static_cast<int>(ln);
        body->is_site = body_is_site;
        body->has_lock_guard = (flags & 1) != 0;
        body->has_split = (flags & 2) != 0;
        body->annotated = (flags & 4) != 0;
        break;
      }
      case 'c':
      case 'r':
      case 'u': {
        if (body == nullptr) return fail();
        const auto f = fields(rest, 2);
        std::int64_t ln = 0;
        if (f.size() != 2 || !to_i64(f[0], &ln)) return fail();
        auto& vec = tag == 'c' ? body->calls : tag == 'r' ? body->rng_draws : body->ident_uses;
        vec.push_back({unesc(f[1]), static_cast<int>(ln)});
        break;
      }
      case 'N': {
        if (entry == nullptr || body != nullptr) return fail();
        const auto f = fields(rest, 2);
        std::int64_t ln = 0;
        if (f.size() != 2 || !to_i64(f[0], &ln)) return fail();
        std::set<std::string>& rules = entry->analysis.facts.nolint[static_cast<int>(ln)];
        std::string cur;
        for (char ch : f[1] + ",") {
          if (ch == ',') {
            if (!cur.empty()) rules.insert(cur);
            cur.clear();
          } else {
            cur += ch;
          }
        }
        break;
      }
      default:
        return fail();
    }
  }
  return body == nullptr;
}

}  // namespace qdlint
