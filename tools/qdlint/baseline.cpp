#include "qdlint.h"

// Baseline: grandfathered findings recorded as "path|rule|trimmed line text".
// Keying on line *text* instead of line number keeps entries stable across
// unrelated edits above a finding; duplicate keys grandfather one occurrence
// each. The file may only shrink — new findings never get auto-baselined.

namespace qdlint {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) --e;
  return s.substr(b, e - b);
}

}  // namespace

std::string baseline_key(const Finding& f, const std::string& line_text) {
  return f.path + "|" + f.rule + "|" + trim(line_text);
}

Baseline parse_baseline(const std::string& content) {
  Baseline b;
  std::size_t pos = 0;
  while (pos <= content.size()) {
    const std::size_t nl = content.find('\n', pos);
    const std::string line =
        trim(content.substr(pos, nl == std::string::npos ? std::string::npos : nl - pos));
    if (!line.empty() && line[0] != '#') ++b.entries[line];
    if (nl == std::string::npos) break;
    pos = nl + 1;
  }
  return b;
}

std::vector<Finding> subtract_baseline(const std::vector<Finding>& findings,
                                       const Baseline& baseline,
                                       const std::vector<std::string>& finding_line_texts) {
  std::map<std::string, int> budget = baseline.entries;
  std::vector<Finding> kept;
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const std::string key = baseline_key(findings[i], finding_line_texts[i]);
    const auto it = budget.find(key);
    if (it != budget.end() && it->second > 0) {
      --it->second;
      continue;
    }
    kept.push_back(findings[i]);
  }
  return kept;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_json(const std::vector<Finding>& findings) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += "  {\"file\": \"" + json_escape(f.path) + "\", \"line\": " + std::to_string(f.line) +
           ", \"col\": " + std::to_string(f.col) + ", \"rule\": \"" + json_escape(f.rule) +
           "\", \"message\": \"" + json_escape(f.message) + "\", \"hint\": \"" +
           json_escape(f.hint) + "\"}";
    if (i + 1 < findings.size()) out += ",";
    out += "\n";
  }
  out += "]\n";
  return out;
}

}  // namespace qdlint
