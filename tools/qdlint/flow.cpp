#include "qdlint.h"

#include <algorithm>

// Flow-sensitive single-function checks. Unlike the token rules these build a
// small statement tree (if/else arms, 0-or-1 loop bodies) and evaluate it
// over sets of abstract states, so "unlock on the early-return path only" and
// "unlock skipped by one branch" are both caught without false-firing on the
// common balanced patterns. The approximations (loops run 0 or 1 times,
// lambda bodies are opaque, break/continue are no-ops) are documented in
// DESIGN.md §14.

namespace qdlint {
namespace {

struct FlowCtx {
  const FileContext& file;
  const std::vector<Token>& toks;
  const LineMarks& marks;
  std::vector<Finding>& out;

  bool suppressed(const std::string& rule, int line) const {
    const auto it = marks.nolint.find(line);
    if (it == marks.nolint.end()) return false;
    return it->second.count("*") != 0 || it->second.count("qdlint-" + rule) != 0;
  }
  void report(const std::string& rule, int line, int col, std::string message,
              std::string hint = "") {
    if (suppressed(rule, line)) return;
    out.push_back({rule, file.path, line, col, std::move(message), std::move(hint)});
  }

  bool punct(std::size_t i, const char* text) const {
    return i < toks.size() && toks[i].kind == TokKind::kPunct && toks[i].text == text;
  }
  bool ident(std::size_t i, const char* text) const {
    return i < toks.size() && toks[i].kind == TokKind::kIdent && toks[i].text == text;
  }
  bool is_ident(std::size_t i) const {
    return i < toks.size() && toks[i].kind == TokKind::kIdent;
  }
  std::size_t match(std::size_t open, const char* op, const char* cl) const {
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kPunct) continue;
      if (toks[i].text == op) ++depth;
      if (toks[i].text == cl && --depth == 0) return i + 1;
    }
    return toks.size();
  }
  std::size_t match_paren(std::size_t open) const { return match(open, "(", ")"); }
  std::size_t match_brace(std::size_t open) const { return match(open, "{", "}"); }

  /// End index (one past) of the statement starting at i: a block, a full
  /// if/else chain, a loop with its body, or a simple statement up to ';'.
  std::size_t stmt_end(std::size_t i) const {
    if (i >= toks.size()) return toks.size();
    if (punct(i, "{")) return match_brace(i);
    if (ident(i, "if") && punct(i + 1, "(")) {
      std::size_t j = stmt_end(match_paren(i + 1));
      if (ident(j, "else")) j = stmt_end(j + 1);
      return j;
    }
    if ((ident(i, "for") || ident(i, "while") || ident(i, "switch")) && punct(i + 1, "(")) {
      return stmt_end(match_paren(i + 1));
    }
    if (ident(i, "do")) {
      std::size_t j = stmt_end(i + 1);
      if (ident(j, "while") && punct(j + 1, "(")) j = match_paren(j + 1);
      if (punct(j, ";")) ++j;
      return j;
    }
    // Simple statement: to ';' at bracket depth 0.
    int pd = 0, bd = 0, sd = 0;
    for (std::size_t j = i; j < toks.size(); ++j) {
      if (toks[j].kind != TokKind::kPunct) continue;
      const std::string& p = toks[j].text;
      if (p == "(") ++pd;
      else if (p == ")") --pd;
      else if (p == "{") ++bd;
      else if (p == "}") {
        if (bd == 0) return j;  // end of enclosing block: statement ran out
        --bd;
      } else if (p == "[") ++sd;
      else if (p == "]") --sd;
      else if (p == ";" && pd == 0 && bd == 0 && sd == 0) return j + 1;
    }
    return toks.size();
  }

  /// When i starts a lambda introducer, the index one past its body; else i.
  std::size_t skip_lambda(std::size_t i) const {
    if (!punct(i, "[")) return i;
    if (i > 0) {
      const Token& p = toks[i - 1];
      // ident[...] / )(...)[...] / ][...] are subscripts, not lambdas.
      if (p.kind == TokKind::kIdent ||
          (p.kind == TokKind::kPunct && (p.text == ")" || p.text == "]"))) {
        return i;
      }
    }
    std::size_t j = match(i, "[", "]");
    if (punct(j, "(")) j = match_paren(j);
    // Header detritus (mutable, noexcept, -> ret) up to the body brace.
    std::size_t k = j;
    while (k < toks.size() && k < j + 8) {
      if (punct(k, "{")) return match_brace(k);
      if (punct(k, ";") || punct(k, ",") || punct(k, ")")) return i;
      ++k;
    }
    return i;
  }
};

// --------------------------------------------------------------------------
// conc-lock-scope
// --------------------------------------------------------------------------

struct LockItem {
  enum class Kind { kLock, kUnlock, kExit, kBranch, kMaybe };
  Kind kind;
  std::string mutex;  // kLock/kUnlock
  int line = 0;
  int col = 0;
  std::vector<std::vector<LockItem>> arms;  // kBranch: then[, else]; kMaybe: body
  bool has_else = false;
};

std::vector<LockItem> parse_lock_items(const FlowCtx& c, std::size_t b, std::size_t e);

/// Parses the statement at [b, e) — unwrapping one brace level if present.
std::vector<LockItem> parse_lock_stmt(const FlowCtx& c, std::size_t b, std::size_t e) {
  if (c.punct(b, "{")) return parse_lock_items(c, b + 1, e > b ? e - 1 : b);
  return parse_lock_items(c, b, e);
}

std::vector<LockItem> parse_lock_items(const FlowCtx& c, std::size_t b, std::size_t e) {
  std::vector<LockItem> items;
  std::size_t i = b;
  while (i < e && i < c.toks.size()) {
    const Token& t = c.toks[i];
    if (t.kind == TokKind::kPunct) {
      const std::size_t past_lambda = c.skip_lambda(i);
      if (past_lambda != i) {  // lambda bodies are opaque to this rule
        i = past_lambda;
        continue;
      }
      if (t.text == "{") {  // plain nested block: splice
        const std::size_t end = c.match_brace(i);
        auto nested = parse_lock_items(c, i + 1, end > i ? end - 1 : i + 1);
        for (auto& it : nested) items.push_back(std::move(it));
        i = end;
        continue;
      }
      ++i;
      continue;
    }
    if (t.kind != TokKind::kIdent) {
      ++i;
      continue;
    }
    if (t.text == "if" && c.punct(i + 1, "(")) {
      const std::size_t cond_end = c.match_paren(i + 1);
      const std::size_t then_end = c.stmt_end(cond_end);
      LockItem br;
      br.kind = LockItem::Kind::kBranch;
      br.arms.push_back(parse_lock_stmt(c, cond_end, then_end));
      i = then_end;
      if (c.ident(i, "else")) {
        const std::size_t else_end = c.stmt_end(i + 1);
        br.arms.push_back(parse_lock_stmt(c, i + 1, else_end));
        br.has_else = true;
        i = else_end;
      }
      items.push_back(std::move(br));
      continue;
    }
    if ((t.text == "for" || t.text == "while" || t.text == "switch") && c.punct(i + 1, "(")) {
      const std::size_t head_end = c.match_paren(i + 1);
      const std::size_t body_end = c.stmt_end(head_end);
      LockItem mb;
      mb.kind = LockItem::Kind::kMaybe;
      mb.arms.push_back(parse_lock_stmt(c, head_end, body_end));
      items.push_back(std::move(mb));
      i = body_end;
      continue;
    }
    if (t.text == "do") {
      const std::size_t body_end = c.stmt_end(i + 1);
      LockItem mb;
      mb.kind = LockItem::Kind::kMaybe;
      mb.arms.push_back(parse_lock_stmt(c, i + 1, body_end));
      items.push_back(std::move(mb));
      i = c.stmt_end(i);  // past the trailing while(...);
      continue;
    }
    if (t.text == "return" || t.text == "throw") {
      items.push_back({LockItem::Kind::kExit, "", t.line, t.col, {}, false});
      // Consume the rest of the statement (an expression may contain calls).
      int pd = 0;
      std::size_t j = i + 1;
      for (; j < e && j < c.toks.size(); ++j) {
        if (c.toks[j].kind != TokKind::kPunct) continue;
        const std::string& p = c.toks[j].text;
        if (p == "(") ++pd;
        else if (p == ")") --pd;
        else if (p == ";" && pd == 0) break;
      }
      i = j + 1;
      continue;
    }
    // mu.lock() / mu->lock() / mu.unlock()
    if ((c.punct(i + 1, ".") || c.punct(i + 1, "->")) &&
        (c.ident(i + 2, "lock") || c.ident(i + 2, "unlock")) && c.punct(i + 3, "(")) {
      const bool is_lock = c.toks[i + 2].text == "lock";
      items.push_back({is_lock ? LockItem::Kind::kLock : LockItem::Kind::kUnlock, t.text,
                       t.line, t.col, {}, false});
      i += 4;
      continue;
    }
    ++i;
  }
  return items;
}

// Abstract state: mutex name -> held count, evaluated over a set of paths.
using LockState = std::map<std::string, int>;

struct LockEval {
  FlowCtx& c;
  std::set<std::string> reported;
  std::map<std::string, std::pair<int, int>> first_lock;  // mutex -> line/col

  void report_once(const std::string& mutex, int line, int col, const std::string& what) {
    if (!reported.insert(mutex).second) return;
    c.report("conc-lock-scope", line, col,
             "manual " + mutex + ".lock()/unlock() is not matched on all paths: " + what,
             "hold the mutex with std::lock_guard (or std::unique_lock for condition "
             "waits) so every path — including early returns and exceptions — releases it");
  }

  std::vector<LockState> eval(const std::vector<LockItem>& items, std::vector<LockState> states,
                              bool top = false) {
    for (const LockItem& it : items) {
      switch (it.kind) {
        case LockItem::Kind::kLock:
          if (!first_lock.count(it.mutex)) first_lock[it.mutex] = {it.line, it.col};
          for (auto& s : states) ++s[it.mutex];
          break;
        case LockItem::Kind::kUnlock:
          for (auto& s : states) {
            int& held = s[it.mutex];
            if (held == 0) {
              report_once(it.mutex, it.line, it.col,
                          "unlock() without a matching lock() on some path");
            } else {
              --held;
            }
          }
          break;
        case LockItem::Kind::kExit:
          for (auto& s : states) {
            for (const auto& [mutex, held] : s) {
              if (held <= 0) continue;
              const auto at = first_lock.count(mutex) ? first_lock[mutex]
                                                      : std::make_pair(it.line, it.col);
              report_once(mutex, at.first, at.second,
                          "a return/throw at line " + std::to_string(it.line) +
                              " leaves it held");
            }
          }
          states.clear();  // these paths left the region
          // Function bodies are spliced flat into one top-level list, so a
          // top-level return ends one function and the statements after it
          // belong to the next — reseed a fresh path for them. Exits inside
          // branch arms stay dead paths (the sibling arm carries the state
          // forward), so balanced early-return patterns don't false-fire.
          if (top) states.push_back(LockState{});
          break;
        case LockItem::Kind::kBranch: {
          auto then_states = eval(it.arms[0], states);
          auto else_states =
              it.has_else ? eval(it.arms[1], states) : states;
          states = merge(std::move(then_states), std::move(else_states));
          break;
        }
        case LockItem::Kind::kMaybe: {
          auto once = eval(it.arms[0], states);
          states = merge(std::move(states), std::move(once));
          break;
        }
      }
    }
    return states;
  }

  static std::vector<LockState> merge(std::vector<LockState> a, std::vector<LockState> b) {
    std::set<LockState> dedup(a.begin(), a.end());
    dedup.insert(b.begin(), b.end());
    std::vector<LockState> out(dedup.begin(), dedup.end());
    constexpr std::size_t kMaxStates = 64;  // path-explosion cap
    if (out.size() > kMaxStates) out.resize(kMaxStates);
    return out;
  }
};

void rule_lock_scope_impl(FlowCtx& c) {
  // The thread pool's condition-variable dance legitimately splits
  // lock/unlock around waits; it is the rule's one exempt home.
  if (c.file.is_thread_pool) return;
  const auto items = parse_lock_items(c, 0, c.toks.size());
  LockEval ev{c, {}, {}};
  const auto final_states = ev.eval(items, {LockState{}}, /*top=*/true);
  for (const auto& s : final_states) {
    for (const auto& [mutex, held] : s) {
      if (held <= 0) continue;
      const auto at = ev.first_lock.count(mutex) ? ev.first_lock.at(mutex)
                                                 : std::make_pair(1, 1);
      ev.report_once(mutex, at.first, at.second,
                     "at least one path reaches the end of the scope with it still held");
    }
  }
}

// --------------------------------------------------------------------------
// det-iter-order-escape
// --------------------------------------------------------------------------

bool is_unordered_type(const std::string& t) {
  return t == "unordered_map" || t == "unordered_set" || t == "unordered_multimap" ||
         t == "unordered_multiset";
}

bool is_stream_type(const std::string& t) {
  return t == "ostringstream" || t == "stringstream" || t == "ofstream" || t == "ostream";
}

/// Skips a balanced template argument list; returns `open` when the '<' turns
/// out to be a comparison.
std::size_t skip_angles(const FlowCtx& c, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < c.toks.size(); ++i) {
    const Token& t = c.toks[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "<") ++depth;
    else if (t.text == ">") {
      if (--depth == 0) return i + 1;
    } else if (t.text == ">>") {
      depth -= 2;
      if (depth <= 0) return i + 1;
    } else if (t.text == ";" || t.text == "{") {
      return open;
    }
  }
  return open;
}

void rule_iter_order_escape_impl(FlowCtx& c) {
  // Names declared with an unordered container type, and names declared as
  // serialized sinks (output streams and strings built up for output).
  std::set<std::string> unordered_vars, stream_vars, string_vars;
  for (std::size_t i = 0; i < c.toks.size(); ++i) {
    if (c.toks[i].kind != TokKind::kIdent) continue;
    const std::string& t = c.toks[i].text;
    if (!is_unordered_type(t) && !is_stream_type(t) && t != "string") continue;
    std::size_t j = i + 1;
    if (c.punct(j, "<")) j = skip_angles(c, j);
    while (c.punct(j, "&") || c.punct(j, "*") || c.ident(j, "const")) ++j;
    if (j >= c.toks.size() || c.toks[j].kind != TokKind::kIdent) continue;
    if (is_unordered_type(t)) unordered_vars.insert(c.toks[j].text);
    else if (is_stream_type(t)) stream_vars.insert(c.toks[j].text);
    else string_vars.insert(c.toks[j].text);
  }
  if (unordered_vars.empty()) return;

  const char* hint =
      "serialized bytes must not depend on hash order: copy the keys to a sorted "
      "vector first, or accumulate into an order-insensitive form";

  for (std::size_t i = 0; i + 1 < c.toks.size(); ++i) {
    if (!c.ident(i, "for") || !c.punct(i + 1, "(")) continue;
    const std::size_t head_end = c.match_paren(i + 1);

    // Which unordered container (if any) does this loop traverse?
    std::string container;
    int depth = 0;
    bool past_colon = false;
    for (std::size_t j = i + 1; j + 1 < head_end; ++j) {
      const Token& t = c.toks[j];
      if (t.kind == TokKind::kPunct) {
        if (t.text == "(") ++depth;
        else if (t.text == ")") --depth;
        else if (t.text == ":" && depth == 1) past_colon = true;
        continue;
      }
      if (t.kind != TokKind::kIdent || !unordered_vars.count(t.text)) continue;
      if (past_colon) {
        container = t.text;  // range-for: for (auto& kv : m)
        break;
      }
      // Iterator form: for (auto it = m.begin(); ...)
      if (c.punct(j + 1, ".") && (c.ident(j + 2, "begin") || c.ident(j + 2, "cbegin"))) {
        container = t.text;
        break;
      }
    }
    if (container.empty()) continue;

    // Scan the loop body for writes to a serialized sink.
    const std::size_t body_end = c.stmt_end(head_end);
    for (std::size_t j = head_end; j < body_end && j < c.toks.size(); ++j) {
      const Token& t = c.toks[j];
      if (t.kind != TokKind::kIdent) continue;
      std::string sink;
      if (stream_vars.count(t.text) && c.punct(j + 1, "<<")) {
        sink = t.text + " << ...";
      } else if (string_vars.count(t.text) &&
                 (c.punct(j + 1, "+=") ||
                  (c.punct(j + 1, ".") && c.ident(j + 2, "append") && c.punct(j + 3, "(")))) {
        sink = t.text + " +=/append";
      } else if ((t.text == "write_file_atomic" || t.text == "fwrite" || t.text == "fprintf" ||
                  t.text.rfind("QD_LOG", 0) == 0) &&
                 c.punct(j + 1, "(")) {
        sink = t.text + "(...)";
      }
      if (sink.empty()) continue;
      c.report("det-iter-order-escape", c.toks[i].line, c.toks[i].col,
               "loop over unordered container '" + container +
                   "' writes to serialized sink (" + sink + ") in hash order",
               hint);
      break;  // one finding per loop
    }
  }
}

}  // namespace

namespace detail {

void rule_lock_scope(const FileContext& ctx, const LexResult& lexed,
                     std::vector<Finding>& out) {
  FlowCtx c{ctx, lexed.tokens, lexed.marks, out};
  rule_lock_scope_impl(c);
}

void rule_iter_order_escape(const FileContext& ctx, const LexResult& lexed,
                            std::vector<Finding>& out) {
  FlowCtx c{ctx, lexed.tokens, lexed.marks, out};
  rule_iter_order_escape_impl(c);
}

}  // namespace detail

// --------------------------------------------------------------------------
// analyze_file — the one-lex entry point used by the driver and the cache
// --------------------------------------------------------------------------

std::vector<std::string> split_source_lines(const std::string& s) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : s) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  lines.push_back(cur);
  return lines;
}

std::string trimmed_line(const std::vector<std::string>& lines, int line_no) {
  if (line_no < 1 || line_no > static_cast<int>(lines.size())) return {};
  const std::string& s = lines[static_cast<std::size_t>(line_no - 1)];
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) --e;
  return s.substr(b, e - b);
}

AnalyzedFile analyze_file(const FileContext& ctx, const std::string& source) {
  AnalyzedFile out;
  const LexResult lexed = lex(source);
  out.findings = analyze_lexed(ctx, lexed);
  out.facts = extract_facts(ctx, lexed);
  const auto lines = split_source_lines(source);
  out.line_texts.reserve(out.findings.size());
  for (const auto& f : out.findings) out.line_texts.push_back(trimmed_line(lines, f.line));
  return out;
}

}  // namespace qdlint
