// qdlint — in-repo static analysis enforcing QuickDrop's determinism,
// concurrency and numeric-safety invariants at build time.
//
// The tool is deliberately self-contained (lexer + token-stream rules, no
// external parser) so it can run as a tier-1 ctest with zero dependencies.
// It is NOT a grep: the lexer understands line/block comments, string and
// character literals (including raw strings), so rule patterns never fire on
// text inside comments or literals.
//
// Rule families (see DESIGN.md "Static analysis & enforced invariants"):
//   DET  — sources of nondeterminism (random_device, rand, time-derived
//          seeds, sleeps in kernels, iteration over unordered containers)
//   CONC — concurrency discipline (raw std::thread/std::async outside the
//          pool, unannotated [&] captures in parallel regions, mutable
//          static locals in kernel TUs)
//   NUM  — numeric safety (float ==/!=, double literals in float kernels)
//   API  — I/O and header hygiene (logging only via util/logging, #pragma
//          once everywhere, durable writes only via store/ or
//          util/atomic_file — raw ofstream/fwrite persistence can tear)
//
// Suppressions:
//   // NOLINT(qdlint-<rule>)          same line
//   // NOLINTNEXTLINE(qdlint-<rule>)  next line
//   // qdlint: shared-write(<why>)    marks an intentional [&] capture in a
//                                     parallel_for/run_chunks region (same
//                                     line or the line above the capture)
// plus a checked-in baseline (qdlint_baseline.txt) of grandfathered findings
// that may only shrink.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace qdlint {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class TokKind {
  kIdent,    // identifiers and keywords
  kNumber,   // numeric literals (integer or floating, any base)
  kString,   // string literal, including raw strings (text excludes quotes)
  kChar,     // character literal
  kPunct,    // operators/punctuation, longest-match (::, ==, !=, ->, ...)
  kPreproc,  // a whole preprocessor directive (continuations joined)
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  // 1-based line of the token's first character
  int col = 0;   // 1-based column
};

/// Per-line suppression facts harvested from comments while lexing.
struct LineMarks {
  /// line -> rules suppressed on that line ("*" = all). NOLINTNEXTLINE
  /// entries are already folded onto the line they affect.
  std::map<int, std::set<std::string>> nolint;
  /// Lines carrying a `qdlint: shared-write(<reason>)` annotation.
  std::set<int> shared_write;
};

struct LexResult {
  std::vector<Token> tokens;  // comments are not tokens; see marks
  LineMarks marks;
};

/// Tokenizes C++ source. Comments and literal *contents* never produce
/// ident/punct tokens, so rules cannot fire inside them. Unterminated
/// constructs are tolerated (lexing is best-effort, never throws).
LexResult lex(const std::string& source);

// ---------------------------------------------------------------------------
// Findings and rules
// ---------------------------------------------------------------------------

struct Finding {
  std::string rule;  // e.g. "det-random-device"
  std::string path;  // as given to analyze()
  int line = 0;
  int col = 0;
  std::string message;
  std::string hint;  // fix suggestion; may be empty
};

/// How a file is classified for rule scoping. Derived from its repo-relative
/// path by classify(), but overridable for tests.
struct FileContext {
  std::string path;        // repo-relative, '/'-separated
  bool in_src = false;     // under src/
  bool is_header = false;  // .h / .hpp
  bool is_kernel_tu = false;    // src/tensor/*.cpp — hot kernels
  bool is_thread_pool = false;  // src/util/thread_pool.* — the one home of raw threads
  bool is_logging = false;      // src/util/logging.* — the one home of raw I/O
  bool is_durable_io = false;   // src/store/*, src/util/* — the home of raw durable writes
};

/// Classifies `relpath` (repo-relative, '/'-separated).
FileContext classify(const std::string& relpath);

/// Runs every rule over one file's source. Suppressed findings (NOLINT /
/// shared-write) are already filtered out.
std::vector<Finding> analyze(const FileContext& ctx, const std::string& source);

/// All rule ids qdlint knows, for `--list-rules` and suppression validation.
const std::vector<std::string>& all_rules();

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

/// A baseline entry identifies a grandfathered finding by file, rule and the
/// trimmed source line text (line *numbers* drift too easily). Stored one per
/// line as "path|rule|trimmed line text". '#' lines and blank lines are
/// ignored.
struct Baseline {
  /// key -> number of grandfathered occurrences.
  std::map<std::string, int> entries;
};

std::string baseline_key(const Finding& f, const std::string& line_text);
Baseline parse_baseline(const std::string& content);

/// Removes up to the grandfathered number of matching findings per key.
/// `line_text_of` must return the trimmed source line of a finding.
std::vector<Finding> subtract_baseline(
    const std::vector<Finding>& findings, const Baseline& baseline,
    const std::vector<std::string>& finding_line_texts);

// ---------------------------------------------------------------------------
// Output helpers
// ---------------------------------------------------------------------------

std::string to_json(const std::vector<Finding>& findings);
std::string json_escape(const std::string& s);

}  // namespace qdlint
