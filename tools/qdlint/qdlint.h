// qdlint — in-repo static analysis enforcing QuickDrop's determinism,
// concurrency and numeric-safety invariants at build time.
//
// The analyzer library is deliberately self-contained (lexer + token-stream
// rules, no external parser) so it can run as a tier-1 ctest with zero
// dependencies. It is NOT a grep: the lexer understands line/block comments,
// string and character literals (including raw strings), so rule patterns
// never fire on text inside comments or literals.
//
// v2 adds a whole-project stage on top of the per-file rules: an include
// graph checked against a declared layer DAG (tools/qdlint/layers.txt), a
// lightweight symbol index + call-graph-lite for reachability rules, and
// flow-sensitive single-function checks. The driver (driver.cpp, linked
// against qd_util) lexes files in parallel over the shared ThreadPool with
// an on-disk mtime+hash cache; this header's analysis API stays pure and
// dependency-free so the lint test suite can drive it in-process.
//
// Rule families (see DESIGN.md "Static analysis & enforced invariants" and
// §14 "Whole-project analysis"):
//   DET  — sources of nondeterminism (random_device, rand, time-derived
//          seeds, sleeps in kernels, iteration over unordered containers,
//          hash-order iteration escaping into serialized sinks, Rng draws
//          reachable from parallel regions without a tag-split)
//   CONC — concurrency discipline (raw std::thread/std::async outside the
//          pool, unannotated [&] captures in parallel regions, mutable
//          static locals in kernel TUs, manual lock()/unlock() not matched
//          on all paths, mutable globals reachable from pool work)
//   NUM  — numeric safety (float ==/!=, double literals in float kernels)
//   API  — I/O and header hygiene (logging only via util/logging, #pragma
//          once everywhere, durable writes only via store/ or
//          util/atomic_file — raw ofstream/fwrite persistence can tear)
//   ARCH — include-graph discipline (declared layer DAG, no include cycles)
//
// Suppressions:
//   // NOLINT(qdlint-<rule>)          same line
//   // NOLINTNEXTLINE(qdlint-<rule>)  next line
//   // qdlint: shared-write(<why>)    marks an intentional [&] capture in a
//                                     parallel_for/run_chunks region (same
//                                     line or the line above the capture)
// plus a checked-in baseline (qdlint_baseline.txt) of grandfathered findings
// that may only shrink.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace qdlint {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class TokKind {
  kIdent,    // identifiers and keywords
  kNumber,   // numeric literals (integer or floating, any base)
  kString,   // string literal, including raw strings (text excludes quotes)
  kChar,     // character literal
  kPunct,    // operators/punctuation, longest-match (::, ==, !=, ->, ...)
  kPreproc,  // a whole preprocessor directive (continuations joined)
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  // 1-based line of the token's first character
  int col = 0;   // 1-based column
};

/// Per-line suppression facts harvested from comments while lexing.
struct LineMarks {
  /// line -> rules suppressed on that line ("*" = all). NOLINTNEXTLINE
  /// entries are already folded onto the line they affect.
  std::map<int, std::set<std::string>> nolint;
  /// Lines carrying a `qdlint: shared-write(<reason>)` annotation.
  std::set<int> shared_write;
};

struct LexResult {
  std::vector<Token> tokens;  // comments are not tokens; see marks
  LineMarks marks;
};

/// Tokenizes C++ source. Comments and literal *contents* never produce
/// ident/punct tokens, so rules cannot fire inside them. Unterminated
/// constructs are tolerated (lexing is best-effort, never throws).
LexResult lex(const std::string& source);

// ---------------------------------------------------------------------------
// Findings and rules
// ---------------------------------------------------------------------------

struct Finding {
  std::string rule;  // e.g. "det-random-device"
  std::string path;  // as given to analyze()
  int line = 0;
  int col = 0;
  std::string message;
  std::string hint;  // fix suggestion; may be empty
};

/// How a file is classified for rule scoping. Derived from its repo-relative
/// path by classify(), but overridable for tests.
struct FileContext {
  std::string path;        // repo-relative, '/'-separated
  bool in_src = false;     // under src/
  bool is_header = false;  // .h / .hpp
  bool is_kernel_tu = false;    // src/tensor/*.cpp — hot kernels
  bool is_thread_pool = false;  // src/util/thread_pool.* — the one home of raw threads
  bool is_logging = false;      // src/util/logging.* — the one home of raw I/O
  bool is_durable_io = false;   // src/store/*, src/util/* — the home of raw durable writes
  bool is_net_io = false;       // src/net/* — the one home of raw socket calls
};

/// Classifies `relpath` (repo-relative, '/'-separated).
FileContext classify(const std::string& relpath);

/// Runs every per-file rule (token + flow-sensitive) over one file's source.
/// Suppressed findings (NOLINT / shared-write) are already filtered out.
/// Project-wide rules (arch-*, reachability) run separately via
/// link_project() over extracted FileFacts.
std::vector<Finding> analyze(const FileContext& ctx, const std::string& source);

/// The same rule set over an already-lexed file (analyze() = lex + this).
std::vector<Finding> analyze_lexed(const FileContext& ctx, const LexResult& lexed);

/// All rule ids qdlint knows, for `--list-rules` and suppression validation.
const std::vector<std::string>& all_rules();

/// Source split into lines / one line trimmed of surrounding whitespace —
/// shared by the driver, the cache and baseline keying.
std::vector<std::string> split_source_lines(const std::string& s);
std::string trimmed_line(const std::vector<std::string>& lines, int line_no);

namespace detail {
/// The flow-sensitive rules, individually callable from tests.
void rule_lock_scope(const FileContext& ctx, const LexResult& lexed,
                     std::vector<Finding>& out);
void rule_iter_order_escape(const FileContext& ctx, const LexResult& lexed,
                            std::vector<Finding>& out);
}  // namespace detail

// ---------------------------------------------------------------------------
// Symbol index & include facts (input to the whole-project stage)
// ---------------------------------------------------------------------------

/// A by-name reference harvested from a body: callee, Rng draw, or potential
/// global use. Resolution happens at link time — qdlint's call graph is
/// name-based (no overload/namespace resolution; see DESIGN.md §14 for the
/// false-negative/positive envelope this implies).
struct SymbolRef {
  std::string name;
  int line = 0;
};

/// Facts about one function/method body or one parallel-submit call site
/// (the whole argument region of parallel_for/run_chunks/submit, including
/// any lambda passed to it).
struct BodyFacts {
  std::string name;  // function name; empty for parallel sites
  int line = 0;      // definition line / submit-site line
  bool is_site = false;
  bool has_lock_guard = false;  // declares lock_guard/scoped_lock/unique_lock
  bool has_split = false;       // calls split(...) — tag-derives a child Rng
  bool annotated = false;       // `qdlint: shared-write(...)` at the site
  std::vector<SymbolRef> calls;      // callees, in token order, deduped
  std::vector<SymbolRef> rng_draws;  // Rng draw calls / std distribution uses
  std::vector<SymbolRef> ident_uses; // filtered ident refs (global candidates)
};

struct IncludeFact {
  std::string target;  // the quoted include text, e.g. "util/rng.h"
  int line = 0;
  bool conditional = false;  // directive nested under #if/#ifdef/#ifndef
};

struct GlobalDecl {
  std::string name;
  int line = 0;
};

/// Everything the project stage needs to know about one file. Serializable
/// (see cache.cpp) so warm runs never re-lex unchanged files.
struct FileFacts {
  std::string path;
  std::vector<IncludeFact> includes;  // quoted includes only
  std::vector<BodyFacts> functions;
  std::vector<BodyFacts> sites;       // parallel-submit call sites
  std::vector<GlobalDecl> globals;    // mutable non-atomic non-mutex, ns scope
  std::vector<GlobalDecl> mutexes;    // mutex-typed members and globals
  /// NOLINT marks carried forward so project findings stay suppressible.
  std::map<int, std::set<std::string>> nolint;
};

/// Extracts the symbol index + include list from a lexed file.
FileFacts extract_facts(const FileContext& ctx, const LexResult& lexed);

/// One file, fully analyzed: per-file findings plus link-stage inputs.
struct AnalyzedFile {
  std::vector<Finding> findings;
  std::vector<std::string> line_texts;  // trimmed source line per finding
  FileFacts facts;
};

/// Lexes once, runs the per-file rules and extracts facts.
AnalyzedFile analyze_file(const FileContext& ctx, const std::string& source);

// ---------------------------------------------------------------------------
// Layer map & whole-project rules
// ---------------------------------------------------------------------------

/// Declared layering, parsed from tools/qdlint/layers.txt. Lines:
///   layer <name> <dir-prefix> [dir-prefix...]   (rank = declaration order)
///   allow <from-prefix> <to-prefix>             (extra intra-layer edge)
/// '#' comments and blank lines are ignored. A file belongs to the layer of
/// its longest matching prefix; unmapped files are exempt from arch rules.
struct LayerMap {
  struct Layer {
    std::string name;
    int rank = 0;
  };
  std::vector<Layer> layers;
  std::map<std::string, int> prefix_to_layer;  // prefix -> index into layers
  std::set<std::pair<std::string, std::string>> allowed;  // (from, to) prefixes
};

/// Parses a layer map; returns false and sets *error on malformed input.
bool parse_layer_map(const std::string& content, LayerMap* out, std::string* error);

/// The layer prefix a repo-relative path falls under ("" when unmapped).
std::string layer_prefix_of(const LayerMap& map, const std::string& relpath);

/// Runs the project-wide rules over every file's facts:
///   arch-layer-violation   include edge against the declared DAG
///   arch-include-cycle     cycle in the include graph (path printed in order)
///   conc-unguarded-global  mutable global reachable from a parallel region
///                          without a lock guard or shared-write annotation
///   det-rng-in-parallel    Rng draw reachable from a parallel region that
///                          was not tag-split at the submit site
/// Include targets are resolved against the analyzed file set only (relative
/// to the includer's directory, then src/, then the repo root); unresolved
/// includes — missing headers, system headers — are skipped, never fatal.
std::vector<Finding> link_project(const std::vector<FileFacts>& files,
                                  const LayerMap& layers);

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

/// A baseline entry identifies a grandfathered finding by file, rule and the
/// trimmed source line text (line *numbers* drift too easily). Stored one per
/// line as "path|rule|trimmed line text". '#' lines and blank lines are
/// ignored.
struct Baseline {
  /// key -> number of grandfathered occurrences.
  std::map<std::string, int> entries;
};

std::string baseline_key(const Finding& f, const std::string& line_text);
Baseline parse_baseline(const std::string& content);

/// Removes up to the grandfathered number of matching findings per key.
/// `line_text_of` must return the trimmed source line of a finding.
std::vector<Finding> subtract_baseline(
    const std::vector<Finding>& findings, const Baseline& baseline,
    const std::vector<std::string>& finding_line_texts);

// ---------------------------------------------------------------------------
// Output helpers
// ---------------------------------------------------------------------------

std::string to_json(const std::vector<Finding>& findings);
std::string json_escape(const std::string& s);

/// SARIF 2.1.0 (static analysis results interchange format) — one run, one
/// result per finding, rules taken from all_rules(). Uploadable as a CI
/// code-scanning artifact.
std::string to_sarif(const std::vector<Finding>& findings);

// ---------------------------------------------------------------------------
// On-disk analysis cache (mtime + content hash)
// ---------------------------------------------------------------------------

/// FNV-1a 64-bit over a byte string (also used for the cache content hash).
std::uint64_t fnv1a64(const std::string& bytes);

/// One cached file: the stat fingerprint taken when it was analyzed plus the
/// full analysis result. A file whose mtime+size match is reused without
/// reading; on mismatch the content hash decides (touched-but-unchanged
/// files re-fingerprint instead of re-analyzing).
struct CacheEntry {
  std::int64_t mtime_ns = 0;
  std::uint64_t size = 0;
  std::uint64_t hash = 0;  // fnv1a64 of the file contents
  AnalyzedFile analysis;
};

struct Cache {
  std::map<std::string, CacheEntry> entries;  // keyed by repo-relative path
};

/// Serializes to the versioned text format of build/qdlint.cache. The header
/// embeds a hash of all_rules(), so any rule-set change invalidates every
/// entry at once.
std::string serialize_cache(const Cache& cache);

/// Parses a cache file. Returns false (and leaves *out empty) on a version /
/// rule-hash mismatch or corrupt input — a bad cache degrades to a cold run,
/// never to wrong findings.
bool parse_cache(const std::string& content, Cache* out);

// ---------------------------------------------------------------------------
// Fix mode (--fix)
// ---------------------------------------------------------------------------

struct FixResult {
  std::string source;      // rewritten file contents
  int lock_rewrites = 0;   // lock()/unlock() pairs turned into lock_guard
  int nolints_inserted = 0;
  bool changed = false;
};

/// Applies mechanical remediations for `findings` (all belonging to one
/// file) to `source`:
///  - conc-lock-scope: rewrites a manual lock()/unlock() pair into a
///    std::lock_guard when trivially safe (single pair, same scope, the
///    mutex untouched after the unlock);
///  - anything else: inserts `// NOLINTNEXTLINE(qdlint-<rule>) — <note>`
///    above the finding. `note` is the required justification; when empty,
///    NOLINT insertion is skipped (callers treat that as an error).
FixResult apply_fixes(const std::string& source, const std::vector<Finding>& findings,
                      const std::string& note);

}  // namespace qdlint
