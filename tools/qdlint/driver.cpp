#include "driver.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/atomic_file.h"
#include "util/thread_pool.h"

namespace fs = std::filesystem;

namespace qdlint {
namespace {

bool has_suffix(const std::string& s, const char* suffix) {
  const std::size_t n = std::char_traits<char>::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

bool lintable(const fs::path& p) {
  const std::string name = p.filename().string();
  return has_suffix(name, ".cpp") || has_suffix(name, ".cc") || has_suffix(name, ".h") ||
         has_suffix(name, ".hpp");
}

bool read_file(const fs::path& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

struct FileSlot {
  std::string rel;       // repo-relative path
  fs::path full;
  CacheEntry entry;      // filled by the parallel pass
  bool cache_hit = false;
  bool io_error = false;
  std::string source;    // retained only when read this run (for line texts)
  bool have_source = false;
};

struct Zipped {
  Finding finding;
  std::string line_text;
};

}  // namespace

DriverResult run_driver(const DriverOptions& opts) {
  DriverResult result;
  if (opts.threads > 0) quickdrop::set_num_threads(opts.threads);

  std::error_code ec;
  const fs::path root = fs::canonical(opts.root.empty() ? fs::current_path() : fs::path(opts.root), ec);
  if (ec) {
    result.error = "bad root '" + opts.root + "': " + ec.message();
    return result;
  }

  // ---- collect files, sorted, deduped --------------------------------------
  std::vector<std::string> paths = opts.paths;
  // A defaulted root that doesn't exist is skipped (not every checkout has a
  // bench/); an explicit path that doesn't exist is a hard error.
  const bool defaulted = paths.empty();
  if (defaulted) paths = {"src", "tools", "bench"};
  std::vector<FileSlot> slots;
  std::set<std::string> seen;
  for (const auto& p : paths) {
    const fs::path full = root / p;
    if (fs::is_regular_file(full)) {
      const std::string rel = fs::relative(full, root).generic_string();
      if (seen.insert(rel).second) slots.push_back({rel, full, {}, false, false, {}, false});
      continue;
    }
    if (!fs::is_directory(full)) {
      if (defaulted) continue;
      result.error = "no such file or directory: " + full.string();
      return result;
    }
    for (auto it = fs::recursive_directory_iterator(full);
         it != fs::recursive_directory_iterator(); ++it) {
      if (!it->is_regular_file() || !lintable(it->path())) continue;
      const std::string rel = fs::relative(it->path(), root).generic_string();
      if (seen.insert(rel).second) slots.push_back({rel, it->path(), {}, false, false, {}, false});
    }
  }
  std::sort(slots.begin(), slots.end(),
            [](const FileSlot& a, const FileSlot& b) { return a.rel < b.rel; });
  result.files_scanned = static_cast<int>(slots.size());

  // ---- load the cache (corruption or rule-set drift → cold run) ------------
  Cache cache;
  if (!opts.cache_path.empty()) {
    std::string content;
    if (read_file(opts.cache_path, &content)) {
      Cache parsed;
      if (parse_cache(content, &parsed)) cache = std::move(parsed);
    }
  }

  // ---- per-file pass, parallel over the shared pool ------------------------
  // Each index writes only its own slot (disjoint), so the [&] capture is a
  // plain fan-out; findings stay deterministic because slots are pre-sorted
  // and merged in index order afterwards.
  quickdrop::ThreadPool::global().run_chunks(
      static_cast<int>(slots.size()),
      // qdlint: shared-write(each chunk writes only slots[i] for its own i)
      [&](int i) {
        FileSlot& slot = slots[static_cast<std::size_t>(i)];
        std::error_code sec;
        const auto mtime = fs::last_write_time(slot.full, sec);
        const std::uint64_t size = sec ? 0 : fs::file_size(slot.full, sec);
        const std::int64_t mtime_ns =
            sec ? 0 : static_cast<std::int64_t>(mtime.time_since_epoch().count());

        const auto it = cache.entries.find(slot.rel);
        if (!sec && it != cache.entries.end() && it->second.mtime_ns == mtime_ns &&
            it->second.size == size) {
          slot.entry = it->second;
          slot.cache_hit = true;
          return;
        }
        if (!read_file(slot.full, &slot.source)) {
          slot.io_error = true;
          return;
        }
        slot.have_source = true;
        const std::uint64_t hash = fnv1a64(slot.source);
        if (it != cache.entries.end() && it->second.hash == hash &&
            it->second.size == slot.source.size()) {
          // Touched but unchanged: refresh the fingerprint, reuse the result.
          slot.entry = it->second;
          slot.entry.mtime_ns = mtime_ns;
          slot.cache_hit = true;
          return;
        }
        slot.entry.mtime_ns = mtime_ns;
        slot.entry.size = size;
        slot.entry.hash = hash;
        slot.entry.analysis = analyze_file(classify(slot.rel), slot.source);
      });

  for (const FileSlot& slot : slots) {
    if (slot.io_error) {
      result.error = "cannot read " + slot.full.string();
      return result;
    }
    if (slot.cache_hit) ++result.cache_hits;
  }

  // ---- persist the refreshed cache (atomic: readers never see a torn file) -
  if (!opts.cache_path.empty()) {
    Cache fresh;
    for (const FileSlot& slot : slots) fresh.entries[slot.rel] = slot.entry;
    const fs::path parent = fs::path(opts.cache_path).parent_path();
    if (!parent.empty()) fs::create_directories(parent, ec);
    try {
      quickdrop::write_file_atomic(opts.cache_path, serialize_cache(fresh));
    } catch (const std::exception& e) {
      result.error = std::string("cannot write cache: ") + e.what();
      return result;
    }
  }

  // ---- whole-project stage -------------------------------------------------
  const std::string layers_path =
      opts.layers_path.empty() ? (root / "tools/qdlint/layers.txt").string() : opts.layers_path;
  LayerMap layers;
  std::string content, layer_err;
  if (!read_file(layers_path, &content)) {
    result.error = "cannot read layer map " + layers_path;
    return result;
  }
  if (!parse_layer_map(content, &layers, &layer_err)) {
    result.error = layer_err;
    return result;
  }
  std::vector<FileFacts> all_facts;
  all_facts.reserve(slots.size());
  for (const FileSlot& slot : slots) all_facts.push_back(slot.entry.analysis.facts);
  const std::vector<Finding> project = link_project(all_facts, layers);

  // ---- merge per-file + project findings, with line texts ------------------
  std::vector<Zipped> zipped;
  std::map<std::string, std::size_t> slot_index;
  for (std::size_t i = 0; i < slots.size(); ++i) slot_index[slots[i].rel] = i;
  for (const FileSlot& slot : slots) {
    const AnalyzedFile& a = slot.entry.analysis;
    for (std::size_t i = 0; i < a.findings.size(); ++i) {
      zipped.push_back({a.findings[i],
                        i < a.line_texts.size() ? a.line_texts[i] : std::string()});
    }
  }
  // Project findings fetch their line text from the (possibly cached) file —
  // read lazily, once per flagged file.
  std::map<std::string, std::vector<std::string>> lazy_lines;
  for (const Finding& f : project) {
    auto lit = lazy_lines.find(f.path);
    if (lit == lazy_lines.end()) {
      std::string src;
      const auto sit = slot_index.find(f.path);
      if (sit != slot_index.end() && slots[sit->second].have_source) {
        src = slots[sit->second].source;
      } else if (sit != slot_index.end()) {
        read_file(slots[sit->second].full, &src);  // best-effort
      }
      lit = lazy_lines.emplace(f.path, split_source_lines(src)).first;
    }
    zipped.push_back({f, trimmed_line(lit->second, f.line)});
  }
  std::stable_sort(zipped.begin(), zipped.end(), [](const Zipped& a, const Zipped& b) {
    if (a.finding.path != b.finding.path) return a.finding.path < b.finding.path;
    if (a.finding.line != b.finding.line) return a.finding.line < b.finding.line;
    if (a.finding.col != b.finding.col) return a.finding.col < b.finding.col;
    return a.finding.rule < b.finding.rule;
  });
  result.findings.reserve(zipped.size());
  result.line_texts.reserve(zipped.size());
  for (auto& z : zipped) {
    result.findings.push_back(std::move(z.finding));
    result.line_texts.push_back(std::move(z.line_text));
  }
  result.ok = true;
  return result;
}

}  // namespace qdlint
