#include "qdlint.h"

#include <algorithm>
#include <cctype>

// Symbol index & include facts: the per-file half of the whole-project
// stage. One token walk recognizes namespace/class/function structure well
// enough to harvest function bodies, parallel-submit call sites, mutable
// namespace-scope variables and mutex declarations. This is a heuristic
// indexer, not a parser — names are recorded unresolved and matched by name
// at link time (see project.cpp and DESIGN.md §14 for the accuracy
// envelope).

namespace qdlint {
namespace {

const std::set<std::string>& keywordish() {
  static const std::set<std::string> kSet = {
      // control / declaration keywords
      "if", "else", "for", "while", "do", "switch", "case", "default", "return",
      "break", "continue", "goto", "new", "delete", "sizeof", "alignof", "typeid",
      "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast", "try",
      "catch", "throw", "true", "false", "nullptr", "this", "operator", "template",
      "typename", "using", "namespace", "class", "struct", "union", "enum",
      "public", "private", "protected", "virtual", "override", "final", "static",
      "inline", "constexpr", "consteval", "constinit", "const", "volatile",
      "mutable", "extern", "register", "thread_local", "auto", "void", "bool",
      "char", "short", "int", "long", "float", "double", "unsigned", "signed",
      "wchar_t", "char8_t", "char16_t", "char32_t", "noexcept", "decltype",
      "requires", "concept", "co_await", "co_yield", "co_return", "and", "or",
      "not", "friend", "typedef", "asm", "std",
      // ubiquitous vocabulary types — never globals, keep the index lean
      "size_t", "int8_t", "int16_t", "int32_t", "int64_t", "uint8_t", "uint16_t",
      "uint32_t", "uint64_t", "ptrdiff_t", "string", "vector", "array", "span",
      "map", "set", "pair", "tuple", "optional", "function", "unique_ptr",
      "shared_ptr",
  };
  return kSet;
}

/// Rng draw methods: called on a generator object, these consume the stream.
/// split() is deliberately absent — it derives a child stream and acts as the
/// sanitizer for det-rng-in-parallel.
bool is_rng_draw_member(const std::string& t) {
  return t == "uniform" || t == "uniform_int" || t == "uniform_u64" || t == "normal" ||
         t == "next_u64" || t == "sample_without_replacement" || t == "permutation" ||
         t == "shuffle";
}

/// std <random> machinery: any appearance counts as a draw dependency.
bool is_rng_dist_type(const std::string& t) {
  return t == "uniform_int_distribution" || t == "uniform_real_distribution" ||
         t == "normal_distribution" || t == "bernoulli_distribution" ||
         t == "discrete_distribution" || t == "mt19937" || t == "mt19937_64" ||
         t == "minstd_rand";
}

bool is_lock_guard_type(const std::string& t) {
  return t == "lock_guard" || t == "scoped_lock" || t == "unique_lock";
}

bool is_submit_name(const std::string& t) {
  return t == "parallel_for" || t == "run_chunks" || t == "submit";
}

struct Walker {
  const std::vector<Token>& toks;

  bool punct(std::size_t i, const char* text) const {
    return i < toks.size() && toks[i].kind == TokKind::kPunct && toks[i].text == text;
  }
  bool ident(std::size_t i, const char* text) const {
    return i < toks.size() && toks[i].kind == TokKind::kIdent && toks[i].text == text;
  }
  bool is_ident(std::size_t i) const {
    return i < toks.size() && toks[i].kind == TokKind::kIdent;
  }

  /// Index just past the matching closer for the opener at `open`.
  std::size_t match(std::size_t open, const char* op, const char* cl) const {
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kPunct) continue;
      if (toks[i].text == op) ++depth;
      if (toks[i].text == cl && --depth == 0) return i + 1;
    }
    return toks.size();
  }
  std::size_t match_paren(std::size_t open) const { return match(open, "(", ")"); }
  std::size_t match_brace(std::size_t open) const { return match(open, "{", "}"); }
};

/// Collects refs over the token span [b, e). `sites` receives parallel
/// submit sites when non-null (null while already inside a site span, so
/// nested submits fold into their enclosing site).
void collect_body(const Walker& w, std::size_t b, std::size_t e, const LineMarks& marks,
                  BodyFacts* out, std::vector<BodyFacts>* sites) {
  std::set<std::string> seen_calls, seen_draws, seen_uses;
  for (std::size_t j = b; j < e && j < w.toks.size(); ++j) {
    const Token& t = w.toks[j];
    if (t.kind != TokKind::kIdent) continue;
    const std::string& name = t.text;
    const bool next_is_call = w.punct(j + 1, "(");
    const bool member = j > 0 && (w.punct(j - 1, ".") || w.punct(j - 1, "->"));

    if (is_lock_guard_type(name)) out->has_lock_guard = true;
    if (name == "split" && next_is_call) out->has_split = true;

    if (((member && is_rng_draw_member(name)) || is_rng_dist_type(name)) &&
        seen_draws.insert(name).second) {
      out->rng_draws.push_back({name, t.line});
    }

    if (next_is_call) {
      if (is_submit_name(name) && sites != nullptr) {
        const std::size_t span_end = w.match_paren(j + 1);
        BodyFacts site;
        site.is_site = true;
        site.line = t.line;
        site.annotated = marks.shared_write.count(t.line) != 0 ||
                         marks.shared_write.count(t.line - 1) != 0;
        collect_body(w, j + 2, span_end > 0 ? span_end - 1 : j + 2, marks, &site, nullptr);
        sites->push_back(std::move(site));
      }
      // Member calls (obj.f(), p->f()) are not recorded: the index has no
      // receiver types, so matching them by bare name chains unrelated TUs
      // together (k.axpy → nn::axpy). Free-function names only.
      if (!member && !keywordish().count(name) && name != "split" &&
          seen_calls.insert(name).second) {
        out->calls.push_back({name, t.line});
      }
    } else if (!member && !keywordish().count(name) && seen_uses.insert(name).second) {
      out->ident_uses.push_back({name, t.line});
    }
  }
}

/// Squeezes runs of spaces/tabs so "#  include  \"x\"" parses uniformly.
std::string squeeze(const std::string& s) {
  std::string out;
  for (char ch : s) {
    if (ch == ' ' || ch == '\t') {
      if (!out.empty() && out.back() != ' ') out += ' ';
    } else {
      out += ch;
    }
  }
  return out;
}

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// Declaration scan result at namespace/class scope.
struct DeclInfo {
  bool is_const = false;
  bool is_atomic = false;
  bool is_mutex = false;
  bool skip = false;  // using/typedef/friend/template/static_assert/...
  std::string last_ident;
  int last_ident_line = 0;
};

}  // namespace

FileFacts extract_facts(const FileContext& ctx, const LexResult& lexed) {
  FileFacts facts;
  facts.path = ctx.path;
  facts.nolint = lexed.marks.nolint;
  const Walker w{lexed.tokens};
  const std::vector<Token>& toks = lexed.tokens;

  // -- includes, with #if nesting tracked for the `conditional` flag --------
  int cond_depth = 0;
  for (const Token& t : toks) {
    if (t.kind != TokKind::kPreproc) continue;
    const std::string d = squeeze(t.text);
    if (starts_with(d, "#if") || starts_with(d, "# if")) {
      ++cond_depth;
    } else if (starts_with(d, "#endif") || starts_with(d, "# endif")) {
      if (cond_depth > 0) --cond_depth;
    } else if (starts_with(d, "#include") || starts_with(d, "# include")) {
      const std::size_t q1 = d.find('"');
      if (q1 == std::string::npos) continue;  // <system> include: out of scope
      const std::size_t q2 = d.find('"', q1 + 1);
      if (q2 == std::string::npos) continue;
      facts.includes.push_back({d.substr(q1 + 1, q2 - q1 - 1), t.line, cond_depth > 0});
    }
  }

  // -- structural walk: namespaces, classes, functions, globals -------------
  enum class Scope { kNamespace, kClass, kOther };
  std::vector<Scope> scopes;  // implicit top-level namespace below the stack
  std::size_t i = 0;
  while (i < toks.size()) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPreproc || t.kind == TokKind::kString ||
        t.kind == TokKind::kChar || t.kind == TokKind::kNumber) {
      ++i;
      continue;
    }
    if (t.kind == TokKind::kPunct) {
      if (t.text == "{") {
        scopes.push_back(Scope::kOther);  // stray block (should be rare here)
      } else if (t.text == "}") {
        if (!scopes.empty()) scopes.pop_back();
      }
      ++i;
      continue;
    }

    const Scope scope = scopes.empty() ? Scope::kNamespace : scopes.back();

    // namespace [name] { ... }  /  extern "C" { ... }
    if (t.text == "namespace") {
      std::size_t j = i + 1;
      while (j < toks.size() && !w.punct(j, "{") && !w.punct(j, ";") && !w.punct(j, "=")) ++j;
      if (w.punct(j, "{")) {
        scopes.push_back(Scope::kNamespace);
        i = j + 1;
      } else if (w.punct(j, "=")) {
        // Namespace alias: consume through ';' so the target path is not
        // mistaken for a variable declaration.
        while (j < toks.size() && !w.punct(j, ";")) ++j;
        i = j + 1;
      } else {
        i = j + 1;  // forward namespace declaration
      }
      continue;
    }
    if (t.text == "extern" && i + 2 < toks.size() && toks[i + 1].kind == TokKind::kString &&
        w.punct(i + 2, "{")) {
      scopes.push_back(Scope::kNamespace);
      i += 3;
      continue;
    }

    // class/struct/union/enum definitions open a class scope; forward
    // declarations fall through to the generic declaration scan.
    if ((t.text == "class" || t.text == "struct" || t.text == "union" || t.text == "enum") &&
        (scope == Scope::kNamespace || scope == Scope::kClass)) {
      std::size_t j = i + 1;
      int angle = 0;
      while (j < toks.size()) {
        if (toks[j].kind == TokKind::kPunct) {
          if (toks[j].text == "<") ++angle;
          if (toks[j].text == ">") --angle;
          if (toks[j].text == ">>") angle -= 2;
          if (angle <= 0 && (toks[j].text == "{" || toks[j].text == ";" || toks[j].text == "(")) {
            break;
          }
        }
        ++j;
      }
      if (w.punct(j, "{")) {
        scopes.push_back(t.text == "enum" ? Scope::kOther : Scope::kClass);
        i = j + 1;
        continue;
      }
      if (w.punct(j, ";")) {
        i = j + 1;
        continue;
      }
      // `(` — e.g. a variable `struct stat st(...)`; fall through.
    }

    // Generic declaration / function-definition scan from token i.
    if (t.kind == TokKind::kIdent) {
      DeclInfo info;
      std::size_t j = i;
      bool ended = false;
      while (j < toks.size() && !ended) {
        const Token& d = toks[j];
        if (d.kind == TokKind::kIdent) {
          if (d.text == "using" || d.text == "typedef" || d.text == "friend" ||
              d.text == "template" || d.text == "static_assert" || d.text == "concept") {
            info.skip = true;
          }
          if (d.text == "const" || d.text == "constexpr" || d.text == "constinit" ||
              d.text == "consteval") {
            info.is_const = true;
          }
          if (d.text == "atomic" || d.text == "atomic_flag") info.is_atomic = true;
          if (d.text == "mutex" || d.text == "shared_mutex" || d.text == "recursive_mutex" ||
              d.text == "timed_mutex") {
            info.is_mutex = true;
          }
          info.last_ident = d.text;
          info.last_ident_line = d.line;
          ++j;
          continue;
        }
        if (d.kind != TokKind::kPunct) {
          ++j;
          continue;
        }
        if (d.text == "<") {
          // Template argument list on the declared type — skip, remembering
          // atomic/mutex element types seen inside.
          int depth = 0;
          std::size_t k = j;
          for (; k < toks.size(); ++k) {
            const Token& a = toks[k];
            if (a.kind == TokKind::kIdent) {
              if (a.text == "atomic") info.is_atomic = true;
              if (a.text == "mutex" || a.text == "shared_mutex") info.is_mutex = true;
            }
            if (a.kind != TokKind::kPunct) continue;
            if (a.text == "<") ++depth;
            else if (a.text == ">") {
              if (--depth == 0) break;
            } else if (a.text == ">>") {
              depth -= 2;
              if (depth <= 0) break;
            } else if (a.text == ";" || a.text == "{") {
              break;  // was a comparison, not a template list
            }
          }
          j = k < toks.size() ? k + 1 : k;
          continue;
        }
        if (d.text == "(") {
          // Function candidate when the '(' directly follows an identifier.
          const bool func_like = j > 0 && toks[j - 1].kind == TokKind::kIdent &&
                                 !keywordish().count(toks[j - 1].text);
          const std::size_t close = w.match_paren(j);
          if (!func_like) {
            j = close;
            continue;
          }
          // Walk past cv-qualifiers / ctor-init-list / trailing return to
          // find a body '{' (definition) or ';' (declaration).
          std::size_t k = close;
          bool body = false, decl = false;
          while (k < toks.size()) {
            const Token& a = toks[k];
            if (a.kind == TokKind::kIdent || a.kind == TokKind::kNumber) {
              ++k;
              continue;
            }
            if (a.kind != TokKind::kPunct) {
              ++k;
              continue;
            }
            if (a.text == ";") {
              decl = true;
              break;
            }
            if (a.text == "(") {
              k = w.match_paren(k);
              continue;
            }
            if (a.text == "{") {
              // A '{' directly after an identifier or '>' inside a ctor
              // init list is a member-init brace; otherwise it is the body.
              const Token& p = toks[k - 1];
              const bool init_brace = p.kind == TokKind::kIdent ||
                                      (p.kind == TokKind::kPunct && p.text == ">");
              if (init_brace) {
                k = w.match_brace(k);
                continue;
              }
              body = true;
              break;
            }
            if (a.text == "=") {
              // `= default;` / `= delete;` / `= 0;` pure virtual.
              decl = true;
              std::size_t s = k;
              while (s < toks.size() && !w.punct(s, ";")) ++s;
              k = s;
              break;
            }
            ++k;  // ::, ->, :, <, >, *, &, comma in trailing types...
          }
          if (body) {
            BodyFacts fn;
            fn.name = toks[j - 1].text;
            fn.line = toks[j - 1].line;
            const std::size_t body_end = w.match_brace(k);
            if (!ctx.is_thread_pool) {
              collect_body(w, k + 1, body_end > 0 ? body_end - 1 : k + 1, lexed.marks, &fn,
                           &facts.sites);
            }
            facts.functions.push_back(std::move(fn));
            i = body_end;
            ended = true;
            continue;
          }
          j = decl && k < toks.size() ? k + 1 : close;
          if (decl) {
            i = j;
            ended = true;
          }
          continue;
        }
        if (d.text == "=") {
          // Variable with initializer: skip a balanced initializer to ';'.
          int pd = 0, bd = 0;
          std::size_t k = j + 1;
          for (; k < toks.size(); ++k) {
            if (toks[k].kind != TokKind::kPunct) continue;
            const std::string& p = toks[k].text;
            if (p == "(") ++pd;
            if (p == ")") --pd;
            if (p == "{") ++bd;
            if (p == "}") --bd;
            if (p == ";" && pd == 0 && bd <= 0) break;
          }
          j = k < toks.size() ? k + 1 : k;
          goto record_decl;
        }
        if (d.text == "{") {
          // A '{' after ')' or a function qualifier is the body of an
          // unindexed function (operator overload, conversion op): consume
          // it without swallowing the next declaration.
          const Token& p = toks[j - 1];
          const bool anon_body =
              (p.kind == TokKind::kPunct && p.text == ")") ||
              (p.kind == TokKind::kIdent &&
               (p.text == "const" || p.text == "noexcept" || p.text == "override" ||
                p.text == "final"));
          if (anon_body) {
            i = w.match_brace(j);
            ended = true;
            continue;
          }
          // Brace-initialized variable: `std::mutex g_mu{};`
          j = w.match_brace(j);
          while (j < toks.size() && !w.punct(j, ";")) ++j;
          if (j < toks.size()) ++j;
          goto record_decl;
        }
        if (d.text == ";") {
          ++j;
          goto record_decl;
        }
        if (d.text == "}") goto record_decl;  // tolerate malformed input
        ++j;
        continue;
      record_decl:
        if (!info.skip && !info.last_ident.empty() && !ctx.is_thread_pool) {
          if (info.is_mutex) {
            facts.mutexes.push_back({info.last_ident, info.last_ident_line});
          } else if (scope == Scope::kNamespace && !info.is_const && !info.is_atomic) {
            facts.globals.push_back({info.last_ident, info.last_ident_line});
          }
        }
        i = j;
        ended = true;
      }
      if (!ended) i = j;
      continue;
    }
    ++i;
  }
  return facts;
}

}  // namespace qdlint
