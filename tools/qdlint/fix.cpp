#include "qdlint.h"

#include <algorithm>
#include <cctype>

// --fix: mechanical remediations. Two moves only, both conservative:
//
//  1. conc-lock-scope — when the flagged mutex has exactly one standalone
//     `m.lock();` and one standalone `m.unlock();` line in the file, the
//     lock comes first, and the mutex is not touched after the unlock, the
//     pair becomes a std::lock_guard at the lock line (the unlock line is
//     dropped). Anything fancier — multiple pairs, unlocks inside branches,
//     condition-variable dances — is left to a human.
//
//  2. everything else — a `// NOLINTNEXTLINE(qdlint-<rule>, ...) — <note>`
//     inserted above the finding, carrying the caller-supplied justification.
//     An empty note skips insertion entirely: a suppression without a reason
//     is worse than the finding.

namespace qdlint {
namespace {

std::string indent_of(const std::string& line) {
  std::size_t i = 0;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  return line.substr(0, i);
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) --e;
  return s.substr(b, e - b);
}

/// Count non-overlapping occurrences of `needle` with identifier boundaries
/// on the left (so `gmu.lock()` does not count as `mu.lock()`).
int count_bounded(const std::string& hay, const std::string& needle) {
  int n = 0;
  for (std::size_t p = 0; (p = hay.find(needle, p)) != std::string::npos; p += needle.size()) {
    if (p > 0) {
      const char before = hay[p - 1];
      if (std::isalnum(static_cast<unsigned char>(before)) || before == '_') continue;
    }
    ++n;
  }
  return n;
}

/// Extracts the mutex name from a conc-lock-scope message ("manual
/// <name>.lock()/unlock() is not matched..."). Empty when unparseable.
std::string mutex_of(const Finding& f) {
  const std::string prefix = "manual ";
  const std::size_t dot = f.message.find(".lock()");
  if (f.message.rfind(prefix, 0) != 0 || dot == std::string::npos || dot <= prefix.size()) {
    return {};
  }
  const std::string name = f.message.substr(prefix.size(), dot - prefix.size());
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return {};
  }
  return name;
}

struct LockRewrite {
  std::size_t lock_line;    // 0-based index into lines
  std::size_t unlock_line;  // 0-based
  std::string mutex;
};

/// A pair is trivially safe to rewrite when the file contains exactly one
/// lock and one unlock of this mutex, both as whole statements at the same
/// indentation, in order, and the mutex is never named after the unlock.
bool plan_lock_rewrite(const std::vector<std::string>& lines, const std::string& mutex,
                       LockRewrite* out) {
  const std::string whole = [&] {
    std::string joined;
    for (const auto& l : lines) joined += l + "\n";
    return joined;
  }();
  if (count_bounded(whole, mutex + ".lock()") != 1 ||
      count_bounded(whole, mutex + ".unlock()") != 1) {
    return false;
  }
  std::size_t lock_at = lines.size(), unlock_at = lines.size();
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string t = trim(lines[i]);
    if (t == mutex + ".lock();") lock_at = i;
    if (t == mutex + ".unlock();") unlock_at = i;
  }
  if (lock_at >= lines.size() || unlock_at >= lines.size()) return false;  // not standalone
  if (lock_at >= unlock_at) return false;
  if (indent_of(lines[lock_at]) != indent_of(lines[unlock_at])) return false;  // scope differs
  for (std::size_t i = unlock_at + 1; i < lines.size(); ++i) {
    if (count_bounded(lines[i], mutex) > 0) return false;  // touched after the unlock
  }
  *out = {lock_at, unlock_at, mutex};
  return true;
}

}  // namespace

FixResult apply_fixes(const std::string& source, const std::vector<Finding>& findings,
                      const std::string& note) {
  FixResult result;
  std::vector<std::string> lines = split_source_lines(source);
  // split_source_lines appends one entry for the text after the last '\n';
  // remember whether the file ended with a newline so we can reproduce it.
  const bool trailing_newline = !source.empty() && source.back() == '\n';
  if (trailing_newline && !lines.empty() && lines.back().empty()) lines.pop_back();
  const int original_line_count = static_cast<int>(lines.size());

  // Pass 1: lock_guard rewrites (they delete a line, so do them before
  // computing NOLINT insertion points — both passes work on descending line
  // numbers to keep earlier indices stable).
  std::vector<LockRewrite> rewrites;
  std::set<std::string> rewritten_mutexes;
  for (const Finding& f : findings) {
    if (f.rule != "conc-lock-scope") continue;
    const std::string mutex = mutex_of(f);
    if (mutex.empty() || rewritten_mutexes.count(mutex)) continue;
    LockRewrite plan;
    if (plan_lock_rewrite(lines, mutex, &plan)) {
      rewrites.push_back(plan);
      rewritten_mutexes.insert(mutex);
    }
  }
  std::sort(rewrites.begin(), rewrites.end(),
            [](const LockRewrite& a, const LockRewrite& b) { return a.lock_line > b.lock_line; });
  std::vector<std::size_t> deleted;  // original 0-based indices of dropped unlock lines
  for (const LockRewrite& rw : rewrites) {
    lines[rw.lock_line] = indent_of(lines[rw.lock_line]) + "const std::lock_guard<std::mutex> " +
                          rw.mutex + "_guard(" + rw.mutex + ");";
    lines.erase(lines.begin() + static_cast<std::ptrdiff_t>(rw.unlock_line));
    deleted.push_back(rw.unlock_line);
    ++result.lock_rewrites;
  }

  // Pass 2: NOLINTNEXTLINE insertion for everything not rewritten. Rules are
  // grouped per line (NOLINTNEXTLINE comments cannot stack), and skipped
  // entirely when no justification was given.
  if (!note.empty()) {
    std::map<int, std::set<std::string>> per_line;  // 1-based finding line -> rules
    for (const Finding& f : findings) {
      if (f.rule == "conc-lock-scope" && rewritten_mutexes.count(mutex_of(f))) continue;
      if (f.line >= 1 && f.line <= original_line_count) {
        per_line[f.line].insert(f.rule);
      }
    }
    for (auto it = per_line.rbegin(); it != per_line.rend(); ++it) {
      // Finding lines are in pre-rewrite coordinates; shift past any unlock
      // lines pass 1 erased above them.
      std::size_t idx = static_cast<std::size_t>(it->first - 1);
      for (std::size_t d : deleted) {
        if (d < static_cast<std::size_t>(it->first - 1)) --idx;
      }
      if (idx >= lines.size()) idx = lines.empty() ? 0 : lines.size() - 1;
      std::string comment = indent_of(lines[idx]) + "// NOLINTNEXTLINE(";
      bool first = true;
      for (const auto& rule : it->second) {
        if (!first) comment += ", ";
        comment += "qdlint-" + rule;
        first = false;
      }
      comment += ") — " + note;
      lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(idx), comment);
      ++result.nolints_inserted;
    }
  }

  std::string rebuilt;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    rebuilt += lines[i];
    if (i + 1 < lines.size() || trailing_newline) rebuilt += '\n';
  }
  result.source = std::move(rebuilt);
  result.changed = result.source != source;
  return result;
}

}  // namespace qdlint
