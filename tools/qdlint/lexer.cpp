#include "qdlint.h"

#include <cctype>

// The lexer's job is narrow: split source into identifier / number / string /
// char / punct / preproc tokens while harvesting suppression comments, such
// that nothing inside a comment, string, char or raw-string literal can ever
// look like code to a rule. It tolerates malformed input (unterminated
// literals lex to end-of-file) because lint must never crash on the tree it
// guards.

namespace qdlint {
namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

/// Multi-character punctuators we match longest-first. Only the ones rules
/// care to see as single tokens need to be here; everything else falls back
/// to single characters.
const char* const kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "==", "!=", "<=", ">=", "&&", "||", "<<",
    ">>", "->", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
};

struct Cursor {
  const std::string& s;
  std::size_t i = 0;
  int line = 1;
  int col = 1;

  bool done() const { return i >= s.size(); }
  char peek(std::size_t off = 0) const { return i + off < s.size() ? s[i + off] : '\0'; }
  void advance() {
    if (done()) return;
    if (s[i] == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
    ++i;
  }
  void advance_n(std::size_t n) {
    for (std::size_t k = 0; k < n; ++k) advance();
  }
};

/// Records NOLINT / NOLINTNEXTLINE / shared-write facts from one comment.
/// `line` is the line the comment starts on.
void harvest_comment(const std::string& text, int line, LineMarks& marks) {
  auto record_nolint = [&](std::size_t at, int target_line) {
    std::set<std::string>& rules = marks.nolint[target_line];
    // Optional (rule, rule, ...) list; bare NOLINT suppresses everything.
    std::size_t p = at;
    while (p < text.size() && (text[p] == ' ' || text[p] == '\t')) ++p;
    if (p >= text.size() || text[p] != '(') {
      rules.insert("*");
      return;
    }
    ++p;
    std::string cur;
    for (; p < text.size() && text[p] != ')'; ++p) {
      const char c = text[p];
      if (c == ',') {
        if (!cur.empty()) rules.insert(cur);
        cur.clear();
      } else if (c != ' ' && c != '\t') {
        cur += c;
      }
    }
    if (!cur.empty()) rules.insert(cur);
  };

  for (std::size_t p = 0; (p = text.find("NOLINT", p)) != std::string::npos;) {
    if (text.compare(p, 14, "NOLINTNEXTLINE") == 0) {
      record_nolint(p + 14, line + 1);
      p += 14;
    } else {
      record_nolint(p + 6, line);
      p += 6;
    }
  }
  if (text.find("qdlint: shared-write(") != std::string::npos ||
      text.find("qdlint:shared-write(") != std::string::npos) {
    marks.shared_write.insert(line);
  }
}

/// True when the characters before `i` allow a raw-string prefix: R must not
/// be the tail of a longer identifier (e.g. `FooR"..."` is not raw).
bool raw_prefix_ok(const std::string& s, std::size_t r_pos) {
  if (r_pos == 0) return true;
  return !ident_char(s[r_pos - 1]);
}

}  // namespace

LexResult lex(const std::string& source) {
  LexResult out;
  Cursor c{source};

  while (!c.done()) {
    const char ch = c.peek();

    // Whitespace.
    if (ch == ' ' || ch == '\t' || ch == '\r' || ch == '\n' || ch == '\v' || ch == '\f') {
      c.advance();
      continue;
    }

    // Line comment.
    if (ch == '/' && c.peek(1) == '/') {
      const int start_line = c.line;
      std::string text;
      while (!c.done() && c.peek() != '\n') {
        text += c.peek();
        c.advance();
      }
      harvest_comment(text, start_line, out.marks);
      continue;
    }

    // Block comment. NOLINT markers are attributed to the comment's first
    // line; a block comment ending on line N also suppresses like a trailing
    // comment on its start line, which matches how they are written here.
    if (ch == '/' && c.peek(1) == '*') {
      const int start_line = c.line;
      std::string text;
      c.advance_n(2);
      while (!c.done() && !(c.peek() == '*' && c.peek(1) == '/')) {
        text += c.peek();
        c.advance();
      }
      c.advance_n(2);  // closing */
      harvest_comment(text, start_line, out.marks);
      continue;
    }

    // Preprocessor directive: swallow to end of line, honoring backslash
    // continuations, and store as one token (used for #pragma once and
    // #include checks). Comments inside directives are rare enough to ignore.
    if (ch == '#' && (c.col == 1 || [&] {
          // '#' preceded only by whitespace on its line.
          std::size_t k = c.i;
          while (k > 0 && source[k - 1] != '\n') {
            if (source[k - 1] != ' ' && source[k - 1] != '\t') return false;
            --k;
          }
          return true;
        }())) {
      Token t{TokKind::kPreproc, "", c.line, c.col};
      while (!c.done()) {
        if (c.peek() == '\\' && c.peek(1) == '\n') {
          t.text += ' ';
          c.advance_n(2);
          continue;
        }
        if (c.peek() == '\n') break;
        // A // comment ends the directive text.
        if (c.peek() == '/' && c.peek(1) == '/') break;
        t.text += c.peek();
        c.advance();
      }
      out.tokens.push_back(std::move(t));
      continue;
    }

    // Raw string literal: R"delim( ... )delim", with optional encoding
    // prefixes u8R / uR / UR / LR.
    {
      std::size_t r_off = std::string::npos;
      if (ch == 'R' && c.peek(1) == '"' && raw_prefix_ok(source, c.i)) {
        r_off = 0;
      } else if ((ch == 'u' || ch == 'U' || ch == 'L') && raw_prefix_ok(source, c.i)) {
        if (c.peek(1) == 'R' && c.peek(2) == '"') r_off = 1;
        if (ch == 'u' && c.peek(1) == '8' && c.peek(2) == 'R' && c.peek(3) == '"') r_off = 2;
      }
      if (r_off != std::string::npos) {
        Token t{TokKind::kString, "", c.line, c.col};
        c.advance_n(r_off + 2);  // prefix + R"
        std::string delim;
        while (!c.done() && c.peek() != '(') {
          delim += c.peek();
          c.advance();
        }
        c.advance();  // (
        const std::string closer = ")" + delim + "\"";
        while (!c.done() && source.compare(c.i, closer.size(), closer) != 0) {
          t.text += c.peek();
          c.advance();
        }
        c.advance_n(closer.size());
        out.tokens.push_back(std::move(t));
        continue;
      }
    }

    // Ordinary string / char literal (with optional u8/u/U/L prefix handled
    // by the identifier branch merging into the quote below).
    if (ch == '"' || ch == '\'') {
      const char quote = ch;
      Token t{quote == '"' ? TokKind::kString : TokKind::kChar, "", c.line, c.col};
      c.advance();  // opening quote
      while (!c.done() && c.peek() != quote) {
        if (c.peek() == '\\' && c.i + 1 < source.size()) {
          t.text += c.peek();
          c.advance();
        }
        if (c.peek() == '\n') break;  // unterminated; stop at line end
        t.text += c.peek();
        c.advance();
      }
      c.advance();  // closing quote
      out.tokens.push_back(std::move(t));
      continue;
    }

    // Number (decimal, hex, binary, floating, digit separators, suffixes).
    if (std::isdigit(static_cast<unsigned char>(ch)) ||
        (ch == '.' && std::isdigit(static_cast<unsigned char>(c.peek(1))))) {
      Token t{TokKind::kNumber, "", c.line, c.col};
      bool seen_exp_sign_ok = false;
      while (!c.done()) {
        const char d = c.peek();
        if (ident_char(d) || d == '.' || d == '\'') {
          seen_exp_sign_ok = (d == 'e' || d == 'E' || d == 'p' || d == 'P') &&
                             !(t.text.size() >= 2 && (t.text[1] == 'x' || t.text[1] == 'X') &&
                               (d == 'e' || d == 'E'));
          t.text += d;
          c.advance();
          continue;
        }
        if ((d == '+' || d == '-') && seen_exp_sign_ok) {
          t.text += d;
          c.advance();
          seen_exp_sign_ok = false;
          continue;
        }
        break;
      }
      out.tokens.push_back(std::move(t));
      continue;
    }

    // Identifier / keyword. A string prefix (u8"..", L"..") merges with the
    // following quote: emit the identifier, the quote branch handles the rest
    // on the next loop iteration — the prefix ident is harmless to rules.
    if (ident_start(ch)) {
      Token t{TokKind::kIdent, "", c.line, c.col};
      while (!c.done() && ident_char(c.peek())) {
        t.text += c.peek();
        c.advance();
      }
      out.tokens.push_back(std::move(t));
      continue;
    }

    // Punctuation, longest match first.
    {
      bool matched = false;
      for (const char* p : kPuncts) {
        const std::size_t n = std::char_traits<char>::length(p);
        if (source.compare(c.i, n, p) == 0) {
          out.tokens.push_back({TokKind::kPunct, p, c.line, c.col});
          c.advance_n(n);
          matched = true;
          break;
        }
      }
      if (matched) continue;
    }
    out.tokens.push_back({TokKind::kPunct, std::string(1, ch), c.line, c.col});
    c.advance();
  }

  return out;
}

}  // namespace qdlint
