#include "qdlint.h"

// SARIF 2.1.0 output — the minimal single-run shape GitHub code scanning
// (and most SARIF viewers) accept: one tool, the full rule table from
// all_rules(), one result per finding with a physical location. Hints ride
// along as the rule help text of each result's message.

namespace qdlint {

std::string to_sarif(const std::vector<Finding>& findings) {
  std::string out;
  out +=
      "{\n"
      "  \"$schema\": "
      "\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/"
      "sarif-schema-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [{\n"
      "    \"tool\": {\"driver\": {\"name\": \"qdlint\", \"rules\": [\n";
  const auto& rules = all_rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out += "      {\"id\": \"qdlint-" + json_escape(rules[i]) + "\"}";
    out += i + 1 < rules.size() ? ",\n" : "\n";
  }
  out +=
      "    ]}},\n"
      "    \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    std::string text = f.message;
    if (!f.hint.empty()) text += " (hint: " + f.hint + ")";
    out += "      {\"ruleId\": \"qdlint-" + json_escape(f.rule) +
           "\", \"level\": \"error\", \"message\": {\"text\": \"" + json_escape(text) +
           "\"}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": {\"uri\": \"" +
           json_escape(f.path) + "\"}, \"region\": {\"startLine\": " + std::to_string(f.line) +
           ", \"startColumn\": " + std::to_string(f.col < 1 ? 1 : f.col) + "}}}]}";
    out += i + 1 < findings.size() ? ",\n" : "\n";
  }
  out +=
      "    ]\n"
      "  }]\n"
      "}\n";
  return out;
}

}  // namespace qdlint
