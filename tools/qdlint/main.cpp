// qdlint CLI: walks src/, tools/ and bench/ (or explicit paths), runs the
// per-file rules in parallel over the shared thread pool plus the
// whole-project stage (layer DAG, include cycles, reachability), subtracts
// the baseline, and reports findings. Exit code 0 = clean, 1 = non-baselined
// findings, 2 = usage or I/O error.
//
// Usage:
//   qdlint [--root DIR] [--baseline FILE] [--json] [--sarif FILE]
//          [--cache FILE] [--layers FILE] [--threads N]
//          [--fix --fix-note TEXT] [--write-baseline FILE]
//          [--list-rules] [paths...]
//
// Paths are repo-relative (to --root); default: src tools bench.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "driver.h"
#include "qdlint.h"
#include "util/atomic_file.h"

namespace {

bool read_file(const std::string& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

int run_fix(const qdlint::DriverResult& lint, const std::string& root, const std::string& note) {
  // Group findings per file; conc-lock-scope first tries the lock_guard
  // rewrite, everything else becomes a NOLINTNEXTLINE with the note.
  std::map<std::string, std::vector<qdlint::Finding>> by_file;
  for (const auto& f : lint.findings) by_file[f.path].push_back(f);
  int rewrites = 0, nolints = 0, files_changed = 0;
  bool needed_note = false;
  for (const auto& [path, findings] : by_file) {
    const std::string full = root + "/" + path;
    std::string source;
    if (!read_file(full, &source)) {
      std::cerr << "qdlint: cannot read " << full << "\n";
      return 2;
    }
    const qdlint::FixResult fixed = qdlint::apply_fixes(source, findings, note);
    if (static_cast<std::size_t>(fixed.lock_rewrites) < findings.size() && note.empty()) {
      needed_note = true;
    }
    if (!fixed.changed) continue;
    try {
      quickdrop::write_file_atomic(full, fixed.source);
    } catch (const std::exception& e) {
      std::cerr << "qdlint: cannot write " << full << ": " << e.what() << "\n";
      return 2;
    }
    ++files_changed;
    rewrites += fixed.lock_rewrites;
    nolints += fixed.nolints_inserted;
  }
  std::cout << "qdlint --fix: " << files_changed << " file(s) changed, " << rewrites
            << " lock_guard rewrite(s), " << nolints << " NOLINT(s) inserted\n";
  if (needed_note) {
    std::cerr << "qdlint: some findings need a NOLINT suppression; re-run with "
                 "--fix-note \"<why this finding is acceptable>\"\n";
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  qdlint::DriverOptions opts;
  std::string baseline_path, write_baseline_path, sarif_path, fix_note;
  bool json = false, fix = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "qdlint: " << arg << " requires an argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      opts.root = next();
    } else if (arg == "--baseline") {
      baseline_path = next();
    } else if (arg == "--write-baseline") {
      write_baseline_path = next();
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--sarif") {
      sarif_path = next();
    } else if (arg == "--cache") {
      opts.cache_path = next();
    } else if (arg == "--layers") {
      opts.layers_path = next();
    } else if (arg == "--threads") {
      opts.threads = std::atoi(next());
    } else if (arg == "--fix") {
      fix = true;
    } else if (arg == "--fix-note") {
      fix_note = next();
    } else if (arg == "--list-rules") {
      for (const auto& r : qdlint::all_rules()) std::cout << "qdlint-" << r << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: qdlint [--root DIR] [--baseline FILE] [--json] [--sarif FILE]\n"
                   "              [--cache FILE] [--layers FILE] [--threads N]\n"
                   "              [--fix --fix-note TEXT] [--write-baseline FILE]\n"
                   "              [--list-rules] [paths...]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "qdlint: unknown option " << arg << "\n";
      return 2;
    } else {
      opts.paths.push_back(arg);
    }
  }

  const qdlint::DriverResult lint = qdlint::run_driver(opts);
  if (!lint.ok) {
    std::cerr << "qdlint: " << lint.error << "\n";
    return 2;
  }
  std::vector<qdlint::Finding> findings = lint.findings;
  std::vector<std::string> line_texts = lint.line_texts;

  if (!write_baseline_path.empty()) {
    std::string out;
    out +=
        "# qdlint baseline — grandfathered findings, one per line:\n"
        "#   path|rule|trimmed source line\n"
        "# This file may only shrink: fix or NOLINT new findings instead of adding here.\n";
    for (std::size_t i = 0; i < findings.size(); ++i) {
      out += qdlint::baseline_key(findings[i], line_texts[i]) + "\n";
    }
    try {
      quickdrop::write_file_atomic(write_baseline_path, out);
    } catch (const std::exception& e) {
      std::cerr << "qdlint: cannot write baseline: " << e.what() << "\n";
      return 2;
    }
    std::cout << "qdlint: wrote " << findings.size() << " baseline entr"
              << (findings.size() == 1 ? "y" : "ies") << " to " << write_baseline_path << "\n";
    return 0;
  }

  if (!baseline_path.empty()) {
    std::string content;
    if (!read_file(baseline_path, &content)) {
      std::cerr << "qdlint: cannot read baseline " << baseline_path << "\n";
      return 2;
    }
    findings = qdlint::subtract_baseline(findings, qdlint::parse_baseline(content), line_texts);
  }

  if (fix) {
    qdlint::DriverResult after = lint;
    after.findings = findings;
    return run_fix(after, opts.root.empty() ? "." : opts.root, fix_note);
  }

  if (!sarif_path.empty()) {
    try {
      quickdrop::write_file_atomic(sarif_path, qdlint::to_sarif(findings));
    } catch (const std::exception& e) {
      std::cerr << "qdlint: cannot write SARIF: " << e.what() << "\n";
      return 2;
    }
  }

  if (json) {
    std::cout << qdlint::to_json(findings);
  } else {
    for (const auto& f : findings) {
      std::cout << f.path << ":" << f.line << ":" << f.col << ": qdlint-" << f.rule << ": "
                << f.message;
      if (!f.hint.empty()) std::cout << "\n    hint: " << f.hint;
      std::cout << "\n";
    }
    std::cout << "qdlint: " << lint.files_scanned << " files (" << lint.cache_hits
              << " cached), " << findings.size() << " finding(s)"
              << (baseline_path.empty() ? "" : " after baseline") << "\n";
  }
  return findings.empty() ? 0 : 1;
}
