// qdlint driver: walks src/, tools/ and bench/ (or explicit paths), runs the
// analyzer per file, subtracts the baseline, and reports human-readable or
// JSON findings. Exit code 0 = clean, 1 = non-baselined findings, 2 = usage
// or I/O error.
//
// Usage:
//   qdlint [--root DIR] [--baseline FILE] [--json] [--write-baseline FILE]
//          [--list-rules] [paths...]
//
// Paths are repo-relative (to --root); default: src tools bench.

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "qdlint.h"

namespace fs = std::filesystem;

namespace {

bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool lintable(const fs::path& p) {
  const std::string name = p.filename().string();
  return has_suffix(name, ".cpp") || has_suffix(name, ".cc") || has_suffix(name, ".h") ||
         has_suffix(name, ".hpp");
}

std::string read_file(const fs::path& p, bool& ok) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    ok = false;
    return {};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  ok = true;
  return ss.str();
}

/// Repo-relative, '/'-separated form of `p` under `root`.
std::string rel_path(const fs::path& root, const fs::path& p) {
  return fs::relative(p, root).generic_string();
}

std::vector<std::string> split_lines(const std::string& s) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : s) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  lines.push_back(cur);
  return lines;
}

std::string trimmed_line(const std::vector<std::string>& lines, int line_no) {
  if (line_no < 1 || line_no > static_cast<int>(lines.size())) return {};
  const std::string& s = lines[static_cast<std::size_t>(line_no - 1)];
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) --e;
  return s.substr(b, e - b);
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string baseline_path;
  std::string write_baseline_path;
  bool json = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "qdlint: " << arg << " requires an argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      root = next();
    } else if (arg == "--baseline") {
      baseline_path = next();
    } else if (arg == "--write-baseline") {
      write_baseline_path = next();
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      for (const auto& r : qdlint::all_rules()) std::cout << "qdlint-" << r << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: qdlint [--root DIR] [--baseline FILE] [--json] "
                   "[--write-baseline FILE] [--list-rules] [paths...]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "qdlint: unknown option " << arg << "\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) paths = {"src", "tools", "bench"};

  std::error_code ec;
  root = fs::canonical(root, ec);
  if (ec) {
    std::cerr << "qdlint: bad --root: " << ec.message() << "\n";
    return 2;
  }

  // Collect files in deterministic (sorted) order.
  std::vector<fs::path> files;
  for (const auto& p : paths) {
    const fs::path full = root / p;
    if (fs::is_regular_file(full)) {
      files.push_back(full);
      continue;
    }
    if (!fs::is_directory(full)) {
      std::cerr << "qdlint: no such file or directory: " << full.string() << "\n";
      return 2;
    }
    for (auto it = fs::recursive_directory_iterator(full); it != fs::recursive_directory_iterator();
         ++it) {
      if (it->is_regular_file() && lintable(it->path())) files.push_back(it->path());
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<qdlint::Finding> findings;
  std::vector<std::string> line_texts;  // parallel to findings
  for (const auto& file : files) {
    bool ok = false;
    const std::string source = read_file(file, ok);
    if (!ok) {
      std::cerr << "qdlint: cannot read " << file.string() << "\n";
      return 2;
    }
    const auto ctx = qdlint::classify(rel_path(root, file));
    const auto file_findings = qdlint::analyze(ctx, source);
    if (file_findings.empty()) continue;
    const auto lines = split_lines(source);
    for (const auto& f : file_findings) {
      findings.push_back(f);
      line_texts.push_back(trimmed_line(lines, f.line));
    }
  }

  if (!write_baseline_path.empty()) {
    // qdlint is dependency-free by design (cannot link qd_util's atomic
    // writer), and a torn baseline only makes the gate stricter, never looser.
    // NOLINTNEXTLINE(qdlint-api-durable-io)
    std::ofstream out(write_baseline_path, std::ios::binary);
    out << "# qdlint baseline — grandfathered findings, one per line:\n"
        << "#   path|rule|trimmed source line\n"
        << "# This file may only shrink: fix or NOLINT new findings instead of adding here.\n";
    for (std::size_t i = 0; i < findings.size(); ++i) {
      out << qdlint::baseline_key(findings[i], line_texts[i]) << "\n";
    }
    std::cout << "qdlint: wrote " << findings.size() << " baseline entr"
              << (findings.size() == 1 ? "y" : "ies") << " to " << write_baseline_path << "\n";
    return 0;
  }

  if (!baseline_path.empty()) {
    bool ok = false;
    const std::string content = read_file(baseline_path, ok);
    if (!ok) {
      std::cerr << "qdlint: cannot read baseline " << baseline_path << "\n";
      return 2;
    }
    findings = qdlint::subtract_baseline(findings, qdlint::parse_baseline(content), line_texts);
  }

  if (json) {
    std::cout << qdlint::to_json(findings);
  } else {
    for (const auto& f : findings) {
      std::cout << f.path << ":" << f.line << ":" << f.col << ": qdlint-" << f.rule << ": "
                << f.message;
      if (!f.hint.empty()) std::cout << "\n    hint: " << f.hint;
      std::cout << "\n";
    }
    std::cout << "qdlint: " << files.size() << " files, " << findings.size()
              << " finding(s)" << (baseline_path.empty() ? "" : " after baseline") << "\n";
  }
  return findings.empty() ? 0 : 1;
}
