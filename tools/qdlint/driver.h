// qdlint driver: the orchestration layer above the pure analysis library.
// Walks the tree, runs per-file analysis in parallel over the shared
// ThreadPool, maintains the on-disk mtime+hash cache, and runs the
// whole-project stage (layer DAG, include cycles, reachability). Linked
// against qd_util — the analysis library itself (qdlint.h) stays
// dependency-free so tests can drive it in-process.
#pragma once

#include <string>
#include <vector>

#include "qdlint.h"

namespace qdlint {

struct DriverOptions {
  std::string root;                 // repo root (absolute or cwd-relative)
  std::vector<std::string> paths;   // repo-relative files/dirs; default src tools bench
  std::string cache_path;           // on-disk cache file; "" disables caching
  std::string layers_path;          // layer map; "" = <root>/tools/qdlint/layers.txt
  int threads = 0;                  // resize the global pool first; 0 = leave as-is
};

struct DriverResult {
  bool ok = false;
  std::string error;                      // set when !ok
  std::vector<Finding> findings;          // per-file + project, sorted by path/line
  std::vector<std::string> line_texts;    // parallel to findings (trimmed source)
  int files_scanned = 0;
  int cache_hits = 0;   // files whose analysis was reused (mtime/size or hash match)
};

/// Runs the full lint pass. Deterministic: findings depend only on file
/// contents and the layer map, never on thread count or cache state.
DriverResult run_driver(const DriverOptions& opts);

}  // namespace qdlint
