// Generates the committed golden checkpoint used by the checkpoint
// compatibility test (tests/core/golden_checkpoint_test.cpp).
//
// The golden file pins the on-disk format: it was written by the pre-FlatState
// code (checkpoint format v3, per-tensor global state) and must keep loading —
// and evaluating bitwise-identically — through every later format revision's
// compatibility shim. Regenerate ONLY when intentionally re-baselining:
//
//   ./build/tools/golden_checkpoint_gen tests/core/golden/checkpoint_v3.qdcp
//
// The deployment is deliberately tiny (2 clients, 8x8 synthetic images,
// width-12 convnet) so the binary stays a few hundred KB. Every knob needed to
// rebuild the evaluation context is recorded in the checkpoint metadata, with
// float results stored as hexfloat strings so the comparison is exact.
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/quickdrop.h"
#include "data/synthetic.h"
#include "metrics/evaluate.h"
#include "nn/convnet.h"
#include "util/thread_pool.h"

namespace {

std::string hex_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace quickdrop;
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output.qdcp>\n", argv[0]);
    return 1;
  }

  // Evaluation happens at whatever --threads the loader uses; the state and
  // eval kernels are thread-count invariant, but pin the pool anyway so the
  // generator itself is reproducible byte-for-byte.
  set_num_threads(1);

  // Mirror of tests/core/golden_checkpoint_test.cpp — keep in sync.
  data::SyntheticSpec spec;
  spec.num_classes = 3;
  spec.channels = 1;
  spec.image_size = 8;
  spec.train_per_class = 30;
  spec.test_per_class = 10;
  spec.noise = 0.35f;
  spec.seed = 63;
  const auto tt = data::make_synthetic(spec);

  std::vector<data::Dataset> clients;
  {
    std::vector<int> even, odd;
    for (int i = 0; i < tt.train.size(); ++i) (i % 2 == 0 ? even : odd).push_back(i);
    clients = {tt.train.subset(even), tt.train.subset(odd)};
  }

  nn::ConvNetConfig net;
  net.in_channels = 1;
  net.image_size = 8;
  net.num_classes = 3;
  net.width = 12;
  net.depth = 1;
  auto shared = std::make_shared<Rng>(65);
  fl::ModelFactory factory = [shared, net] { return nn::make_convnet(net, *shared); };

  core::QuickDropConfig cfg;
  cfg.fl_rounds = 12;
  cfg.local_steps = 6;
  cfg.batch_size = 16;
  cfg.train_lr = 0.1f;
  cfg.scale = 10;
  cfg.unlearn_lr = 0.05f;
  cfg.recover_lr = 0.05f;

  core::QuickDrop coordinator(factory, clients, cfg, 66);
  const auto trained = coordinator.train();

  auto model = factory();
  nn::load_state(*model, trained);
  const double test_accuracy = metrics::accuracy(*model, tt.test, 32);
  const double test_loss = metrics::mean_loss(*model, tt.test, 32);
  const auto per_class = metrics::per_class_accuracy(*model, tt.test, 32);

  auto cp = core::make_checkpoint(trained, coordinator.stores());
  cp.metadata["golden.format"] = "v3";
  cp.metadata["golden.note"] = "pre-FlatState golden; regenerate via tools/golden_checkpoint_gen";
  cp.metadata["eval.test_accuracy_hex"] = hex_double(test_accuracy);
  cp.metadata["eval.test_loss_hex"] = hex_double(test_loss);
  for (std::size_t c = 0; c < per_class.size(); ++c) {
    cp.metadata["eval.class" + std::to_string(c) + "_accuracy_hex"] = hex_double(per_class[c]);
  }
  core::save_checkpoint(cp, argv[1]);

  std::printf("wrote %s\n", argv[1]);
  std::printf("  test_accuracy = %.6f (%s)\n", test_accuracy,
              cp.metadata["eval.test_accuracy_hex"].c_str());
  std::printf("  test_loss     = %.6f (%s)\n", test_loss,
              cp.metadata["eval.test_loss_hex"].c_str());
  return 0;
}
