// quickdrop_cli — end-to-end federated unlearning from the command line.
//
//   quickdrop_cli train   --dataset cifar10 --clients 10 --alpha 0.1
//                         --rounds 30 --scale 10 --out model.qdcp
//   quickdrop_cli eval    --checkpoint model.qdcp
//   quickdrop_cli unlearn --checkpoint model.qdcp --class 9 --out fixed.qdcp
//   quickdrop_cli unlearn --checkpoint model.qdcp --client 3 --out fixed.qdcp
//   quickdrop_cli relearn --checkpoint fixed.qdcp --class 9 --out back.qdcp
//   quickdrop_cli inspect --checkpoint model.qdcp
//   quickdrop_cli serve   --checkpoint model.qdcp --requests 6 --arrival-rate 25
//                         --policy coalesce --json service.json
//   quickdrop_cli serve   --checkpoint model.qdcp --trace trace.txt --policy fifo
//
// Fault tolerance: `train` accepts --fault-crash/--fault-straggler/
// --fault-corrupt/--fault-stale rates plus --quorum/--max-attempts defenses
// (all persisted in the checkpoint metadata), --checkpoint-every K to write a
// resumable partial checkpoint every K rounds, and --resume to continue a
// killed run from its last completed round.
//
// Checkpoints are self-describing: train embeds the federation configuration
// (dataset, clients, partition, seeds, model geometry, fault model) in the
// checkpoint metadata, and the other commands rebuild the identical
// federation from it — the synthetic data rides along in the file, so
// unlearning never touches the original training data.
#include <cstdio>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/checkpoint.h"
#include "core/quickdrop.h"
#include "fl/quantize.h"
#include "net/api.h"
#include "net/replay.h"
#include "net/socket.h"
#include "serve/options.h"
#include "serve/service.h"
#include "store/store.h"
#include "util/atomic_file.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "metrics/evaluate.h"
#include "nn/convnet.h"
#include "util/cli.h"
#include "util/logging.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace qd = quickdrop;

namespace {

/// Federation parameters, embeddable in checkpoint metadata.
struct FedSpec {
  std::string dataset = "cifar10";
  int clients = 10;
  double alpha = 0.1;
  bool iid = false;
  int rounds = 30;
  int local_steps = 5;
  int batch = 32;
  double train_lr = 0.05;
  int scale = 10;
  int width = 16;
  int depth = 2;
  std::uint64_t seed = 42;

  // Fault model & defenses (fl/faults.h), persisted so resumed runs and
  // later unlearn/relearn phases replay the identical scenario.
  double fault_crash = 0.0;
  double fault_straggler = 0.0;
  double fault_corrupt = 0.0;  ///< split evenly across NaN/Inf/exploded-norm
  double fault_stale = 0.0;
  std::uint64_t fault_seed = 7;
  double quorum = 0.0;
  int max_attempts = 1;
  double outlier_mult = 8.0;

  /// Client→server update transport codec ("off", "int8" or "bf16"),
  /// persisted so serve/unlearn/relearn phases replay the training
  /// transport. Validated eagerly in from_flags/from_metadata.
  std::string quantize = "off";

  /// Shard-tree aggregation topology (fl/shard_tree.h), persisted so every
  /// later phase folds under the same topology. The fold bits are
  /// shard-count-invariant; topology only changes accounting and peak
  /// memory, but we persist it so resumed mid-request cursors can detect a
  /// switch. Validated eagerly in from_flags/from_metadata.
  int shards = 1;
  int shard_fanout = 8;

  static FedSpec from_flags(qd::CliFlags& flags) {
    FedSpec s;
    s.dataset = flags.get_string("dataset", s.dataset);
    s.clients = flags.get_int("clients", s.clients);
    s.alpha = flags.get_double("alpha", s.alpha);
    s.iid = flags.get_bool("iid", s.iid);
    s.rounds = flags.get_int("rounds", s.rounds);
    s.local_steps = flags.get_int("local-steps", s.local_steps);
    s.batch = flags.get_int("batch", s.batch);
    s.train_lr = flags.get_double("train-lr", s.train_lr);
    s.scale = flags.get_int("scale", s.scale);
    s.width = flags.get_int("width", s.width);
    s.depth = flags.get_int("depth", s.depth);
    s.seed = static_cast<std::uint64_t>(flags.get_int("seed", static_cast<int>(s.seed)));
    s.fault_crash = flags.get_double("fault-crash", s.fault_crash);
    s.fault_straggler = flags.get_double("fault-straggler", s.fault_straggler);
    s.fault_corrupt = flags.get_double("fault-corrupt", s.fault_corrupt);
    s.fault_stale = flags.get_double("fault-stale", s.fault_stale);
    s.fault_seed =
        static_cast<std::uint64_t>(flags.get_int("fault-seed", static_cast<int>(s.fault_seed)));
    s.quorum = flags.get_double("quorum", s.quorum);
    s.max_attempts = flags.get_int("max-attempts", s.max_attempts);
    s.outlier_mult = flags.get_double("outlier-mult", s.outlier_mult);
    s.quantize = flags.get_string("quantize-updates", s.quantize);
    qd::fl::codec_from_string(s.quantize);  // validate early, with a clear error
    s.shards = flags.get_int("shards", s.shards);
    s.shard_fanout = flags.get_int("shard-fanout", s.shard_fanout);
    qd::fl::AggregationConfig{.shards = s.shards, .fanout = s.shard_fanout}.validate();
    return s;
  }

  [[nodiscard]] std::map<std::string, std::string> to_metadata() const {
    return {{"dataset", dataset},
            {"clients", std::to_string(clients)},
            {"alpha", qd::fmt_double(alpha, 6)},
            {"iid", iid ? "1" : "0"},
            {"rounds", std::to_string(rounds)},
            {"local_steps", std::to_string(local_steps)},
            {"batch", std::to_string(batch)},
            {"train_lr", qd::fmt_double(train_lr, 6)},
            {"scale", std::to_string(scale)},
            {"width", std::to_string(width)},
            {"depth", std::to_string(depth)},
            {"seed", std::to_string(seed)},
            {"fault_crash", qd::fmt_double(fault_crash, 6)},
            {"fault_straggler", qd::fmt_double(fault_straggler, 6)},
            {"fault_corrupt", qd::fmt_double(fault_corrupt, 6)},
            {"fault_stale", qd::fmt_double(fault_stale, 6)},
            {"fault_seed", std::to_string(fault_seed)},
            {"quorum", qd::fmt_double(quorum, 6)},
            {"max_attempts", std::to_string(max_attempts)},
            {"outlier_mult", qd::fmt_double(outlier_mult, 6)},
            {"quantize", quantize},
            {"shards", std::to_string(shards)},
            {"shard_fanout", std::to_string(shard_fanout)}};
  }

  static FedSpec from_metadata(const std::map<std::string, std::string>& m) {
    FedSpec s;
    auto get = [&](const char* key) -> const std::string& {
      const auto it = m.find(key);
      if (it == m.end()) {
        throw std::invalid_argument(std::string("checkpoint metadata missing '") + key + "'");
      }
      return it->second;
    };
    // Fault keys default when absent so pre-fault-runtime metadata still
    // loads.
    auto get_or = [&](const char* key, const std::string& fallback) {
      const auto it = m.find(key);
      return it == m.end() ? fallback : it->second;
    };
    s.dataset = get("dataset");
    s.clients = std::stoi(get("clients"));
    s.alpha = std::stod(get("alpha"));
    s.iid = get("iid") == "1";
    s.rounds = std::stoi(get("rounds"));
    s.local_steps = std::stoi(get("local_steps"));
    s.batch = std::stoi(get("batch"));
    s.train_lr = std::stod(get("train_lr"));
    s.scale = std::stoi(get("scale"));
    s.width = std::stoi(get("width"));
    s.depth = std::stoi(get("depth"));
    s.seed = std::stoull(get("seed"));
    s.fault_crash = std::stod(get_or("fault_crash", "0"));
    s.fault_straggler = std::stod(get_or("fault_straggler", "0"));
    s.fault_corrupt = std::stod(get_or("fault_corrupt", "0"));
    s.fault_stale = std::stod(get_or("fault_stale", "0"));
    s.fault_seed = std::stoull(get_or("fault_seed", "7"));
    s.quorum = std::stod(get_or("quorum", "0"));
    s.max_attempts = std::stoi(get_or("max_attempts", "1"));
    s.outlier_mult = std::stod(get_or("outlier_mult", "8"));
    s.quantize = get_or("quantize", "off");  // pre-quantization checkpoints
    qd::fl::codec_from_string(s.quantize);
    s.shards = std::stoi(get_or("shards", "1"));  // pre-shard-tree checkpoints
    s.shard_fanout = std::stoi(get_or("shard_fanout", "8"));
    qd::fl::AggregationConfig{.shards = s.shards, .fanout = s.shard_fanout}.validate();
    return s;
  }
};

/// Live federation rebuilt from a FedSpec.
struct Federation {
  FedSpec spec;
  qd::data::TrainTest data;
  qd::fl::ModelFactory factory;
  std::unique_ptr<qd::core::QuickDrop> quickdrop;
  std::unique_ptr<qd::nn::Module> eval_model;
};

Federation build(const FedSpec& spec) {
  Federation fed{.spec = spec,
                 .data = qd::data::make_synthetic(qd::data::spec_by_name(spec.dataset)),
                 .factory = {},
                 .quickdrop = nullptr,
                 .eval_model = nullptr};
  qd::Rng prng(spec.seed ^ 0x9A97);
  const auto partition =
      spec.iid ? qd::data::iid_partition(fed.data.train, spec.clients, prng)
               : qd::data::dirichlet_partition(fed.data.train, spec.clients,
                                               static_cast<float>(spec.alpha), prng);
  auto clients = qd::data::materialize(fed.data.train, partition);

  qd::nn::ConvNetConfig net;
  net.in_channels = static_cast<int>(fed.data.train.image_shape()[0]);
  net.image_size = static_cast<int>(fed.data.train.image_shape()[1]);
  net.num_classes = fed.data.train.num_classes();
  net.width = spec.width;
  net.depth = spec.depth;
  net.validate();
  auto mrng = std::make_shared<qd::Rng>(spec.seed ^ 0xDEED);
  fed.factory = [mrng, net] { return qd::nn::make_convnet(net, *mrng); };

  qd::core::QuickDropConfig cfg;
  cfg.fl_rounds = spec.rounds;
  cfg.local_steps = spec.local_steps;
  cfg.batch_size = spec.batch;
  cfg.train_lr = static_cast<float>(spec.train_lr);
  cfg.scale = spec.scale;
  cfg.unlearn_lr = 0.05f;
  cfg.recover_lr = 0.03f;
  cfg.max_unlearn_rounds = 4;  // verified unlearning
  qd::fl::FaultRates rates;
  rates.crash = static_cast<float>(spec.fault_crash);
  rates.straggler = static_cast<float>(spec.fault_straggler);
  rates.corrupt_nan = static_cast<float>(spec.fault_corrupt / 3.0);
  rates.corrupt_inf = static_cast<float>(spec.fault_corrupt / 3.0);
  rates.exploded_norm = static_cast<float>(spec.fault_corrupt / 3.0);
  rates.stale_update = static_cast<float>(spec.fault_stale);
  cfg.faults = qd::fl::FaultPlan(spec.fault_seed, rates);
  cfg.defense.norm_outlier_multiplier = static_cast<float>(spec.outlier_mult);
  cfg.defense.min_quorum = static_cast<float>(spec.quorum);
  cfg.defense.max_round_attempts = spec.max_attempts;
  cfg.transport.codec = qd::fl::codec_from_string(spec.quantize);
  cfg.aggregation = qd::fl::AggregationConfig{.shards = spec.shards, .fanout = spec.shard_fanout};
  fed.quickdrop = std::make_unique<qd::core::QuickDrop>(fed.factory, std::move(clients), cfg,
                                                        spec.seed);
  fed.eval_model = fed.factory();
  return fed;
}

void print_eval(Federation& fed, const qd::nn::ModelState& state) {
  qd::nn::load_state(*fed.eval_model, state);
  std::printf("test accuracy: %s\n",
              qd::fmt_percent(qd::metrics::accuracy(*fed.eval_model, fed.data.test)).c_str());
  const auto pc = qd::metrics::per_class_accuracy(*fed.eval_model, fed.data.test);
  std::printf("per class:");
  for (std::size_t c = 0; c < pc.size(); ++c) {
    std::printf(" c%zu=%s", c, qd::fmt_percent(pc[c], 1).c_str());
  }
  std::printf("\n");
}

qd::core::UnlearningRequest request_from_flags(qd::CliFlags& flags) {
  const int class_id = flags.get_int("class", -1);
  const int client_id = flags.get_int("client", -1);
  if ((class_id >= 0) == (client_id >= 0)) {
    throw std::invalid_argument("specify exactly one of --class or --client");
  }
  return class_id >= 0 ? qd::core::UnlearningRequest::for_class(class_id)
                       : qd::core::UnlearningRequest::for_client(client_id);
}

int cmd_train(qd::CliFlags& flags) {
  auto spec = FedSpec::from_flags(flags);
  const auto out = flags.get_string("out", "model.qdcp");
  const int checkpoint_every = flags.get_int("checkpoint-every", 0);
  const bool resume = flags.get_bool("resume", false);
  flags.check_unused();

  // --resume: pick up the partial checkpoint written by --checkpoint-every.
  std::optional<qd::core::Checkpoint> partial;
  if (resume) {
    auto cp = qd::core::load_checkpoint(out);
    if (!cp.cursor || cp.cursor->phase != "train") {
      throw std::invalid_argument("--resume: " + out + " holds no in-flight training cursor");
    }
    spec = FedSpec::from_metadata(cp.metadata);  // the interrupted run's config wins
    partial = std::move(cp);
  }

  auto fed = build(spec);
  qd::core::TrainResume resume_point;
  const qd::core::TrainResume* resume_ptr = nullptr;
  if (partial) {
    fed.quickdrop->load_stores(qd::core::restore_stores(*partial));
    resume_point.global = partial->global;
    resume_point.rounds_done = partial->cursor->rounds_done;
    resume_point.rng_state = partial->cursor->rng_state;
    resume_ptr = &resume_point;
    std::printf("resuming training from round %d/%d...\n", resume_point.rounds_done,
                spec.rounds);
  } else {
    std::printf("training %d clients on %s for %d rounds (scale s=%d)...\n", spec.clients,
                spec.dataset.c_str(), spec.rounds, spec.scale);
  }

  // With --checkpoint-every the output file is a crash-safe store: every
  // partial checkpoint is a committed transaction, rounds dedup unchanged
  // pages against each other, and a kill at any point reopens to the last
  // committed round. Without it, the output is a legacy single-blob
  // checkpoint (written atomically). load_checkpoint() sniffs either format.
  std::optional<qd::store::Store> store;
  if (checkpoint_every > 0) store.emplace(out);
  qd::fl::RoundCursorCallback cursor_cb;
  if (checkpoint_every > 0) {
    cursor_cb = [&](int round, const qd::nn::ModelState& state, const qd::Rng& rng) {
      const int done = round + 1;
      if (done % checkpoint_every != 0 || done >= spec.rounds) return;
      auto cp = qd::core::make_checkpoint(state, fed.quickdrop->stores());
      cp.metadata = spec.to_metadata();
      cp.cursor = qd::core::RoundCursor{"train", done, rng.serialize()};
      qd::core::save_checkpoint(cp, *store, static_cast<std::uint64_t>(done));
      std::printf("  partial checkpoint at round %d committed to %s (seq %llu)\n", done,
                  out.c_str(), static_cast<unsigned long long>(store->committed_seq()));
    };
  }

  const auto state = fed.quickdrop->train({}, {}, cursor_cb, resume_ptr);
  print_eval(fed, state);
  const auto& cost = fed.quickdrop->training_stats().cost;
  if (cost.total_faults() > 0 || cost.lost_rounds > 0) {
    std::printf(
        "faults survived: %lld crashes, %lld stragglers, %lld quarantined, %lld retried "
        "rounds, %lld lost rounds\n",
        static_cast<long long>(cost.crashed_clients),
        static_cast<long long>(cost.straggler_timeouts),
        static_cast<long long>(cost.quarantined_updates),
        static_cast<long long>(cost.retried_rounds), static_cast<long long>(cost.lost_rounds));
  }
  auto cp = qd::core::make_checkpoint(state, fed.quickdrop->stores());
  cp.metadata = spec.to_metadata();
  if (store) {
    qd::core::save_checkpoint(cp, *store, static_cast<std::uint64_t>(spec.rounds));
    const auto stats = store->stats();
    std::printf("checkpoint committed to %s (seq %llu, %llu records, %llu live / %llu file "
                "pages)\n",
                out.c_str(), static_cast<unsigned long long>(stats.committed_seq),
                static_cast<unsigned long long>(stats.records),
                static_cast<unsigned long long>(stats.live_pages),
                static_cast<unsigned long long>(stats.file_pages));
  } else {
    qd::core::save_checkpoint(cp, out);
    std::printf("checkpoint written to %s\n", out.c_str());
  }
  return 0;
}

/// Loads the checkpoint and rebuilds the matching federation (no training).
std::pair<Federation, qd::core::Checkpoint> load(qd::CliFlags& flags) {
  const auto path = flags.get_string("checkpoint", "model.qdcp");
  auto cp = qd::core::load_checkpoint(path);
  auto fed = build(FedSpec::from_metadata(cp.metadata));
  fed.quickdrop->load_stores(qd::core::restore_stores(cp));
  return {std::move(fed), std::move(cp)};
}

int cmd_eval(qd::CliFlags& flags) {
  auto [fed, cp] = load(flags);
  flags.check_unused();
  print_eval(fed, cp.global);
  return 0;
}

int cmd_inspect(qd::CliFlags& flags) {
  const auto path = flags.get_string("checkpoint", "model.qdcp");
  flags.check_unused();
  if (qd::store::Store::sniff(path)) {
    qd::store::Store store(path);
    const auto stats = store.stats();
    std::printf("store file: seq %llu, %llu records, %llu live / %llu file pages\n",
                static_cast<unsigned long long>(stats.committed_seq),
                static_cast<unsigned long long>(stats.records),
                static_cast<unsigned long long>(stats.live_pages),
                static_cast<unsigned long long>(stats.file_pages));
  }
  const auto cp = qd::core::load_checkpoint(path);
  std::printf("checkpoint %s\n", path.c_str());
  for (const auto& [key, value] : cp.metadata) std::printf("  %s = %s\n", key.c_str(), value.c_str());
  std::printf("  model parameters: %lld tensors, %lld bytes\n",
              static_cast<long long>(cp.global.size()),
              static_cast<long long>(qd::nn::state_bytes(cp.global)));
  std::int64_t synth = 0;
  for (const auto& client : cp.clients) {
    for (const auto& t : client.synthetic) synth += t.dim(0) > 0 ? t.dim(0) : 0;
  }
  std::printf("  clients: %zu, synthetic samples: %lld\n", cp.clients.size(),
              static_cast<long long>(synth));
  if (cp.cursor) {
    std::printf("  in-flight phase '%s': %d round(s) completed (resume with --resume)\n",
                cp.cursor->phase.c_str(), cp.cursor->rounds_done);
  }
  return 0;
}

int cmd_unlearn(qd::CliFlags& flags) {
  auto [fed, cp] = load(flags);
  const auto request = request_from_flags(flags);
  const auto out = flags.get_string("out", "unlearned.qdcp");
  flags.check_unused();
  std::printf("before unlearning %s:\n", request.to_string().c_str());
  print_eval(fed, cp.global);
  qd::core::PhaseStats us, rs;
  const auto state = fed.quickdrop->unlearn(cp.global, request, &us, &rs);
  std::printf("after unlearning (%.2fs unlearn + %.2fs recovery):\n", us.seconds, rs.seconds);
  print_eval(fed, state);
  auto new_cp = qd::core::make_checkpoint(state, fed.quickdrop->stores());
  new_cp.metadata = cp.metadata;
  qd::core::save_checkpoint(new_cp, out);
  std::printf("checkpoint written to %s\n", out.c_str());
  return 0;
}

int cmd_relearn(qd::CliFlags& flags) {
  auto [fed, cp] = load(flags);
  const auto request = request_from_flags(flags);
  const auto out = flags.get_string("out", "relearned.qdcp");
  flags.check_unused();
  qd::core::PhaseStats stats;
  const auto state = fed.quickdrop->relearn(cp.global, request, &stats);
  std::printf("after relearning %s (%.2fs):\n", request.to_string().c_str(), stats.seconds);
  print_eval(fed, state);
  auto new_cp = qd::core::make_checkpoint(state, fed.quickdrop->stores());
  new_cp.metadata = cp.metadata;
  qd::core::save_checkpoint(new_cp, out);
  std::printf("checkpoint written to %s\n", out.c_str());
  return 0;
}

// Replays (or generates) an unlearning request trace against a trained
// checkpoint through the serve/ stack. All reported latencies are simulated
// seconds from the deterministic cost model, so --json output is bitwise
// reproducible at any --threads count — including over the loopback wire
// transport, whose report differs from the in-process one only in the
// "transport"/"wire_"/"net_" overlay lines.
int cmd_serve(qd::CliFlags& flags) {
  const auto options = qd::serve::parse_serve_options(flags);
  flags.check_unused();
  auto cp = qd::core::load_checkpoint(options.checkpoint);
  auto fed = build(FedSpec::from_metadata(cp.metadata));
  fed.quickdrop->load_stores(qd::core::restore_stores(cp));
  qd::serve::validate_resume_policy(options, cp.metadata);
  if (options.shards > 0 || options.shard_fanout > 0) {
    fed.quickdrop->set_aggregation(qd::fl::AggregationConfig{
        .shards = options.shards > 0 ? options.shards : fed.spec.shards,
        .fanout = options.shard_fanout > 0 ? options.shard_fanout : fed.spec.shard_fanout});
  }

  qd::serve::ServiceConfig config;
  config.policy = qd::serve::policy_from_name(options.policy);
  config.max_batch = options.max_batch;
  config.cost_model.seconds_per_round = options.sec_per_round;
  config.cost_model.seconds_per_sample_grad = options.sec_per_grad;
  config.wire_bytes_per_second = options.wire_bandwidth;
  std::shared_ptr<qd::core::QuickDrop> quickdrop = std::move(fed.quickdrop);

  // --listen: live HTTP front-end. Requests arrive over the wire, the sim
  // clock is the service clock, and unlearning cycles run while idle.
  if (options.listen_port > 0) {
    qd::net::ApiConfig api_config;
    config.transport = "http";
    api_config.service = config;
    if (!options.tenants_spec.empty()) {
      api_config.tenants = qd::net::parse_tenant_specs(options.tenants_spec);
    }
    qd::net::ApiService api(quickdrop, cp.global, api_config);
    qd::net::TcpListener listener(static_cast<std::uint16_t>(options.listen_port));
    std::printf("serving HTTP on port %u (%zu tenant(s); POST /unlearn, GET /request/:id, "
                "GET /metrics)\n",
                static_cast<unsigned>(listener.port()), api_config.tenants.size());
    qd::net::serve_http(
        listener, [&api](const qd::net::HttpRequest& request) { return api.handle(request); },
        [&api] { api.drain(); }, [] { return false; });
    return 0;  // unreachable: the loop runs until the process is killed
  }

  std::vector<qd::serve::ServiceRequest> trace;
  if (options.wire_listen_port > 0) {
    // The trace arrives over the wire: `replay --connect` streams it.
  } else if (!options.trace_path.empty()) {
    trace = qd::serve::load_trace(options.trace_path);
    std::printf("replaying %zu requests from %s\n", trace.size(), options.trace_path.c_str());
  } else {
    const std::uint64_t trace_seed =
        options.trace_seed_set ? options.trace_seed : fed.spec.seed + 1000;
    qd::serve::ArrivalConfig arrivals;
    arrivals.num_requests = options.requests;
    arrivals.mean_interarrival_seconds = options.arrival_rate_seconds;
    arrivals.client_fraction = options.client_fraction;
    arrivals.num_classes = fed.data.train.num_classes();
    arrivals.num_clients = fed.spec.clients;
    qd::Rng trace_rng(trace_seed);
    trace = qd::serve::generate_trace(arrivals, trace_rng);
    std::printf("generated %zu requests (mean inter-arrival %.0fs, trace seed %llu)\n",
                trace.size(), options.arrival_rate_seconds,
                static_cast<unsigned long long>(trace_seed));
  }
  if (!options.dump_trace.empty()) {
    qd::serve::save_trace(trace, options.dump_trace);
    std::printf("trace written to %s\n", options.dump_trace.c_str());
  }

  qd::serve::ServiceReport report;
  const qd::nn::ModelState* final_state = nullptr;
  std::optional<qd::serve::UnlearningService> service;
  std::optional<qd::net::NetReplaySession> session;
  if (options.wire_listen_port > 0) {
    // --wire-listen: the server side of `replay --connect`. One accepted
    // connection, one replayed trace, then the same report/checkpoint tail
    // as every other serve mode.
    qd::net::TcpListener listener(static_cast<std::uint16_t>(options.wire_listen_port));
    std::printf("wire replay listening on port %u (send with: quickdrop_cli replay "
                "--connect HOST:%u --checkpoint ... --trace ...)\n",
                static_cast<unsigned>(listener.port()), static_cast<unsigned>(listener.port()));
    const auto conn = listener.accept_conn();
    qd::net::ReplayConfig replay_config;
    config.transport = "tcp";
    replay_config.service = config;
    replay_config.codec = qd::fl::codec_from_string(fed.spec.quantize);
    session.emplace(quickdrop, cp.global, replay_config);
    report = session->run(*conn);
    final_state = &session->state();
  } else if (options.transport == "loopback") {
    // Single-threaded wire replay: loopback writes never block, so the
    // client sends the whole trace first, the session serves it, and the
    // acks + report are collected afterwards.
    const std::uint64_t layout_hash = quickdrop->state_layout()->hash();
    auto pair = qd::net::make_loopback();
    qd::net::replay_send_trace(*pair.client, trace, "cli", layout_hash);
    qd::net::ReplayConfig replay_config;
    config.transport = "loopback";
    replay_config.service = config;
    replay_config.codec = qd::fl::codec_from_string(fed.spec.quantize);
    session.emplace(quickdrop, cp.global, replay_config);
    report = session->run(*pair.server);
    const auto heard = qd::net::replay_collect(*pair.client, layout_hash);
    std::printf("loopback replay: %zu ack(s), %lld bytes down, %lld bytes up "
                "(state on wire: %lld raw / %lld quantized)\n",
                heard.acks.size(), static_cast<long long>(report.wire_request_bytes),
                static_cast<long long>(report.wire_ack_bytes),
                static_cast<long long>(report.wire_state_bytes_raw),
                static_cast<long long>(report.wire_state_bytes_quantized));
    final_state = &session->state();
  } else {
    service.emplace(quickdrop, cp.global, config);
    report = service->run(trace);
    final_state = &service->state();
  }

  qd::TextTable table;
  table.set_header({"id", "kind", "target", "wait(s)", "latency(s)", "net(s)", "batch", "cycle"});
  for (const auto& m : report.completed) {
    table.add_row({std::to_string(m.id), qd::serve::kind_name(m.kind), std::to_string(m.target),
                   qd::fmt_double(m.queue_wait(), 1), qd::fmt_double(m.latency(), 1),
                   qd::fmt_double(m.net_seconds, 3), std::to_string(m.batch_size),
                   std::to_string(m.cycle)});
  }
  std::printf("%s\n", table.render().c_str());
  for (const auto& rejection : report.rejected) {
    std::printf("rejected: %s (%s)\n", rejection.request.describe().c_str(),
                qd::serve::reject_reason_name(rejection.reason));
  }
  std::printf("policy=%s transport=%s: %zu served in %d cycle(s), %d FL rounds, p50 %.1fs, "
              "p95 %.1fs, queue-wait p95 %.1fs, net %.3fs, %.2f requests/hour\n",
              report.policy.c_str(), report.transport.c_str(), report.completed.size(),
              report.cycles, report.total_fl_rounds, report.latency_percentile(50.0),
              report.latency_percentile(95.0), report.queue_wait_percentile(95.0),
              report.net_seconds_total(), report.requests_per_hour());
  print_eval(fed, *final_state);

  if (!options.json_path.empty()) {
    qd::write_file_atomic(options.json_path, report.to_json());
    std::printf("metrics written to %s\n", options.json_path.c_str());
  }
  if (!options.out.empty()) {
    auto new_cp = qd::core::make_checkpoint(*final_state, quickdrop->stores());
    new_cp.metadata = cp.metadata;
    new_cp.metadata[qd::serve::kServePolicyKey] = options.policy;
    qd::core::save_checkpoint(new_cp, options.out);
    std::printf("checkpoint written to %s\n", options.out.c_str());
  }
  return 0;
}

// Streams a trace file to a running `serve --listen`-style replay endpoint…
// or, more precisely, to a NetReplaySession listening on a TCP port, and
// prints the acks plus the server's report.
int cmd_replay(qd::CliFlags& flags) {
  const auto options = qd::serve::parse_replay_options(flags);
  flags.check_unused();
  auto cp = qd::core::load_checkpoint(options.checkpoint);
  auto fed = build(FedSpec::from_metadata(cp.metadata));
  const std::uint64_t layout_hash = fed.quickdrop->state_layout()->hash();
  const auto trace = qd::serve::load_trace(options.trace_path);

  std::printf("replaying %zu requests to %s:%u as tenant '%s'\n", trace.size(),
              options.host.c_str(), static_cast<unsigned>(options.port),
              options.tenant.c_str());
  const auto conn = qd::net::tcp_connect(options.host, options.port);
  const auto result = qd::net::replay_trace_client(*conn, trace, options.tenant, layout_hash);
  std::size_t accepted = 0;
  for (const auto& ack : result.acks) accepted += ack.accepted ? 1 : 0;
  std::printf("%zu/%zu accepted, %lld bytes received\n", accepted, result.acks.size(),
              static_cast<long long>(result.bytes_received));
  if (!result.report_json.empty()) std::printf("%s", result.report_json.c_str());
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: quickdrop_cli <train|eval|unlearn|relearn|serve|replay|inspect> [--flags]\n"
               "  train   --dataset D --clients N --rounds R --scale S --out FILE\n"
               "          [--fault-crash P] [--fault-straggler P] [--fault-corrupt P]\n"
               "          [--fault-stale P] [--fault-seed S] [--quorum F] [--max-attempts N]\n"
               "          [--outlier-mult M] [--quantize-updates off|int8|bf16]\n"
               "          [--shards N] [--shard-fanout F]\n"
               "          [--checkpoint-every K] [--resume]\n"
               "  eval    --checkpoint FILE\n"
               "  unlearn --checkpoint FILE (--class C | --client I) --out FILE\n"
               "  relearn --checkpoint FILE (--class C | --client I) --out FILE\n"
               "  serve   --checkpoint FILE [--trace FILE | --requests N --arrival-rate SECS]\n"
               "          [--policy fifo|priority|coalesce] [--max-batch N] [--trace-seed S]\n"
               "          [--dump-trace FILE] [--json FILE] [--out FILE] [--resume]\n"
               "          [--sec-per-round S] [--sec-per-grad S] [--shards N] [--shard-fanout F]\n"
               "          [--transport inproc|loopback] [--wire-bandwidth BYTES/S]\n"
               "          [--listen PORT [--tenants name=token,...]] [--wire-listen PORT]\n"
               "  replay  --connect HOST:PORT --checkpoint FILE --trace FILE [--tenant NAME]\n"
               "  inspect --checkpoint FILE\n"
               "  common: --log-level debug|info|warn|error (or QUICKDROP_LOG_LEVEL)\n"
               "          --threads N (or QUICKDROP_THREADS; default: all hardware threads)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    qd::set_log_level_from_env();
    qd::set_threads_from_env();
    qd::CliFlags flags(argc - 1, argv + 1);
    const auto log_level = flags.get_string("log-level", "");
    if (!log_level.empty()) qd::set_log_level(qd::log_level_from_name(log_level));
    const int threads = flags.get_int("threads", 0);
    if (threads < 0) throw std::invalid_argument("--threads must be >= 1 (0 = hardware default)");
    if (threads > 0) qd::set_num_threads(threads);
    if (command == "train") return cmd_train(flags);
    if (command == "eval") return cmd_eval(flags);
    if (command == "unlearn") return cmd_unlearn(flags);
    if (command == "relearn") return cmd_relearn(flags);
    if (command == "serve") return cmd_serve(flags);
    if (command == "replay") return cmd_replay(flags);
    if (command == "inspect") return cmd_inspect(flags);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
