// Extension experiment: the unlearning request service under load.
//
// Replays one seeded arrival trace of class/client unlearning requests
// through the service twice — FIFO (one request per unlearn/recover cycle)
// versus the coalescing batcher (compatible pending requests merged into a
// single cycle) — and reports per-request SLA metrics: queue wait, p50/p95
// latency, requests/hour, FL rounds and bytes. All latency numbers are
// *simulated* seconds from the executor's deterministic CostModel, so the
// emitted BENCH_ext_request_service.json is bitwise identical across runs
// and thread counts. The headline claim generalises Fig. 4: coalescing k
// compatible requests costs one cycle instead of k, so total FL rounds drop
// and tail latency collapses whenever requests cluster in time.
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/world.h"
#include "serve/service.h"
#include "util/atomic_file.h"
#include "util/table.h"

namespace qd = quickdrop;

namespace {

qd::serve::ServiceReport run_policy(qd::bench::World& world,
                                    const std::vector<qd::serve::ServiceRequest>& trace,
                                    qd::serve::SchedulerPolicy policy, int max_batch,
                                    const qd::serve::CostModel& cost_model) {
  qd::serve::ServiceConfig config;
  config.policy = policy;
  config.max_batch = max_batch;
  config.cost_model = cost_model;
  config.evaluator = [&world](const qd::serve::ServiceRequest& request,
                              const qd::nn::ModelState& state,
                              qd::serve::RequestMetrics& metrics) {
    const auto core_request = request.to_core();
    metrics.fset_accuracy = world.fset_accuracy(state, core_request);
    metrics.rset_accuracy = world.rset_accuracy(state, core_request);
  };
  // Each policy replays the same history against the same trained model:
  // unlearn/recover cycles leave the synthetic stores untouched, so only the
  // forgotten-target bookkeeping must be reset between runs.
  world.fed.quickdrop->reset_forgotten();
  qd::serve::UnlearningService service(world.fed.quickdrop, world.fed.global, config);
  return service.run(trace);
}

void print_report(const qd::serve::ServiceReport& report) {
  std::printf("policy=%s completed=%zu rejected=%zu cycles=%d fl_rounds=%d\n",
              report.policy.c_str(), report.completed.size(), report.rejected.size(),
              report.cycles, report.total_fl_rounds);
  std::printf("  p50 latency %.1fs | p95 latency %.1fs | %.2f requests/hour | %.1f MB\n",
              report.latency_percentile(50.0), report.latency_percentile(95.0),
              report.requests_per_hour(),
              static_cast<double>(report.total_bytes) / (1024.0 * 1024.0));

  qd::TextTable table;
  table.set_header({"id", "kind", "target", "wait(s)", "latency(s)", "batch", "cycle", "fset",
                    "rset"});
  for (const auto& m : report.completed) {
    table.add_row({std::to_string(m.id), qd::serve::kind_name(m.kind), std::to_string(m.target),
                   qd::fmt_double(m.queue_wait(), 1), qd::fmt_double(m.latency(), 1),
                   std::to_string(m.batch_size), std::to_string(m.cycle),
                   qd::fmt_percent(m.fset_accuracy, 1), qd::fmt_percent(m.rset_accuracy, 1)});
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  qd::CliFlags flags(argc, argv);
  auto config = qd::bench::WorldConfig::from_flags(flags);
  const int requests = flags.get_int("requests", 6);
  const double arrival_rate = flags.get_double("arrival-rate", 25.0);
  const int max_batch = flags.get_int("max-batch", 0);
  // Deployment-speed knobs: with rounds costing ~30 simulated seconds and
  // arrivals ~25s apart, requests cluster behind an in-flight cycle — the
  // regime where coalescing pays off.
  qd::serve::CostModel cost_model;
  cost_model.seconds_per_round = flags.get_double("sec-per-round", 30.0);
  cost_model.seconds_per_sample_grad = flags.get_double("sec-per-grad", 1e-4);
  const std::string trace_path = flags.get_string("trace", "");
  const std::string dump_trace = flags.get_string("dump-trace", "");
  const std::string out_path = flags.get_string("out", "BENCH_ext_request_service.json");
  flags.check_unused();
  if (config.max_unlearn_rounds == 0) config.max_unlearn_rounds = 6;

  qd::bench::print_banner("Extension: unlearning request service (FIFO vs coalescing)", config);
  auto world = qd::bench::build_world(config);

  std::vector<qd::serve::ServiceRequest> trace;
  if (!trace_path.empty()) {
    trace = qd::serve::load_trace(trace_path);
    std::printf("trace: %zu requests from %s\n\n", trace.size(), trace_path.c_str());
  } else {
    qd::serve::ArrivalConfig arrivals;
    arrivals.num_requests = requests;
    arrivals.mean_interarrival_seconds = arrival_rate;
    arrivals.num_classes = world.fed.test.num_classes();
    arrivals.num_clients = config.clients;
    qd::Rng trace_rng(config.seed + 1000);
    trace = qd::serve::generate_trace(arrivals, trace_rng);
    std::printf("trace: %d generated requests, mean inter-arrival %.0fs (seed %llu)\n\n",
                requests, arrival_rate,
                static_cast<unsigned long long>(config.seed + 1000));
  }
  if (!dump_trace.empty()) {
    qd::serve::save_trace(trace, dump_trace);
    std::printf("trace written to %s\n\n", dump_trace.c_str());
  }

  const auto fifo =
      run_policy(world, trace, qd::serve::SchedulerPolicy::kFifo, max_batch, cost_model);
  print_report(fifo);
  const auto coalesce =
      run_policy(world, trace, qd::serve::SchedulerPolicy::kCoalesce, max_batch, cost_model);
  print_report(coalesce);

  qd::write_file_atomic(out_path, "{\n\"fifo\": " + fifo.to_json() +
                                      ",\n\"coalesce\": " + coalesce.to_json() + "}\n");
  std::printf("metrics written to %s\n", out_path.c_str());

  std::printf("\nexpected: coalescing serves clustered requests in fewer cycles (%d vs %d) and\n"
              "fewer FL rounds (%d vs %d), collapsing queue wait for late arrivals while each\n"
              "forgotten target's F-Set accuracy still drops to ~0.\n",
              coalesce.cycles, fifo.cycles, coalesce.total_fl_rounds, fifo.total_fl_rounds);
  return 0;
}
