// Reproduces Table 3: class-level unlearning in a large network (paper: 100
// clients on SVHN, 10% participation during training/recovery, 100% during
// unlearning). Reports F-Set / R-Set accuracy, total time and speedup over
// Retrain-Or for every applicable method.
#include <cstdio>

#include "common/world.h"
#include "util/table.h"

namespace qd = quickdrop;

int main(int argc, char** argv) {
  qd::CliFlags flags(argc, argv);
  auto config = qd::bench::WorldConfig::from_flags(flags);
  const int target_class = flags.get_int("class", 9);
  flags.check_unused();

  // Table 3 defaults: SVHN stand-in, many clients, partial participation —
  // applied only where the user did not override the base default.
  qd::bench::WorldConfig defaults;
  if (config.dataset == defaults.dataset) config.dataset = "svhn";
  if (config.clients == defaults.clients) config.clients = 40;
  if (config.participation == defaults.participation) config.participation = 0.1;
  if (config.fl_rounds == defaults.fl_rounds) config.fl_rounds = 100;

  qd::bench::print_banner("Table 3: large network, partial participation", config);
  auto world = qd::bench::build_world(config);
  const auto request = qd::core::UnlearningRequest::for_class(target_class);
  std::printf("trained model: test acc %s (train time %.1fs)\n\n",
              qd::fmt_percent(world.accuracy(world.fed.global)).c_str(),
              world.fed.train_seconds);

  const auto baseline_cfg = qd::bench::baseline_config(config);
  qd::TextTable table;
  table.set_header({"FU approach", "F-Set", "R-Set", "Time(s)", "Speedup"});
  double oracle_seconds = 0.0;
  for (const auto& name : {"Retrain-Or", "FedEraser", "SGA-Or", "FU-MP", "QuickDrop"}) {
    auto method = qd::baselines::make_method(name, baseline_cfg);
    const auto out = method->unlearn(world.fed, request);
    const double total = out.unlearn.seconds + out.recovery.seconds;
    if (std::string(name) == "Retrain-Or") oracle_seconds = total;
    table.add_row({name, qd::fmt_percent(world.fset_accuracy(out.state, request)),
                   qd::fmt_percent(world.rset_accuracy(out.state, request)),
                   qd::fmt_double(total, 2),
                   qd::fmt_double(oracle_seconds / total, 1) + "x"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper (Table 3): QuickDrop reaches F-Set 0.81%% / R-Set 84.96%% vs oracle 0.34%% /\n"
              "88.39%%, with a 326.7x speedup over Retrain-Or; baselines are 4.3-8.2x.\n");
  return 0;
}
