// Ablation study of QuickDrop's design choices (beyond the paper's tables):
//   1. gradient matching on vs off (off = plain random-real-sample coreset),
//   2. synthetic initialization from real samples vs Gaussian noise (§4.1),
//   3. recovery augmentation on vs off (§3.3.1),
//   4. post-hoc distribution matching (Zhao & Bilen '23) instead of in-situ
//      gradient matching — the cheaper first-order alternative from §6.2.
// Each variant trains its own federation (matching is in-situ) and serves the
// same class-level unlearning request.
#include <cstdio>

#include "common/world.h"
#include "core/distribution_matching.h"
#include "util/table.h"

namespace qd = quickdrop;

namespace {

struct Variant {
  std::string name;
  bool distill;
  bool init_noise;
  bool augment;
  bool distribution_matching = false;
};

}  // namespace

int main(int argc, char** argv) {
  qd::CliFlags flags(argc, argv);
  auto base = qd::bench::WorldConfig::from_flags(flags);
  const int target_class = flags.get_int("class", 9);
  flags.check_unused();

  base.fl_rounds = std::min(base.fl_rounds, 20);
  qd::bench::print_banner("Ablation: QuickDrop design choices", base);

  // Augmentation mixes real samples into recovery and can mask the synthetic
  // data's own quality, so the distillation variants are compared with
  // augmentation OFF; the first pair isolates augmentation itself.
  const std::vector<Variant> variants = {
      {"full QuickDrop (augmented)", true, false, true},
      {"full QuickDrop, no augmentation", true, false, false},
      {"coreset (no matching), no augment", false, false, false},
      {"noise init + matching, no augment", true, true, false},
      {"noise init, no matching, no augment", false, true, false},
      {"distribution matching post-hoc, no augment", false, false, false, true},
  };

  qd::TextTable table;
  table.set_header({"variant", "F-Set after U+R", "R-Set after U+R",
                    "synthetic-only test acc"});
  const auto request = qd::core::UnlearningRequest::for_class(target_class);

  // Classical DD evaluation: train a fresh model on the union of the
  // synthetic datasets only and measure its test accuracy — the direct probe
  // of the synthetic data's information content.
  auto synthetic_only_accuracy = [&](qd::bench::World& world) {
    qd::data::Dataset pool = world.fed.quickdrop->stores()[0].to_dataset();
    for (std::size_t i = 1; i < world.fed.quickdrop->stores().size(); ++i) {
      pool = qd::data::Dataset::concat(pool,
                                       world.fed.quickdrop->stores()[i].to_dataset());
    }
    auto probe = world.fed.factory();
    std::vector<int> rows(static_cast<std::size_t>(pool.size()));
    for (int i = 0; i < pool.size(); ++i) rows[static_cast<std::size_t>(i)] = i;
    qd::Rng rng(base.seed ^ 0x50);
    qd::fl::CostMeter cost;
    for (int step = 0; step < 120; ++step) {
      const auto batch_rows = qd::data::Dataset::sample_batch_indices(rows, 32, rng);
      auto [images, labels] = pool.batch(batch_rows);
      qd::fl::sgd_step_on_batch(*probe, images, labels, 0.05f,
                                qd::nn::UpdateDirection::kDescent, cost);
    }
    return qd::metrics::accuracy(*probe, world.fed.test);
  };
  for (const auto& v : variants) {
    auto config = base;
    config.distill_steps = v.distill ? 1 : 0;
    config.init_noise = v.init_noise;
    config.augment_recovery = v.augment;
    auto world = qd::bench::build_world(config);
    if (v.distribution_matching) {
      qd::core::DmConfig dm;
      dm.iterations = 15;
      auto& quickdrop = *world.fed.quickdrop;
      for (int i = 0; i < quickdrop.num_clients(); ++i) {
        qd::Rng rng(base.seed ^ (0xD3 + static_cast<std::uint64_t>(i)));
        qd::fl::CostMeter cost;
        qd::core::distill_distribution_matching(
            world.fed.factory, quickdrop.stores()[static_cast<std::size_t>(i)],
            quickdrop.client_train()[static_cast<std::size_t>(i)], dm, rng, cost);
      }
    }
    const auto out = world.fed.quickdrop->unlearn(world.fed.global, request);
    table.add_row({v.name, qd::fmt_percent(world.fset_accuracy(out, request)),
                   qd::fmt_percent(world.rset_accuracy(out, request)),
                   qd::fmt_percent(synthetic_only_accuracy(world))});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected: unlearning+recovery succeeds in every variant at this scale (recovery\n"
              "mainly re-anchors the classifier), while the synthetic-only column — a model\n"
              "trained from scratch on nothing but the synthetic data — exposes the quality\n"
              "differences: matched/real-initialized sets carry far more information than\n"
              "unmatched noise.\n");
  return 0;
}
