#include "common/world.h"

#include <cstdio>

#include "data/partition.h"
#include "fl/quantize.h"
#include "nn/convnet.h"
#include "util/table.h"

namespace quickdrop::bench {

WorldConfig WorldConfig::from_flags(CliFlags& flags) {
  WorldConfig cfg;
  cfg.dataset = flags.get_string("dataset", cfg.dataset);
  cfg.clients = flags.get_int("clients", cfg.clients);
  cfg.alpha = flags.get_double("alpha", cfg.alpha);
  cfg.iid = flags.get_bool("iid", cfg.iid);
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", static_cast<int>(cfg.seed)));
  cfg.fl_rounds = flags.get_int("rounds", cfg.fl_rounds);
  cfg.local_steps = flags.get_int("local-steps", cfg.local_steps);
  cfg.batch_size = flags.get_int("batch", cfg.batch_size);
  cfg.train_lr = flags.get_double("train-lr", cfg.train_lr);
  cfg.participation = flags.get_double("participation", cfg.participation);
  cfg.scale = flags.get_int("scale", cfg.scale);
  cfg.finetune_steps = flags.get_int("finetune", cfg.finetune_steps);
  cfg.distill_steps = flags.get_int("distill-steps", cfg.distill_steps);
  cfg.init_noise = flags.get_bool("init-noise", cfg.init_noise);
  cfg.augment_recovery = flags.get_bool("augment", cfg.augment_recovery);
  cfg.unlearn_lr = flags.get_double("unlearn-lr", cfg.unlearn_lr);
  cfg.recover_lr = flags.get_double("recover-lr", cfg.recover_lr);
  cfg.unlearn_batch = flags.get_int("unlearn-batch", cfg.unlearn_batch);
  cfg.unlearn_rounds = flags.get_int("unlearn-rounds", cfg.unlearn_rounds);
  cfg.max_unlearn_rounds = flags.get_int("max-unlearn-rounds", cfg.max_unlearn_rounds);
  cfg.recovery_rounds = flags.get_int("recovery-rounds", cfg.recovery_rounds);
  cfg.net_width = flags.get_int("width", cfg.net_width);
  cfg.net_depth = flags.get_int("depth", cfg.net_depth);
  cfg.eraser_interval = flags.get_int("eraser-interval", cfg.eraser_interval);
  cfg.quantize = flags.get_string("quantize-updates", cfg.quantize);
  fl::codec_from_string(cfg.quantize);  // validate early: throws on a typo
  return cfg;
}

double World::accuracy(const nn::ModelState& state) {
  nn::load_state(*eval_model, state);
  return metrics::accuracy(*eval_model, fed.test);
}

std::vector<double> World::per_class(const nn::ModelState& state) {
  nn::load_state(*eval_model, state);
  return metrics::per_class_accuracy(*eval_model, fed.test);
}

double World::fset_accuracy(const nn::ModelState& state, const core::UnlearningRequest& request) {
  nn::load_state(*eval_model, state);
  if (request.kind == core::UnlearningRequest::Kind::kClass) {
    return metrics::accuracy_on_classes(*eval_model, fed.test, {request.target});
  }
  return metrics::accuracy(*eval_model,
                           fed.client_train().at(static_cast<std::size_t>(request.target)));
}

double World::rset_accuracy(const nn::ModelState& state, const core::UnlearningRequest& request) {
  nn::load_state(*eval_model, state);
  if (request.kind == core::UnlearningRequest::Kind::kClass) {
    return metrics::accuracy_excluding_classes(*eval_model, fed.test, {request.target});
  }
  double weighted = 0.0;
  std::int64_t total = 0;
  const auto& clients = fed.client_train();
  for (std::size_t i = 0; i < clients.size(); ++i) {
    if (static_cast<int>(i) == request.target || clients[i].empty()) continue;
    weighted += metrics::accuracy(*eval_model, clients[i]) * clients[i].size();
    total += clients[i].size();
  }
  return total == 0 ? 0.0 : weighted / static_cast<double>(total);
}

World build_world(const WorldConfig& config) {
  auto spec = data::spec_by_name(config.dataset);
  auto tt = data::make_synthetic(spec);

  Rng partition_rng(config.seed ^ 0x9A97);
  const auto partition =
      config.iid
          ? data::iid_partition(tt.train, config.clients, partition_rng)
          : data::dirichlet_partition(tt.train, config.clients,
                                      static_cast<float>(config.alpha), partition_rng);
  auto clients = data::materialize(tt.train, partition);

  nn::ConvNetConfig net;
  net.in_channels = static_cast<int>(tt.train.image_shape()[0]);
  net.image_size = static_cast<int>(tt.train.image_shape()[1]);
  net.num_classes = tt.train.num_classes();
  net.width = config.net_width;
  net.depth = config.net_depth;
  net.validate();
  auto model_rng = std::make_shared<Rng>(config.seed ^ 0xDEED);
  fl::ModelFactory factory = [model_rng, net] { return nn::make_convnet(net, *model_rng); };

  baselines::HarnessConfig harness;
  harness.seed = config.seed;
  harness.eraser_interval = config.eraser_interval;
  auto& qd = harness.quickdrop;
  qd.fl_rounds = config.fl_rounds;
  qd.local_steps = config.local_steps;
  qd.batch_size = config.batch_size;
  qd.train_lr = static_cast<float>(config.train_lr);
  qd.participation = static_cast<float>(config.participation);
  qd.scale = config.scale;
  qd.synthetic_init = config.init_noise ? core::SyntheticInit::kGaussianNoise
                                        : core::SyntheticInit::kRealSamples;
  qd.distill.opt_steps = config.distill_steps;
  qd.augment_recovery = config.augment_recovery;
  qd.finetune.outer_steps = config.finetune_steps;
  qd.unlearn_lr = static_cast<float>(config.unlearn_lr);
  qd.recover_lr = static_cast<float>(config.recover_lr);
  qd.unlearn_rounds = config.unlearn_rounds;
  qd.max_unlearn_rounds = config.max_unlearn_rounds;
  qd.recovery_rounds = config.recovery_rounds;
  qd.unlearn_local_steps = config.local_steps;
  qd.unlearn_batch_size = config.unlearn_batch > 0 ? config.unlearn_batch : config.batch_size;
  qd.transport.codec = fl::codec_from_string(config.quantize);

  World world{.config = config,
              .train = tt.train,
              .fed = baselines::train_federation(factory, std::move(clients), std::move(tt.test),
                                                 harness),
              .eval_model = nullptr};
  world.eval_model = world.fed.factory();
  return world;
}

baselines::BaselineConfig baseline_config(const WorldConfig& config) {
  baselines::BaselineConfig cfg;
  cfg.train_lr = static_cast<float>(config.train_lr);
  cfg.unlearn_lr = static_cast<float>(config.unlearn_lr);
  cfg.recover_lr = static_cast<float>(config.recover_lr);
  cfg.local_steps = config.local_steps;
  cfg.batch_size = config.batch_size;
  cfg.participation = static_cast<float>(config.participation);
  cfg.retrain_rounds = config.fl_rounds;
  return cfg;
}

void print_banner(const std::string& title, const WorldConfig& config) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("dataset=%s clients=%d %s rounds=%d local-steps=%d batch=%d scale=%d seed=%llu\n\n",
              config.dataset.c_str(), config.clients,
              config.iid ? "IID" : ("alpha=" + fmt_double(config.alpha, 2)).c_str(),
              config.fl_rounds, config.local_steps, config.batch_size, config.scale,
              static_cast<unsigned long long>(config.seed));
}

}  // namespace quickdrop::bench
