// Shared experiment scaffolding for the bench binaries.
//
// Every table/figure bench builds a World: a synthetic stand-in dataset,
// a Dirichlet (or IID) client partition, and one shared FL training run with
// in-situ distillation + FedEraser history (see baselines/harness.h). CLI
// flags override the scaled-down defaults so larger machines can approach
// paper scale.
#pragma once

#include <memory>
#include <string>

#include "baselines/registry.h"
#include "data/synthetic.h"
#include "metrics/evaluate.h"
#include "util/cli.h"

namespace quickdrop::bench {

/// Scaled-down counterparts of the paper's experimental setup (§4.1).
struct WorldConfig {
  std::string dataset = "cifar10";  ///< "mnist" | "cifar10" | "svhn"
  int clients = 10;
  double alpha = 0.1;  ///< Dirichlet non-IIDness; ignored when iid
  bool iid = false;
  std::uint64_t seed = 42;

  // FL training (paper: K=200, T=50, batch 256, lr 0.01).
  int fl_rounds = 30;
  int local_steps = 5;
  int batch_size = 32;
  double train_lr = 0.05;
  double participation = 1.0;

  // QuickDrop (paper: s=100 on 5000-per-class data; our per-class volumes
  // are 50x smaller, so s=10 yields the same one-to-few synthetic samples
  // per class per client).
  int scale = 10;
  int finetune_steps = 0;
  int distill_steps = 1;        ///< varsigma_S; 0 disables gradient matching
  bool init_noise = false;      ///< initialize synthetic samples from noise
  bool augment_recovery = true;
  double unlearn_lr = 0.05;
  double recover_lr = 0.03;
  int unlearn_batch = 0;  ///< batch for unlearn/recover phases; 0 = batch_size
  int unlearn_rounds = 1;
  int max_unlearn_rounds = 0;  ///< >0 enables verified unlearning (cap)
  int recovery_rounds = 2;

  // Model (paper: width 128, depth 3 on 32x32).
  int net_width = 16;
  int net_depth = 2;

  int eraser_interval = 3;

  /// Client→server update transport for every FL phase: "off" | "int8" |
  /// "bf16" (see fl/quantize.h). Applies to training and to every method's
  /// unlearn/recovery rounds run through this world.
  std::string quantize = "off";

  /// Reads overrides from --dataset, --clients, --alpha, --rounds, ... .
  static WorldConfig from_flags(CliFlags& flags);
};

/// A trained federation plus evaluation helpers.
struct World {
  WorldConfig config;
  data::Dataset train;  ///< full training pool (union of clients)
  baselines::TrainedFederation fed;
  std::unique_ptr<nn::Module> eval_model;

  /// Test-set accuracy of a model state.
  double accuracy(const nn::ModelState& state);
  /// Per-class test accuracy.
  std::vector<double> per_class(const nn::ModelState& state);
  /// F-Set accuracy for a request: class-level -> test accuracy of the
  /// target class; client-level -> accuracy on the client's training data.
  double fset_accuracy(const nn::ModelState& state, const core::UnlearningRequest& request);
  /// R-Set accuracy: the complement (per the paper's metrics, §4.1).
  double rset_accuracy(const nn::ModelState& state, const core::UnlearningRequest& request);
};

/// Builds the dataset, partitions it and runs the shared training phase.
World build_world(const WorldConfig& config);

/// Baseline hyperparameters consistent with the world's training setup.
baselines::BaselineConfig baseline_config(const WorldConfig& config);

/// Prints "=== <title> ===" plus the world's setup line.
void print_banner(const std::string& title, const WorldConfig& config);

}  // namespace quickdrop::bench
