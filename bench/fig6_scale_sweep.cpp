// Reproduces Figure 6: R-Set accuracy after recovery (left) and total
// unlearning + recovery compute time (right) as the scale parameter s varies.
// Each s requires its own in-situ distillation, i.e. a fresh training run.
// The paper sweeps s in 1..1000 on 5000-sample classes; our per-class volumes
// are ~50x smaller, so the equivalent sweep is 1..20 (s=20 already leaves
// most clients with a single synthetic sample per class).
#include <cstdio>

#include "common/world.h"
#include "util/table.h"

namespace qd = quickdrop;

int main(int argc, char** argv) {
  qd::CliFlags flags(argc, argv);
  auto base = qd::bench::WorldConfig::from_flags(flags);
  const int target_class = flags.get_int("class", 9);
  flags.check_unused();

  base.fl_rounds = std::min(base.fl_rounds, 20);  // one training run per scale
  // Batches must cover the whole local synthetic set so that compute time
  // scales with data volume, as in the paper (batch 256 >= |S_f|).
  if (base.unlearn_batch == 0) base.unlearn_batch = 256;
  qd::bench::print_banner("Figure 6: impact of the scale parameter s", base);

  qd::TextTable table;
  table.set_header({"scale s", "synthetic samples", "R-Set after recovery", "unlearn time(s)",
                    "recovery time(s)", "total(s)"});
  const auto request = qd::core::UnlearningRequest::for_class(target_class);

  for (const int s : {1, 5, 10, 50, 100}) {
    auto config = base;
    config.scale = s;
    auto world = qd::bench::build_world(config);
    int synthetic_total = 0;
    for (const auto& store : world.fed.quickdrop->stores()) {
      synthetic_total += store.total_samples();
    }
    qd::core::PhaseStats us, rs;
    const auto out = world.fed.quickdrop->unlearn(world.fed.global, request, &us, &rs);
    table.add_row({std::to_string(s), std::to_string(synthetic_total),
                   qd::fmt_percent(world.rset_accuracy(out, request)),
                   qd::fmt_double(us.seconds, 3), qd::fmt_double(rs.seconds, 3),
                   qd::fmt_double(us.seconds + rs.seconds, 3)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper (Fig. 6): accuracy degrades slowly until s~200 (72.7%% at s=1, 70.5%% at\n"
              "s=100) then falls sharply (54.7%% at s=1000), while unlearn+recovery time drops\n"
              "from ~26 min (s=1) to ~16 s (s=100) to ~1 s (s=1000).\n");
  return 0;
}
