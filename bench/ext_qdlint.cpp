// google-benchmark microbenchmarks of the qdlint driver (DESIGN.md §14):
// cold (empty cache) versus warm (fully primed cache) whole-tree runs at
// 1, 4 and 8 worker threads over a generated synthetic repo, so numbers do
// not drift as the real tree grows. Results land in BENCH_qdlint.json (see
// main below); run_all.sh checks the file exists after the bench sweep.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "driver.h"
#include "util/atomic_file.h"

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------------
// Synthetic repo: kFiles headers spread over three layers with a realistic
// include fan-out and enough token mass per file (~40 lines) that lexing,
// fact extraction and the project stage all do real work. Built once.
// ---------------------------------------------------------------------------

constexpr int kFiles = 120;

const std::string& bench_root() {
  static const std::string root = [] {
    const fs::path r = fs::temp_directory_path() / "qdlint_bench_repo";
    fs::remove_all(r);
    fs::create_directories(r / "tools/qdlint");
    quickdrop::write_file_atomic(
        (r / "tools/qdlint/layers.txt").string(),
        "layer base src/base\nlayer mid src/mid\nlayer app src/app\n");
    const char* layers[] = {"base", "mid", "app"};
    for (int i = 0; i < kFiles; ++i) {
      const std::string layer = layers[(i * 3) / kFiles];
      fs::create_directories(r / "src" / layer);
      std::string body = "#pragma once\n";
      // Downward includes only: app -> mid -> base stays layer-clean.
      if (layer == "mid") body += "#include \"base/f0.h\"\n";
      if (layer == "app") body += "#include \"mid/f" + std::to_string(kFiles / 3) + ".h\"\n";
      body += "namespace bench_ns {\n";
      for (int fn = 0; fn < 6; ++fn) {
        const std::string name = "fn_" + std::to_string(i) + "_" + std::to_string(fn);
        body += "inline int " + name + "(int x) {\n";
        body += "  int acc = x;\n";
        body += "  for (int k = 0; k < 4; ++k) { acc += k * x; }\n";
        body += "  return acc;\n";
        body += "}\n";
      }
      body += "}  // namespace bench_ns\n";
      quickdrop::write_file_atomic(
          (r / "src" / layer / ("f" + std::to_string(i) + ".h")).string(), body);
    }
    return r.string();
  }();
  return root;
}

qdlint::DriverOptions bench_opts(int threads) {
  qdlint::DriverOptions o;
  o.root = bench_root();
  o.cache_path = bench_root() + "/build/qdlint.cache";
  o.threads = threads;
  return o;
}

void BM_LintCold(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    std::remove(bench_opts(threads).cache_path.c_str());
    state.ResumeTiming();
    const qdlint::DriverResult r = qdlint::run_driver(bench_opts(threads));
    if (!r.ok || r.cache_hits != 0) state.SkipWithError("cold run not cold/ok");
    benchmark::DoNotOptimize(r.findings.size());
  }
  state.SetItemsProcessed(state.iterations() * kFiles);
}
BENCHMARK(BM_LintCold)->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_LintWarm(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  std::remove(bench_opts(threads).cache_path.c_str());
  const qdlint::DriverResult prime = qdlint::run_driver(bench_opts(threads));
  if (!prime.ok) state.SkipWithError("prime run failed");
  for (auto _ : state) {
    const qdlint::DriverResult r = qdlint::run_driver(bench_opts(threads));
    if (!r.ok || r.cache_hits != r.files_scanned) state.SkipWithError("warm run not cached");
    benchmark::DoNotOptimize(r.findings.size());
  }
  state.SetItemsProcessed(state.iterations() * kFiles);
}
BENCHMARK(BM_LintWarm)->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

// Writes BENCH_qdlint.json in the working directory unless the caller already
// passed an explicit --benchmark_out.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    has_out |= std::strncmp(argv[i], "--benchmark_out", 15) == 0;
  }
  static char out_flag[] = "--benchmark_out=BENCH_qdlint.json";
  static char fmt_flag[] = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag);
    args.push_back(fmt_flag);
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  fs::remove_all(bench_root());
  return 0;
}
