// Reproduces Table 5: unlearn + recover followed by relearning the erased
// class, on the CIFAR-10 and MNIST stand-ins with 20 clients (alpha=0.1).
// QuickDrop relearns from its synthetic data; the baselines relearn with the
// original forget data; FU-MP cannot relearn at all.
#include <cstdio>

#include "common/world.h"
#include "util/table.h"

namespace qd = quickdrop;

namespace {

void run_dataset(qd::bench::WorldConfig config, const std::string& dataset, int target_class,
                 qd::TextTable& table) {
  config.dataset = dataset;
  auto world = qd::bench::build_world(config);
  const auto request = qd::core::UnlearningRequest::for_class(target_class);
  const auto baseline_cfg = qd::bench::baseline_config(config);
  for (const auto& name : {"Retrain-Or", "FedEraser", "SGA-Or", "FU-MP", "QuickDrop"}) {
    auto method = qd::baselines::make_method(name, baseline_cfg);
    const auto out = method->unlearn(world.fed, request);
    std::string relearn_f = "-", relearn_r = "-", relearn_time = "-";
    if (method->supports_relearning()) {
      qd::baselines::StageReport report;
      const auto relearned = method->relearn(world.fed, out.state, request, &report);
      relearn_f = qd::fmt_percent(world.fset_accuracy(relearned, request));
      relearn_r = qd::fmt_percent(world.rset_accuracy(relearned, request));
      relearn_time = qd::fmt_double(report.seconds, 2);
    }
    table.add_row({dataset, name, qd::fmt_percent(world.fset_accuracy(out.state, request)),
                   qd::fmt_percent(world.rset_accuracy(out.state, request)), relearn_f,
                   relearn_r, relearn_time});
  }
}

}  // namespace

int main(int argc, char** argv) {
  qd::CliFlags flags(argc, argv);
  auto config = qd::bench::WorldConfig::from_flags(flags);
  const int target_class = flags.get_int("class", 9);
  flags.check_unused();

  qd::bench::WorldConfig defaults;
  if (config.clients == defaults.clients) config.clients = 20;

  qd::bench::print_banner("Table 5: unlearning + relearning", config);
  qd::TextTable table;
  table.set_header({"Dataset", "FU approach", "U+R F-Set", "U+R R-Set", "Relearn F-Set",
                    "Relearn R-Set", "Relearn time(s)"});
  run_dataset(config, "cifar10", target_class, table);
  run_dataset(config, "mnist", target_class, table);
  std::printf("%s\n", table.render().c_str());
  std::printf("paper (Table 5): all methods forget (F-Set ~0.2-0.7%%) and all but FU-MP relearn\n"
              "(F-Set back to 70-97%%). QuickDrop relearns from synthetic data, 66.7x faster\n"
              "than Retrain-Or and 47.3x faster than SGA-Or on MNIST.\n");
  return 0;
}
