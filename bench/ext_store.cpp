// google-benchmark microbenchmarks of the crash-safe state store
// (DESIGN.md §12): commit throughput for fresh and deduplicated payloads,
// read-back, recovery-on-open latency as the file grows, vacuum, and
// store-backed versus legacy-blob checkpoint saves. Results land in
// BENCH_store.json (see main below); run_all.sh checks the file exists after
// the bench sweep.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "data/synthetic.h"
#include "nn/convnet.h"
#include "store/store.h"
#include "util/atomic_file.h"
#include "util/rng.h"

namespace qd = quickdrop;
namespace store = quickdrop::store;

namespace {

std::string bench_path(const char* name) {
  const std::string path = std::string("BENCH_store_scratch_") + name + ".qds";
  std::remove(path.c_str());
  std::remove((path + ".vacuum").c_str());
  return path;
}

std::vector<std::uint8_t> payload(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> out(n);
  qd::Rng rng(seed);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return out;
}

// ---------------------------------------------------------------------------
// Commit path: fresh payloads (every page written) vs unchanged payloads
// (every data page dedups; only index + commit pages hit the disk).
// ---------------------------------------------------------------------------

void BM_CommitFresh(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const auto path = bench_path("commit_fresh");
  store::Store s(path);
  std::uint64_t round = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const auto value = payload(bytes, round + 1);  // new bytes every round
    state.ResumeTiming();
    s.put({1, 1, round}, value);
    s.commit();
    ++round;
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(bytes));
  std::remove(path.c_str());
}
BENCHMARK(BM_CommitFresh)->Arg(4 << 10)->Arg(256 << 10)->Arg(1 << 20);

void BM_CommitDeduped(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const auto path = bench_path("commit_dedup");
  store::Store s(path);
  const auto value = payload(bytes, 7);  // identical bytes every round
  std::uint64_t round = 0;
  for (auto _ : state) {
    s.put({1, 1, round}, value);
    s.commit();
    ++round;
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(bytes));
  std::remove(path.c_str());
}
BENCHMARK(BM_CommitDeduped)->Arg(256 << 10)->Arg(1 << 20);

// ---------------------------------------------------------------------------
// Read-back of a committed record (pages + CRC verification per page and for
// the whole value).
// ---------------------------------------------------------------------------

void BM_Get(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const auto path = bench_path("get");
  store::Store s(path);
  s.put({1, 1, 0}, payload(bytes, 11));
  s.commit();
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.get({1, 1, 0}));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(bytes));
  std::remove(path.c_str());
}
BENCHMARK(BM_Get)->Arg(4 << 10)->Arg(1 << 20);

// ---------------------------------------------------------------------------
// Recovery-on-open: backward scan + full verification of the youngest valid
// commit, as a function of accumulated history.
// ---------------------------------------------------------------------------

void BM_RecoveryOpen(benchmark::State& state) {
  const auto commits = static_cast<std::uint64_t>(state.range(0));
  const auto path = bench_path("recover");
  {
    store::Store s(path);
    for (std::uint64_t round = 0; round < commits; ++round) {
      s.put({1, 1, round % 4}, payload(64 << 10, round));
      s.commit();
    }
  }
  for (auto _ : state) {
    store::Store reopened(path);
    benchmark::DoNotOptimize(reopened.committed_seq());
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_RecoveryOpen)->Arg(4)->Arg(32);

void BM_Vacuum(benchmark::State& state) {
  const auto path = bench_path("vacuum");
  for (auto _ : state) {
    state.PauseTiming();
    std::remove(path.c_str());
    store::Store s(path);
    // 12 generations of one key: 11 of them dead weight for vacuum to drop.
    for (std::uint64_t gen = 0; gen < 12; ++gen) {
      s.put({1, 1, 0}, payload(128 << 10, gen));
      s.commit();
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(s.vacuum());
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_Vacuum);

// ---------------------------------------------------------------------------
// Checkpoint persistence: store-backed save (transactional, dedups unchanged
// rounds) vs the legacy atomic single-blob write, on a small deployment.
// ---------------------------------------------------------------------------

qd::core::Checkpoint make_deployment() {
  qd::data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.channels = 1;
  spec.image_size = 16;
  spec.train_per_class = 64;
  spec.test_per_class = 2;
  spec.seed = 21;
  const auto tt = qd::data::make_synthetic(spec);
  qd::Rng rng(3);
  std::vector<qd::core::SyntheticStore> stores;
  stores.emplace_back(tt.train, 5, rng);
  stores.emplace_back(tt.train, 5, rng);
  qd::nn::ConvNetConfig cfg;
  cfg.in_channels = 1;
  cfg.image_size = 16;
  cfg.width = 16;
  cfg.depth = 2;
  cfg.num_classes = 4;
  qd::Rng mrng(5);
  auto model = qd::nn::make_convnet(cfg, mrng);
  return qd::core::make_checkpoint(qd::nn::state_of(*model), stores);
}

void BM_CheckpointSaveStore(benchmark::State& state) {
  const auto cp = make_deployment();
  const auto path = bench_path("cp_store");
  store::Store s(path);
  std::uint64_t round = 0;
  for (auto _ : state) {
    qd::core::save_checkpoint(cp, s, round++);
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_CheckpointSaveStore);

void BM_CheckpointSaveBlob(benchmark::State& state) {
  const auto cp = make_deployment();
  const std::string path = "BENCH_store_scratch_cp.qdcp";
  for (auto _ : state) {
    qd::core::save_checkpoint(cp, path);
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_CheckpointSaveBlob);

}  // namespace

// Writes BENCH_store.json in the working directory unless the caller already
// passed --benchmark_out.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    has_out |= std::strncmp(argv[i], "--benchmark_out", 15) == 0;
  }
  static char out_flag[] = "--benchmark_out=BENCH_store.json";
  static char fmt_flag[] = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag);
    args.push_back(fmt_flag);
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
