// Reproduces Figure 4: sequential unlearning of every class in the paper's
// random order [5,8,0,3,2,4,7,9,1,6]. After each request the target class
// accuracy must fall to ~0 and stay there while the remaining classes are
// restored by recovery.
//
// The request loop runs through the serve/ stack's FIFO path: each class
// becomes a ServiceRequest on a widely spaced trace (arrivals far apart, so
// every scheduler policy degenerates to one request per cycle) and the
// UnlearningService drives QuickDrop — the same machinery the request
// service bench stresses under load (see ext_request_service.cpp).
#include <cstdio>
#include <vector>

#include "common/world.h"
#include "serve/service.h"
#include "util/table.h"

namespace qd = quickdrop;

int main(int argc, char** argv) {
  qd::CliFlags flags(argc, argv);
  auto config = qd::bench::WorldConfig::from_flags(flags);
  const int max_requests = flags.get_int("requests", 10);
  flags.check_unused();

  // Late requests (when almost no retain data remains) need more SGA rounds:
  // use verified unlearning with a small cap unless overridden.
  if (config.max_unlearn_rounds == 0) config.max_unlearn_rounds = 6;

  qd::bench::print_banner("Figure 4: sequential class unlearning requests", config);
  auto world = qd::bench::build_world(config);
  const int num_classes = world.fed.test.num_classes();
  const std::vector<int> order = {5, 8, 0, 3, 2, 4, 7, 9, 1, 6};

  // One request per class, spaced far enough apart that every cycle finishes
  // before the next arrival — the FIFO service then replays the paper's
  // strictly sequential history.
  std::vector<qd::serve::ServiceRequest> trace;
  for (int i = 0; i < max_requests && i < static_cast<int>(order.size()); ++i) {
    const int target = order[static_cast<std::size_t>(i)];
    if (target >= num_classes) continue;
    qd::serve::ServiceRequest request;
    request.kind = qd::serve::RequestKind::kClass;
    request.target = target;
    request.arrival_seconds = 1.0e7 * static_cast<double>(i + 1);
    trace.push_back(request);
  }

  qd::TextTable table;
  std::vector<std::string> header = {"after request", "time(s)"};
  for (int c = 0; c < num_classes; ++c) header.push_back("c" + std::to_string(c));
  table.set_header(header);

  auto add_row = [&](const std::string& label, double seconds, const qd::nn::ModelState& state) {
    const auto pc = world.per_class(state);
    std::vector<std::string> row = {label, qd::fmt_double(seconds, 2)};
    for (const double a : pc) row.push_back(qd::fmt_percent(a, 1));
    table.add_row(std::move(row));
  };
  add_row("(trained)", 0.0, world.fed.global);

  // Snapshot per-class accuracy after every cycle via the service evaluator
  // (each widely spaced request is its own cycle under FIFO).
  qd::serve::ServiceConfig service_config;
  service_config.policy = qd::serve::SchedulerPolicy::kFifo;
  service_config.evaluator = [&](const qd::serve::ServiceRequest& request,
                                 const qd::nn::ModelState& state,
                                 qd::serve::RequestMetrics& metrics) {
    add_row("unlearn c" + std::to_string(request.target), metrics.latency(), state);
  };
  qd::serve::UnlearningService service(world.fed.quickdrop, world.fed.global, service_config);
  const auto report = service.run(trace);

  std::printf("%s\n", table.render().c_str());

  // Invariant check: every forgotten class stays low after later requests.
  const auto pc = world.per_class(service.state());
  bool all_low = true;
  for (std::size_t i = 0; i + 1 < report.completed.size(); ++i) {
    const auto target = static_cast<std::size_t>(report.completed[i].target);
    all_low = all_low && pc[target] < 0.2;
  }
  std::printf("previously unlearned classes remain unlearned: %s\n", all_low ? "yes" : "NO");
  std::printf("served %zu requests in %d FIFO cycles (%d FL rounds)\n", report.completed.size(),
              report.cycles, report.total_fl_rounds);
  std::printf("paper (Fig. 4): each unlearning stage zeroes the target class; recovery restores\n"
              "the remaining classes while leaving earlier-unlearned classes at ~0%%.\n");
  return 0;
}
