// Reproduces Table 4: client-level unlearning on the CIFAR-10 stand-in with
// 20 clients, under non-IID (alpha=0.1) and IID partitions. FU-MP cannot
// perform client-level unlearning and is excluded, matching the paper.
#include <cstdio>

#include "common/world.h"
#include "util/table.h"

namespace qd = quickdrop;

namespace {

void run_distribution(qd::bench::WorldConfig config, bool iid, int target_client,
                      qd::TextTable& table) {
  config.iid = iid;
  auto world = qd::bench::build_world(config);
  const auto request = qd::core::UnlearningRequest::for_client(target_client);
  const auto baseline_cfg = qd::bench::baseline_config(config);
  for (const auto& name : {"Retrain-Or", "FedEraser", "S2U", "SGA-Or", "QuickDrop"}) {
    auto method = qd::baselines::make_method(name, baseline_cfg);
    const auto out = method->unlearn(world.fed, request);
    table.add_row({iid ? "IID" : "non-IID", name,
                   qd::fmt_percent(world.fset_accuracy(out.state, request)),
                   qd::fmt_percent(world.rset_accuracy(out.state, request)),
                   qd::fmt_double(out.unlearn.seconds + out.recovery.seconds, 2)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  qd::CliFlags flags(argc, argv);
  auto config = qd::bench::WorldConfig::from_flags(flags);
  const int target_client = flags.get_int("client", 3);
  flags.check_unused();

  qd::bench::WorldConfig defaults;
  if (config.clients == defaults.clients) config.clients = 20;
  // Client-level erasure needs a gentler ascent + an extra recovery round:
  // the F-Set here is the client's own samples, which recovery must be able
  // to partially restore through shared features (paper Table 4's regime).
  if (config.unlearn_lr == defaults.unlearn_lr) config.unlearn_lr = 0.035;
  if (config.recovery_rounds == defaults.recovery_rounds) config.recovery_rounds = 3;

  qd::bench::print_banner("Table 4: client-level unlearning, non-IID vs IID", config);
  qd::TextTable table;
  table.set_header({"Distribution", "FU approach", "F-Set", "R-Set", "Time(s)"});
  run_distribution(config, /*iid=*/false, target_client, table);
  run_distribution(config, /*iid=*/true, target_client, table);
  std::printf("%s\n", table.render().c_str());
  std::printf("paper (Table 4): non-IID F-Set accuracies stay low but above class-level\n"
              "(9.6-19.7%%; features survive via other clients), QuickDrop 11.6%% vs oracle\n"
              "10.5%%. Under IID the F-Set stays high for every method (65.3-70.8%%) because\n"
              "the forgotten client's knowledge is shared by everyone.\n");
  return 0;
}
