// google-benchmark microbenchmarks of the substrate: tensor kernels, autograd
// forward/backward, one distillation matching step and one SGA round — the
// unit costs behind every table. The *Threads benchmarks sweep the global
// pool size (1/2/4/hardware) for the parallelized kernels; results land in
// BENCH_micro_ops.json (see main below) for machine consumption.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/distillation.h"
#include "data/synthetic.h"
#include "fl/client_update.h"
#include "nn/convnet.h"
#include "tensor/kernels.h"
#include "tensor/simd.h"
#include "util/thread_pool.h"

namespace qd = quickdrop;
namespace k = quickdrop::kernels;

namespace {

// Thread counts to sweep: 1/2/4 plus the hardware default, deduplicated.
std::vector<std::int64_t> thread_sweep() {
  std::vector<std::int64_t> counts{1, 2, 4};
  const auto hw = static_cast<std::int64_t>(std::max(1u, std::thread::hardware_concurrency()));
  if (std::find(counts.begin(), counts.end(), hw) == counts.end()) counts.push_back(hw);
  return counts;
}

void thread_args(benchmark::internal::Benchmark* b) {
  for (const auto t : thread_sweep()) b->Arg(t);
}

// Pins the pool to `threads` for one benchmark run, restoring on scope exit
// so the sweep order can't leak into other benchmarks.
struct PoolScope {
  int saved = qd::num_threads();
  explicit PoolScope(std::int64_t threads) { qd::set_num_threads(static_cast<int>(threads)); }
  ~PoolScope() { qd::set_num_threads(saved); }
};

void BM_MatMul(benchmark::State& state) {
  const auto n = state.range(0);
  qd::Rng rng(1);
  const auto a = qd::Tensor::randn({n, n}, rng);
  const auto b = qd::Tensor::randn({n, n}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(k::matmul(a, b));
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_Im2Col(benchmark::State& state) {
  qd::Rng rng(1);
  const auto x = qd::Tensor::randn({8, 16, 12, 12}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(k::im2col(x, 3, 1, 1));
}
BENCHMARK(BM_Im2Col);

void BM_BroadcastAdd(benchmark::State& state) {
  qd::Rng rng(1);
  const auto a = qd::Tensor::randn({64, 16, 12, 12}, rng);
  const auto b = qd::Tensor::randn({1, 16, 1, 1}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(k::add(a, b));
}
BENCHMARK(BM_BroadcastAdd);

qd::nn::ConvNetConfig bench_net() {
  qd::nn::ConvNetConfig cfg;
  cfg.in_channels = 3;
  cfg.image_size = 12;
  cfg.width = 16;
  cfg.depth = 2;
  return cfg;
}

void BM_ConvNetForward(benchmark::State& state) {
  qd::Rng rng(1);
  auto net = qd::nn::make_convnet(bench_net(), rng);
  const auto x = qd::Tensor::randn({32, 3, 12, 12}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(net->forward_tensor(x).value());
}
BENCHMARK(BM_ConvNetForward);

void BM_SgdStep(benchmark::State& state) {
  qd::Rng rng(1);
  auto net = qd::nn::make_convnet(bench_net(), rng);
  const auto x = qd::Tensor::randn({32, 3, 12, 12}, rng);
  std::vector<int> labels(32);
  for (int i = 0; i < 32; ++i) labels[static_cast<std::size_t>(i)] = i % 10;
  qd::fl::CostMeter cost;
  for (auto _ : state) {
    qd::fl::sgd_step_on_batch(*net, x, labels, 0.01f, qd::nn::UpdateDirection::kDescent, cost);
  }
}
BENCHMARK(BM_SgdStep);

void BM_DistillMatchStep(benchmark::State& state) {
  // One gradient-matching pixel update: the double-backprop inner loop of
  // Algorithm 2 — the dominant cost of QuickDrop's training-time overhead.
  qd::Rng rng(1);
  auto net = qd::nn::make_convnet(bench_net(), rng);
  const auto x = qd::Tensor::randn({16, 3, 12, 12}, rng);
  std::vector<int> labels(16, 3);
  const auto params = net->parameters();
  const auto loss = qd::ag::cross_entropy(net->forward_tensor(x), labels);
  const auto grads = qd::ag::grad(loss, std::span<const qd::ag::Var>(params));
  std::vector<qd::Tensor> grad_real;
  for (const auto& g : grads) grad_real.push_back(g.value());

  qd::Tensor synthetic = qd::Tensor::randn({2, 3, 12, 12}, rng);
  qd::core::DistillConfig cfg;
  qd::fl::CostMeter cost;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        qd::core::match_synthetic_to_gradient(*net, synthetic, 3, grad_real, cfg, cost));
  }
}
BENCHMARK(BM_DistillMatchStep);

// --- Thread sweeps of the parallelized kernels (acceptance: matmul >= 3x at
// --- 4 threads for n >= 256 on a multicore host).

void BM_MatMulThreads(benchmark::State& state) {
  const PoolScope pool(state.range(1));
  const auto n = state.range(0);
  qd::Rng rng(1);
  const auto a = qd::Tensor::randn({n, n}, rng);
  const auto b = qd::Tensor::randn({n, n}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(k::matmul(a, b));
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulThreads)
    ->ArgNames({"n", "threads"})
    ->Apply([](benchmark::internal::Benchmark* b) {
      for (const std::int64_t n : {256, 384}) {
        for (const auto t : thread_sweep()) b->Args({n, t});
      }
    });

void BM_Im2ColThreads(benchmark::State& state) {
  const PoolScope pool(state.range(0));
  qd::Rng rng(1);
  const auto x = qd::Tensor::randn({32, 16, 24, 24}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(k::im2col(x, 3, 1, 1));
}
BENCHMARK(BM_Im2ColThreads)->ArgNames({"threads"})->Apply(thread_args);

void BM_ConvForwardBackwardThreads(benchmark::State& state) {
  // One full conv-net forward + backward (the per-sample-gradient unit cost):
  // exercises matmul, im2col, col2im and reduce_sum_to together.
  const PoolScope pool(state.range(0));
  qd::Rng rng(1);
  auto net = qd::nn::make_convnet(bench_net(), rng);
  const auto x = qd::Tensor::randn({32, 3, 12, 12}, rng);
  std::vector<int> labels(32);
  for (int i = 0; i < 32; ++i) labels[static_cast<std::size_t>(i)] = i % 10;
  const auto params = net->parameters();
  for (auto _ : state) {
    const auto loss = qd::ag::cross_entropy(net->forward_tensor(x), labels);
    benchmark::DoNotOptimize(qd::ag::grad(loss, std::span<const qd::ag::Var>(params)));
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_ConvForwardBackwardThreads)->ArgNames({"threads"})->Apply(thread_args);

// --- Scalar vs SIMD microkernel dispatch (tensor/simd.h) on the blocked
// --- matmul, 1 thread: the same fixed-block partitioning runs with either
// --- table, so this isolates the AVX2 tile speedup.

struct DispatchScope {
  explicit DispatchScope(qd::simd::Dispatch d) { qd::simd::force_dispatch(d); }
  ~DispatchScope() { qd::simd::force_dispatch(qd::simd::Dispatch::kAuto); }
};

void BM_MatMulDispatch(benchmark::State& state) {
  const PoolScope pool(1);
  const DispatchScope dispatch(state.range(1) == 0 ? qd::simd::Dispatch::kScalar
                                                   : qd::simd::Dispatch::kAvx2);
  const auto n = state.range(0);
  qd::Rng rng(1);
  const auto a = qd::Tensor::randn({n, n}, rng);
  const auto b = qd::Tensor::randn({n, n}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(k::matmul(a, b));
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulDispatch)
    ->ArgNames({"n", "simd"})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({256, 0})
    ->Args({256, 1});

void BM_SgaUnlearnStep(benchmark::State& state) {
  // One SGA ascent step on a QuickDrop-sized synthetic forget batch.
  qd::Rng rng(1);
  auto net = qd::nn::make_convnet(bench_net(), rng);
  const auto x = qd::Tensor::randn({10, 3, 12, 12}, rng);
  std::vector<int> labels(10, 9);
  qd::fl::CostMeter cost;
  for (auto _ : state) {
    qd::fl::sgd_step_on_batch(*net, x, labels, 0.02f, qd::nn::UpdateDirection::kAscent, cost);
  }
}
BENCHMARK(BM_SgaUnlearnStep);

}  // namespace

// BENCHMARK_MAIN, plus a default machine-readable report: unless the caller
// already passed --benchmark_out, results are written to
// BENCH_micro_ops.json in the working directory.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    has_out |= std::strncmp(argv[i], "--benchmark_out", 15) == 0;
  }
  static char out_flag[] = "--benchmark_out=BENCH_micro_ops.json";
  static char fmt_flag[] = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag);
    args.push_back(fmt_flag);
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
