// google-benchmark microbenchmarks of the substrate: tensor kernels, autograd
// forward/backward, one distillation matching step and one SGA round — the
// unit costs behind every table.
#include <benchmark/benchmark.h>

#include "core/distillation.h"
#include "data/synthetic.h"
#include "fl/client_update.h"
#include "nn/convnet.h"
#include "tensor/kernels.h"

namespace qd = quickdrop;
namespace k = quickdrop::kernels;

namespace {

void BM_MatMul(benchmark::State& state) {
  const auto n = state.range(0);
  qd::Rng rng(1);
  const auto a = qd::Tensor::randn({n, n}, rng);
  const auto b = qd::Tensor::randn({n, n}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(k::matmul(a, b));
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_Im2Col(benchmark::State& state) {
  qd::Rng rng(1);
  const auto x = qd::Tensor::randn({8, 16, 12, 12}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(k::im2col(x, 3, 1, 1));
}
BENCHMARK(BM_Im2Col);

void BM_BroadcastAdd(benchmark::State& state) {
  qd::Rng rng(1);
  const auto a = qd::Tensor::randn({64, 16, 12, 12}, rng);
  const auto b = qd::Tensor::randn({1, 16, 1, 1}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(k::add(a, b));
}
BENCHMARK(BM_BroadcastAdd);

qd::nn::ConvNetConfig bench_net() {
  qd::nn::ConvNetConfig cfg;
  cfg.in_channels = 3;
  cfg.image_size = 12;
  cfg.width = 16;
  cfg.depth = 2;
  return cfg;
}

void BM_ConvNetForward(benchmark::State& state) {
  qd::Rng rng(1);
  auto net = qd::nn::make_convnet(bench_net(), rng);
  const auto x = qd::Tensor::randn({32, 3, 12, 12}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(net->forward_tensor(x).value());
}
BENCHMARK(BM_ConvNetForward);

void BM_SgdStep(benchmark::State& state) {
  qd::Rng rng(1);
  auto net = qd::nn::make_convnet(bench_net(), rng);
  const auto x = qd::Tensor::randn({32, 3, 12, 12}, rng);
  std::vector<int> labels(32);
  for (int i = 0; i < 32; ++i) labels[static_cast<std::size_t>(i)] = i % 10;
  qd::fl::CostMeter cost;
  for (auto _ : state) {
    qd::fl::sgd_step_on_batch(*net, x, labels, 0.01f, qd::nn::UpdateDirection::kDescent, cost);
  }
}
BENCHMARK(BM_SgdStep);

void BM_DistillMatchStep(benchmark::State& state) {
  // One gradient-matching pixel update: the double-backprop inner loop of
  // Algorithm 2 — the dominant cost of QuickDrop's training-time overhead.
  qd::Rng rng(1);
  auto net = qd::nn::make_convnet(bench_net(), rng);
  const auto x = qd::Tensor::randn({16, 3, 12, 12}, rng);
  std::vector<int> labels(16, 3);
  const auto params = net->parameters();
  const auto loss = qd::ag::cross_entropy(net->forward_tensor(x), labels);
  const auto grads = qd::ag::grad(loss, std::span<const qd::ag::Var>(params));
  std::vector<qd::Tensor> grad_real;
  for (const auto& g : grads) grad_real.push_back(g.value());

  qd::Tensor synthetic = qd::Tensor::randn({2, 3, 12, 12}, rng);
  qd::core::DistillConfig cfg;
  qd::fl::CostMeter cost;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        qd::core::match_synthetic_to_gradient(*net, synthetic, 3, grad_real, cfg, cost));
  }
}
BENCHMARK(BM_DistillMatchStep);

void BM_SgaUnlearnStep(benchmark::State& state) {
  // One SGA ascent step on a QuickDrop-sized synthetic forget batch.
  qd::Rng rng(1);
  auto net = qd::nn::make_convnet(bench_net(), rng);
  const auto x = qd::Tensor::randn({10, 3, 12, 12}, rng);
  std::vector<int> labels(10, 9);
  qd::fl::CostMeter cost;
  for (auto _ : state) {
    qd::fl::sgd_step_on_batch(*net, x, labels, 0.02f, qd::nn::UpdateDirection::kAscent, cost);
  }
}
BENCHMARK(BM_SgaUnlearnStep);

}  // namespace

BENCHMARK_MAIN();
