// Extension experiment: streaming sharded aggregation at scale.
//
// Drives synthetic client updates straight through fl::ShardTree — no
// federation world, no training — to measure the server-side merge alone:
//
//   1. Scale sweep: cohorts of 1k / 10k / 100k simulated clients (up to 1M
//      with --max-clients) folded through one round per cohort size, at
//      1 / 8 / 64 shards. Reported per round: wall-clock, folds/s, and the
//      server's peak aggregation memory (tree accumulator + scratch + the
//      single in-flight update). The buffered-engine equivalent —
//      cohort × state_bytes, what nn::weighted_average would have to hold —
//      is computed arithmetically for contrast: at 1M clients it would be
//      terabytes, which is exactly why it is not allocated here.
//   2. Invariance verdict: the same 1k-client cohort merged at shards
//      {1, 8, 64} must produce bitwise-identical roots (the DESIGN.md §16
//      contract); the process exits nonzero otherwise so CI can gate on it.
//
// BENCH_scale_shard.json records the deterministic facts (cohort sizes,
// memory curves, the invariance verdict) plus wall-clock columns, which vary
// run to run and are for plotting only.
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "fl/shard_tree.h"
#include "nn/state.h"
#include "util/atomic_file.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace qd = quickdrop;

namespace {

/// Mutates a handful of entries so every simulated client uploads a distinct
/// update without paying a full regeneration per client.
void perturb(qd::nn::ModelState& state, std::uint64_t client) {
  auto d = state.data();
  const auto n = static_cast<std::uint64_t>(d.size());
  for (int k = 0; k < 8; ++k) {
    std::uint64_t h = client * 0x9E3779B97F4A7C15ULL + static_cast<std::uint64_t>(k);
    h ^= h >> 31;
    d[static_cast<std::size_t>(h % n)] =
        0.001f * static_cast<float>(static_cast<std::int64_t>(h % 4001) - 2000);
  }
}

struct RoundResult {
  qd::nn::ModelState root;
  double seconds = 0.0;
  std::int64_t streaming_bytes = 0;
};

/// One full round: `cohort` clients fold into a fresh tree, then the root
/// merge. The single scratch update models the one in-flight decoded state a
/// streaming server holds at a time.
RoundResult run_round(const std::shared_ptr<const qd::nn::StateLayout>& layout,
                      std::int64_t cohort, int shards, int fanout) {
  qd::fl::ShardTree tree(layout, {.shards = shards, .fanout = fanout});
  qd::nn::ModelState update{layout};
  auto d = update.data();
  for (std::size_t i = 0; i < d.size(); ++i) {
    d[i] = 0.001f * static_cast<float>(static_cast<std::int64_t>((i * 2654435761ULL) % 2003) -
                                       1001);
  }
  const auto start = std::chrono::steady_clock::now();
  double total_weight = 0.0;
  for (std::int64_t c = 0; c < cohort; ++c) {
    perturb(update, static_cast<std::uint64_t>(c));
    const double w = static_cast<double>(1 + c % 17);
    tree.fold(static_cast<int>(c), update, w);
    total_weight += w;
  }
  RoundResult r;
  r.streaming_bytes = tree.memory_bytes() + qd::nn::state_bytes(update);
  r.root = tree.finalize(1.0 / total_weight);
  r.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return r;
}

bool bitwise_equal(const qd::nn::ModelState& a, const qd::nn::ModelState& b) {
  if (a.numel() != b.numel()) return false;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    if (std::bit_cast<std::uint32_t>(a.at(i)) != std::bit_cast<std::uint32_t>(b.at(i))) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  qd::CliFlags flags(argc, argv);
  const std::int64_t params = flags.get_int("params", 1 << 14);
  const std::int64_t max_clients = flags.get_int("max-clients", 100000);
  const int fanout = flags.get_int("shard-fanout", 8);
  const auto out_path = flags.get_string("out", "BENCH_scale_shard.json");
  const int threads = flags.get_int("threads", 0);
  if (threads > 0) qd::set_num_threads(threads);
  flags.check_unused();

  const auto layout = qd::nn::StateLayout::of_shapes({qd::Shape{params}});
  const std::int64_t state_bytes =
      static_cast<std::int64_t>(params) * static_cast<std::int64_t>(sizeof(float));
  std::printf("streaming sharded aggregation: %lld params (%lld KiB/state), fanout %d, "
              "%d thread(s)\n",
              static_cast<long long>(params), static_cast<long long>(state_bytes >> 10), fanout,
              qd::num_threads());

  // Invariance verdict first: same cohort, three topologies, one root.
  const auto r1 = run_round(layout, 1000, 1, fanout);
  const auto r8 = run_round(layout, 1000, 8, fanout);
  const auto r64 = run_round(layout, 1000, 64, fanout);
  const bool invariant = bitwise_equal(r1.root, r8.root) && bitwise_equal(r1.root, r64.root);
  std::printf("shard-count invariance (1k clients @ 1/8/64 shards): %s\n",
              invariant ? "bitwise identical" : "DIVERGED");

  std::vector<std::int64_t> cohorts;
  for (std::int64_t c = 10000; c <= max_clients; c *= 10) cohorts.push_back(c);

  qd::TextTable table;
  table.set_header({"clients", "shards", "levels", "wall(s)", "folds/s", "stream peak(B)",
                    "buffered(B)", "ratio"});
  std::ostringstream rows;
  for (const std::int64_t cohort : cohorts) {
    for (const int shards : {1, 8, 64}) {
      const qd::fl::ShardTree topo(layout, {.shards = shards, .fanout = fanout});
      const auto r = run_round(layout, cohort, shards, fanout);
      // What the materialize-everything engine would hold at the merge.
      const std::int64_t buffered_bytes = cohort * state_bytes;
      table.add_row({std::to_string(cohort), std::to_string(shards),
                     std::to_string(topo.levels()), qd::fmt_double(r.seconds, 3),
                     qd::fmt_double(static_cast<double>(cohort) / r.seconds, 0),
                     std::to_string(r.streaming_bytes), std::to_string(buffered_bytes),
                     qd::fmt_double(static_cast<double>(buffered_bytes) /
                                        static_cast<double>(r.streaming_bytes),
                                    1)});
      rows << (rows.tellp() > 0 ? ",\n" : "") << "  {\"clients\": " << cohort
           << ", \"shards\": " << shards << ", \"levels\": " << topo.levels()
           << ", \"wall_seconds\": " << qd::fmt_double(r.seconds, 6)
           << ", \"streaming_peak_bytes\": " << r.streaming_bytes
           << ", \"buffered_bytes\": " << buffered_bytes << "}";
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("streaming peak memory is O(params): it does not grow with the cohort, while\n"
              "the buffered column grows linearly (the old engine's weighted_average input).\n");

  std::ostringstream json;
  json << "{\n\"params\": " << params << ",\n\"state_bytes\": " << state_bytes
       << ",\n\"fanout\": " << fanout << ",\n\"shard_invariance_bitwise\": "
       << (invariant ? "true" : "false") << ",\n\"rounds\": [\n"
       << rows.str() << "\n]\n}\n";
  qd::write_file_atomic(out_path, json.str());
  std::printf("results written to %s\n", out_path.c_str());
  return invariant ? 0 : 1;
}
