// Reproduces Table 6: the compute overhead of in-situ dataset distillation
// during FL training for all three datasets — total training time, the part
// spent on DD and the overhead percentage.
#include <cstdio>

#include "common/world.h"
#include "util/table.h"

namespace qd = quickdrop;

int main(int argc, char** argv) {
  qd::CliFlags flags(argc, argv);
  auto config = qd::bench::WorldConfig::from_flags(flags);
  flags.check_unused();

  qd::bench::print_banner("Table 6: DD compute overhead during FL training", config);
  qd::TextTable table;
  table.set_header({"Dataset", "Total compute time (s)", "DD compute time (s)", "Overhead",
                    "train grads", "DD grads"});
  for (const auto& dataset : {"mnist", "cifar10", "svhn"}) {
    auto cfg = config;
    cfg.dataset = dataset;
    auto world = qd::bench::build_world(cfg);
    const double total = world.fed.train_seconds;
    const double dd = world.fed.quickdrop->distill_seconds();
    const auto& cost = world.fed.quickdrop->training_stats().cost;
    table.add_row({dataset, qd::fmt_double(total, 1), qd::fmt_double(dd, 1),
                   qd::fmt_percent(dd / total, 1), std::to_string(cost.sample_grads),
                   std::to_string(cost.distill_sample_grads)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper (Table 6): DD overhead is 54%% (MNIST), 55%% (CIFAR-10) and 46.3%% (SVHN)\n"
              "of total training time — roughly doubling FL training, the upfront cost that\n"
              "unlocks the downstream unlearning speedups.\n");
  return 0;
}
