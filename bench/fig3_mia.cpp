// Reproduces Figure 3: membership-inference attack accuracy on the F-Set and
// R-Set after each method unlearns a class (CIFAR-10 stand-in, 10 clients,
// non-IID). Retrain-Or is the optimum: its model never saw the forget data.
#include <cstdio>

#include "attack/mia.h"
#include "common/world.h"
#include "util/table.h"

namespace qd = quickdrop;

int main(int argc, char** argv) {
  qd::CliFlags flags(argc, argv);
  auto config = qd::bench::WorldConfig::from_flags(flags);
  const int target_class = flags.get_int("class", 9);
  flags.check_unused();

  qd::bench::print_banner("Figure 3: MIA accuracy after unlearning", config);
  auto world = qd::bench::build_world(config);
  const auto request = qd::core::UnlearningRequest::for_class(target_class);
  const auto baseline_cfg = qd::bench::baseline_config(config);

  // F-Set: training rows of the target class. R-Set: the rest of the
  // training data. Non-members for attack training: the test set.
  const auto fset = world.train.subset(world.train.indices_of_class(target_class));
  std::vector<int> retain_rows;
  for (int i = 0; i < world.train.size(); ++i) {
    if (world.train.label(i) != target_class) retain_rows.push_back(i);
  }
  const auto rset = world.train.subset(retain_rows);

  qd::TextTable table;
  table.set_header({"FU approach", "MIA F-Set", "MIA R-Set", "attack acc"});
  for (const auto& name : {"Retrain-Or", "FedEraser", "SGA-Or", "FU-MP", "QuickDrop"}) {
    auto method = qd::baselines::make_method(name, baseline_cfg);
    const auto out = method->unlearn(world.fed, request);
    qd::nn::load_state(*world.eval_model, out.state);
    qd::Rng rng(config.seed ^ 0x31A);
    // The attack model is trained on the *retained* training data versus test
    // data, then asked whether forget/retain samples look like members.
    const auto report =
        qd::attack::run_mia(*world.eval_model, rset, world.fed.test, fset, rset, rng);
    table.add_row({name, qd::fmt_percent(report.forget_member_rate),
                   qd::fmt_percent(report.retain_member_rate),
                   qd::fmt_percent(report.attack_accuracy)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper (Fig. 3): MIA accuracy on the F-Set is <1%% for every method; QuickDrop's\n"
              "R-Set MIA accuracy (71.6%%) is competitive with the baselines (67.3-74.2%%),\n"
              "oracle 77.3%%.\n");
  return 0;
}
