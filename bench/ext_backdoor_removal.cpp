// Extension experiment: erasing a malicious client's backdoor.
//
// The paper's introduction motivates FU with the need to remove manipulated
// data. Here one client stamps a trigger patch onto all of its samples and
// relabels them to a target class; after FL training any stamped image is
// misclassified to that class. Client-level unlearning with QuickDrop's
// verified mode must collapse the attack success rate while keeping the
// model accurate on clean data — at synthetic-data cost.
#include <cstdio>

#include "attack/backdoor.h"
#include "core/quickdrop.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "metrics/evaluate.h"
#include "nn/convnet.h"
#include "util/cli.h"
#include "util/table.h"

namespace qd = quickdrop;

int main(int argc, char** argv) {
  qd::CliFlags flags(argc, argv);
  const int clients = flags.get_int("clients", 10);
  const int rounds = flags.get_int("rounds", 30);
  const int target = flags.get_int("target-class", 0);
  const int malicious = flags.get_int("malicious-client", 0);
  flags.check_unused();

  std::printf("=== Extension: backdoor removal via client-level unlearning ===\n\n");
  const auto dataset = qd::data::make_synthetic(qd::data::cifar10_like_spec());
  qd::Rng prng(61);
  auto client_data = qd::data::materialize(
      dataset.train, qd::data::iid_partition(dataset.train, clients, prng));

  const qd::attack::TriggerPattern trigger{.size = 3, .intensity = 4.0f, .corner = 3};
  client_data[static_cast<std::size_t>(malicious)] = qd::attack::poison_dataset(
      client_data[static_cast<std::size_t>(malicious)], trigger, target);
  std::printf("client %d is malicious: %d stamped samples relabeled to class %d\n\n", malicious,
              client_data[static_cast<std::size_t>(malicious)].size(), target);

  qd::nn::ConvNetConfig net;
  net.in_channels = 3;
  net.image_size = 12;
  net.width = 16;
  net.depth = 2;
  auto mrng = std::make_shared<qd::Rng>(62);
  qd::fl::ModelFactory factory = [mrng, net] { return qd::nn::make_convnet(net, *mrng); };

  qd::core::QuickDropConfig config;
  config.fl_rounds = rounds;
  config.local_steps = 5;
  config.train_lr = 0.05f;
  config.scale = 10;
  config.unlearn_lr = 0.04f;
  config.recover_lr = 0.05f;
  config.recovery_rounds = 3;
  config.max_unlearn_rounds = 8;  // verified unlearning
  qd::core::QuickDrop quickdrop(factory, client_data, config, 63);

  std::printf("training the poisoned federation...\n");
  const auto trained = quickdrop.train();
  auto model = factory();

  auto report = [&](const char* label, const qd::nn::ModelState& state) {
    qd::nn::load_state(*model, state);
    std::printf("%-18s attack success rate %s, clean test accuracy %s\n", label,
                qd::fmt_percent(
                    qd::attack::backdoor_success_rate(*model, dataset.test, trigger, target))
                    .c_str(),
                qd::fmt_percent(qd::metrics::accuracy(*model, dataset.test)).c_str());
  };
  report("after training:", trained);

  qd::core::PhaseStats us, rs;
  const auto cleaned =
      quickdrop.unlearn(trained, qd::core::UnlearningRequest::for_client(malicious), &us, &rs);
  report("after unlearning:", cleaned);
  std::printf("\nverified unlearning used %d SGA round(s) on %lld synthetic samples (%.2fs);\n"
              "recovery used %lld samples (%.2fs).\n",
              us.rounds, static_cast<long long>(us.data_size), us.seconds,
              static_cast<long long>(rs.data_size), rs.seconds);
  std::printf("expected: the attack success rate collapses toward the class base rate while\n"
              "clean accuracy is preserved — the manipulated client's influence is gone.\n");
  return 0;
}
