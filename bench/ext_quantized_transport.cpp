// Accuracy-vs-compression sweep of the quantized update transport
// (fl/quantize.h) on the shared fig2/table2 harness: one trained federation,
// then the QuickDrop unlearn + recovery cycle re-run per codec
// (off / bf16 / int8). For each codec it reports F-Set / R-Set / test
// accuracy after the cycle, the uploaded bytes of the cycle, and the
// compression ratio against the fp32 transport — the trade-off the
// --quantize-updates flag buys.
#include <cstdio>

#include "common/world.h"
#include "fl/quantize.h"
#include "util/table.h"

namespace qd = quickdrop;

int main(int argc, char** argv) {
  qd::CliFlags flags(argc, argv);
  auto config = qd::bench::WorldConfig::from_flags(flags);
  const int target_class = flags.get_int("class", 9);
  flags.check_unused();

  qd::bench::print_banner("Quantized transport: accuracy vs compression", config);
  auto world = qd::bench::build_world(config);
  const auto request = qd::core::UnlearningRequest::for_class(target_class);
  std::printf("trained model: test acc %s, F-Set(class %d) %s\n\n",
              qd::fmt_percent(world.accuracy(world.fed.global)).c_str(), target_class,
              qd::fmt_percent(world.fset_accuracy(world.fed.global, request)).c_str());

  qd::TextTable table;
  table.set_header({"Transport", "F-Set", "R-Set", "Test", "Cycle up-bytes", "vs fp32"});

  std::int64_t fp32_bytes = 0;
  for (const auto* codec_name : {"off", "bf16", "int8"}) {
    auto& coordinator = *world.fed.quickdrop;
    // Same trained model, same seed-derived phase RNGs: the only variable
    // across rows is the wire codec.
    coordinator.reset_forgotten();
    qd::fl::TransportConfig transport;
    transport.codec = qd::fl::codec_from_string(codec_name);
    coordinator.set_transport(transport);

    qd::core::PhaseStats unlearn_stats;
    qd::core::PhaseStats recovery_stats;
    const auto state =
        coordinator.unlearn(world.fed.global, request, &unlearn_stats, &recovery_stats);
    const std::int64_t up_bytes =
        unlearn_stats.cost.bytes_up + recovery_stats.cost.bytes_up;
    if (std::string(codec_name) == "off") fp32_bytes = up_bytes;
    table.add_row({codec_name,
                   qd::fmt_percent(world.fset_accuracy(state, request)),
                   qd::fmt_percent(world.rset_accuracy(state, request)),
                   qd::fmt_percent(world.accuracy(state)),
                   std::to_string(up_bytes),
                   qd::fmt_double(100.0 * static_cast<double>(up_bytes) /
                                      static_cast<double>(fp32_bytes),
                                  1) +
                       "%"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("acceptance: int8 cycle upload <= 30%% of fp32; F-Set stays near zero and the\n"
              "R-Set within a few points of the fp32 row (quantization error is per-round\n"
              "bounded by half an int8 step of each block's max |delta|).\n");
  return 0;
}
