// Reproduces Figure 2: class-wise testing accuracy per round while QuickDrop
// unlearns class 9 (CIFAR-10 stand-in, 10 clients, alpha=0.1) — one round of
// SGA unlearning on the synthetic data followed by recovery rounds.
#include <cstdio>

#include "common/world.h"
#include "util/table.h"

namespace qd = quickdrop;

int main(int argc, char** argv) {
  qd::CliFlags flags(argc, argv);
  auto config = qd::bench::WorldConfig::from_flags(flags);
  const int target_class = flags.get_int("class", 9);
  flags.check_unused();

  qd::bench::print_banner("Figure 2: class-wise accuracy during unlearning + recovery", config);
  auto world = qd::bench::build_world(config);
  const int num_classes = world.fed.test.num_classes();

  qd::TextTable table;
  std::vector<std::string> header = {"round", "stage"};
  for (int c = 0; c < num_classes; ++c) header.push_back("c" + std::to_string(c));
  table.set_header(header);

  auto add_row = [&](int round, const std::string& stage, const qd::nn::ModelState& state) {
    const auto pc = world.per_class(state);
    std::vector<std::string> row = {std::to_string(round), stage};
    for (const double a : pc) row.push_back(qd::fmt_percent(a, 1));
    table.add_row(std::move(row));
  };

  int round_counter = 0;
  add_row(round_counter++, "trained", world.fed.global);
  add_row(round_counter++, "trained", world.fed.global);  // paper shows 2 flat rounds first

  const auto request = qd::core::UnlearningRequest::for_class(target_class);
  int stage_round = 0;
  std::vector<std::pair<std::string, qd::nn::ModelState>> snapshots;
  world.fed.quickdrop->unlearn(
      world.fed.global, request, nullptr, nullptr,
      [&](int, const qd::nn::ModelState& state) {
        const bool in_unlearn =
            stage_round < world.fed.quickdrop->config().unlearn_rounds;
        snapshots.emplace_back(in_unlearn ? "unlearn" : "recover", state);
        ++stage_round;
      });
  for (const auto& [stage, state] : snapshots) add_row(round_counter++, stage, state);

  std::printf("%s\n", table.render().c_str());
  std::printf("paper (Fig. 2): the target class drops to ~0.8%% after one unlearning round;\n"
              "non-target classes dip from SGA noise and are restored within two recovery\n"
              "rounds; extra rounds bring no further change.\n");
  return 0;
}
