// Extension experiment: fault tolerance of the federation runtime.
//
// Sweeps the total fault intensity (a fixed mix of crashes, stragglers,
// corrupted uploads and stale echoes) and reports how the defended runtime
// (update validation + norm-outlier quarantine + quorum/retry) degrades:
// final test accuracy, unlearning quality on a class request, and the
// survival counters from CostMeter. The headline claim is graceful
// degradation — corrupted uploads never reach the aggregate, so accuracy
// decays smoothly with client availability instead of collapsing.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/quickdrop.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "metrics/evaluate.h"
#include "nn/convnet.h"
#include "util/cli.h"
#include "util/table.h"

namespace qd = quickdrop;

int main(int argc, char** argv) {
  qd::CliFlags flags(argc, argv);
  const int clients = flags.get_int("clients", 6);
  const int rounds = flags.get_int("rounds", 10);
  const int width = flags.get_int("width", 12);
  flags.check_unused();

  std::printf("=== Extension: fault-tolerant federation under increasing fault rates ===\n\n");
  auto spec = qd::data::mnist_like_spec();
  const auto dataset = qd::data::make_synthetic(spec);
  qd::Rng prng(81);
  const auto client_data = qd::data::materialize(
      dataset.train, qd::data::iid_partition(dataset.train, clients, prng));

  qd::nn::ConvNetConfig net;
  net.in_channels = spec.channels;
  net.image_size = spec.image_size;
  net.num_classes = spec.num_classes;
  net.width = width;
  net.depth = 1;

  std::printf("%-8s %-9s %-9s %-9s %7s %7s %7s %7s %5s %8s\n", "faults", "acc", "forget",
              "retain", "crash", "strag", "quar", "retry", "lost", "backoff");
  for (const float level : {0.0f, 0.1f, 0.2f, 0.3f}) {
    // A fixed fault mix scaled by `level`: availability faults dominate,
    // with a tail of corrupted and stale uploads.
    qd::fl::FaultRates rates;
    rates.crash = 0.40f * level;
    rates.straggler = 0.15f * level;
    rates.corrupt_nan = 0.15f * level;
    rates.corrupt_inf = 0.10f * level;
    rates.exploded_norm = 0.10f * level;
    rates.stale_update = 0.10f * level;

    qd::core::QuickDropConfig config;
    config.fl_rounds = rounds;
    config.local_steps = 4;
    config.batch_size = 32;
    config.train_lr = 0.1f;
    config.scale = 10;
    config.unlearn_lr = 0.05f;
    config.recover_lr = 0.03f;
    config.faults = qd::fl::FaultPlan(83, rates);
    config.defense.norm_outlier_multiplier = 8.0f;
    config.defense.min_quorum = 0.34f;
    config.defense.max_round_attempts = 3;

    auto mrng = std::make_shared<qd::Rng>(82);
    qd::fl::ModelFactory factory = [mrng, net] { return qd::nn::make_convnet(net, *mrng); };
    qd::core::QuickDrop qdrop(factory, client_data, config, 84);
    const auto trained = qdrop.train();
    const auto unlearned = qdrop.unlearn(trained, qd::core::UnlearningRequest::for_class(1));

    auto model = factory();
    qd::nn::load_state(*model, trained);
    const double acc = qd::metrics::accuracy(*model, dataset.test);
    qd::nn::load_state(*model, unlearned);
    const double forget = qd::metrics::accuracy_on_classes(*model, dataset.test, {1});
    double retain_sum = 0.0;
    const auto pc = qd::metrics::per_class_accuracy(*model, dataset.test);
    for (std::size_t c = 0; c < pc.size(); ++c) {
      if (c != 1) retain_sum += pc[c];
    }
    const double retain = retain_sum / static_cast<double>(pc.size() - 1);

    const auto& cost = qdrop.training_stats().cost;
    std::printf("%-8s %-9s %-9s %-9s %7lld %7lld %7lld %7lld %5lld %7.1fs\n",
                qd::fmt_percent(level).c_str(), qd::fmt_percent(acc).c_str(),
                qd::fmt_percent(forget).c_str(), qd::fmt_percent(retain).c_str(),
                static_cast<long long>(cost.crashed_clients),
                static_cast<long long>(cost.straggler_timeouts),
                static_cast<long long>(cost.quarantined_updates),
                static_cast<long long>(cost.retried_rounds),
                static_cast<long long>(cost.lost_rounds), cost.sim_backoff_seconds);
  }
  std::printf("\nexpected: accuracy decays gently with fault intensity while forget-class\n"
              "accuracy stays near zero — quarantine keeps poisoned uploads out of the\n"
              "aggregate, and quorum retries absorb availability dips.\n");
  return 0;
}
