// Extension experiment (paper §5.1 future work): sample-level unlearning via
// per-class subset distillation. One client requests erasure of a *subset* of
// its samples of one class; the affected subsets are SGA-unlearned while the
// same class's remaining subsets participate in recovery, so class knowledge
// survives while the requested samples are forgotten.
#include <cstdio>

#include "core/sample_level.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "metrics/evaluate.h"
#include "nn/convnet.h"
#include "util/cli.h"
#include "util/table.h"

namespace qd = quickdrop;

int main(int argc, char** argv) {
  qd::CliFlags flags(argc, argv);
  const int clients = flags.get_int("clients", 10);
  const int rounds = flags.get_int("rounds", 30);
  const int subsets = flags.get_int("subsets", 2);
  int target_class = flags.get_int("class", -1);  // -1: best-learned class
  flags.check_unused();

  std::printf("=== Extension: sample-level unlearning (K=%d subsets per class) ===\n\n", subsets);
  const auto dataset = qd::data::make_synthetic(qd::data::cifar10_like_spec());
  qd::Rng prng(31);
  auto client_data = qd::data::materialize(
      dataset.train, qd::data::dirichlet_partition(dataset.train, clients, 0.1f, prng));

  qd::nn::ConvNetConfig net;
  net.in_channels = 3;
  net.image_size = 12;
  net.width = 16;
  net.depth = 2;
  auto mrng = std::make_shared<qd::Rng>(32);
  qd::fl::ModelFactory factory = [mrng, net] { return qd::nn::make_convnet(net, *mrng); };

  qd::core::QuickDropConfig config;
  config.fl_rounds = rounds;
  config.local_steps = 5;
  config.train_lr = 0.05f;
  config.scale = 5;
  // Sample-level requests ascend on the *class's own* labels, so the ascent
  // must stay gentle enough for the recovery phase — which includes the same
  // class's other subsets — to restore the class itself.
  config.unlearn_lr = 0.02f;
  config.recover_lr = 0.05f;
  config.recovery_rounds = 4;
  qd::core::SampleLevelQuickDrop qd_sample(factory, client_data, config, subsets, 33);

  std::printf("training with subset-granular distillation...\n");
  const auto trained = qd_sample.train();
  auto model = factory();
  qd::nn::load_state(*model, trained);
  std::printf("test accuracy: %s\n\n",
              qd::fmt_percent(qd::metrics::accuracy(*model, dataset.test)).c_str());

  if (target_class < 0) {
    // Target the class the model knows best: surviving the subset erasure is
    // only meaningful for a class with solid knowledge to preserve.
    const auto pc = qd::metrics::per_class_accuracy(*model, dataset.test);
    target_class = 0;
    for (std::size_t c = 1; c < pc.size(); ++c) {
      if (pc[c] > pc[static_cast<std::size_t>(target_class)]) target_class = static_cast<int>(c);
    }
  }

  // The victim: one client's class-`target_class` samples living in subset 0.
  int victim = -1;
  qd::core::SampleRequest request;
  for (int c = 0; c < clients && victim < 0; ++c) {
    std::vector<int> rows;
    for (int row = 0; row < client_data[static_cast<std::size_t>(c)].size(); ++row) {
      if (client_data[static_cast<std::size_t>(c)].label(row) == target_class &&
          qd_sample.stores()[static_cast<std::size_t>(c)].cell_of_row(row) ==
              target_class * subsets) {
        rows.push_back(row);
      }
    }
    if (rows.size() >= 4) {
      victim = c;
      request.rows_per_client[c] = rows;
    }
  }
  if (victim < 0) {
    std::printf("no client holds enough class-%d samples; rerun with another --class\n",
                target_class);
    return 1;
  }
  const auto& victim_data = client_data[static_cast<std::size_t>(victim)];
  const auto& forgotten_rows = request.rows_per_client[victim];
  std::printf("request: forget %zu of client %d's class-%d samples (subset 0 of %d)\n",
              forgotten_rows.size(), victim, target_class, subsets);

  auto eval = [&](const qd::nn::ModelState& state, const char* label) {
    qd::nn::load_state(*model, state);
    std::printf("%-18s acc(forgotten samples)=%s  acc(class %d test)=%s  acc(test)=%s\n", label,
                qd::fmt_percent(
                    qd::metrics::accuracy_on_indices(*model, victim_data, forgotten_rows))
                    .c_str(),
                target_class,
                qd::fmt_percent(
                    qd::metrics::accuracy_on_classes(*model, dataset.test, {target_class}))
                    .c_str(),
                qd::fmt_percent(qd::metrics::accuracy(*model, dataset.test)).c_str());
  };
  eval(trained, "before unlearning:");

  qd::core::PhaseStats us, rs;
  const auto state = qd_sample.unlearn(trained, request, &us, &rs);
  eval(state, "after unlearning:");
  std::printf("\nunlearn %.2fs on %lld synthetic samples; recovery %.2fs on %lld\n", us.seconds,
              static_cast<long long>(us.data_size), rs.seconds,
              static_cast<long long>(rs.data_size));
  std::printf("expected: accuracy on the forgotten samples drops toward the class-%d test\n"
              "accuracy level or below, while class-%d test accuracy itself survives —\n"
              "sample-level erasure without class-level collateral.\n",
              target_class, target_class);
  return 0;
}
