// google-benchmark microbenchmarks of the parameter plane (DESIGN.md §11):
// axpy / weighted_average / serialize throughput on the flat representation,
// swept over pool sizes, against a faithful reimplementation of the
// pre-refactor per-tensor representation (vector<Tensor>, serial per-tensor
// loops, float accumulation) as the baseline. Results land in
// BENCH_state_ops.json (see main below) for machine consumption; run_all.sh
// checks the file exists after the bench sweep.
// The *Scalar/*Simd pairs pin the microkernel dispatch (tensor/simd.h) to
// one table on L2-resident buffers, isolating the SIMD speedup from memory
// bandwidth (acceptance: >= 2x at 1 thread on axpy / weighted_average /
// l2_distance). The Quantize* benchmarks measure the int8/bf16 update codec
// (fl/quantize.h) and report the wire/fp32 byte ratio as a counter.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "fl/quantize.h"
#include "nn/state.h"
#include "nn/state_accumulator.h"
#include "tensor/simd.h"
#include "util/thread_pool.h"

namespace qd = quickdrop;
namespace nn = quickdrop::nn;

namespace {

// Pins the pool to `threads` for one benchmark run, restoring on scope exit
// so the sweep order can't leak into other benchmarks.
struct PoolScope {
  int saved = qd::num_threads();
  explicit PoolScope(std::int64_t threads) { qd::set_num_threads(static_cast<int>(threads)); }
  ~PoolScope() { qd::set_num_threads(saved); }
};

// A paper-scale ConvNet state (width 128, depth 3, 10 classes): ~450k floats
// across conv/norm/linear parameters — big enough that the pooled kernels
// split into many blocks.
const std::vector<qd::Shape> kNetShapes = {
    {128, 3, 3, 3},  {128}, {128}, {128},          // block 1 conv + norm
    {128, 128, 3, 3}, {128}, {128}, {128},         // block 2
    {128, 128, 3, 3}, {128}, {128}, {128},         // block 3
    {10, 1152},      {10},                         // classifier
};

nn::ModelState make_flat(float phase) {
  auto layout = nn::StateLayout::of_shapes(kNetShapes);
  std::vector<float> values(static_cast<std::size_t>(layout->total()));
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = 0.001f * static_cast<float>((i * 2654435761ULL) % 2003) - 1.0f + phase;
  }
  return {std::move(layout), std::move(values)};
}

// ---------------------------------------------------------------------------
// Pre-refactor representation, reimplemented as the baseline: one Tensor per
// parameter, serial per-tensor loops, float accumulation (what
// nn/state.cpp did before the flat refactor).
// ---------------------------------------------------------------------------

std::vector<qd::Tensor> make_tensors(float phase) {
  const auto flat = make_flat(phase);
  std::vector<qd::Tensor> out;
  out.reserve(flat.size());
  for (std::size_t i = 0; i < flat.size(); ++i) out.push_back(flat.tensor(i));
  return out;
}

void tensor_axpy(std::vector<qd::Tensor>& y, const std::vector<qd::Tensor>& x, float a) {
  for (std::size_t i = 0; i < y.size(); ++i) {
    auto yd = y[i].data();
    const auto xd = x[i].data();
    for (std::size_t j = 0; j < yd.size(); ++j) yd[j] += a * xd[j];
  }
}

std::vector<qd::Tensor> tensor_weighted_average(
    const std::vector<std::vector<qd::Tensor>>& states, const std::vector<float>& weights) {
  std::vector<qd::Tensor> out;
  out.reserve(states.front().size());
  for (const auto& t : states.front()) {
    qd::Tensor acc(t.shape());
    auto ad = acc.data();
    for (auto& v : ad) v = 0.0f;
    out.push_back(std::move(acc));
  }
  for (std::size_t c = 0; c < states.size(); ++c) {
    const float w = weights[c];
    for (std::size_t i = 0; i < out.size(); ++i) {
      auto od = out[i].data();
      const auto sd = states[c][i].data();
      for (std::size_t j = 0; j < od.size(); ++j) od[j] += w * sd[j];
    }
  }
  return out;
}

std::vector<std::uint8_t> tensor_serialize(const std::vector<qd::Tensor>& tensors) {
  std::vector<std::uint8_t> bytes;
  auto put_u64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  put_u64(tensors.size());
  for (const auto& t : tensors) {
    put_u64(t.shape().size());
    for (const auto d : t.shape()) put_u64(static_cast<std::uint64_t>(d));
    const auto data = t.data();
    const auto offset = bytes.size();
    bytes.resize(offset + data.size() * sizeof(float));
    std::memcpy(bytes.data() + offset, data.data(), data.size() * sizeof(float));
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// axpy
// ---------------------------------------------------------------------------

void BM_AxpyFlat(benchmark::State& state) {
  PoolScope pool(state.range(0));
  auto y = make_flat(0.0f);
  const auto x = make_flat(0.5f);
  for (auto _ : state) {
    nn::axpy(y, x, 0.001f);
    benchmark::DoNotOptimize(y.data().data());
  }
  state.SetItemsProcessed(state.iterations() * y.numel());
}
BENCHMARK(BM_AxpyFlat)->Arg(1)->Arg(4)->Arg(8);

void BM_AxpyPerTensor(benchmark::State& state) {
  auto y = make_tensors(0.0f);
  const auto x = make_tensors(0.5f);
  std::int64_t numel = 0;
  for (const auto& t : y) numel += t.numel();
  for (auto _ : state) {
    tensor_axpy(y, x, 0.001f);
    benchmark::DoNotOptimize(y.front().data().data());
  }
  state.SetItemsProcessed(state.iterations() * numel);
}
BENCHMARK(BM_AxpyPerTensor);

// ---------------------------------------------------------------------------
// weighted_average (FedAvg's aggregation step; 16 clients)
// ---------------------------------------------------------------------------

constexpr int kClients = 16;

void BM_WeightedAverageFlat(benchmark::State& state) {
  PoolScope pool(state.range(0));
  std::vector<nn::ModelState> states;
  std::vector<float> weights;
  for (int c = 0; c < kClients; ++c) {
    states.push_back(make_flat(0.01f * static_cast<float>(c)));
    weights.push_back(1.0f / static_cast<float>(kClients));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::weighted_average(states, weights));
  }
  state.SetItemsProcessed(state.iterations() * states.front().numel() * kClients);
}
BENCHMARK(BM_WeightedAverageFlat)->Arg(1)->Arg(4)->Arg(8);

// Streaming counterpart (nn/state_accumulator.h): the same 16-client merge
// folded one update at a time through a single-lane StateAccumulator — the
// shard tree's inner loop. Produces bitwise-identical output to
// weighted_average; the column shows what the O(params)-memory path costs
// relative to the batch merge.
void BM_WeightedAverageStreaming(benchmark::State& state) {
  PoolScope pool(state.range(0));
  std::vector<nn::ModelState> states;
  for (int c = 0; c < kClients; ++c) {
    states.push_back(make_flat(0.01f * static_cast<float>(c)));
  }
  nn::StateAccumulator acc(states.front().layout(), /*lanes=*/1);
  const double w = 1.0 / static_cast<double>(kClients);
  for (auto _ : state) {
    for (const auto& s : states) acc.fold(s, w);
    benchmark::DoNotOptimize(acc.finalize());
    acc.reset();
  }
  state.counters["peak_bytes"] = static_cast<double>(acc.memory_bytes());
  state.SetItemsProcessed(state.iterations() * states.front().numel() * kClients);
}
BENCHMARK(BM_WeightedAverageStreaming)->Arg(1)->Arg(4)->Arg(8);

void BM_WeightedAveragePerTensor(benchmark::State& state) {
  std::vector<std::vector<qd::Tensor>> states;
  std::vector<float> weights;
  std::int64_t numel = 0;
  for (int c = 0; c < kClients; ++c) {
    states.push_back(make_tensors(0.01f * static_cast<float>(c)));
    weights.push_back(1.0f / static_cast<float>(kClients));
  }
  for (const auto& t : states.front()) numel += t.numel();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor_weighted_average(states, weights));
  }
  state.SetItemsProcessed(state.iterations() * numel * kClients);
}
BENCHMARK(BM_WeightedAveragePerTensor);

// ---------------------------------------------------------------------------
// serialize (checkpoint writes, FedEraser history persists)
// ---------------------------------------------------------------------------

void BM_SerializeFlat(benchmark::State& state) {
  PoolScope pool(state.range(0));
  const auto s = make_flat(0.25f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::serialize_state(s));
  }
  state.SetBytesProcessed(state.iterations() * s.numel() *
                          static_cast<std::int64_t>(sizeof(float)));
}
BENCHMARK(BM_SerializeFlat)->Arg(1)->Arg(4)->Arg(8);

void BM_SerializePerTensor(benchmark::State& state) {
  const auto tensors = make_tensors(0.25f);
  std::int64_t numel = 0;
  for (const auto& t : tensors) numel += t.numel();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor_serialize(tensors));
  }
  state.SetBytesProcessed(state.iterations() * numel *
                          static_cast<std::int64_t>(sizeof(float)));
}
BENCHMARK(BM_SerializePerTensor);

// ---------------------------------------------------------------------------
// Scalar vs SIMD dispatch columns (1 thread, L2-resident working set)
// ---------------------------------------------------------------------------

// Pins the microkernel table for one benchmark run. kAuto restores the
// startup selection on scope exit.
struct DispatchScope {
  explicit DispatchScope(qd::simd::Dispatch d) { qd::simd::force_dispatch(d); }
  ~DispatchScope() { qd::simd::force_dispatch(qd::simd::Dispatch::kAuto); }
};

qd::simd::Dispatch dispatch_of(std::int64_t arg) {
  return arg == 0 ? qd::simd::Dispatch::kScalar : qd::simd::Dispatch::kAvx2;
}

// 32k floats (128 KB) per buffer: resident in L2, so the elementwise pairs
// compare compute throughput rather than memory bandwidth.
nn::ModelState make_small(float phase) {
  auto layout = nn::StateLayout::of_shapes({qd::Shape{32768}});
  std::vector<float> values(static_cast<std::size_t>(layout->total()));
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = 0.001f * static_cast<float>((i * 2654435761ULL) % 2003) - 1.0f + phase;
  }
  return {std::move(layout), std::move(values)};
}

void BM_AxpyDispatch(benchmark::State& state) {
  PoolScope pool(1);
  DispatchScope dispatch(dispatch_of(state.range(0)));
  auto y = make_small(0.0f);
  const auto x = make_small(0.5f);
  for (auto _ : state) {
    nn::axpy(y, x, 0.001f);
    benchmark::DoNotOptimize(y.data().data());
  }
  state.SetItemsProcessed(state.iterations() * y.numel());
}
BENCHMARK(BM_AxpyDispatch)->ArgNames({"simd"})->Arg(0)->Arg(1);

void BM_WeightedAverageDispatch(benchmark::State& state) {
  PoolScope pool(1);
  DispatchScope dispatch(dispatch_of(state.range(0)));
  std::vector<nn::ModelState> states;
  std::vector<float> weights;
  for (int c = 0; c < 8; ++c) {
    states.push_back(make_small(0.01f * static_cast<float>(c)));
    weights.push_back(0.125f);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::weighted_average(states, weights));
  }
  state.SetItemsProcessed(state.iterations() * states.front().numel() * 8);
}
BENCHMARK(BM_WeightedAverageDispatch)->ArgNames({"simd"})->Arg(0)->Arg(1);

void BM_L2DistanceDispatch(benchmark::State& state) {
  PoolScope pool(1);
  DispatchScope dispatch(dispatch_of(state.range(0)));
  const auto a = make_small(0.0f);
  const auto b = make_small(0.5f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::l2_distance(a, b));
  }
  state.SetItemsProcessed(state.iterations() * a.numel());
}
BENCHMARK(BM_L2DistanceDispatch)->ArgNames({"simd"})->Arg(0)->Arg(1);

// ---------------------------------------------------------------------------
// Quantized update transport: codec throughput and the fp32-vs-quantized
// byte ratio (acceptance: int8 wire <= 30% of raw fp32)
// ---------------------------------------------------------------------------

qd::fl::Codec codec_of(std::int64_t arg) {
  return arg == 0 ? qd::fl::Codec::kInt8 : qd::fl::Codec::kBf16;
}

void BM_QuantizeEncode(benchmark::State& state) {
  const auto delta = make_flat(0.25f);
  const auto codec = codec_of(state.range(0));
  std::size_t wire_bytes = 0;
  for (auto _ : state) {
    const auto wire = qd::fl::encode_delta(delta, codec);
    wire_bytes = wire.size();
    benchmark::DoNotOptimize(wire.data());
  }
  const auto fp32_bytes = static_cast<double>(nn::state_bytes(delta));
  state.counters["wire_bytes"] = static_cast<double>(wire_bytes);
  state.counters["fp32_bytes"] = fp32_bytes;
  state.counters["bytes_ratio"] = static_cast<double>(wire_bytes) / fp32_bytes;
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(fp32_bytes));
}
BENCHMARK(BM_QuantizeEncode)->ArgNames({"bf16"})->Arg(0)->Arg(1);

void BM_QuantizeDecode(benchmark::State& state) {
  const auto delta = make_flat(0.25f);
  const auto codec = codec_of(state.range(0));
  const auto wire = qd::fl::encode_delta(delta, codec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qd::fl::decode_delta(wire, delta.layout()));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(nn::state_bytes(delta)));
}
BENCHMARK(BM_QuantizeDecode)->ArgNames({"bf16"})->Arg(0)->Arg(1);

}  // namespace

// Writes BENCH_state_ops.json in the working directory unless the caller
// already passed --benchmark_out.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    has_out |= std::strncmp(argv[i], "--benchmark_out", 15) == 0;
  }
  static char out_flag[] = "--benchmark_out=BENCH_state_ops.json";
  static char fmt_flag[] = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag);
    args.push_back(fmt_flag);
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
