// Extension experiment: the network front-end end to end.
//
// Two measurements over one trained world:
//
//   1. Wire-codec cost: the final global model encoded as a client-update
//      frame raw (v2 float32 state) versus quantized (int8 / bf16), with
//      encode+decode throughput timed over repeated round trips. Bytes are
//      deterministic; MB/s is wall-clock and printed to stdout only.
//   2. Loopback replay identity: the same seeded trace served in-process
//      and through the loopback transport (frames + acks + report). The
//      final models must be bitwise identical and the reports identical
//      outside the out-of-band wire/net overlay — the process exits
//      nonzero otherwise, so CI can gate on this binary directly.
//
// BENCH_net.json records only deterministic facts (bytes on wire, identity
// verdicts, both reports), so the file is bitwise identical across runs and
// thread counts.
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "common/world.h"
#include "net/replay.h"
#include "net/wire.h"
#include "serve/service.h"
#include "serve/trace.h"
#include "util/atomic_file.h"
#include "util/table.h"

namespace qd = quickdrop;

namespace {

/// The run_all.sh gate filter: report lines that only a net transport emits.
std::string strip_net_lines(const std::string& json) {
  std::istringstream in(json);
  std::string out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"transport\"") != std::string::npos) continue;
    if (line.find("\"wire_") != std::string::npos) continue;
    if (line.find("\"net_") != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

struct CodecCost {
  const char* name;
  qd::fl::Codec codec;
  std::int64_t frame_bytes = 0;
  double encode_mbps = 0.0;
  double decode_mbps = 0.0;
};

CodecCost measure_codec(const char* name, qd::fl::Codec codec, const qd::nn::ModelState& state,
                        std::uint64_t layout_hash, int iters) {
  CodecCost cost{name, codec};
  const auto first = qd::net::encode_frame(qd::net::make_update_frame(state, codec, layout_hash));
  cost.frame_bytes = static_cast<std::int64_t>(first.size());
  const double raw_bytes = static_cast<double>(state.numel()) * sizeof(float);

  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    const auto bytes =
        qd::net::encode_frame(qd::net::make_update_frame(state, codec, layout_hash));
    if (bytes.size() != first.size()) std::abort();  // determinism violated
  }
  const auto t1 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    const auto frame = qd::net::decode_frame(first, layout_hash);
    const auto back = qd::net::decode_update_payload(frame.payload, state.layout());
    if (back.numel() != state.numel()) std::abort();
  }
  const auto t2 = std::chrono::steady_clock::now();

  const double enc_s = std::chrono::duration<double>(t1 - t0).count();
  const double dec_s = std::chrono::duration<double>(t2 - t1).count();
  cost.encode_mbps = raw_bytes * iters / (1024.0 * 1024.0) / (enc_s > 0 ? enc_s : 1e-9);
  cost.decode_mbps = raw_bytes * iters / (1024.0 * 1024.0) / (dec_s > 0 ? dec_s : 1e-9);
  return cost;
}

}  // namespace

int main(int argc, char** argv) {
  qd::CliFlags flags(argc, argv);
  auto config = qd::bench::WorldConfig::from_flags(flags);
  const int requests = flags.get_int("requests", 6);
  const double arrival_rate = flags.get_double("arrival-rate", 25.0);
  const int codec_iters = flags.get_int("codec-iters", 50);
  qd::serve::CostModel cost_model;
  cost_model.seconds_per_round = flags.get_double("sec-per-round", 30.0);
  cost_model.seconds_per_sample_grad = flags.get_double("sec-per-grad", 1e-4);
  const double wire_bandwidth = flags.get_double("wire-bandwidth", 1e6);
  const std::string out_path = flags.get_string("out", "BENCH_net.json");
  flags.check_unused();
  if (config.max_unlearn_rounds == 0) config.max_unlearn_rounds = 6;

  qd::bench::print_banner("Extension: network front-end (wire codecs + loopback replay)",
                          config);
  auto world = qd::bench::build_world(config);
  const std::uint64_t layout_hash = world.fed.quickdrop->state_layout()->hash();

  // --- 1. Wire-codec cost over the trained global model. -------------------
  qd::TextTable codec_table;
  codec_table.set_header({"codec", "frame bytes", "vs raw", "encode MB/s", "decode MB/s"});
  std::vector<CodecCost> codecs;
  for (const auto& [name, codec] :
       {std::pair{"none", qd::fl::Codec::kNone}, std::pair{"int8", qd::fl::Codec::kInt8},
        std::pair{"bf16", qd::fl::Codec::kBf16}}) {
    codecs.push_back(measure_codec(name, codec, world.fed.global, layout_hash, codec_iters));
  }
  for (const auto& c : codecs) {
    codec_table.add_row({c.name, std::to_string(c.frame_bytes),
                         qd::fmt_double(static_cast<double>(c.frame_bytes) /
                                            static_cast<double>(codecs[0].frame_bytes),
                                        3),
                         qd::fmt_double(c.encode_mbps, 1), qd::fmt_double(c.decode_mbps, 1)});
  }
  std::printf("%s\n", codec_table.render().c_str());

  // --- 2. Loopback replay vs in-process identity. --------------------------
  qd::serve::ArrivalConfig arrivals;
  arrivals.num_requests = requests;
  arrivals.mean_interarrival_seconds = arrival_rate;
  arrivals.num_classes = world.fed.test.num_classes();
  arrivals.num_clients = config.clients;
  qd::Rng trace_rng(config.seed + 1000);
  const auto trace = qd::serve::generate_trace(arrivals, trace_rng);
  std::printf("trace: %d generated requests, mean inter-arrival %.0fs\n\n", requests,
              arrival_rate);

  world.fed.quickdrop->reset_forgotten();
  qd::serve::ServiceConfig inproc_config;
  inproc_config.cost_model = cost_model;
  qd::serve::UnlearningService inproc(world.fed.quickdrop, world.fed.global, inproc_config);
  const auto inproc_report = inproc.run(trace);

  world.fed.quickdrop->reset_forgotten();
  qd::net::ReplayConfig replay_config;
  replay_config.service.cost_model = cost_model;
  replay_config.service.transport = "loopback";
  replay_config.service.wire_bytes_per_second = wire_bandwidth;
  replay_config.codec = qd::fl::Codec::kInt8;
  auto pair = qd::net::make_loopback();
  qd::net::replay_send_trace(*pair.client, trace, "bench", layout_hash);
  qd::net::NetReplaySession session(world.fed.quickdrop, world.fed.global, replay_config);
  const auto loop_report = session.run(*pair.server);
  const auto client = qd::net::replay_collect(*pair.client, layout_hash);

  bool state_identical = inproc.state().numel() == session.state().numel();
  for (std::int64_t i = 0; state_identical && i < inproc.state().numel(); ++i) {
    state_identical = inproc.state().at(i) == session.state().at(i);
  }
  const bool report_identical =
      strip_net_lines(inproc_report.to_json()) == strip_net_lines(loop_report.to_json());

  std::printf("loopback: %zu acks, %lld bytes down, %lld bytes up\n",
              client.acks.size(), static_cast<long long>(loop_report.wire_request_bytes),
              static_cast<long long>(loop_report.wire_ack_bytes));
  std::printf("identity: state %s, report %s\n\n", state_identical ? "BITWISE-EQUAL" : "DIVERGED",
              report_identical ? "MATCH" : "DIVERGED");

  std::ostringstream json;
  json << "{\n\"identity\": {\"state_bitwise\": " << (state_identical ? "true" : "false")
       << ", \"report_match\": " << (report_identical ? "true" : "false") << "},\n";
  json << "\"codecs\": {";
  for (std::size_t i = 0; i < codecs.size(); ++i) {
    json << (i ? ", " : "") << "\"" << codecs[i].name
         << "\": {\"frame_bytes\": " << codecs[i].frame_bytes << "}";
  }
  json << "},\n";
  json << "\"inproc\": " << inproc_report.to_json() << ",\n";
  json << "\"loopback\": " << loop_report.to_json() << "}\n";
  qd::write_file_atomic(out_path, json.str());
  std::printf("metrics written to %s\n", out_path.c_str());

  std::printf("\nexpected: int8/bf16 update frames cost ~1/4 and ~1/2 of the raw frame, and the\n"
              "loopback replay lands bitwise identical to the in-process service — the network\n"
              "front-end adds transport and accounting, never arithmetic.\n");
  return (state_identical && report_identical) ? 0 : 1;
}
