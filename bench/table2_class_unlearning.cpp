// Reproduces Table 2: accuracy and computation cost of QuickDrop and the FU
// baselines under class-level unlearning (CIFAR-10 stand-in, non-IID
// alpha=0.1, 10 clients). For every method it reports F-Set / R-Set accuracy
// after each stage, rounds, wall-clock time, per-round data size and the
// speedup over Retrain-Or.
#include <cstdio>

#include "common/world.h"
#include "util/table.h"
#include "util/timer.h"

namespace qd = quickdrop;

int main(int argc, char** argv) {
  qd::CliFlags flags(argc, argv);
  auto config = qd::bench::WorldConfig::from_flags(flags);
  const int target_class = flags.get_int("class", 9);
  flags.check_unused();

  qd::bench::print_banner("Table 2: class-level unlearning, all methods", config);
  auto world = qd::bench::build_world(config);
  const auto request = qd::core::UnlearningRequest::for_class(target_class);
  std::printf("trained model: test acc %s, F-Set(class %d) %s, train time %.1fs\n\n",
              qd::fmt_percent(world.accuracy(world.fed.global)).c_str(), target_class,
              qd::fmt_percent(world.fset_accuracy(world.fed.global, request)).c_str(),
              world.fed.train_seconds);

  const auto baseline_cfg = qd::bench::baseline_config(config);
  qd::TextTable table;
  table.set_header({"FU approach", "U F-Set", "U R-Set", "U rounds", "U time(s)", "U data",
                    "R F-Set", "R R-Set", "R rounds", "R time(s)", "R data", "Total(s)",
                    "Speedup"});

  double oracle_seconds = 0.0;
  for (const auto& name :
       {"Retrain-Or", "FedEraser", "SGA-Or", "FU-MP", "QuickDrop"}) {
    auto method = qd::baselines::make_method(name, baseline_cfg);
    const auto out = method->unlearn(world.fed, request);
    const double total = out.unlearn.seconds + out.recovery.seconds;
    if (std::string(name) == "Retrain-Or") oracle_seconds = total;
    const bool has_recovery = out.recovery.rounds > 0;
    table.add_row({name,
                   qd::fmt_percent(world.fset_accuracy(out.after_unlearn, request)),
                   qd::fmt_percent(world.rset_accuracy(out.after_unlearn, request)),
                   std::to_string(out.unlearn.rounds),
                   qd::fmt_double(out.unlearn.seconds, 2),
                   std::to_string(out.unlearn.data_size),
                   has_recovery ? qd::fmt_percent(world.fset_accuracy(out.state, request)) : "-",
                   has_recovery ? qd::fmt_percent(world.rset_accuracy(out.state, request)) : "-",
                   has_recovery ? std::to_string(out.recovery.rounds) : "-",
                   has_recovery ? qd::fmt_double(out.recovery.seconds, 2) : "-",
                   has_recovery ? std::to_string(out.recovery.data_size) : "-",
                   qd::fmt_double(total, 2),
                   qd::fmt_double(oracle_seconds / total, 1) + "x"});
  }
  std::printf("%s\n", table.render().c_str());

  // Storage-cost comparison (paper Table 1's efficiency argument):
  // FedEraser's history grows with clients x rounds; QuickDrop stores ~1/s of
  // the training data once.
  std::int64_t synthetic_bytes = 0;
  std::int64_t train_bytes = 0;
  for (const auto& store : world.fed.quickdrop->stores()) {
    synthetic_bytes += 2 * store.byte_size();  // synthetic + augmentation
  }
  for (const auto& d : world.fed.client_train()) {
    train_bytes += static_cast<std::int64_t>(d.size()) * qd::numel(d.image_shape()) * 4;
  }
  std::printf("storage: FedEraser history %lld bytes; QuickDrop synthetic+augment %lld bytes\n"
              "(%.1f%% of the %lld-byte training data)\n\n",
              static_cast<long long>(world.fed.history.byte_size()),
              static_cast<long long>(synthetic_bytes),
              100.0 * static_cast<double>(synthetic_bytes) / static_cast<double>(train_bytes),
              static_cast<long long>(train_bytes));
  std::printf("paper (Table 2): QuickDrop matches Retrain-Or on the F-Set (~0.8%%), is within a\n"
              "few points on the R-Set, and is 463x faster than Retrain-Or, 65-218x faster than\n"
              "the other baselines.\n");
  return 0;
}
