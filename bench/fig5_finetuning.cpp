// Reproduces Figure 5: R-Set accuracy after recovery as a function of the
// number of fine-tuning steps F, plus the gradient computations on original
// data (FL training vs fine-tuning). Fine-tuning closes the gap to
// Retrain-Or at an extra gradient cost no higher than FL training itself.
#include <cstdio>

#include "common/world.h"
#include "core/finetune.h"
#include "util/table.h"
#include "util/timer.h"

namespace qd = quickdrop;

int main(int argc, char** argv) {
  qd::CliFlags flags(argc, argv);
  auto config = qd::bench::WorldConfig::from_flags(flags);
  const int target_class = flags.get_int("class", 9);
  const int max_f = flags.get_int("max-finetune", 16);
  flags.check_unused();

  qd::bench::print_banner("Figure 5: impact of fine-tuning steps F", config);
  auto world = qd::bench::build_world(config);
  const auto request = qd::core::UnlearningRequest::for_class(target_class);
  const std::int64_t fl_training_grads = world.fed.quickdrop->training_stats().cost.sample_grads;

  // Oracle reference.
  const auto baseline_cfg = qd::bench::baseline_config(config);
  auto oracle = qd::baselines::make_method("Retrain-Or", baseline_cfg);
  const auto oracle_out = oracle->unlearn(world.fed, request);
  const double oracle_rset = world.rset_accuracy(oracle_out.state, request);

  qd::TextTable table;
  table.set_header({"F", "R-Set after recovery", "finetune grads (orig data)",
                    "FL training grads", "finetune time(s)"});

  // F=0 baseline, then cumulative fine-tuning: store the F-step totals by
  // fine-tuning the same stores incrementally.
  qd::fl::CostMeter finetune_cost;
  double finetune_seconds = 0.0;
  int applied_f = 0;
  for (const int f : {0, 2, 4, 8, max_f}) {
    if (f > applied_f) {
      const qd::Timer timer;
      qd::core::FinetuneConfig ft;
      ft.outer_steps = f - applied_f;
      ft.inner_steps = 8;  // paper fixes 50 inner steps; scaled down
      ft.batch_size = config.batch_size;
      auto& quickdrop = *world.fed.quickdrop;
      for (int i = 0; i < quickdrop.num_clients(); ++i) {
        qd::Rng rng(config.seed ^ (0xF17E + static_cast<std::uint64_t>(i) * 977 +
                                   static_cast<std::uint64_t>(f)));
        qd::core::finetune_store(world.fed.factory, quickdrop.stores()[static_cast<std::size_t>(i)],
                                 quickdrop.client_train()[static_cast<std::size_t>(i)], ft, rng,
                                 finetune_cost);
      }
      finetune_seconds += timer.seconds();
      applied_f = f;
    }
    const auto out = world.fed.quickdrop->unlearn(world.fed.global, request);
    // Each F value serves an independent request against the trained model.
    world.fed.quickdrop->reset_forgotten();
    table.add_row({std::to_string(f), qd::fmt_percent(world.rset_accuracy(out, request)),
                   std::to_string(finetune_cost.sample_grads),
                   std::to_string(fl_training_grads), qd::fmt_double(finetune_seconds, 1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Retrain-Or R-Set reference: %s\n", qd::fmt_percent(oracle_rset).c_str());
  std::printf("paper (Fig. 5): R-Set accuracy rises from 70.5%% (F=0) to 74.6%% (F=200),\n"
              "nearly matching Retrain-Or (74.95%%), while fine-tuning gradients grow to at\n"
              "most the FL-training gradient count.\n");
  return 0;
}
