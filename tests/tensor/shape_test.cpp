#include "tensor/shape.h"

#include <gtest/gtest.h>

namespace quickdrop {
namespace {

TEST(ShapeTest, NumelOfScalarIsOne) { EXPECT_EQ(numel({}), 1); }

TEST(ShapeTest, NumelProduct) { EXPECT_EQ(numel({2, 3, 4}), 24); }

TEST(ShapeTest, NumelRejectsNegative) { EXPECT_THROW(numel({2, -1}), std::invalid_argument); }

TEST(ShapeTest, ContiguousStrides) {
  const auto s = contiguous_strides({2, 3, 4});
  EXPECT_EQ(s, (std::vector<std::int64_t>{12, 4, 1}));
}

TEST(ShapeTest, BroadcastEqualShapes) {
  EXPECT_EQ(broadcast_shapes({2, 3}, {2, 3}), (Shape{2, 3}));
}

TEST(ShapeTest, BroadcastWithOnes) {
  EXPECT_EQ(broadcast_shapes({4, 1, 3}, {2, 1}), (Shape{4, 2, 3}));
  EXPECT_EQ(broadcast_shapes({}, {5}), (Shape{5}));
}

TEST(ShapeTest, BroadcastIncompatibleThrows) {
  EXPECT_THROW(broadcast_shapes({2, 3}, {2, 4}), std::invalid_argument);
}

TEST(ShapeTest, BroadcastableTo) {
  EXPECT_TRUE(broadcastable_to({1, 3}, {2, 3}));
  EXPECT_TRUE(broadcastable_to({}, {2, 3}));
  EXPECT_FALSE(broadcastable_to({2}, {2, 3}));  // trailing alignment: 2 vs 3
  EXPECT_FALSE(broadcastable_to({2, 3, 4}, {3, 4}));
}

TEST(ShapeTest, ToString) { EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]"); }

}  // namespace
}  // namespace quickdrop
