#include "tensor/tensor.h"

#include <gtest/gtest.h>

namespace quickdrop {
namespace {

TEST(TensorTest, DefaultIsScalarZero) {
  Tensor t;
  EXPECT_EQ(t.numel(), 1);
  EXPECT_FLOAT_EQ(t.item(), 0.0f);
}

TEST(TensorTest, ZeroInitialized) {
  Tensor t({2, 3});
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_FLOAT_EQ(t.at(i), 0.0f);
}

TEST(TensorTest, FromValuesChecksSize) {
  EXPECT_NO_THROW(Tensor({2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(TensorTest, CopiesAliasStorage) {
  Tensor a({2});
  Tensor b = a;
  b.at(0) = 5.0f;
  EXPECT_FLOAT_EQ(a.at(0), 5.0f);
  EXPECT_TRUE(a.same_storage(b));
}

TEST(TensorTest, CloneIsDeep) {
  Tensor a({2}, {1, 2});
  Tensor b = a.clone();
  b.at(0) = 9.0f;
  EXPECT_FLOAT_EQ(a.at(0), 1.0f);
  EXPECT_FALSE(a.same_storage(b));
}

TEST(TensorTest, ReshapedSharesStorage) {
  Tensor a({2, 3}, {0, 1, 2, 3, 4, 5});
  Tensor b = a.reshaped({3, 2});
  EXPECT_TRUE(a.same_storage(b));
  EXPECT_EQ(b.shape(), (Shape{3, 2}));
  EXPECT_THROW(a.reshaped({4}), std::invalid_argument);
}

TEST(TensorTest, InPlaceOps) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {10, 20, 30});
  a.add_(b, 0.5f);
  EXPECT_FLOAT_EQ(a.at(0), 6.0f);
  EXPECT_FLOAT_EQ(a.at(2), 18.0f);
  a.scale_(2.0f);
  EXPECT_FLOAT_EQ(a.at(0), 12.0f);
  a.copy_from(b);
  EXPECT_FLOAT_EQ(a.at(1), 20.0f);
}

TEST(TensorTest, InPlaceOpsRejectShapeMismatch) {
  Tensor a({3});
  Tensor b({4});
  EXPECT_THROW(a.add_(b), std::invalid_argument);
  EXPECT_THROW(a.copy_from(b), std::invalid_argument);
}

TEST(TensorTest, ItemRequiresSingleElement) {
  Tensor t({2});
  EXPECT_THROW(static_cast<void>(t.item()), std::logic_error);
}

TEST(TensorTest, Aggregates) {
  Tensor t({4}, {1, -2, 3, -4});
  EXPECT_FLOAT_EQ(t.sum(), -2.0f);
  EXPECT_FLOAT_EQ(t.mean(), -0.5f);
  EXPECT_FLOAT_EQ(t.max_abs(), 4.0f);
}

TEST(TensorTest, RandnHasRoughlyUnitVariance) {
  Rng rng(1);
  Tensor t = Tensor::randn({10000}, rng);
  double sum2 = 0;
  for (std::int64_t i = 0; i < t.numel(); ++i) sum2 += t.at(i) * t.at(i);
  EXPECT_NEAR(sum2 / static_cast<double>(t.numel()), 1.0, 0.1);
}

}  // namespace
}  // namespace quickdrop
