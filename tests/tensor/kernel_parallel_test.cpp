// Thread-count invariance of every parallelized kernel: each op must be
// bit-identical between the serial fallback (1 thread) and an oversubscribed
// pool, on odd/prime shapes whose chunk boundaries cut mid-row, mid-plane and
// mid-broadcast-period. Also checks matmul/im2col/col2im/reduce_sum_to
// against independent naive references so the tiled/partitioned rewrites
// can't all be wrong in the same way.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "tensor/kernels.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace quickdrop::kernels {
namespace {

// Restores the global pool size on scope exit so test order doesn't matter.
struct ThreadGuard {
  int saved = num_threads();
  ~ThreadGuard() { set_num_threads(saved); }
};

void expect_bitwise_equal(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    // Compare representations, not values: NaN == NaN must pass, -0 != +0
    // must fail.
    const float va = a.at(i), vb = b.at(i);
    std::uint32_t ra, rb;
    static_assert(sizeof(float) == sizeof(std::uint32_t));
    std::memcpy(&ra, &va, sizeof(ra));
    std::memcpy(&rb, &vb, sizeof(rb));
    ASSERT_EQ(ra, rb) << what << " differs at flat index " << i;
  }
}

// Runs `op` at 1 thread and at each oversubscribed count; all results must be
// bit-identical.
template <typename Op>
void check_invariant(const char* what, Op op) {
  ThreadGuard guard;
  set_num_threads(1);
  const Tensor serial = op();
  for (const int t : {2, 4, 8}) {
    set_num_threads(t);
    const Tensor parallel = op();
    expect_bitwise_equal(serial, parallel,
                         (std::string(what) + " @" + std::to_string(t) + " threads").c_str());
  }
}

TEST(KernelParallelTest, BinaryOpsSameShape) {
  Rng rng(11);
  const auto a = Tensor::randn({7, 13, 5}, rng);
  const auto b = Tensor::randn({7, 13, 5}, rng);
  check_invariant("add", [&] { return add(a, b); });
  check_invariant("sub", [&] { return sub(a, b); });
  check_invariant("mul", [&] { return mul(a, b); });
  check_invariant("div", [&] { return div(a, b); });
}

TEST(KernelParallelTest, BinaryOpsBroadcastEdges) {
  Rng rng(12);
  const auto a = Tensor::randn({3, 17, 7, 11}, rng);
  // Broadcast along inner, middle, outer, and all-but-one dims; prime extents
  // so chunk boundaries never align with a broadcast period.
  for (const Shape& bshape : std::vector<Shape>{{3, 17, 7, 11},
                                                {1, 17, 1, 1},
                                                {3, 1, 7, 1},
                                                {1, 1, 1, 11},
                                                {1, 1, 1, 1},
                                                {17, 1, 11},
                                                {11}}) {
    const auto b = Tensor::randn(bshape, rng);
    check_invariant("broadcast add", [&] { return add(a, b); });
    check_invariant("broadcast mul", [&] { return mul(a, b); });
  }
  // Scalar-ish left operand too (a broadcasts up to b).
  const auto small = Tensor::randn({1, 1, 7, 1}, rng);
  check_invariant("left-broadcast sub", [&] { return sub(small, a); });
}

TEST(KernelParallelTest, UnaryOps) {
  Rng rng(13);
  auto a = Tensor::randn({23, 29}, rng);
  check_invariant("neg", [&] { return neg(a); });
  check_invariant("exp", [&] { return exp(a); });
  check_invariant("relu", [&] { return relu(a); });
  check_invariant("mask", [&] { return gt_zero_mask(a); });
  check_invariant("mul_scalar", [&] { return mul_scalar(a, 1.7f); });
  // log/sqrt on positive input.
  for (std::int64_t i = 0; i < a.numel(); ++i) a.at(i) = std::abs(a.at(i)) + 0.1f;
  check_invariant("log", [&] { return log(a); });
  check_invariant("sqrt", [&] { return sqrt(a); });
}

TEST(KernelParallelTest, MatMulPrimeShapes) {
  Rng rng(14);
  // Odd/prime m, k, n; k both below and above the 128 kk-tile.
  for (const auto [m, k, n] : std::vector<std::array<std::int64_t, 3>>{
           {1, 1, 1}, {7, 13, 5}, {31, 257, 17}, {53, 129, 3}}) {
    const auto a = Tensor::randn({m, k}, rng);
    const auto b = Tensor::randn({k, n}, rng);
    check_invariant("matmul", [&] { return matmul(a, b); });
  }
}

TEST(KernelParallelTest, MatMulMatchesNaiveReference) {
  Rng rng(15);
  const std::int64_t m = 19, k = 151, n = 23;
  const auto a = Tensor::randn({m, k}, rng);
  const auto b = Tensor::randn({k, n}, rng);
  const auto got = matmul(a, b);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a.at(i * k + kk)) * static_cast<double>(b.at(kk * n + j));
      }
      EXPECT_NEAR(got.at(i * n + j), acc, 1e-3 * (std::abs(acc) + 1.0))
          << "i=" << i << " j=" << j;
    }
  }
}

TEST(KernelParallelTest, ReduceSumToEdges) {
  Rng rng(16);
  const auto a = Tensor::randn({5, 7, 3, 11}, rng);
  for (const Shape& target : std::vector<Shape>{{5, 7, 3, 11},
                                                {1, 7, 1, 1},
                                                {5, 1, 3, 1},
                                                {1, 1, 1, 11},
                                                {1, 1, 1, 1},
                                                {7, 1, 11},
                                                {3, 11},
                                                {11},
                                                {1}}) {
    check_invariant("reduce_sum_to", [&] { return reduce_sum_to(a, target); });
  }
}

TEST(KernelParallelTest, ReduceSumToMatchesNaiveReference) {
  Rng rng(17);
  const auto a = Tensor::randn({4, 3, 5}, rng);
  const auto got = reduce_sum_to(a, {1, 3, 1});
  ASSERT_EQ(got.shape(), (Shape{1, 3, 1}));
  for (std::int64_t c = 0; c < 3; ++c) {
    float acc = 0.0f;  // float accumulation in input-flat order, like the kernel
    for (std::int64_t i = 0; i < 4; ++i) {
      for (std::int64_t j = 0; j < 5; ++j) acc += a.at((i * 3 + c) * 5 + j);
    }
    EXPECT_FLOAT_EQ(got.at(c), acc);
  }
}

TEST(KernelParallelTest, Im2ColPadStrideCombos) {
  Rng rng(18);
  const auto x = Tensor::randn({3, 5, 11, 13}, rng);  // prime H/W, odd N/C
  for (const auto [k, pad, stride] : std::vector<std::array<int, 3>>{
           {3, 1, 1}, {3, 0, 2}, {5, 2, 1}, {1, 0, 1}, {3, 2, 3}}) {
    check_invariant("im2col", [&] { return im2col(x, k, pad, stride); });
  }
}

TEST(KernelParallelTest, Col2ImPadStrideCombos) {
  Rng rng(19);
  const Shape image{3, 5, 11, 13};
  for (const auto [k, pad, stride] : std::vector<std::array<int, 3>>{
           {3, 1, 1}, {3, 0, 2}, {5, 2, 1}, {1, 0, 1}, {3, 2, 3}}) {
    const std::int64_t oh = (11 + 2 * pad - k) / stride + 1;
    const std::int64_t ow = (13 + 2 * pad - k) / stride + 1;
    const auto cols = Tensor::randn({5 * k * k, 3 * oh * ow}, rng);
    check_invariant("col2im", [&] { return col2im(cols, image, k, pad, stride); });
  }
}

TEST(KernelParallelTest, Col2ImRoundTripsThroughIm2Col) {
  // col2im(im2col(x)) with stride=k and no padding partitions the image:
  // every pixel is copied exactly once, so the round trip is the identity.
  Rng rng(20);
  const auto x = Tensor::randn({2, 3, 8, 8}, rng);
  const auto cols = im2col(x, 2, 0, 2);
  const auto back = col2im(cols, x.shape(), 2, 0, 2);
  expect_bitwise_equal(x, back, "col2im∘im2col identity");
}

TEST(KernelParallelTest, RowMaxAndArgmax) {
  Rng rng(21);
  const auto a = Tensor::randn({37, 13}, rng);
  check_invariant("row_max", [&] { return row_max(a); });
  ThreadGuard guard;
  set_num_threads(1);
  const auto serial = argmax_rows(a);
  for (const int t : {2, 8}) {
    set_num_threads(t);
    EXPECT_EQ(argmax_rows(a), serial) << t << " threads";
  }
}

TEST(KernelParallelTest, TinyTensorsStaySerialAndCorrect) {
  // Below any sensible grain: must take the serial path and still be right.
  Rng rng(22);
  const auto a = Tensor::randn({2, 2}, rng);
  const auto b = Tensor::randn({2, 2}, rng);
  check_invariant("tiny add", [&] { return add(a, b); });
  check_invariant("tiny matmul", [&] { return matmul(a, b); });
}

}  // namespace
}  // namespace quickdrop::kernels
